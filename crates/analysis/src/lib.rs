//! The Multipath Video Analysis Tool (§6 of the paper).
//!
//! The authors built a ~3,000-line C++ tool that takes a packet trace plus
//! a player event log, correlates them across protocol layers (MPTCP /
//! HTTP / DASH), and reports path utilization, rebuffering, quality
//! switches and energy, with a chunk-bar visualization (the paper's
//! Figure 8). This crate is that tool for the simulated stack:
//!
//! * input: the receiver's [`PktRecord`] trace and the session's per-chunk
//!   log ([`ChunkInfo`], carrying each body's connection-stream range);
//! * correlation: per-chunk per-path byte attribution by intersecting
//!   packet DSS ranges with chunk body ranges;
//! * outputs: [`SessionAnalysis`] (the metrics) and
//!   [`render_chunk_bars`] / [`throughput_timeline`] (text
//!   visualizations in the spirit of Figure 8).

use mpdash_dash::player::PlayerEvent;
use mpdash_energy::{session_energy, DeviceProfile, SessionEnergy};
use mpdash_link::PathId;
use mpdash_mptcp::PktRecord;
use mpdash_results::{Json, JsonError};
use mpdash_sim::{SimDuration, SimTime};

/// One fetched chunk, as the analysis tool needs it. (The session layer
/// converts its own log into this; the tool itself stays independent of
/// the driver.)
#[derive(Clone, Copy, Debug)]
pub struct ChunkInfo {
    /// Chunk index.
    pub index: usize,
    /// Quality level fetched (0-based, ascending).
    pub level: usize,
    /// Body bytes.
    pub size: u64,
    /// Request issue time.
    pub started: SimTime,
    /// Completion time.
    pub completed: SimTime,
    /// Connection-stream byte range `[start, end)` of the body.
    pub body_dss: (u64, u64),
}

/// Per-chunk path attribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChunkPathSplit {
    /// Chunk index.
    pub index: usize,
    /// Body bytes that arrived over WiFi.
    pub wifi_bytes: u64,
    /// Body bytes that arrived over cellular.
    pub cell_bytes: u64,
}

impl ChunkPathSplit {
    /// Fraction of the chunk's attributed bytes that used cellular.
    pub fn cell_fraction(&self) -> f64 {
        let total = self.wifi_bytes + self.cell_bytes;
        if total == 0 {
            0.0
        } else {
            self.cell_bytes as f64 / total as f64
        }
    }
}

/// Session-level metrics computed by the tool.
#[derive(Clone, Debug)]
pub struct SessionAnalysis {
    /// Per-chunk path splits, chunk order.
    pub splits: Vec<ChunkPathSplit>,
    /// Total bytes per path attributed to video bodies.
    pub wifi_body_bytes: u64,
    /// Total cellular body bytes.
    pub cell_body_bytes: u64,
    /// Level-change count between consecutive chunks.
    pub switches: u64,
    /// Chunks per level.
    pub level_histogram: Vec<usize>,
    /// Mean chunk download duration.
    pub mean_download: SimDuration,
    /// Idle gaps between packets longer than the configured threshold
    /// (start, length) — the gaps MP-DASH "eliminates" in Figure 8.
    pub idle_gaps: Vec<(SimTime, SimDuration)>,
}

/// Attribute each chunk's body bytes to paths by intersecting packet DSS
/// ranges with the chunk's body range. Retransmitted duplicates count on
/// the path they arrived on (they cost that radio's bytes), so per-chunk
/// attribution can slightly exceed the body size — exactly like counting
/// wire bytes in a real capture.
pub fn chunk_path_splits(records: &[PktRecord], chunks: &[ChunkInfo]) -> Vec<ChunkPathSplit> {
    let mut out: Vec<ChunkPathSplit> = chunks
        .iter()
        .map(|c| ChunkPathSplit {
            index: c.index,
            wifi_bytes: 0,
            cell_bytes: 0,
        })
        .collect();
    if chunks.is_empty() {
        return out;
    }
    // Chunks are stream-ordered; walk records with binary search on the
    // body ranges.
    let starts: Vec<u64> = chunks.iter().map(|c| c.body_dss.0).collect();
    for r in records {
        let (lo, hi) = (r.dss, r.dss + r.len);
        // Candidate chunk: the last one whose body start is <= lo.
        let idx = match starts.binary_search(&lo) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        // A packet can straddle a response-header/body boundary; check
        // this chunk and the next for overlap.
        for c in chunks.iter().skip(idx).take(2) {
            let (bs, be) = c.body_dss;
            let ov_lo = lo.max(bs);
            let ov_hi = hi.min(be);
            if ov_hi > ov_lo {
                let last = out.len() - 1;
                let split = &mut out[c.index.min(last)];
                match r.path {
                    PathId::WIFI => split.wifi_bytes += ov_hi - ov_lo,
                    PathId::CELLULAR => split.cell_bytes += ov_hi - ov_lo,
                    _ => {}
                }
            }
        }
    }
    out
}

/// Idle gaps between consecutive packets exceeding `min_gap`.
pub fn idle_gaps(records: &[PktRecord], min_gap: SimDuration) -> Vec<(SimTime, SimDuration)> {
    let mut out = Vec::new();
    for w in records.windows(2) {
        let gap = w[1].t.saturating_since(w[0].t);
        if gap > min_gap {
            out.push((w[0].t, gap));
        }
    }
    out
}

/// Run the full analysis.
pub fn analyze(records: &[PktRecord], chunks: &[ChunkInfo], n_levels: usize) -> SessionAnalysis {
    let splits = chunk_path_splits(records, chunks);
    let wifi_body_bytes = splits.iter().map(|s| s.wifi_bytes).sum();
    let cell_body_bytes = splits.iter().map(|s| s.cell_bytes).sum();
    let mut histogram = vec![0usize; n_levels];
    let mut switches = 0;
    for (i, c) in chunks.iter().enumerate() {
        if c.level < n_levels {
            histogram[c.level] += 1;
        }
        if i > 0 && chunks[i - 1].level != c.level {
            switches += 1;
        }
    }
    let mean_download = if chunks.is_empty() {
        SimDuration::ZERO
    } else {
        let total: u64 = chunks
            .iter()
            .map(|c| c.completed.saturating_since(c.started).as_nanos())
            .sum();
        SimDuration::from_nanos(total / chunks.len() as u64)
    };
    SessionAnalysis {
        splits,
        wifi_body_bytes,
        cell_body_bytes,
        switches,
        level_histogram: histogram,
        mean_download,
        idle_gaps: idle_gaps(records, SimDuration::from_millis(500)),
    }
}

/// Figure 8-style chunk bars, one text row per chunk:
///
/// ```text
///  12 | L4 | 2.31 MB | 1.42 s | cell  3% | ####______________
/// ```
///
/// The bar is `width` cells long; `#` cells are the cellular fraction
/// (the figure's black component), `digits` of the level color the rest.
pub fn render_chunk_bars(chunks: &[ChunkInfo], splits: &[ChunkPathSplit], width: usize) -> String {
    assert_eq!(chunks.len(), splits.len(), "one split per chunk");
    let mut out = String::new();
    out.push_str("idx | lvl |    size |  dl time | cell% | path share (#=cellular)\n");
    for (c, s) in chunks.iter().zip(splits) {
        let dl = c.completed.saturating_since(c.started);
        let frac = s.cell_fraction();
        let cells = (frac * width as f64).round() as usize;
        let level_char = char::from_digit(c.level as u32 % 10, 10).unwrap_or('?');
        let mut bar = String::with_capacity(width);
        for i in 0..width {
            bar.push(if i < cells { '#' } else { level_char });
        }
        out.push_str(&format!(
            "{:>3} |  L{} | {:>6.2}MB | {:>7.2}s | {:>4.0}% | {}\n",
            c.index,
            c.level,
            c.size as f64 / 1e6,
            dl.as_secs_f64(),
            frac * 100.0,
            bar
        ));
    }
    out
}

/// A two-row text throughput timeline (WiFi and cellular Mbps per
/// `bucket`), using eight-level block characters — the §6 tool's
/// "visualizes the analysis" in terminal form.
pub fn throughput_timeline(
    records: &[PktRecord],
    bucket: SimDuration,
    horizon: SimDuration,
) -> String {
    let n = (horizon.as_nanos() / bucket.as_nanos()).max(1) as usize;
    let mut wifi = vec![0u64; n];
    let mut cell = vec![0u64; n];
    for r in records {
        let idx = (r.t.as_nanos() / bucket.as_nanos()) as usize;
        if idx < n {
            match r.path {
                PathId::WIFI => wifi[idx] += r.len,
                PathId::CELLULAR => cell[idx] += r.len,
                _ => {}
            }
        }
    }
    let max = wifi
        .iter()
        .chain(cell.iter())
        .copied()
        .max()
        .unwrap_or(0)
        .max(1);
    let blocks = [
        ' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
    ];
    let render = |v: &[u64]| -> String {
        v.iter()
            .map(|&b| {
                let lvl = (b * 7 / max) as usize;
                blocks[lvl.min(7)]
            })
            .collect()
    };
    let peak_mbps = max as f64 * 8.0 / bucket.as_secs_f64() / 1e6;
    format!(
        "wifi |{}|\ncell |{}|  (peak {:.1} Mbps / cell)\n",
        render(&wifi),
        render(&cell),
        peak_mbps
    )
}

/// Path utilization (§6's first listed metric): the fraction of a path's
/// *capacity-time product* actually carried over `[0, horizon]`.
/// `mean_capacity` is the path's average available rate (from the
/// bandwidth profile or a pre-play probe).
pub fn path_utilization(
    records: &[PktRecord],
    path: PathId,
    mean_capacity: mpdash_sim::Rate,
    horizon: SimDuration,
) -> f64 {
    let carried: u64 = records
        .iter()
        .filter(|r| r.path == path)
        .map(|r| r.len)
        .sum();
    let possible = mean_capacity.bytes_in(horizon);
    if possible == 0 {
        0.0
    } else {
        carried as f64 / possible as f64
    }
}

/// Pair up `Stalled`/`Resumed` entries of a player event log into
/// rebuffering intervals `(start, duration)` — the §6 tool's rebuffering
/// report. A trailing unresumed stall is closed at the log's last event.
pub fn stall_intervals(events: &[PlayerEvent]) -> Vec<(SimTime, SimDuration)> {
    let mut out = Vec::new();
    let mut open: Option<SimTime> = None;
    let mut last = SimTime::ZERO;
    for e in events {
        let at = match *e {
            PlayerEvent::Started { at }
            | PlayerEvent::Stalled { at }
            | PlayerEvent::Resumed { at }
            | PlayerEvent::Finished { at }
            | PlayerEvent::ChunkDone { at, .. } => at,
        };
        last = last.max(at);
        match *e {
            PlayerEvent::Stalled { at } => open = Some(at),
            PlayerEvent::Resumed { at } => {
                if let Some(start) = open.take() {
                    out.push((start, at.saturating_since(start)));
                }
            }
            _ => {}
        }
    }
    if let Some(start) = open {
        out.push((start, last.saturating_since(start)));
    }
    out
}

/// Buffer-occupancy samples from a player event log: `(time, seconds)`
/// at every chunk completion — enough to plot the buffer trajectory.
pub fn buffer_trajectory(events: &[PlayerEvent]) -> Vec<(SimTime, f64)> {
    events
        .iter()
        .filter_map(|e| match *e {
            PlayerEvent::ChunkDone { at, buffer, .. } => Some((at, buffer.as_secs_f64())),
            _ => None,
        })
        .collect()
}

/// Replay a packet trace through a device's radio models — the §6 tool's
/// energy report, computed from the same capture the rest of the analysis
/// uses (the paper's "replay the trace under different power models").
pub fn replay_energy(
    records: &[PktRecord],
    device: &DeviceProfile,
    horizon: SimDuration,
) -> SessionEnergy {
    let wifi: Vec<(SimTime, u64)> = records
        .iter()
        .filter(|r| r.path == PathId::WIFI)
        .map(|r| (r.t, r.len))
        .collect();
    let cell: Vec<(SimTime, u64)> = records
        .iter()
        .filter(|r| r.path == PathId::CELLULAR)
        .map(|r| (r.t, r.len))
        .collect();
    session_energy(device, &wifi, &cell, horizon)
}

/// Machine-readable session summary for downstream plotting pipelines —
/// the analysis tool's export format.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummaryJson {
    /// Per-chunk rows.
    pub chunks: Vec<ChunkRowJson>,
    /// Total WiFi body bytes.
    pub wifi_body_bytes: u64,
    /// Total cellular body bytes.
    pub cell_body_bytes: u64,
    /// Quality switches.
    pub switches: u64,
    /// Chunks per level.
    pub level_histogram: Vec<usize>,
    /// Mean download seconds.
    pub mean_download_s: f64,
    /// Idle gaps `(start_s, length_s)` above the 0.5 s threshold.
    pub idle_gaps: Vec<(f64, f64)>,
}

/// One chunk row of the JSON export.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkRowJson {
    /// Chunk index.
    pub index: usize,
    /// Level fetched.
    pub level: usize,
    /// Body bytes.
    pub size: u64,
    /// Download start, seconds.
    pub started_s: f64,
    /// Download end, seconds.
    pub completed_s: f64,
    /// Cellular fraction of the body.
    pub cell_fraction: f64,
}

/// Serialize a full analysis (plus its inputs' timing) to pretty JSON.
pub fn to_json(chunks: &[ChunkInfo], analysis: &SessionAnalysis) -> String {
    let rows: Vec<ChunkRowJson> = chunks
        .iter()
        .zip(&analysis.splits)
        .map(|(c, s)| ChunkRowJson {
            index: c.index,
            level: c.level,
            size: c.size,
            started_s: c.started.as_secs_f64(),
            completed_s: c.completed.as_secs_f64(),
            cell_fraction: s.cell_fraction(),
        })
        .collect();
    let doc = SessionSummaryJson {
        chunks: rows,
        wifi_body_bytes: analysis.wifi_body_bytes,
        cell_body_bytes: analysis.cell_body_bytes,
        switches: analysis.switches,
        level_histogram: analysis.level_histogram.clone(),
        mean_download_s: analysis.mean_download.as_secs_f64(),
        idle_gaps: analysis
            .idle_gaps
            .iter()
            .map(|&(t, d)| (t.as_secs_f64(), d.as_secs_f64()))
            .collect(),
    };
    doc.to_json().to_pretty()
}

impl ChunkRowJson {
    fn to_json(self) -> Json {
        Json::obj([
            ("index", Json::from(self.index)),
            ("level", Json::from(self.level)),
            ("size", Json::from(self.size)),
            ("started_s", Json::Float(self.started_s)),
            ("completed_s", Json::Float(self.completed_s)),
            ("cell_fraction", Json::Float(self.cell_fraction)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let u = |key: &str| -> Result<u64, JsonError> {
            v.req(key)?
                .as_u64()
                .ok_or_else(|| JsonError::schema(format!("'{key}' must be an integer")))
        };
        let f = |key: &str| -> Result<f64, JsonError> {
            v.req(key)?
                .as_f64()
                .ok_or_else(|| JsonError::schema(format!("'{key}' must be a number")))
        };
        Ok(ChunkRowJson {
            index: u("index")? as usize,
            level: u("level")? as usize,
            size: u("size")?,
            started_s: f("started_s")?,
            completed_s: f("completed_s")?,
            cell_fraction: f("cell_fraction")?,
        })
    }
}

impl SessionSummaryJson {
    /// The export document as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("chunks", Json::arr(self.chunks.iter().map(|c| c.to_json()))),
            ("wifi_body_bytes", Json::from(self.wifi_body_bytes)),
            ("cell_body_bytes", Json::from(self.cell_body_bytes)),
            ("switches", Json::from(self.switches)),
            (
                "level_histogram",
                Json::arr(self.level_histogram.iter().map(|&n| Json::from(n))),
            ),
            ("mean_download_s", Json::Float(self.mean_download_s)),
            (
                "idle_gaps",
                Json::arr(
                    self.idle_gaps
                        .iter()
                        .map(|&(a, b)| Json::arr([Json::Float(a), Json::Float(b)])),
                ),
            ),
        ])
    }

    /// Parse an exported summary back — the consuming side of the export
    /// format, so pipelines can post-process sessions without rerunning
    /// the simulator.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let v = Json::parse(text)?;
        let arr = |key: &str| -> Result<Vec<Json>, JsonError> {
            Ok(v.req(key)?
                .as_arr()
                .ok_or_else(|| JsonError::schema(format!("'{key}' must be an array")))?
                .to_vec())
        };
        let u = |key: &str| -> Result<u64, JsonError> {
            v.req(key)?
                .as_u64()
                .ok_or_else(|| JsonError::schema(format!("'{key}' must be an integer")))
        };
        let chunks = arr("chunks")?
            .iter()
            .map(ChunkRowJson::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let level_histogram = arr("level_histogram")?
            .iter()
            .map(|n| {
                n.as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| JsonError::schema("histogram entries must be integers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let idle_gaps = arr("idle_gaps")?
            .iter()
            .map(|g| {
                let pair = g
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| JsonError::schema("idle gaps must be pairs"))?;
                match (pair[0].as_f64(), pair[1].as_f64()) {
                    (Some(a), Some(b)) => Ok((a, b)),
                    _ => Err(JsonError::schema("idle gaps must be numeric")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SessionSummaryJson {
            chunks,
            wifi_body_bytes: u("wifi_body_bytes")?,
            cell_body_bytes: u("cell_body_bytes")?,
            switches: u("switches")?,
            level_histogram,
            mean_download_s: v
                .req("mean_download_s")?
                .as_f64()
                .ok_or_else(|| JsonError::schema("'mean_download_s' must be a number"))?,
            idle_gaps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn rec(ts: f64, path: PathId, dss: u64, len: u64) -> PktRecord {
        PktRecord {
            t: t(ts),
            path,
            len,
            dss,
            retx: false,
        }
    }

    fn chunk(index: usize, level: usize, dss: (u64, u64), start: f64, end: f64) -> ChunkInfo {
        ChunkInfo {
            index,
            level,
            size: dss.1 - dss.0,
            started: t(start),
            completed: t(end),
            body_dss: dss,
        }
    }

    #[test]
    fn attribution_by_dss_overlap() {
        let chunks = [chunk(0, 3, (100, 1100), 0.0, 1.0)];
        let records = [
            rec(0.1, PathId::WIFI, 0, 100),       // header, not body
            rec(0.2, PathId::WIFI, 100, 600),     // body
            rec(0.3, PathId::CELLULAR, 700, 400), // body
        ];
        let splits = chunk_path_splits(&records, &chunks);
        assert_eq!(splits[0].wifi_bytes, 600);
        assert_eq!(splits[0].cell_bytes, 400);
        assert!((splits[0].cell_fraction() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn packet_straddling_two_chunks_splits_correctly() {
        let chunks = [
            chunk(0, 1, (0, 1000), 0.0, 1.0),
            chunk(1, 2, (1200, 2200), 1.0, 2.0), // 200 B of headers between
        ];
        // One packet covers the tail of chunk 0, the header gap, and the
        // head of chunk 1.
        let records = [rec(0.9, PathId::WIFI, 900, 500)];
        let splits = chunk_path_splits(&records, &chunks);
        assert_eq!(splits[0].wifi_bytes, 100);
        assert_eq!(splits[1].wifi_bytes, 200);
    }

    #[test]
    fn analyze_counts_switches_and_levels() {
        let chunks = [
            chunk(0, 2, (0, 10), 0.0, 0.5),
            chunk(1, 3, (10, 20), 1.0, 1.5),
            chunk(2, 3, (20, 30), 2.0, 2.5),
            chunk(3, 2, (30, 40), 3.0, 3.5),
        ];
        let a = analyze(&[], &chunks, 5);
        assert_eq!(a.switches, 2);
        assert_eq!(a.level_histogram, vec![0, 0, 2, 2, 0]);
        assert_eq!(a.mean_download, SimDuration::from_millis(500));
    }

    #[test]
    fn idle_gap_detection() {
        let records = [
            rec(0.0, PathId::WIFI, 0, 10),
            rec(0.1, PathId::WIFI, 10, 10),
            rec(2.0, PathId::WIFI, 20, 10), // 1.9 s gap
            rec(2.1, PathId::WIFI, 30, 10),
        ];
        let gaps = idle_gaps(&records, SimDuration::from_millis(500));
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].0, t(0.1));
        assert_eq!(gaps[0].1, SimDuration::from_millis(1900));
    }

    #[test]
    fn chunk_bars_render() {
        let chunks = [chunk(0, 4, (0, 1000), 0.0, 2.0)];
        let splits = [ChunkPathSplit {
            index: 0,
            wifi_bytes: 750,
            cell_bytes: 250,
        }];
        let s = render_chunk_bars(&chunks, &splits, 8);
        // 25% of 8 cells = 2 '#'.
        assert!(s.contains("##444444"), "bar missing in:\n{s}");
        assert!(s.contains("L4"));
        assert!(s.contains("25%"));
    }

    #[test]
    fn timeline_renders_two_rows() {
        let records = [
            rec(0.5, PathId::WIFI, 0, 100_000),
            rec(1.5, PathId::CELLULAR, 100_000, 50_000),
        ];
        let s = throughput_timeline(
            &records,
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("wifi |"));
        assert!(lines[1].starts_with("cell |"));
        // WiFi bucket 0 is the max -> darkest block; cellular bucket 0 empty.
        assert!(lines[0].chars().nth(6) != Some(' '));
        assert_eq!(lines[1].chars().nth(6), Some(' '));
    }

    #[test]
    fn json_export_round_trips_structurally() {
        let chunks = [
            chunk(0, 2, (0, 1000), 0.0, 1.0),
            chunk(1, 3, (1200, 2200), 1.5, 2.5),
        ];
        let records = [
            rec(0.5, PathId::WIFI, 0, 600),
            rec(0.7, PathId::CELLULAR, 600, 400),
            rec(2.0, PathId::WIFI, 1200, 1000),
        ];
        let a = analyze(&records, &chunks, 5);
        let json = to_json(&chunks, &a);
        let doc = SessionSummaryJson::from_json(&json).unwrap();
        assert_eq!(doc.chunks.len(), 2);
        assert_eq!(doc.switches, 1);
        assert!((doc.chunks[0].cell_fraction - 0.4).abs() < 1e-9);
        assert_eq!(doc.wifi_body_bytes, 1600);
        // Full structural round trip: re-serializing the parsed document
        // reproduces the export byte-for-byte.
        assert_eq!(doc.to_json().to_pretty(), json);
    }

    #[test]
    fn utilization_is_carried_over_possible() {
        use mpdash_sim::Rate;
        // 2 Mbps for 10 s can carry 2.5 MB; we carried 1.25 MB -> 50%.
        let records = [
            rec(1.0, PathId::CELLULAR, 0, 625_000),
            rec(5.0, PathId::CELLULAR, 625_000, 625_000),
            rec(2.0, PathId::WIFI, 0, 999_999), // other path, ignored
        ];
        let u = path_utilization(
            &records,
            PathId::CELLULAR,
            Rate::from_mbps(2),
            SimDuration::from_secs(10),
        );
        assert!((u - 0.5).abs() < 1e-9, "{u}");
        // Degenerate capacity.
        assert_eq!(
            path_utilization(
                &records,
                PathId::CELLULAR,
                Rate::ZERO,
                SimDuration::from_secs(1)
            ),
            0.0
        );
    }

    #[test]
    fn stall_intervals_pair_up() {
        use mpdash_sim::SimTime as T;
        let ev = [
            PlayerEvent::Started {
                at: T::from_secs(1),
            },
            PlayerEvent::Stalled {
                at: T::from_secs(10),
            },
            PlayerEvent::Resumed {
                at: T::from_secs(12),
            },
            PlayerEvent::Stalled {
                at: T::from_secs(20),
            },
            PlayerEvent::ChunkDone {
                at: T::from_secs(23),
                index: 5,
                level: 1,
                buffer: SimDuration::from_secs(2),
            },
        ];
        let iv = stall_intervals(&ev);
        assert_eq!(iv.len(), 2);
        assert_eq!(iv[0], (T::from_secs(10), SimDuration::from_secs(2)));
        // Trailing stall closed at the last event.
        assert_eq!(iv[1], (T::from_secs(20), SimDuration::from_secs(3)));

        let traj = buffer_trajectory(&ev);
        assert_eq!(traj, vec![(T::from_secs(23), 2.0)]);
    }

    #[test]
    fn replay_energy_matches_direct_computation() {
        let records = [
            rec(1.0, PathId::WIFI, 0, 500_000),
            rec(2.0, PathId::CELLULAR, 500_000, 250_000),
        ];
        let device = mpdash_energy::DeviceProfile::galaxy_note();
        let horizon = SimDuration::from_secs(30);
        let via_tool = replay_energy(&records, &device, horizon);
        let direct = mpdash_energy::session_energy(
            &device,
            &[(t(1.0), 500_000)],
            &[(t(2.0), 250_000)],
            horizon,
        );
        assert_eq!(via_tool.total_j(), direct.total_j());
        assert!(via_tool.lte.total_j() > via_tool.wifi.total_j());
    }

    #[test]
    fn empty_inputs_are_safe() {
        let a = analyze(&[], &[], 5);
        assert!(a.splits.is_empty());
        assert_eq!(a.switches, 0);
        assert_eq!(a.mean_download, SimDuration::ZERO);
        assert!(idle_gaps(&[], SimDuration::from_secs(1)).is_empty());
    }
}
