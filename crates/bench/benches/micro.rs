//! Criterion micro-benchmarks backing the paper's §8 claim that MP-DASH
//! "incurs negligible runtime overhead": the per-packet/per-tick costs of
//! the deadline scheduler, the Holt-Winters predictor, the offline DP
//! solver, and the packet-level MPTCP step, plus end-to-end session
//! throughput of the simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use mpdash_core::deadline::{DeadlineScheduler, SchedulerParams};
use mpdash_core::optimal::{optimal_min_cost, SlotItem};
use mpdash_core::predict::{HoltWinters, Predictor};
use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_link::PathId;
use mpdash_link::{
    LinkConfig, QueueDiscipline, SharedBottleneck, SharedBottleneckConfig, SharedOutcome,
};
use mpdash_mptcp::scheduler::{seed_pick, Candidate, SchedInput, Scheduler};
use mpdash_mptcp::{MptcpConfig, MptcpSim, SchedulerSpec, MSS};
use mpdash_session::{run_batch_with, Job, SessionConfig, TransportMode};
use mpdash_sim::{Rate, SimDuration, SimTime};
use std::hint::black_box;

fn bench_scheduler_decision(c: &mut Criterion) {
    c.bench_function("algorithm1_on_progress", |b| {
        let mut sched = DeadlineScheduler::new(SchedulerParams::default());
        sched.enable(SimTime::ZERO, 5_000_000, SimDuration::from_secs(10));
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            // Never complete: keep progress below the size.
            let d = sched.on_progress(
                SimTime::from_micros(t % 9_000_000),
                black_box(t % 4_000_000),
                Rate::from_mbps_f64(3.8),
            );
            black_box(d)
        });
    });
}

fn bench_holt_winters(c: &mut Criterion) {
    c.bench_function("holt_winters_observe_forecast", |b| {
        let mut hw = HoltWinters::default();
        let mut x = 3.0f64;
        b.iter(|| {
            x = 3.0 + (x * 7.3) % 1.0;
            hw.observe(Rate::from_mbps_f64(black_box(x)));
            black_box(hw.forecast())
        });
    });
}

fn bench_optimal_dp(c: &mut Criterion) {
    // Table 2's largest instance shape: 20 s of 50 ms slots on two paths.
    let items: Vec<SlotItem> = (0..800)
        .map(|i| SlotItem {
            bytes: 20_000 + (i % 17) * 1_000,
            cost: if i < 400 { 0.0 } else { 1.0 },
        })
        .collect();
    c.bench_function("optimal_min_cost_dp_800_items", |b| {
        b.iter(|| black_box(optimal_min_cost(black_box(&items), 10_000_000, 50_000)))
    });
}

fn bench_mptcp_transfer(c: &mut Criterion) {
    c.bench_function("mptcp_5mb_transfer", |b| {
        b.iter(|| {
            let wifi = LinkConfig::constant(3.8, SimDuration::from_millis(25));
            let cell = LinkConfig::constant(3.0, SimDuration::from_micros(27_500));
            let mut sim = MptcpSim::new(MptcpConfig::two_path(wifi, cell));
            sim.send_app(5_000_000);
            while sim.delivered() < 5_000_000 {
                sim.step().expect("transfer must complete");
            }
            black_box(sim.now())
        });
    });
}

fn bench_shared_bottleneck(c: &mut Criterion) {
    // The fleet hot path: every packet of every client crosses a shared
    // bottleneck twice (offer + pop_departure). 8 flows keep offering at
    // the service times the queue itself reports, so the queue stays
    // busy and each iteration measures one full enqueue/dequeue cycle.
    for (name, discipline) in [
        ("fifo", QueueDiscipline::Fifo),
        ("fq", QueueDiscipline::FlowQueue { quantum: 1540 }),
    ] {
        c.bench_function(&format!("shared_bottleneck_offer_pop_{name}"), |b| {
            let bn = SharedBottleneck::new(
                SharedBottleneckConfig::fifo_mbps(100.0)
                    .with_discipline(discipline)
                    .with_capacity(1 << 20),
            );
            let flows: Vec<_> = (0..8).map(|_| bn.subscribe()).collect();
            let mut now = SimTime::ZERO;
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                match bn.offer(now, flows[i % flows.len()], 1_500) {
                    SharedOutcome::Queued { .. } => {}
                    SharedOutcome::Dropped(_) => unreachable!("1 MiB cap never fills"),
                }
                let at = bn.next_departure().expect("queue is non-empty");
                let dep = bn.pop_departure().expect("departure is due");
                now = at;
                black_box(dep)
            });
        });
    }
}

fn bench_scheduler_pick(c: &mut Criterion) {
    // The per-segment pick on the transport hot path: the seed's free
    // enum-match function versus the enum-dispatched `Scheduler` trait.
    // The trait rows must stay within 2% of the seed row (the
    // `bench_sched --check` CI gate enforces this with wall-clock
    // timing; these criterion rows are the human-readable trajectory).
    let candidates = [
        Candidate {
            path: PathId::WIFI,
            srtt: Some(SimDuration::from_millis(25)),
            cwnd: 10 * MSS,
            in_flight: 2 * MSS,
            queue_depth: Some(48 * 1024),
        },
        Candidate {
            path: PathId::CELLULAR,
            srtt: Some(SimDuration::from_micros(27_500)),
            cwnd: 10 * MSS,
            in_flight: MSS,
            queue_depth: Some(4 * 1024),
        },
    ];
    c.bench_function("scheduler_pick_seed_enum_min_rtt", |b| {
        let mut cursor = 0usize;
        b.iter(|| {
            black_box(seed_pick(
                SchedulerSpec::MinRtt,
                &mut cursor,
                black_box(&candidates),
            ))
        })
    });
    c.bench_function("scheduler_pick_seed_enum_round_robin", |b| {
        let mut cursor = 0usize;
        b.iter(|| {
            black_box(seed_pick(
                SchedulerSpec::RoundRobin,
                &mut cursor,
                black_box(&candidates),
            ))
        })
    });
    for spec in SchedulerSpec::ALL {
        c.bench_function(&format!("scheduler_pick_trait_{}", spec.label()), |b| {
            let mut sched = spec.build();
            b.iter(|| {
                let input = SchedInput {
                    candidates: black_box(&candidates),
                    backlog: MSS,
                };
                black_box(sched.pick(&input))
            })
        });
    }
}

fn bench_batch_runner(c: &mut Criterion) {
    // Sessions/sec of the experiment batch runner at different worker
    // counts: 8 tiny streaming sessions per iteration (one per job), so
    // the reported per-iter time is the whole batch. Speedup over the
    // 1-worker row is the parallel efficiency on this machine.
    let jobs = || -> Vec<Job> {
        (0..8)
            .map(|i| {
                let cfg = SessionConfig::controlled_mbps(
                    2.0 + (i % 4) as f64,
                    2.0,
                    AbrKind::Festive,
                    TransportMode::Vanilla,
                )
                .with_video(Video::new(
                    "tiny",
                    &[0.5, 1.0],
                    SimDuration::from_secs(2),
                    4,
                ));
                Job::session(format!("j{i}"), cfg)
            })
            .collect()
    };
    for workers in [1usize, 2, 4, 8] {
        c.bench_function(&format!("batch_8_sessions_{workers}_workers"), |b| {
            b.iter(|| black_box(run_batch_with(jobs(), workers)).len())
        });
    }
}

criterion_group!(
    benches,
    bench_scheduler_decision,
    bench_holt_winters,
    bench_optimal_dp,
    bench_mptcp_transfer,
    bench_shared_bottleneck,
    bench_scheduler_pick,
    bench_batch_runner
);
criterion_main!(benches);
