//! `bench_obs` — the telemetry-overhead artifact.
//!
//! Emits `results/BENCH_obs.json` with two figures tracked across PRs:
//!
//! * nanoseconds per epoch-rollup event — counter bumps and histogram
//!   observations into an [`EpochSeries`] at a realistic mix, best-of-N
//!   wall-clock over millions of events so the number is the steady
//!   hot-path cost rather than a cold sample;
//! * sessions/sec of the 16-client contended fleet from `bench_sched`,
//!   run twice: telemetry off (the seed path) and telemetry on at a
//!   1-second epoch (every client, bottleneck, and the fleet loop all
//!   rolling up).
//!
//! `--check` additionally gates the observability PR's acceptance
//! criterion: enabling telemetry must cost no more than 3% of fleet
//! wall-clock (plus a small jitter floor so a descheduled trial cannot
//! flake CI). Both sides are best-of-N minima, so the comparison is
//! floor against floor.

use mpdash_bench::cli::quick_requested;
use mpdash_fleet::FleetConfig;
use mpdash_obs::{EpochSeries, TelemetrySpec};
use mpdash_results::{write_artifact, ExperimentResult, ScalarGroup};
use mpdash_sim::SimTime;
use std::hint::black_box;
use std::time::Instant;

const ROLLUP_TRIALS: usize = 7;
const FLEET_TRIALS: usize = 5;

/// Best-of-[`ROLLUP_TRIALS`] nanoseconds per rollup event. The mix is
/// four counter bumps and one histogram observation per simulated
/// event-ish step, walking virtual time forward so the epoch cursor
/// moves the way a real session drives it (mostly same-epoch hits with
/// a periodic append).
fn rollup_ns_per_event(events: u64) -> f64 {
    let names = ["delivered_bytes", "deadline_hits", "chunks", "switches"];
    let mut best = f64::INFINITY;
    for _ in 0..ROLLUP_TRIALS {
        let mut series = EpochSeries::new(TelemetrySpec::seconds(1.0));
        let mut t_ms: u64 = 0;
        let start = Instant::now();
        for i in 0..events {
            let t = SimTime::from_millis(t_ms);
            let name = names[(i % 4) as usize];
            series.add(t, black_box(name), black_box(i & 0xffff));
            if i % 4 == 0 {
                series.observe(t, "queue_depth", black_box(i & 0x3ff));
            }
            t_ms += 3; // ~333 events/epoch before the next cell appends
        }
        black_box(&series);
        best = best.min(start.elapsed().as_nanos() as f64 / events as f64);
    }
    best
}

/// Best-of-[`FLEET_TRIALS`] wall-clock seconds for one fleet run.
fn fleet_best_s(cfg: &FleetConfig, trials: usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut sessions = 0;
    for _ in 0..trials {
        let cfg = cfg.clone();
        let start = Instant::now();
        let report = mpdash_fleet::run(&cfg);
        best = best.min(start.elapsed().as_secs_f64());
        sessions = report.sessions.len();
    }
    (best, sessions)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let quick = quick_requested();
    let rollup_events: u64 = if quick { 400_000 } else { 4_000_000 };
    let fleet_trials = if quick { 3 } else { FLEET_TRIALS };

    let rollup_ns = rollup_ns_per_event(rollup_events);

    let base = mpdash_bench::experiments::sched::bench_fleet_config();
    let on_cfg = base.clone().with_telemetry(TelemetrySpec::seconds(1.0));
    // Off first, on second: if anything leaks across runs (allocator
    // warm-up, frequency scaling settling), it favours the off side and
    // the 3% gate stays honest.
    let (off_s, sessions) = fleet_best_s(&base, fleet_trials);
    let (on_s, _) = fleet_best_s(&on_cfg, fleet_trials);
    let overhead_pct = (on_s / off_s - 1.0) * 100.0;

    let mut res = ExperimentResult::new(
        "BENCH_obs",
        "Telemetry overhead — epoch rollup cost and fleet throughput on vs off",
    );
    res.text(format!(
        "\nrollup: {rollup_ns:.1} ns/event over {rollup_events} events (best-of-{ROLLUP_TRIALS})\n\
         fleet:  {sessions} sessions, telemetry off {off_s:.3}s, on {on_s:.3}s \
         ({overhead_pct:+.2}% wall-clock)",
    ));
    res.scalars(
        ScalarGroup::new(format!("epoch rollup (best-of-{ROLLUP_TRIALS})"))
            .with("ns_per_event", rollup_ns)
            .with("events", rollup_events as f64),
    );
    res.scalars(
        ScalarGroup::new(format!(
            "16-client contended fleet (best-of-{fleet_trials})"
        ))
        .with("telemetry_off_wall_s", off_s)
        .with("telemetry_on_wall_s", on_s)
        .with("overhead_pct", overhead_pct)
        .with("sessions_per_sec_off", sessions as f64 / off_s)
        .with("sessions_per_sec_on", sessions as f64 / on_s),
    );
    println!("{}", res.render());
    let path = write_artifact(&res).expect("artifact write");
    println!("[artifact] {}", path.display());

    if check {
        // The overhead gate: 3% plus a 5 ms jitter floor so scheduler
        // noise on a short quick-mode run cannot flake the CI job.
        assert!(
            on_s <= off_s * 1.03 + 0.005,
            "telemetry on {on_s:.3}s exceeds 3% over telemetry off {off_s:.3}s \
             ({overhead_pct:+.2}%)"
        );
        println!("[check] telemetry overhead within 3% of the off path");
    }
}
