//! `bench_origin` — the multi-origin serving perf artifact.
//!
//! Emits `results/BENCH_origin.json` with two figures tracked across
//! PRs:
//!
//! * nanoseconds per serving decision on both sides of the cache: the
//!   **cache-hit path** (one shared-cache lookup that finds the
//!   segment) vs the **origin-fetch path** (a missed lookup plus the
//!   pool's route scan and the breaker bookkeeping of the completion),
//!   best-of-N wall-clock over millions of calls;
//! * sessions/sec of a 16-client fleet streaming a shared manifest,
//!   with the edge cache on and off.
//!
//! `--check` gates the robustness layer's perf promise: the cache-hit
//! decision must not degenerate into something slower than the full
//! origin path it bypasses (pathology guard, not a microarchitecture
//! bet), and fronting the fleet with the shared cache must not cost
//! more than half its throughput.

use mpdash_http::{OriginPool, OriginPoolConfig, OriginSpec, SharedSegmentCache};
use mpdash_results::{write_artifact, ExperimentResult, ScalarGroup};
use mpdash_sim::{SimDuration, SimTime};
use std::hint::black_box;
use std::time::Instant;

const CALLS_PER_TRIAL: u64 = 2_000_000;
const TRIALS: usize = 7;

/// Best-of-[`TRIALS`] nanoseconds per call of `f` over
/// [`CALLS_PER_TRIAL`] calls — min, not mean, so a descheduled trial
/// can only lose.
fn best_ns_per_call(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..CALLS_PER_TRIAL {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / CALLS_PER_TRIAL as f64);
    }
    best
}

/// The steady-state three-replica pool every session in `exp_origin`
/// routes through.
fn pool() -> OriginPool {
    OriginPool::new(OriginPoolConfig::new(vec![
        OriginSpec::new("primary"),
        OriginSpec::new("backup-east").with_rtt_penalty(SimDuration::from_millis(20)),
        OriginSpec::new("backup-west").with_rtt_penalty(SimDuration::from_millis(40)),
    ]))
}

/// One resident segment, looked up hot: the decision a cache hit costs.
fn cache_hit_ns() -> f64 {
    let cache = SharedSegmentCache::new(64 * 1024 * 1024);
    cache.insert((7, 3), 1_970_000);
    best_ns_per_call(|| {
        black_box(cache.lookup(black_box((7, 3))));
    })
}

/// The uncached decision: a missed lookup, the pool's route scan, and
/// the breaker bookkeeping when the fetch completes.
fn origin_fetch_ns() -> f64 {
    let cache = SharedSegmentCache::new(64 * 1024 * 1024);
    let mut p = pool();
    let now = SimTime::from_secs(30);
    best_ns_per_call(|| {
        black_box(cache.lookup(black_box((9, 9))));
        let (pick, transitions) = p.route(now);
        black_box(&transitions);
        black_box(p.on_success(pick));
    })
}

fn fleet_wall(cached: bool) -> (usize, f64) {
    let mut cfg = mpdash_bench::experiments::origin::bench_fleet_config();
    if !cached {
        cfg.cache = None;
    }
    let start = Instant::now();
    let report = mpdash_fleet::run(&cfg);
    (report.sessions.len(), start.elapsed().as_secs_f64())
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");

    let hit_ns = cache_hit_ns();
    let origin_ns = origin_fetch_ns();

    let (clients, cached_wall) = fleet_wall(true);
    let cached_sps = clients as f64 / cached_wall;
    let (_, uncached_wall) = fleet_wall(false);
    let uncached_sps = clients as f64 / uncached_wall;

    let mut res = ExperimentResult::new(
        "BENCH_origin",
        "Multi-origin perf trajectory — serving-decision cost and cached-fleet throughput",
    );
    res.text(format!(
        "\ncache-hit path:    {hit_ns:.1} ns/decision\n\
         origin-fetch path: {origin_ns:.1} ns/decision (miss + route + breaker)\n\
         {clients}-client fleet:   cache on {cached_sps:.1} sessions/sec, \
         cache off {uncached_sps:.1} sessions/sec",
    ));
    res.scalars(
        ScalarGroup::new("serving decision ns (best-of-7)")
            .with("cache_hit_path", hit_ns)
            .with("origin_fetch_path", origin_ns)
            .with("hit_over_origin_ratio", hit_ns / origin_ns.max(1e-9)),
    );
    res.scalars(
        ScalarGroup::new("16-client shared-manifest fleet")
            .with("sessions_per_sec_cache_on", cached_sps)
            .with("sessions_per_sec_cache_off", uncached_sps)
            .with("cached_wall_s", cached_wall)
            .with("uncached_wall_s", uncached_wall),
    );
    println!("{}", res.render());
    let path = write_artifact(&res).expect("artifact write");
    println!("[artifact] {}", path.display());

    if check {
        // Pathology guards, not microarchitecture bets: the hit path is
        // one mutex + one hash probe, so it must never cost more than
        // the full miss-route-breaker sequence it replaces (plus a few
        // ns of timer floor), and the shared-cache lock must not eat
        // half the fleet's throughput.
        assert!(
            hit_ns <= origin_ns + 5.0,
            "cache-hit path {hit_ns:.1} ns is slower than the origin-fetch \
             path {origin_ns:.1} ns it is supposed to bypass"
        );
        assert!(
            cached_sps >= uncached_sps * 0.5,
            "edge cache costs over half the fleet throughput: \
             {cached_sps:.1} vs {uncached_sps:.1} sessions/sec"
        );
        println!("[check] cache-hit path cheap, cached fleet throughput within bounds");
    }
}
