//! `bench_sched` — the scheduler perf-trajectory artifact.
//!
//! Emits `results/BENCH_sched.json` with two figures tracked across PRs:
//!
//! * nanoseconds per scheduler pick, for the seed's free enum-match
//!   function and for every trait-dispatched scheduler (best-of-N
//!   wall-clock over millions of picks, so the number is the steady
//!   hot-path cost rather than a cold sample);
//! * sessions/sec of the 16-client contended fleet from `exp_sched`
//!   (the heaviest realistic workload the scheduler sits inside).
//!
//! `--check` additionally gates the refactor's acceptance criterion:
//! trait dispatch must cost no more than 2% over the seed enum (plus
//! half a nanosecond of timer-jitter floor). The gate compares MinRtt,
//! the one scheduler whose algorithm is identical on both sides — the
//! round-robin rows intentionally diverge (the keyed-rotation fix scans
//! for the successor path where the seed cursor took a modulo), so
//! their delta is the rotation fix's cost, recorded but not a dispatch
//! measurement.

use mpdash_link::PathId;
use mpdash_mptcp::scheduler::{seed_pick, Candidate, SchedInput, Scheduler};
use mpdash_mptcp::{SchedulerSpec, MSS};
use mpdash_results::{write_artifact, ExperimentResult, ScalarGroup};
use mpdash_sim::SimDuration;
use std::hint::black_box;
use std::time::Instant;

const PICKS_PER_TRIAL: u64 = 4_000_000;
const TRIALS: usize = 7;

/// A realistic two-path decision: both paths measured, WiFi behind a
/// half-full shared queue.
fn candidates() -> [Candidate; 2] {
    [
        Candidate {
            path: PathId::WIFI,
            srtt: Some(SimDuration::from_millis(25)),
            cwnd: 10 * MSS,
            in_flight: 2 * MSS,
            queue_depth: Some(48 * 1024),
        },
        Candidate {
            path: PathId::CELLULAR,
            srtt: Some(SimDuration::from_micros(27_500)),
            cwnd: 10 * MSS,
            in_flight: MSS,
            queue_depth: Some(4 * 1024),
        },
    ]
}

/// Best-of-[`TRIALS`] nanoseconds per call of `f` over
/// [`PICKS_PER_TRIAL`] calls — min, not mean, so a descheduled trial
/// can only lose.
fn best_ns_per_call(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..PICKS_PER_TRIAL {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / PICKS_PER_TRIAL as f64);
    }
    best
}

fn seed_ns(kind: SchedulerSpec) -> f64 {
    let cands = candidates();
    let mut cursor = 0usize;
    best_ns_per_call(|| {
        black_box(seed_pick(kind, &mut cursor, black_box(&cands)));
    })
}

fn trait_ns(spec: SchedulerSpec) -> f64 {
    let cands = candidates();
    let mut sched = spec.build();
    best_ns_per_call(|| {
        let input = SchedInput {
            candidates: black_box(&cands),
            backlog: MSS,
        };
        black_box(sched.pick(&input));
    })
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");

    let seed_min_rtt = seed_ns(SchedulerSpec::MinRtt);
    let seed_round_robin = seed_ns(SchedulerSpec::RoundRobin);
    let trait_min_rtt = trait_ns(SchedulerSpec::MinRtt);
    let trait_round_robin = trait_ns(SchedulerSpec::RoundRobin);
    let trait_qaware = trait_ns(SchedulerSpec::QAware);

    let fleet_cfg = mpdash_bench::experiments::sched::bench_fleet_config();
    let start = Instant::now();
    let fleet = mpdash_fleet::run(&fleet_cfg);
    let wall_s = start.elapsed().as_secs_f64();
    let sessions_per_sec = fleet.sessions.len() as f64 / wall_s;

    let mut res = ExperimentResult::new(
        "BENCH_sched",
        "Scheduler perf trajectory — pick cost and fleet throughput",
    );
    res.text(format!(
        "\nseed enum: minRTT {seed_min_rtt:.1} ns, roundRobin {seed_round_robin:.1} ns\n\
         trait:     minRTT {trait_min_rtt:.1} ns, roundRobin {trait_round_robin:.1} ns, \
         qaware {trait_qaware:.1} ns\n\
         fleet:     {} sessions in {wall_s:.2}s ({sessions_per_sec:.1} sessions/sec)",
        fleet.sessions.len(),
    ));
    res.scalars(
        ScalarGroup::new("scheduler pick ns (best-of-7)")
            .with("seed_enum_min_rtt", seed_min_rtt)
            .with("seed_enum_round_robin", seed_round_robin)
            .with("trait_min_rtt", trait_min_rtt)
            .with("trait_round_robin", trait_round_robin)
            .with("trait_qaware", trait_qaware)
            .with(
                "trait_overhead_pct_min_rtt",
                (trait_min_rtt / seed_min_rtt - 1.0) * 100.0,
            )
            .with(
                "trait_overhead_pct_round_robin",
                (trait_round_robin / seed_round_robin - 1.0) * 100.0,
            ),
    );
    res.scalars(
        ScalarGroup::new("16-client contended fleet")
            .with("sessions_per_sec", sessions_per_sec)
            .with("wall_s", wall_s),
    );
    println!("{}", res.render());
    let path = write_artifact(&res).expect("artifact write");
    println!("[artifact] {}", path.display());

    if check {
        // The dispatch gate: 2% plus half a nanosecond so sub-ns timer
        // jitter on a quiet pick can't flake the CI job. MinRtt is the
        // identical-algorithm pair; the keyed round-robin is a different
        // (deliberately fixed) algorithm, so it only gets a sanity bound
        // against pathological regressions.
        assert!(
            trait_min_rtt <= seed_min_rtt * 1.02 + 0.5,
            "min_rtt: trait dispatch {trait_min_rtt:.2} ns exceeds 2% over \
             seed enum {seed_min_rtt:.2} ns"
        );
        assert!(
            trait_round_robin <= seed_round_robin * 4.0 + 5.0,
            "round_robin: keyed rotation {trait_round_robin:.2} ns is wildly \
             above the seed cursor {seed_round_robin:.2} ns"
        );
        println!("[check] trait dispatch within 2% of the seed enum");
    }
}
