//! `bench_sched` — the scheduler perf-trajectory artifact.
//!
//! Emits `results/BENCH_sched.json` with two figures tracked across PRs:
//!
//! * nanoseconds per scheduler pick, for the seed's free enum-match
//!   function and for every trait-dispatched scheduler (best-of-N
//!   wall-clock over millions of picks, so the number is the steady
//!   hot-path cost rather than a cold sample);
//! * sessions/sec of the 16-client contended fleet from `exp_sched`
//!   (the heaviest realistic workload the scheduler sits inside);
//! * sessions/sec of the 16-client *churning* fleet from `exp_churn`
//!   (arrivals/departures, a regional outage, shedding), timed with the
//!   runtime invariant watchdog disarmed and armed;
//! * sessions/sec of the 16-client MP-DASH fleet from `exp_aqm` with a
//!   FIFO AP versus the identical fleet under a quiescent PIE (the
//!   drop probability never leaves zero, so the packet schedule is
//!   byte-identical and the delta is pure controller bookkeeping on
//!   the hot enqueue/dequeue path), plus the active FQ-PIE fleet as an
//!   ungated behavioral datapoint.
//!
//! `--check` additionally gates three acceptance criteria: trait
//! dispatch must cost no more than 2% over the seed enum (plus half a
//! nanosecond of timer-jitter floor), the armed watchdog must cost no
//! more than 3% of the churning fleet's wall time (plus a 2 ms jitter
//! floor), and the quiescent-PIE fleet must stay within 5% of the FIFO
//! fleet's wall time (plus a 20 ms floor). The dispatch gate compares MinRtt, the one scheduler whose
//! algorithm is identical on both sides — the round-robin rows
//! intentionally diverge (the keyed-rotation fix scans for the
//! successor path where the seed cursor took a modulo), so their delta
//! is the rotation fix's cost, recorded but not a dispatch measurement.

use mpdash_link::PathId;
use mpdash_mptcp::scheduler::{seed_pick, Candidate, SchedInput, Scheduler};
use mpdash_mptcp::{SchedulerSpec, MSS};
use mpdash_results::{write_artifact, ExperimentResult, ScalarGroup};
use mpdash_sim::SimDuration;
use std::hint::black_box;
use std::time::Instant;

const PICKS_PER_TRIAL: u64 = 4_000_000;
const TRIALS: usize = 7;
/// Fleet-run repetitions; min wall, so a descheduled trial only loses.
const FLEET_TRIALS: usize = 7;
/// The churning fleet finishes in ~20 ms — too short to time one run
/// against sub-1% deltas — so each timed trial is a batch of this many
/// back-to-back runs and the per-run wall is the batch mean.
const FLEET_RUNS_PER_TRIAL: usize = 8;

/// A realistic two-path decision: both paths measured, WiFi behind a
/// half-full shared queue.
fn candidates() -> [Candidate; 2] {
    [
        Candidate {
            path: PathId::WIFI,
            srtt: Some(SimDuration::from_millis(25)),
            cwnd: 10 * MSS,
            in_flight: 2 * MSS,
            queue_depth: Some(48 * 1024),
        },
        Candidate {
            path: PathId::CELLULAR,
            srtt: Some(SimDuration::from_micros(27_500)),
            cwnd: 10 * MSS,
            in_flight: MSS,
            queue_depth: Some(4 * 1024),
        },
    ]
}

/// Best-of-[`TRIALS`] nanoseconds per call of `f` over
/// [`PICKS_PER_TRIAL`] calls — min, not mean, so a descheduled trial
/// can only lose.
fn best_ns_per_call(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..PICKS_PER_TRIAL {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / PICKS_PER_TRIAL as f64);
    }
    best
}

fn seed_ns(kind: SchedulerSpec) -> f64 {
    let cands = candidates();
    let mut cursor = 0usize;
    best_ns_per_call(|| {
        black_box(seed_pick(kind, &mut cursor, black_box(&cands)));
    })
}

fn trait_ns(spec: SchedulerSpec) -> f64 {
    let cands = candidates();
    let mut sched = spec.build();
    best_ns_per_call(|| {
        let input = SchedInput {
            candidates: black_box(&cands),
            backlog: MSS,
        };
        black_box(sched.pick(&input));
    })
}

/// Best-of-`trials` wall seconds for a pair of fleet configs, with the
/// first config's session count (identical across trials — the run is
/// deterministic). Trials interleave a/b so cache warmup and thermal
/// drift hit both sides equally; a lone first-timed config would
/// otherwise absorb all the cold-start cost. Sub-100 ms fleets batch
/// `runs_per_trial` back-to-back runs per timed trial; second-scale
/// fleets pass 1.
fn best_fleet_wall_pair(
    a: &mpdash_fleet::FleetConfig,
    b: &mpdash_fleet::FleetConfig,
    trials: usize,
    runs_per_trial: usize,
) -> (usize, f64, f64) {
    let mut best = (f64::INFINITY, f64::INFINITY);
    let mut sessions = 0;
    for _ in 0..trials {
        let start = Instant::now();
        for _ in 0..runs_per_trial {
            sessions = mpdash_fleet::run(a).sessions.len();
        }
        best.0 = best
            .0
            .min(start.elapsed().as_secs_f64() / runs_per_trial as f64);
        let start = Instant::now();
        for _ in 0..runs_per_trial {
            mpdash_fleet::run(b);
        }
        best.1 = best
            .1
            .min(start.elapsed().as_secs_f64() / runs_per_trial as f64);
    }
    (sessions, best.0, best.1)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");

    let seed_min_rtt = seed_ns(SchedulerSpec::MinRtt);
    let seed_round_robin = seed_ns(SchedulerSpec::RoundRobin);
    let trait_min_rtt = trait_ns(SchedulerSpec::MinRtt);
    let trait_round_robin = trait_ns(SchedulerSpec::RoundRobin);
    let trait_qaware = trait_ns(SchedulerSpec::QAware);

    let fleet_cfg = mpdash_bench::experiments::sched::bench_fleet_config();
    let start = Instant::now();
    let fleet = mpdash_fleet::run(&fleet_cfg);
    let wall_s = start.elapsed().as_secs_f64();
    let sessions_per_sec = fleet.sessions.len() as f64 / wall_s;

    // The churning-fleet datapoint: 16 clients arriving and departing
    // through a regional outage with shedding on, timed with the
    // invariant watchdog disarmed and armed on the identical config.
    let (churn_sessions, churn_off_s, churn_on_s) = best_fleet_wall_pair(
        &mpdash_bench::experiments::churn::bench_fleet_config(false),
        &mpdash_bench::experiments::churn::bench_fleet_config(true),
        FLEET_TRIALS,
        FLEET_RUNS_PER_TRIAL,
    );
    let churn_sps_off = churn_sessions as f64 / churn_off_s;
    let churn_sps_on = churn_sessions as f64 / churn_on_s;
    let watchdog_overhead_pct = (churn_on_s / churn_off_s - 1.0) * 100.0;

    // The AQM-overhead datapoint: the identical 16-client MP-DASH fleet
    // with a FIFO AP and under a quiescent PIE (byte-identical packet
    // schedule — the delta is pure controller bookkeeping). Each run is
    // second-scale, so best-of-3 single runs is plenty for a 5% gate.
    let (aqm_pair_fifo, aqm_pair_quiescent) = mpdash_bench::experiments::aqm::bench_fleet_pair();
    let (aqm_sessions, aqm_fifo_s, aqm_pie_s) =
        best_fleet_wall_pair(&aqm_pair_fifo, &aqm_pair_quiescent, 3, 1);
    let aqm_sps_fifo = aqm_sessions as f64 / aqm_fifo_s;
    let aqm_sps_pie = aqm_sessions as f64 / aqm_pie_s;
    let aqm_overhead_pct = (aqm_pie_s / aqm_fifo_s - 1.0) * 100.0;

    // The active-AQM behavioral datapoint (ungated: marks change the
    // event schedule itself, so this is workload, not overhead).
    let aqm_active_cfg = mpdash_bench::experiments::aqm::bench_fleet_active();
    let start = Instant::now();
    let active_sessions = mpdash_fleet::run(&aqm_active_cfg).sessions.len();
    let aqm_active_s = start.elapsed().as_secs_f64();
    let aqm_sps_active = active_sessions as f64 / aqm_active_s;

    let mut res = ExperimentResult::new(
        "BENCH_sched",
        "Scheduler perf trajectory — pick cost and fleet throughput",
    );
    res.text(format!(
        "\nseed enum: minRTT {seed_min_rtt:.1} ns, roundRobin {seed_round_robin:.1} ns\n\
         trait:     minRTT {trait_min_rtt:.1} ns, roundRobin {trait_round_robin:.1} ns, \
         qaware {trait_qaware:.1} ns\n\
         fleet:     {} sessions in {wall_s:.2}s ({sessions_per_sec:.1} sessions/sec)\n\
         churn:     {churn_sessions} sessions in {churn_off_s:.3}s \
         ({churn_sps_off:.1}/sec watchdog off, {churn_sps_on:.1}/sec on, \
         +{watchdog_overhead_pct:.1}%)\n\
         aqm:       {aqm_sessions} sessions in {aqm_fifo_s:.3}s fifo \
         ({aqm_sps_fifo:.1}/sec fifo, {aqm_sps_pie:.1}/sec quiescent pie, \
         +{aqm_overhead_pct:.1}%; active fq_pie {aqm_sps_active:.1}/sec)",
        fleet.sessions.len(),
    ));
    res.scalars(
        ScalarGroup::new("scheduler pick ns (best-of-7)")
            .with("seed_enum_min_rtt", seed_min_rtt)
            .with("seed_enum_round_robin", seed_round_robin)
            .with("trait_min_rtt", trait_min_rtt)
            .with("trait_round_robin", trait_round_robin)
            .with("trait_qaware", trait_qaware)
            .with(
                "trait_overhead_pct_min_rtt",
                (trait_min_rtt / seed_min_rtt - 1.0) * 100.0,
            )
            .with(
                "trait_overhead_pct_round_robin",
                (trait_round_robin / seed_round_robin - 1.0) * 100.0,
            ),
    );
    res.scalars(
        ScalarGroup::new("16-client contended fleet")
            .with("sessions_per_sec", sessions_per_sec)
            .with("wall_s", wall_s),
    );
    res.scalars(
        ScalarGroup::new("16-client churning fleet (outage + shedding, best of 7 batches of 8)")
            .with("sessions_per_sec_watchdog_off", churn_sps_off)
            .with("sessions_per_sec_watchdog_on", churn_sps_on)
            .with("wall_s_watchdog_off", churn_off_s)
            .with("wall_s_watchdog_on", churn_on_s)
            .with("watchdog_overhead_pct", watchdog_overhead_pct),
    );
    res.scalars(
        ScalarGroup::new("16-client MP-DASH fleet, FIFO vs quiescent-PIE AP (best of 3)")
            .with("sessions_per_sec_fifo", aqm_sps_fifo)
            .with("sessions_per_sec_quiescent_pie", aqm_sps_pie)
            .with("sessions_per_sec_active_fq_pie", aqm_sps_active)
            .with("wall_s_fifo", aqm_fifo_s)
            .with("wall_s_quiescent_pie", aqm_pie_s)
            .with("aqm_controller_overhead_pct", aqm_overhead_pct),
    );
    println!("{}", res.render());
    let path = write_artifact(&res).expect("artifact write");
    println!("[artifact] {}", path.display());

    if check {
        // The dispatch gate: 2% plus half a nanosecond so sub-ns timer
        // jitter on a quiet pick can't flake the CI job. MinRtt is the
        // identical-algorithm pair; the keyed round-robin is a different
        // (deliberately fixed) algorithm, so it only gets a sanity bound
        // against pathological regressions.
        assert!(
            trait_min_rtt <= seed_min_rtt * 1.02 + 0.5,
            "min_rtt: trait dispatch {trait_min_rtt:.2} ns exceeds 2% over \
             seed enum {seed_min_rtt:.2} ns"
        );
        assert!(
            trait_round_robin <= seed_round_robin * 4.0 + 5.0,
            "round_robin: keyed rotation {trait_round_robin:.2} ns is wildly \
             above the seed cursor {seed_round_robin:.2} ns"
        );
        println!("[check] trait dispatch within 2% of the seed enum");

        // The watchdog gate: a few integer comparisons per loop
        // iteration must stay under 3% of the churning fleet's wall
        // time, plus 2 ms so scheduler jitter on a sub-100 ms run
        // can't flake the CI job.
        assert!(
            churn_on_s <= churn_off_s * 1.03 + 0.002,
            "watchdog overhead {watchdog_overhead_pct:.2}% exceeds the 3% budget \
             (off {churn_off_s:.4}s, on {churn_on_s:.4}s)"
        );
        println!("[check] watchdog overhead within 3% on the churning fleet");

        // The AQM gate: per-packet controller bookkeeping (a catch-up
        // check per admit, sojourn tracking per departure) must stay
        // within 5% of the FIFO fleet's wall time, plus a 20 ms floor
        // so scheduler jitter can't flake the CI job.
        assert!(
            aqm_pie_s <= aqm_fifo_s * 1.05 + 0.020,
            "quiescent-PIE fleet overhead {aqm_overhead_pct:.2}% exceeds the 5% budget \
             (fifo {aqm_fifo_s:.4}s, pie {aqm_pie_s:.4}s)"
        );
        println!("[check] AQM-enabled fleet within 5% of FIFO sessions/sec");
    }
}
