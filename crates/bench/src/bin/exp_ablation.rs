//! Ablations of MP-DASH's design choices (including the paper's deferred
//! Φ/Ω parameter study). See `mpdash_bench::experiments::ablation`.
fn main() {
    mpdash_bench::experiments::ablation::run();
}
