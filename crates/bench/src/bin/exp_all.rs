//! Runs every experiment in sequence — the full evaluation of the paper,
//! regenerated. Pipe to a file to archive a complete results snapshot.
use mpdash_bench::experiments as e;

fn main() {
    e::motivation::run();
    e::fig1::run();
    e::fig3::run();
    e::fig4::run();
    e::fig5::run();
    e::tab2::run();
    e::tab4::run();
    e::fig7::run();
    e::fig8::run();
    e::fig11::run();
    e::tab6::run();
    e::mpc::run();
    e::ablation::run();
    e::faults::run();
    e::lifecycle::run();
    e::field::run();
    e::fleet::run();
    e::sched::run();
    e::aqm::run();
    e::origin::run();
    e::churn::run();
}
