//! Runs the AQM grid (FIFO / PIE / FQ-PIE / CoDel on the shared WiFi
//! AP, with controller sweeps). See `mpdash_bench::experiments::aqm`.
fn main() {
    mpdash_bench::experiments::aqm::run();
}
