//! Runs the fleet churn / fault-domain / overload-shedding grid with
//! the runtime invariant watchdog armed. See
//! `mpdash_bench::experiments::churn`.
fn main() {
    mpdash_bench::experiments::churn::run();
}
