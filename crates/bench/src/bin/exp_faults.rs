//! Runs the fault-injection resilience matrix. See
//! `mpdash_bench::experiments::faults`.
fn main() {
    mpdash_bench::experiments::faults::run();
}
