//! Regenerates the paper's field experiment. See `mpdash_bench::experiments`.
fn main() {
    mpdash_bench::experiments::field::run();
}
