//! Regenerates the paper's fig1 experiment. See `mpdash_bench::experiments`.
fn main() {
    mpdash_bench::experiments::fig1::run();
}
