//! Regenerates the paper's fig11 experiment. See `mpdash_bench::experiments`.
fn main() {
    mpdash_bench::experiments::fig11::run();
}
