//! Regenerates the paper's fig3 experiment. See `mpdash_bench::experiments`.
fn main() {
    mpdash_bench::experiments::fig3::run();
}
