//! Regenerates the paper's fig4 experiment. See `mpdash_bench::experiments`.
fn main() {
    mpdash_bench::experiments::fig4::run();
}
