//! Regenerates the paper's fig5 experiment. See `mpdash_bench::experiments`.
fn main() {
    mpdash_bench::experiments::fig5::run();
}
