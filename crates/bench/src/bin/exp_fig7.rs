//! Regenerates the paper's fig7 experiment. See `mpdash_bench::experiments`.
fn main() {
    mpdash_bench::experiments::fig7::run();
}
