//! Regenerates the paper's fig8 experiment. See `mpdash_bench::experiments`.
fn main() {
    mpdash_bench::experiments::fig8::run();
}
