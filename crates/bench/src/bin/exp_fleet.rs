//! Runs the multi-client shared-bottleneck contention grid. See
//! `mpdash_bench::experiments::fleet`.
fn main() {
    mpdash_bench::experiments::fleet::run();
}
