//! Runs the request-lifecycle resilience matrix (server-side faults
//! crossed with timeout/abandon/resume policies). See
//! `mpdash_bench::experiments::lifecycle`.
fn main() {
    mpdash_bench::experiments::lifecycle::run();
}
