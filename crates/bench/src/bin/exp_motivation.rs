//! §2.2's motivating measurement study over the corpus.
fn main() {
    mpdash_bench::experiments::motivation::run();
}
