//! MPC (hybrid) rate adaptation under MP-DASH — the paper's §5.2.3
//! future-work item, evaluated. See `mpdash_bench::experiments::mpc`.
fn main() {
    mpdash_bench::experiments::mpc::run();
}
