//! Runs the multi-origin serving grid (blackholed primary vs circuit
//! breakers, hedged failover, and the shared edge cache). See
//! `mpdash_bench::experiments::origin`.
fn main() {
    mpdash_bench::experiments::origin::run();
}
