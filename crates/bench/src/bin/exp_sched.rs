//! Runs the packet-scheduler grid (minRTT / round-robin / QAware, solo
//! and contended fleet). See `mpdash_bench::experiments::sched`.
fn main() {
    mpdash_bench::experiments::sched::run();
}
