//! Regenerates the paper's tab2 experiment. See `mpdash_bench::experiments`.
fn main() {
    mpdash_bench::experiments::tab2::run();
}
