//! Regenerates the paper's tab4 experiment. See `mpdash_bench::experiments`.
fn main() {
    mpdash_bench::experiments::tab4::run();
}
