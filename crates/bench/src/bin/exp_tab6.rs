//! Regenerates the paper's tab6 experiment. See `mpdash_bench::experiments`.
fn main() {
    mpdash_bench::experiments::tab6::run();
}
