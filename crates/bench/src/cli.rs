//! The one switch every experiment binary shares.
//!
//! `--quick` (or `-q`) on the command line, or `MPDASH_QUICK=1` in the
//! environment, asks for the reduced-size run: experiments that iterate a
//! corpus shrink it, everything else ignores the flag. The environment
//! form exists so `exp_all` and CI wrappers can set it once for a whole
//! pipeline of binaries.

/// Whether the user asked for the reduced quick-mode run.
pub fn quick_requested() -> bool {
    if std::env::args()
        .skip(1)
        .any(|a| a == "--quick" || a == "-q")
    {
        return true;
    }
    quick_env()
}

/// Just the environment half (`MPDASH_QUICK`), for callers without a
/// command line of their own.
pub fn quick_env() -> bool {
    match std::env::var("MPDASH_QUICK") {
        Ok(v) => {
            let v = v.trim();
            !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_env_is_not_quick() {
        // Test processes have no `--quick` argument and the harness never
        // sets MPDASH_QUICK, so both layers answer "full run".
        assert!(!quick_env());
        assert!(!quick_requested());
    }
}
