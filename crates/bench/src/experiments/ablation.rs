//! Ablations of the design choices DESIGN.md calls out, including the
//! Φ/Ω parameter study the paper explicitly defers to future work
//! (§5.2.2: "We plan to evaluate how different values of these
//! parameters impact other QoE metrics").
//!
//! All runs: Big Buck Bunny, FESTIVE, W3.8/L3.0, rate-based deadlines —
//! the paper's primary controlled setting. Reported per variant: cellular
//! bytes, radio energy, bitrate, stalls, scheduler toggles and missed
//! deadlines. The whole sweep (30 sessions) is one flat batch.

use crate::{mb, Table};
use mpdash_core::predict::PredictorKind;
use mpdash_dash::abr::AbrKind;
use mpdash_dash::adapter::{AdapterConfig, DeadlineMode};
use mpdash_energy::DeviceProfile;
use mpdash_mptcp::CcKind;
use mpdash_results::ExperimentResult;
use mpdash_session::{run_batch, Job, SessionConfig, SessionReport, TransportMode};
use mpdash_sim::SimDuration;
use mpdash_trace::table1;

fn base_cfg() -> SessionConfig {
    SessionConfig::controlled(
        table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
        AbrKind::Festive,
        TransportMode::mpdash_rate_based(),
    )
}

fn row(t: &mut Table, name: &str, r: &SessionReport) {
    let stats = r.scheduler_stats;
    let (toggles, missed) = (stats.toggles, stats.missed_deadlines);
    t.row(&[
        name.into(),
        mb(r.cell_bytes),
        format!("{:.1}", r.energy.total_j()),
        format!("{:.2}", r.qoe.mean_bitrate_mbps),
        format!("{}", r.qoe.stalls),
        format!("{toggles}"),
        format!("{missed}"),
    ]);
}

const HDR: [&str; 7] = [
    "variant",
    "cell bytes",
    "energy (J)",
    "bitrate",
    "stalls",
    "toggles",
    "missed",
];

fn with_adapter(f: impl FnOnce(&mut AdapterConfig)) -> SessionConfig {
    let mut ac = AdapterConfig::new(DeadlineMode::Rate);
    f(&mut ac);
    base_cfg().with_adapter_config(ac)
}

/// Compute all ablations as one batch.
pub fn result(quick: bool) -> ExperimentResult {
    let mut res =
        ExperimentResult::new("ablation", "Ablations — MP-DASH design choices").with_quick(quick);

    // (section title, [(variant label, config)]) in report order; the
    // batch flattens in the same order.
    let cc_variants = [("Reno (paper)", CcKind::Reno), ("CUBIC", CcKind::Cubic)];
    let predictors = [
        ("Holt-Winters (paper)", PredictorKind::control_default()),
        (
            "HW aggressive (0.8/0.3)",
            PredictorKind::HoltWinters {
                alpha: 0.8,
                beta: 0.3,
            },
        ),
        ("EWMA 0.5", PredictorKind::Ewma { alpha: 0.5 }),
        ("EWMA 0.2", PredictorKind::Ewma { alpha: 0.2 }),
    ];
    let debounces = [1u32, 2, 4, 8];
    let slots_ms = [50u64, 100, 250, 500];
    let phis = [0.6f64, 0.7, 0.8, 0.9, 0.99];
    let omegas = [0.2f64, 0.4, 0.6, 0.8];
    let devices = [DeviceProfile::galaxy_note(), DeviceProfile::galaxy_s3()];
    let t_factors = [1.0f64, 2.0, 3.0];

    let mut sections: Vec<(&str, Vec<(String, SessionConfig)>)> = Vec::new();
    sections.push((
        "Ablation — congestion control (decoupled Reno vs CUBIC)",
        cc_variants
            .iter()
            .map(|&(name, cc)| (name.to_string(), base_cfg().with_cc(cc)))
            .collect(),
    ));
    sections.push((
        "Ablation — throughput predictor (the §6 choice)",
        predictors
            .iter()
            .map(|&(name, p)| (name.to_string(), base_cfg().with_predictor(p)))
            .collect(),
    ));
    sections.push((
        "Ablation — enable-side debounce (progress checks)",
        debounces
            .iter()
            .map(|&d| {
                (
                    format!("debounce {d} (paper: 1)"),
                    base_cfg().with_debounce(d),
                )
            })
            .collect(),
    ));
    sections.push((
        "Ablation — sampling-slot width",
        slots_ms
            .iter()
            .map(|&ms| {
                (
                    format!("{ms} ms"),
                    base_cfg().with_sample_slot(SimDuration::from_millis(ms)),
                )
            })
            .collect(),
    ));
    sections.push((
        "Ablation — Φ (deadline-extension threshold), paper default 0.8",
        phis.iter()
            .map(|&phi| {
                (
                    format!("phi = {phi:.2} x capacity"),
                    with_adapter(|ac| ac.phi_fraction = phi),
                )
            })
            .collect(),
    ));
    sections.push((
        "Ablation — Ω floor (low-buffer bypass), paper default 0.4",
        omegas
            .iter()
            .map(|&omega| {
                (
                    format!("omega >= {omega:.2} x capacity"),
                    with_adapter(|ac| ac.omega_floor = omega),
                )
            })
            .collect(),
    ));
    sections.push((
        "Ablation — Ω window T multiple, paper default 2 (1x/3x 'do not qualitatively change')",
        t_factors
            .iter()
            .map(|&tf| {
                (
                    format!("T = {tf:.0} x capacity"),
                    with_adapter(|ac| ac.t_factor = tf),
                )
            })
            .collect(),
    ));

    let mut jobs: Vec<Job> = Vec::new();
    for (section, variants) in &sections {
        for (name, cfg) in variants {
            jobs.push(Job::session(format!("{section}/{name}"), cfg.clone()));
        }
    }
    // The device cross-check needs a baseline run per device, appended
    // after the per-variant sections: (baseline, mp-dash) per device.
    for device in devices {
        jobs.push(Job::session(
            format!("device {}/baseline", device.name),
            SessionConfig::controlled(
                table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
                AbrKind::Festive,
                TransportMode::Vanilla,
            )
            .with_device(device),
        ));
        jobs.push(Job::session(
            format!("device {}/mpdash", device.name),
            base_cfg().with_device(device),
        ));
    }

    let results = run_batch(jobs);
    let mut next = results.iter();

    for (section, variants) in &sections {
        let mut t = Table::new(&HDR).with_title(format!("{section}:"));
        for (name, _) in variants {
            row(
                &mut t,
                name,
                next.next().unwrap().session().expect("session job"),
            );
        }
        res.table(t);
    }

    let mut t = Table::new(&["device", "baseline E (J)", "MP-DASH E (J)", "energy saving"])
        .with_title(
            "Cross-check — device energy profiles (paper: 'both yielding similar results'):",
        );
    for device in devices {
        let base = next.next().unwrap().session().expect("session job");
        let mp = next.next().unwrap().session().expect("session job");
        t.row(&[
            device.name.into(),
            format!("{:.1}", base.energy.total_j()),
            format!("{:.1}", mp.energy.total_j()),
            crate::pct(mp.energy_saving_vs(base)),
        ]);
    }
    res.table(t);
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("ablation", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
