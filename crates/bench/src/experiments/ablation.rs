//! Ablations of the design choices DESIGN.md calls out, including the
//! Φ/Ω parameter study the paper explicitly defers to future work
//! (§5.2.2: "We plan to evaluate how different values of these
//! parameters impact other QoE metrics").
//!
//! All runs: Big Buck Bunny, FESTIVE, W3.8/L3.0, rate-based deadlines —
//! the paper's primary controlled setting. Reported per variant: cellular
//! bytes, radio energy, bitrate, stalls, scheduler toggles and missed
//! deadlines.

use crate::experiments::banner;
use crate::{mb, Table};
use mpdash_core::predict::PredictorKind;
use mpdash_dash::abr::AbrKind;
use mpdash_dash::adapter::{AdapterConfig, DeadlineMode};
use mpdash_energy::DeviceProfile;
use mpdash_mptcp::CcKind;
use mpdash_session::{SessionConfig, SessionReport, StreamingSession, TransportMode};
use mpdash_sim::SimDuration;
use mpdash_trace::table1;

fn base_cfg() -> SessionConfig {
    SessionConfig::controlled(
        table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
        AbrKind::Festive,
        TransportMode::mpdash_rate_based(),
    )
}

fn row(t: &mut Table, name: &str, r: &SessionReport) {
    let (toggles, missed, _) = r.scheduler_stats;
    t.row(&[
        name.into(),
        mb(r.cell_bytes),
        format!("{:.1}", r.energy.total_j()),
        format!("{:.2}", r.qoe.mean_bitrate_mbps),
        format!("{}", r.qoe.stalls),
        format!("{toggles}"),
        format!("{missed}"),
    ]);
}

const HDR: [&str; 7] = [
    "variant", "cell bytes", "energy (J)", "bitrate", "stalls", "toggles", "missed",
];

/// Run all ablations.
pub fn run() {
    banner("Ablation — congestion control (decoupled Reno vs CUBIC)");
    let mut t = Table::new(&HDR);
    for (name, cc) in [("Reno (paper)", CcKind::Reno), ("CUBIC", CcKind::Cubic)] {
        let r = StreamingSession::run(base_cfg().with_cc(cc));
        row(&mut t, name, &r);
    }
    println!("{}", t.render());

    banner("Ablation — throughput predictor (the §6 choice)");
    let mut t = Table::new(&HDR);
    for (name, p) in [
        ("Holt-Winters (paper)", PredictorKind::control_default()),
        ("HW aggressive (0.8/0.3)", PredictorKind::HoltWinters { alpha: 0.8, beta: 0.3 }),
        ("EWMA 0.5", PredictorKind::Ewma { alpha: 0.5 }),
        ("EWMA 0.2", PredictorKind::Ewma { alpha: 0.2 }),
    ] {
        let r = StreamingSession::run(base_cfg().with_predictor(p));
        row(&mut t, name, &r);
    }
    println!("{}", t.render());

    banner("Ablation — enable-side debounce (progress checks)");
    let mut t = Table::new(&HDR);
    for d in [1u32, 2, 4, 8] {
        let r = StreamingSession::run(base_cfg().with_debounce(d));
        row(&mut t, &format!("debounce {d} (paper: 1)"), &r);
    }
    println!("{}", t.render());

    banner("Ablation — sampling-slot width");
    let mut t = Table::new(&HDR);
    for ms in [50u64, 100, 250, 500] {
        let r = StreamingSession::run(
            base_cfg().with_sample_slot(SimDuration::from_millis(ms)),
        );
        row(&mut t, &format!("{ms} ms"), &r);
    }
    println!("{}", t.render());

    banner("Ablation — Φ (deadline-extension threshold), paper default 0.8");
    let mut t = Table::new(&HDR);
    for phi in [0.6f64, 0.7, 0.8, 0.9, 0.99] {
        let mut ac = AdapterConfig::new(DeadlineMode::Rate);
        ac.phi_fraction = phi;
        let r = StreamingSession::run(base_cfg().with_adapter_config(ac));
        row(&mut t, &format!("phi = {phi:.2} x capacity"), &r);
    }
    println!("{}", t.render());

    banner("Ablation — Ω floor (low-buffer bypass), paper default 0.4");
    let mut t = Table::new(&HDR);
    for omega in [0.2f64, 0.4, 0.6, 0.8] {
        let mut ac = AdapterConfig::new(DeadlineMode::Rate);
        ac.omega_floor = omega;
        let r = StreamingSession::run(base_cfg().with_adapter_config(ac));
        row(&mut t, &format!("omega >= {omega:.2} x capacity"), &r);
    }
    println!("{}", t.render());

    banner("Cross-check — device energy profiles (paper: 'both yielding similar results')");
    let mut t = Table::new(&["device", "baseline E (J)", "MP-DASH E (J)", "energy saving"]);
    for device in [DeviceProfile::galaxy_note(), DeviceProfile::galaxy_s3()] {
        let base = StreamingSession::run(
            SessionConfig::controlled(
                table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
                AbrKind::Festive,
                TransportMode::Vanilla,
            )
            .with_device(device),
        );
        let mp = StreamingSession::run(base_cfg().with_device(device));
        t.row(&[
            device.name.into(),
            format!("{:.1}", base.energy.total_j()),
            format!("{:.1}", mp.energy.total_j()),
            crate::pct(mp.energy_saving_vs(&base)),
        ]);
    }
    println!("{}", t.render());

    banner("Ablation — Ω window T multiple, paper default 2 (1x/3x 'do not qualitatively change')");
    let mut t = Table::new(&HDR);
    for tf in [1.0f64, 2.0, 3.0] {
        let mut ac = AdapterConfig::new(DeadlineMode::Rate);
        ac.t_factor = tf;
        let r = StreamingSession::run(base_cfg().with_adapter_config(ac));
        row(&mut t, &format!("T = {tf:.0} x capacity"), &r);
    }
    println!("{}", t.render());
}
