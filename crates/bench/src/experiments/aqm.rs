//! `exp_aqm` — AQM on the shared WiFi AP: FIFO vs PIE vs FQ-PIE (with a
//! CoDel reference column), reproducing the streaming comparison of
//! Naik et al. ("Performance evaluation of FQ-PIE for DASH traffic").
//!
//! Topology: N clients behind one WiFi AP with a *deep* buffer (at
//! capacity the FIFO queue holds the better part of a second) plus a
//! cellular sector with headroom. The grid crosses {vanilla MPTCP,
//! MP-DASH rate-based} with the queue disciplines; the AQM cells run
//! ECN-style marking so the senders back off a whole window ahead of
//! any loss.
//!
//! The fold asserts the reproduction's orderings, each in the mode
//! where the metric is the binding constraint:
//!
//! * **p95 queue delay** (both modes) — `FQ-PIE ≤ PIE ≤ FIFO` from the
//!   AP's `queue_wait_ms` histogram, strictly better somewhere;
//! * **stall time** (vanilla) — `FQ-PIE ≤ PIE ≤ FIFO` on total stalled
//!   wall-clock. Vanilla clients have no deadline machinery, so the
//!   AP's queueing delay feeds straight into rebuffering;
//! * **fairness** (vanilla) — `Jain(FQ-PIE) ≥ Jain(FIFO)` on per-client
//!   bitrate: with no deadline scheduler redistributing load, DRR
//!   isolation is the only fairness influence and can only help;
//! * **deadline misses** (MP-DASH) — `FQ-PIE ≤ PIE ≤ FIFO`. MP-DASH
//!   absorbs queue delay by detouring to cellular, so its stall time is
//!   scheduler-, not queue-dominated — what the AQM buys the deadline
//!   scheduler is feasibility, and the miss rate is where it shows.
//!
//! Full mode adds the controller sweeps: PIE target delay, FQ-PIE
//! quantum, and AP buffer capacity (the latter in drop mode, so both
//! the marking and the dropping signal paths land in the artifact).

use crate::Table;
use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_fleet::{FleetConfig, SharedLinkSpec};
use mpdash_link::{AqmConfig, QueueDiscipline, SharedBottleneckConfig};
use mpdash_results::{ExperimentResult, Json, ScalarGroup};
use mpdash_session::{
    run_batch, run_batch_with, BatchResult, Job, JobReport, SessionConfig, TransportMode,
};
use mpdash_sim::SimDuration;

/// Headline fleet size: enough contention that the deep FIFO buffer
/// actually fills and bufferbloats.
const CLIENTS: usize = 8;

/// Deep AP buffer per client — with FIFO, a full queue at the AP rate
/// takes ~840 ms to drain, which is the bufferbloat the AQMs cut.
const DEEP_CAPACITY: u64 = 256 * 1024;

/// AP rate per client. 2.5 Mbps against a 0.58–3.94 Mbps ladder keeps
/// the AP contended without starving it: latency, not raw throughput,
/// is the binding constraint, which is the regime AQM addresses.
const AP_MBPS_PER_CLIENT: f64 = 2.5;

fn modes() -> [TransportMode; 2] {
    [TransportMode::Vanilla, TransportMode::mpdash_rate_based()]
}

fn mode_name(mode: &TransportMode) -> &'static str {
    match mode {
        TransportMode::Vanilla => "vanilla",
        _ => "mpdash",
    }
}

/// Same 20-chunk ladder as the scheduler grid: long enough that steady
/// state, not the ABR ramp, dominates stall accounting.
fn aqm_video() -> Video {
    Video::new(
        "BBB-aqm",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        20,
    )
}

/// PIE with ECN marking on — the streaming-friendly configuration: the
/// controller signals a window early instead of costing a retransmit.
fn pie_marking() -> AqmConfig {
    AqmConfig::pie().with_ecn(true)
}

/// The headline disciplines, FIFO first: the fold computes every
/// ordering against it. CoDel rides along as an ungated reference
/// column (the reproduction itself is FIFO vs PIE vs FQ-PIE).
fn disciplines() -> [(&'static str, QueueDiscipline); 4] {
    [
        ("fifo", QueueDiscipline::Fifo),
        ("pie", QueueDiscipline::Pie(pie_marking())),
        (
            "fq_pie",
            QueueDiscipline::FqPie {
                quantum: 1540,
                aqm: pie_marking(),
            },
        ),
        (
            "codel",
            QueueDiscipline::Codel(AqmConfig::codel().with_ecn(true)),
        ),
    ]
}

/// One fleet cell: the AP gives each client ~2.5 Mbps behind the deep
/// buffer under the chosen discipline, while the sector keeps ~2 Mbps
/// per client of headroom. minRTT scheduling everywhere — the queue
/// discipline is the only variable in the grid.
fn fleet_cfg(
    clients: usize,
    mode: TransportMode,
    discipline: QueueDiscipline,
    capacity_per_client: u64,
) -> FleetConfig {
    let base =
        SessionConfig::controlled_mbps(50.0, 30.0, AbrKind::Festive, mode).with_video(aqm_video());
    FleetConfig::new(base, clients)
        .with_stagger(SimDuration::from_secs(1))
        .with_rtt_skew(SimDuration::from_millis(10))
        .with_seed(11)
        .with_shared(SharedLinkSpec::wifi_ap(
            SharedBottleneckConfig::fifo_mbps(AP_MBPS_PER_CLIENT * clients as f64)
                .with_capacity(capacity_per_client * clients as u64)
                .with_discipline(discipline),
        ))
        .with_shared(SharedLinkSpec::cell_sector(
            SharedBottleneckConfig::fifo_mbps(2.0 * clients as f64),
        ))
}

/// The `bench_sched` overhead pair: the 16-client MP-DASH fleet with a
/// plain FIFO AP versus the same fleet under a *quiescent* PIE (10 s
/// target: the drop probability never leaves zero, `admit` delivers
/// without touching the RNG, and the packet schedule stays
/// byte-identical to FIFO). The wall-clock delta is therefore pure
/// per-packet controller bookkeeping — the cost the 5% gate bounds. An
/// *active* AQM changes the workload itself (marks → backoffs → a
/// different event schedule), which is behavior, not overhead; see
/// [`bench_fleet_active`] for that datapoint.
pub fn bench_fleet_pair() -> (FleetConfig, FleetConfig) {
    let fifo = fleet_cfg(
        16,
        TransportMode::mpdash_rate_based(),
        QueueDiscipline::Fifo,
        DEEP_CAPACITY,
    );
    let quiescent = fleet_cfg(
        16,
        TransportMode::mpdash_rate_based(),
        QueueDiscipline::Pie(pie_marking().with_target_ms(10_000.0)),
        DEEP_CAPACITY,
    );
    (fifo, quiescent)
}

/// The same 16-client fleet under an *active* FQ-PIE — recorded in the
/// trajectory artifact as an informational datapoint (its wall time
/// folds in the behavioral shift the controller causes, so it is not
/// comparable to FIFO as an overhead number and carries no gate).
pub fn bench_fleet_active() -> FleetConfig {
    fleet_cfg(
        16,
        TransportMode::mpdash_rate_based(),
        QueueDiscipline::FqPie {
            quantum: 1540,
            aqm: pie_marking(),
        },
        DEEP_CAPACITY,
    )
}

/// A fleet job whose value carries the summary JSON plus
/// `total_stall_ms` (the fleet summary only counts stalls; the
/// reproduction orders their *duration*). Enrichment happens inside the
/// job so the batch shards it like any other cell.
fn aqm_fleet_job(label: String, cfg: FleetConfig) -> Job {
    Job::custom(label, move || {
        let report = mpdash_fleet::run(&cfg);
        let stall_ms: f64 = report
            .sessions
            .iter()
            .map(|s| s.qoe_all.stall_time.as_millis_f64())
            .sum();
        let Json::Obj(mut members) = report.summary_json() else {
            unreachable!("fleet summary is an object")
        };
        members.push(("total_stall_ms".into(), Json::Float(stall_ms)));
        JobReport::Value(Box::new(Json::Obj(members)))
    })
}

fn jobs(quick: bool) -> Vec<Job> {
    let mut jobs = Vec::new();
    for mode in modes() {
        for (name, d) in disciplines() {
            jobs.push(aqm_fleet_job(
                format!("grid/{}/{name}", mode_name(&mode)),
                fleet_cfg(CLIENTS, mode, d, DEEP_CAPACITY),
            ));
        }
    }
    if !quick {
        let mode = TransportMode::mpdash_rate_based();
        for target_ms in TARGET_SWEEP_MS {
            jobs.push(aqm_fleet_job(
                format!("target/{target_ms}ms"),
                fleet_cfg(
                    CLIENTS,
                    mode,
                    QueueDiscipline::Pie(pie_marking().with_target_ms(target_ms as f64)),
                    DEEP_CAPACITY,
                ),
            ));
        }
        for quantum in QUANTUM_SWEEP {
            jobs.push(aqm_fleet_job(
                format!("quantum/{quantum}"),
                fleet_cfg(
                    CLIENTS,
                    mode,
                    QueueDiscipline::FqPie {
                        quantum,
                        aqm: pie_marking(),
                    },
                    DEEP_CAPACITY,
                ),
            ));
        }
        for capacity_kib in CAPACITY_SWEEP_KIB {
            for (name, d) in [
                ("fifo", QueueDiscipline::Fifo),
                // Drop mode: the dequeue path where PIE *drops* instead
                // of marking also has to carry a fleet.
                (
                    "fq_pie",
                    QueueDiscipline::FqPie {
                        quantum: 1540,
                        aqm: AqmConfig::pie(),
                    },
                ),
            ] {
                jobs.push(aqm_fleet_job(
                    format!("capacity/{capacity_kib}KiB/{name}"),
                    fleet_cfg(CLIENTS, mode, d, capacity_kib * 1024),
                ));
            }
        }
    }
    jobs
}

const TARGET_SWEEP_MS: [u64; 3] = [5, 15, 50];
const QUANTUM_SWEEP: [u64; 3] = [750, 1540, 3000];
const CAPACITY_SWEEP_KIB: [u64; 2] = [32, 256];

fn num(j: &Json, key: &str) -> f64 {
    j.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("fleet summary missing '{key}'"))
}

/// p95 of the WiFi AP's per-departure sojourn, read from the log₂
/// `queue_wait_ms` histogram: the lower bound of the first bucket whose
/// cumulative count reaches 95% of departures. Power-of-two resolution
/// is plenty — the orderings the fold asserts span multiples.
fn p95_queue_wait_ms(j: &Json) -> f64 {
    let h = j
        .get("bottlenecks")
        .and_then(|b| b.as_arr())
        .and_then(|rows| rows.first())
        .and_then(|row| row.get("metrics"))
        .and_then(|m| m.get("histograms"))
        .and_then(|hs| hs.get("queue_wait_ms"))
        .unwrap_or_else(|| panic!("fleet summary missing the wifi queue_wait_ms histogram"));
    let count = h.get("count").and_then(Json::as_u64).unwrap_or(0);
    if count == 0 {
        return 0.0;
    }
    let need = (0.95 * count as f64).ceil() as u64;
    let mut cum = 0u64;
    for bucket in h.get("buckets").and_then(Json::as_arr).unwrap_or(&[]) {
        let pair = bucket.as_arr().unwrap_or(&[]);
        cum += pair.get(1).and_then(Json::as_u64).unwrap_or(0);
        if cum >= need {
            return pair.first().and_then(Json::as_u64).unwrap_or(0) as f64;
        }
    }
    0.0
}

/// The per-cell numbers every table and gate works from.
struct Cell {
    stall_ms: f64,
    p95_ms: f64,
    jain: f64,
    miss: f64,
    marked: f64,
    aqm_dropped: f64,
}

fn cell(j: &Json) -> Cell {
    Cell {
        stall_ms: num(j, "total_stall_ms"),
        p95_ms: p95_queue_wait_ms(j),
        jain: num(j, "jain_bitrate"),
        miss: num(j, "deadline_miss_rate"),
        marked: j
            .get("bottlenecks")
            .and_then(|b| b.as_arr())
            .and_then(|rows| rows.first())
            .and_then(|row| row.get("marked_packets"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        aqm_dropped: j
            .get("bottlenecks")
            .and_then(|b| b.as_arr())
            .and_then(|rows| rows.first())
            .and_then(|row| row.get("dropped_aqm_packets"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
    }
}

fn row_of(t: &mut Table, head: [String; 2], c: &Cell) {
    let [a, b] = head;
    t.row(&[
        a,
        b,
        format!("{:.0}", c.stall_ms),
        format!("{:.0}", c.p95_ms),
        format!("{:.4}", c.jain),
        format!("{:.3}", c.miss),
        format!("{:.0}", c.marked),
        format!("{:.0}", c.aqm_dropped),
    ]);
}

fn fold(quick: bool, batch: Vec<BatchResult>) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "aqm",
        "AQM on the shared AP — FIFO vs PIE vs FQ-PIE under streaming fleets",
    )
    .with_quick(quick);
    res.text(concat!(
        "\nEight clients behind one deep-buffered WiFi AP, queue discipline\n",
        "the only variable. Invariants: FQ-PIE <= PIE <= FIFO on p95 queue\n",
        "delay in both modes (strictly better somewhere); on total stall\n",
        "time, plus Jain(FQ-PIE) >= Jain(FIFO), under vanilla MPTCP; and\n",
        "on the deadline-miss rate under MP-DASH, where the scheduler\n",
        "absorbs queue delay by detouring to cellular.",
    ));
    let mut next = batch.iter();

    let header = [
        "mode",
        "discipline",
        "stall ms",
        "p95 queue ms",
        "jain(bitrate)",
        "miss rate",
        "marked",
        "aqm drops",
    ];
    let mut t = Table::new(&header);
    let mut best_p95_cut: f64 = 0.0;
    let mut best_stall_cut: f64 = 0.0;
    for mode in modes() {
        let vanilla = matches!(mode, TransportMode::Vanilla);
        // Per-mode binding metric: stall time where the client has no
        // deadline machinery, miss rate where MP-DASH's detours make
        // stall time scheduler-dominated (see the module docs).
        let binding = |c: &Cell| if vanilla { c.stall_ms } else { c.miss };
        let binding_name = if vanilla { "stall time" } else { "miss rate" };
        let mut fifo: Option<Cell> = None;
        let mut pie: Option<Cell> = None;
        for (name, _) in disciplines() {
            let j = next.next().unwrap().value().expect("aqm fleet job").clone();
            let c = cell(&j);
            row_of(&mut t, [mode_name(&mode).into(), name.into()], &c);
            match name {
                "fifo" => {
                    assert_eq!(
                        c.marked + c.aqm_dropped,
                        0.0,
                        "FIFO produced AQM signals — the no-AQM path is contaminated"
                    );
                    fifo = Some(c);
                }
                "pie" => {
                    let f = fifo.as_ref().unwrap();
                    assert!(
                        binding(&c) <= binding(f),
                        "{}: PIE {binding_name} {:.4} > FIFO {:.4}",
                        mode_name(&mode),
                        binding(&c),
                        binding(f)
                    );
                    assert!(
                        c.p95_ms <= f.p95_ms,
                        "{}: PIE p95 queue delay {:.0}ms > FIFO {:.0}ms",
                        mode_name(&mode),
                        c.p95_ms,
                        f.p95_ms
                    );
                    pie = Some(c);
                }
                "fq_pie" => {
                    let (f, p) = (fifo.as_ref().unwrap(), pie.as_ref().unwrap());
                    assert!(
                        binding(&c) <= binding(p),
                        "{}: FQ-PIE {binding_name} {:.4} > PIE {:.4}",
                        mode_name(&mode),
                        binding(&c),
                        binding(p)
                    );
                    assert!(
                        c.p95_ms <= p.p95_ms,
                        "{}: FQ-PIE p95 queue delay {:.0}ms > PIE {:.0}ms",
                        mode_name(&mode),
                        c.p95_ms,
                        p.p95_ms
                    );
                    if vanilla {
                        assert!(
                            c.jain + 1e-9 >= f.jain,
                            "vanilla: Jain(FQ-PIE) {:.4} < Jain(FIFO) {:.4}",
                            c.jain,
                            f.jain
                        );
                        best_stall_cut = best_stall_cut.max(f.stall_ms - c.stall_ms);
                    }
                    best_p95_cut = best_p95_cut.max(f.p95_ms - c.p95_ms);
                }
                _ => {} // codel: reference column, ungated
            }
        }
    }
    assert!(
        best_p95_cut > 0.0,
        "FQ-PIE must strictly cut FIFO's p95 queue delay somewhere in the grid"
    );
    res.table(t);
    res.scalars(
        ScalarGroup::new("aqm invariants")
            .with("best_fq_pie_p95_cut_ms", best_p95_cut)
            .with("best_fq_pie_stall_cut_ms", best_stall_cut),
    );

    if !quick {
        let mut t = Table::new(&header);
        for target_ms in TARGET_SWEEP_MS {
            let j = next.next().unwrap().value().expect("target sweep").clone();
            row_of(
                &mut t,
                ["pie target".into(), format!("{target_ms} ms")],
                &cell(&j),
            );
        }
        for quantum in QUANTUM_SWEEP {
            let j = next.next().unwrap().value().expect("quantum sweep").clone();
            row_of(
                &mut t,
                ["fq_pie quantum".into(), format!("{quantum} B")],
                &cell(&j),
            );
        }
        for capacity_kib in CAPACITY_SWEEP_KIB {
            for name in ["fifo", "fq_pie(drop)"] {
                let j = next
                    .next()
                    .unwrap()
                    .value()
                    .expect("capacity sweep")
                    .clone();
                let c = cell(&j);
                if name != "fifo" {
                    assert_eq!(
                        c.marked, 0.0,
                        "drop-mode FQ-PIE must never mark ({capacity_kib} KiB)"
                    );
                }
                row_of(
                    &mut t,
                    [format!("cap {capacity_kib} KiB/client"), name.into()],
                    &c,
                );
            }
        }
        res.table(t);
    }
    res
}

/// Compute the AQM grid on the default worker pool.
pub fn result(quick: bool) -> ExperimentResult {
    fold(quick, run_batch(jobs(quick)))
}

/// Same grid on an explicit worker count — the determinism test pins
/// both sides of its comparison with this.
pub fn result_with_workers(quick: bool, workers: usize) -> ExperimentResult {
    fold(quick, run_batch_with(jobs(quick), workers))
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("aqm", quick, result);
}

/// Full grid behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}

#[cfg(test)]
mod tests {
    /// The acceptance property: the persisted artifact is bit-identical
    /// at any worker count (1 is the sequential reference).
    #[test]
    fn artifact_is_bit_identical_across_worker_counts() {
        let seq = super::result_with_workers(true, 1);
        let par = super::result_with_workers(true, 4);
        assert_eq!(
            seq.to_json().to_pretty(),
            par.to_json().to_pretty(),
            "exp_aqm must serialize identically at any MPDASH_WORKERS"
        );
    }
}
