//! `exp_churn` — fleet churn, correlated fault domains, and overload
//! shedding, with the runtime invariant watchdog armed everywhere.
//!
//! The grid crosses **churn rate** (light: ~5 concurrent viewers;
//! heavy: arrivals pack far past the admission cap) × **fault-domain
//! severity** (none, or a WiFi outage over a fixed four-client region
//! mid-run) × **overload policy** (admit everyone vs shed arrivals past
//! `MAX_ACTIVE`). Every cell runs through
//! [`mpdash_fleet::run_checked`] with the watchdog explicitly armed, so
//! a single invariant violation anywhere in the grid fails the
//! experiment with a typed error.
//!
//! The fold asserts the three robustness invariants this PR promises:
//!
//! 1. **Outages are bridged**: with a domain-wide WiFi outage, the
//!    affected clients' aggregate cellular share *during the outage
//!    window* rises (measured from 2 s epoch telemetry — whole-run
//!    shares are confounded by the ABR downshifting onto rungs WiFi
//!    alone can carry) and no cell of the grid stalls more than its
//!    outage-free twin — cellular bridges the dark window for every
//!    member.
//! 2. **Shedding beats collapse**: under heavy churn, the no-shed
//!    fleet's deadline-miss rate collapses; with shedding, admitted
//!    sessions stay under [`MISS_RATE_BOUND`] and strictly beat the
//!    no-shed rate, while the shed counter proves the policy engaged.
//! 3. **Zero watchdog violations** across all eight cells, with the
//!    check counter proving the watchdog actually ran.
//!
//! Each cell is one [`Job`], so the grid shards over `MPDASH_WORKERS`
//! with bit-identical artifacts at any worker count.

use crate::Table;
use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_fleet::{
    ChurnSpec, FaultDomainSpec, FleetConfig, FleetReport, OverloadPolicy, SharedLinkSpec,
};
use mpdash_link::{FaultScript, SharedBottleneckConfig};
use mpdash_obs::TelemetrySpec;
use mpdash_results::{ExperimentResult, Json, ScalarGroup};
use mpdash_session::{
    run_batch, run_batch_with, BatchResult, Job, JobReport, SessionConfig, TransportMode,
};
use mpdash_sim::{SimDuration, SimTime};

/// Admission cap of the shed cells; the shared capacity below is sized
/// so this many concurrent sessions stream comfortably.
const MAX_ACTIVE: usize = 4;

/// Upper bound on the admitted sessions' deadline-miss rate when
/// shedding is on — the "bounded, not collapsed" half of invariant 2.
const MISS_RATE_BOUND: f64 = 0.30;

/// Clients in the regional fault domain. Fixed, not a fleet fraction: a
/// fault domain is a *place* — the clients behind one physical AP — and
/// growing the fleet adds viewers elsewhere, not more people to the
/// café. (It also matches the admission cap, so a domain outage can
/// never be diluted below the concurrency the shed cells admit.)
const REGION_SIZE: usize = 4;

/// One churn intensity of the grid: a label, the arrival/viewing spec,
/// and how many clients the plan covers. Heavy churn is heavier in
/// *both* dimensions — twice the fleet packed into 1 s mean
/// inter-arrivals — so without shedding its concurrency runs far past
/// what the shared capacity below can carry even at the lowest rung.
struct ChurnLevel {
    name: &'static str,
    spec: ChurnSpec,
    clients: usize,
}

/// Light churn turns the fleet over around the admission cap (Little's
/// law: 30 s watch / 6 s inter-arrival ≈ 5 concurrent, peaking at 4);
/// heavy churn packs twice the arrivals an order of magnitude tighter.
/// Quick trims the fleet, not the video: shorter sessions are dominated
/// by the ABR ramp and the churn plan barely overlaps.
fn churn_levels(quick: bool) -> [ChurnLevel; 2] {
    [
        ChurnLevel {
            name: "light",
            spec: ChurnSpec::new(SimDuration::from_secs(6), SimDuration::from_secs(30)),
            clients: if quick { 8 } else { 12 },
        },
        ChurnLevel {
            name: "heavy",
            spec: ChurnSpec::new(SimDuration::from_millis(1000), SimDuration::from_secs(40)),
            clients: if quick { 16 } else { 24 },
        },
    ]
}

/// The regional outage: every domain member's WiFi disassociates at
/// t=30 s for 3 s plus a 1 s reassociation. The window is placed where
/// the light plan's long-lived member (client 0) streams at a high rung
/// with late arrivals already departed, so bridging is squarely the
/// transport's job: the link-down signal fails the WiFi subflow over to
/// cellular immediately, and the 12 s player buffer rides out whatever
/// the sector cannot absorb.
fn outage_script() -> FaultScript {
    FaultScript::new().disassociation(
        SimTime::from_secs(30),
        SimDuration::from_secs(3),
        SimDuration::from_secs(1),
    )
}

/// Virtual-time window the bridging invariant measures: the 3 s dark
/// window plus reassociation, rounded out to whole 2 s telemetry
/// epochs.
const OUTAGE_WINDOW_S: (f64, f64) = (30.0, 36.0);

fn severities() -> [&'static str; 2] {
    ["none", "wifi-outage"]
}

fn sheds() -> [bool; 2] {
    [false, true]
}

/// Same 20-chunk ladder as the fleet experiment.
fn churn_video() -> Video {
    Video::new(
        "BBB-churn",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        20,
    )
}

/// One grid cell. Capacity is sized for the admission cap, not the
/// fleet: `MAX_ACTIVE` concurrent sessions get ~1.2 Mbps of AP and
/// ~0.8 Mbps of sector each — comfortable for the cap (and for light
/// churn, which peaks at the cap), with enough sector headroom that a
/// failed-over member can drain a high-rung in-flight chunk while the
/// rest of the fleet leans on cellular too — while heavy churn's fleet
/// cannot fit even at the lowest rung (16 × 0.58 Mbps > 8.0 Mbps
/// total), so admitting everyone genuinely collapses the shared queues.
/// The 10 s player buffer paces downloads to playback, which is what
/// lets viewing-time departures and mid-stream outages land while
/// chunks are in flight.
fn cell_cfg(level: &ChurnLevel, severity: &str, shed: bool) -> FleetConfig {
    let n = level.clients;
    let mut base = SessionConfig::controlled_mbps(
        50.0,
        30.0,
        AbrKind::Festive,
        TransportMode::mpdash_rate_based(),
    )
    .with_video(churn_video());
    base.buffer_capacity = SimDuration::from_secs(10);
    let mut cfg = FleetConfig::new(base, n)
        .with_seed(23)
        .with_churn(level.spec)
        .with_watchdog(true)
        .with_telemetry(TelemetrySpec::seconds(2.0))
        .with_shared(SharedLinkSpec::wifi_ap(SharedBottleneckConfig::fifo_mbps(
            1.2 * MAX_ACTIVE as f64,
        )))
        .with_shared(SharedLinkSpec::cell_sector(
            SharedBottleneckConfig::fifo_mbps(0.8 * MAX_ACTIVE as f64),
        ));
    if severity != "none" {
        cfg = cfg.with_fault_domain(
            FaultDomainSpec::new("region", (0..REGION_SIZE).collect()).with_wifi(outage_script()),
        );
    }
    if shed {
        cfg = cfg.with_overload(OverloadPolicy::max_active(MAX_ACTIVE));
    }
    cfg
}

/// Aggregate cellular byte share of the fault-domain members (the
/// first [`REGION_SIZE`] clients) over the epochs covering
/// [`OUTAGE_WINDOW_S`], from per-session telemetry. Whole-run shares
/// cannot carry the bridging invariant: an outage makes the ABR
/// downshift, and the lower rungs fit on WiFi alone for the rest of
/// the session, diluting cellular's whole-run fraction even though it
/// carried the dark window.
fn member_outage_cell_share(report: &FleetReport) -> f64 {
    let (mut wifi, mut cell) = (0u64, 0u64);
    for s in report.sessions.iter().take(REGION_SIZE) {
        let Some(e) = s.epochs.as_ref() else { continue };
        let len = e.epoch_len().as_secs_f64();
        for (i, c) in e.cells() {
            let start = i as f64 * len;
            if start + len > OUTAGE_WINDOW_S.0 && start < OUTAGE_WINDOW_S.1 {
                wifi += c.counter("wifi_bytes");
                cell += c.counter("cell_bytes");
            }
        }
    }
    if wifi + cell == 0 {
        0.0
    } else {
        cell as f64 / (wifi + cell) as f64
    }
}

/// One cell as a batch job: `run_checked` with the armed watchdog, a
/// violation failing the job with its typed message, and a guard that
/// the checker actually ran. The summary gains one deterministic
/// telemetry-derived field, the members' outage-window cellular share.
fn churn_job(label: String, cfg: FleetConfig) -> Job {
    Job::custom(label.clone(), move || {
        let report = match mpdash_fleet::run_checked(&cfg) {
            Ok(r) => r,
            Err(v) => panic!("{label}: invariant violated: {v}"),
        };
        assert!(
            report.profile.watchdog_checks > 0,
            "{label}: the watchdog must have run"
        );
        let mut j = report.summary_json();
        if let Json::Obj(members) = &mut j {
            members.push((
                "member_outage_cell_share".into(),
                Json::Float(member_outage_cell_share(&report)),
            ));
        }
        JobReport::Value(Box::new(j))
    })
}

fn jobs(quick: bool) -> Vec<Job> {
    let mut jobs = Vec::new();
    for level in churn_levels(quick) {
        for severity in severities() {
            for shed in sheds() {
                let label = format!(
                    "{}/{severity}/{}",
                    level.name,
                    if shed { "shed" } else { "no-shed" }
                );
                jobs.push(churn_job(label, cell_cfg(&level, severity, shed)));
            }
        }
    }
    jobs
}

fn num(j: &Json, key: &str) -> f64 {
    j.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("churn summary missing '{key}'"))
}

fn fold(quick: bool, batch: Vec<BatchResult>) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "churn",
        "Fleet churn — arrivals/departures, correlated fault domains, overload shedding",
    )
    .with_quick(quick);
    res.text(concat!(
        "\nSeeded exponential arrivals and viewing-time departures over a\n",
        "shared AP + cell sector sized for the admission cap, crossed\n",
        "with a WiFi outage over a fixed four-client region and an\n",
        "overload policy shedding arrivals past the cap. The runtime\n",
        "invariant watchdog is armed in every cell. Invariants: cellular\n",
        "bridges the outage for every member with no stalls beyond the\n",
        "outage-free twin; under heavy churn, shedding keeps admitted\n",
        "sessions' deadline-miss rate bounded and strictly below the\n",
        "no-shed collapse; zero watchdog violations anywhere.",
    ));

    let mut t = Table::new(&[
        "churn",
        "clients",
        "domain",
        "policy",
        "shed",
        "departed",
        "miss rate",
        "stalls",
        "bitrate",
        "member cell% @30-36s",
    ]);
    // summaries[churn][severity][shed], filled in construction order.
    let mut next = batch.iter();
    let mut cells: Vec<Vec<Vec<Json>>> = Vec::new();
    for level in churn_levels(quick) {
        let mut by_severity = Vec::new();
        for severity in severities() {
            let mut by_shed = Vec::new();
            for shed in sheds() {
                let j = next.next().unwrap().value().expect("churn job").clone();
                let mean_bitrate: f64 = j
                    .get("per_client")
                    .and_then(|v| v.as_arr())
                    .map(|rows| {
                        rows.iter()
                            .map(|r| num(r, "mean_bitrate_mbps"))
                            .sum::<f64>()
                            / rows.len().max(1) as f64
                    })
                    .unwrap_or(0.0);
                t.row(&[
                    level.name.into(),
                    format!("{}", level.clients),
                    severity.into(),
                    if shed { "shed" } else { "no-shed" }.into(),
                    format!("{}", num(&j, "shed_sessions") as u64),
                    format!("{}", num(&j, "departed_sessions") as u64),
                    format!("{:.3}", num(&j, "deadline_miss_rate")),
                    format!("{}", num(&j, "total_stalls") as u64),
                    format!("{mean_bitrate:.2}"),
                    format!("{:.3}", num(&j, "member_outage_cell_share")),
                ]);
                by_shed.push(j);
            }
            by_severity.push(by_shed);
        }
        cells.push(by_severity);
    }
    res.table(t);

    // Invariant 1: the outage is bridged. For each (churn, policy) pair
    // whose fleet is not in designed collapse — every pair except
    // heavy/no-shed, where the outage-free "baseline" is itself a
    // collapsed fleet — comparing the outage cell against its
    // outage-free twin: the members' cellular share during the outage
    // window must rise, and fleet-wide stalls must not. That the
    // invariant holds for heavy/*shed* is the composition this grid
    // exists to show: overload shedding is what keeps the fault-domain
    // failover bridgeable.
    let mut worst_stall_delta = i64::MIN;
    let mut min_share_gain = f64::INFINITY;
    for (ci, level) in churn_levels(quick).into_iter().enumerate() {
        for (si, shed) in sheds().into_iter().enumerate() {
            if level.name == "heavy" && !shed {
                continue;
            }
            let calm = &cells[ci][0][si];
            let outage = &cells[ci][1][si];
            let gain =
                num(outage, "member_outage_cell_share") - num(calm, "member_outage_cell_share");
            let stall_delta = num(outage, "total_stalls") as i64 - num(calm, "total_stalls") as i64;
            assert!(
                gain > 0.0,
                "{}/shed={shed}: members' outage-window cellular share \
                 must rise (gain {gain:.4})",
                level.name
            );
            assert!(
                stall_delta <= 0,
                "{}/shed={shed}: the outage added {stall_delta} stalls \
                 — cellular failed to bridge it",
                level.name
            );
            min_share_gain = min_share_gain.min(gain);
            worst_stall_delta = worst_stall_delta.max(stall_delta);
        }
    }

    // Invariant 2: shedding beats the no-shed collapse under heavy
    // churn, in both fault severities.
    let mut worst_shed_miss = 0.0f64;
    let mut best_noshed_miss = f64::INFINITY;
    for (sev_i, severity) in severities().into_iter().enumerate() {
        let noshed = &cells[1][sev_i][0];
        let shed = &cells[1][sev_i][1];
        let (m_noshed, m_shed) = (
            num(noshed, "deadline_miss_rate"),
            num(shed, "deadline_miss_rate"),
        );
        assert!(
            num(shed, "shed_sessions") > 0.0,
            "heavy/{severity}: the overload policy must have shed someone"
        );
        assert!(
            m_shed < m_noshed,
            "heavy/{severity}: shed miss rate {m_shed:.3} must beat no-shed {m_noshed:.3}"
        );
        assert!(
            m_shed <= MISS_RATE_BOUND,
            "heavy/{severity}: admitted sessions' miss rate {m_shed:.3} exceeds \
             the {MISS_RATE_BOUND} bound"
        );
        worst_shed_miss = worst_shed_miss.max(m_shed);
        best_noshed_miss = best_noshed_miss.min(m_noshed);
    }

    res.scalars(
        ScalarGroup::new("churn invariants")
            .with("min_member_cell_share_gain", min_share_gain)
            .with("worst_outage_stall_delta", worst_stall_delta as f64)
            .with("worst_heavy_shed_miss_rate", worst_shed_miss)
            .with("best_heavy_noshed_miss_rate", best_noshed_miss),
    );
    res
}

/// Compute the churn grid on the default worker pool.
pub fn result(quick: bool) -> ExperimentResult {
    fold(quick, run_batch(jobs(quick)))
}

/// Same grid on an explicit worker count — the determinism test pins
/// both sides of its comparison with this.
pub fn result_with_workers(quick: bool, workers: usize) -> ExperimentResult {
    fold(quick, run_batch_with(jobs(quick), workers))
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("churn", quick, result);
}

/// Full grid behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}

/// The heavy/quick cell — 16 churning clients, regional WiFi outage,
/// shedding on — as a perf workload for `bench_sched`: every robustness
/// mechanism of this grid rides in one run, and `watchdog` arms or
/// disarms the invariant checker so the bench can price its overhead.
pub fn bench_fleet_config(watchdog: bool) -> FleetConfig {
    let [_, heavy] = churn_levels(true);
    cell_cfg(&heavy, "wifi-outage", true).with_watchdog(watchdog)
}

#[cfg(test)]
mod tests {
    /// The acceptance property: the persisted artifact is bit-identical
    /// at any worker count (1 is the sequential reference).
    #[test]
    fn artifact_is_bit_identical_across_worker_counts() {
        let seq = super::result_with_workers(true, 1);
        let par = super::result_with_workers(true, 4);
        assert_eq!(
            seq.to_json().to_pretty(),
            par.to_json().to_pretty(),
            "exp_churn must serialize identically at any MPDASH_WORKERS"
        );
    }
}
