//! `exp_faults` — the resilience matrix (beyond the paper).
//!
//! The paper's evaluation streams over well-behaved links; this
//! experiment asks what happens when the preferred path misbehaves.
//! Every fault family of [`mpdash_link::FaultScript`] is injected on the
//! WiFi link mid-session and crossed with three transport modes:
//!
//! * **Baseline** — vanilla MPTCP, every subflow always on;
//! * **WiFi-only** — no second path, the degradation reference;
//! * **Rate** — MP-DASH with rate-based deadlines.
//!
//! The fold asserts the graceful-degradation invariants the robustness
//! work promises:
//!
//! 1. MP-DASH never stalls more than baseline MPTCP under any fault;
//! 2. cellular carries bytes through every WiFi fault window under
//!    MP-DASH (the costly path bridges the outage);
//! 3. the MP-DASH deadline-miss rate stays bounded even while faulted.
//!
//! Like every experiment, the artifact is bit-identical at any
//! `MPDASH_WORKERS` setting — `result_with_workers` exposes the worker
//! count so the test suite can pin it on both sides of the comparison.

use crate::Table;
use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_http::ServerFaultScript;
use mpdash_link::{FaultScript, GilbertElliott, PathId};
use mpdash_results::{ExperimentResult, ScalarGroup};
use mpdash_session::{
    run_batch, run_batch_with, BatchResult, Job, SessionConfig, SessionReport, TransportMode,
};
use mpdash_sim::{SimDuration, SimTime};

/// One row of the fault axis: a named script plus the wall-clock window
/// `[start, end)` (seconds) the fault affects — the window invariant 2
/// checks for cellular bridging.
struct FaultCase {
    name: &'static str,
    script: FaultScript,
    /// Server-side fault script served alongside the link fault (empty
    /// for the pure-link rows).
    server: ServerFaultScript,
    window: (f64, f64),
}

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// The four fault families, each parameterized to clearly hurt but not
/// sever the session — a bursty 30%-mean-loss window, a 300 ms RTT
/// storm, an 85% rate collapse, and a full disassociation with
/// reassociation — plus one combined row where a WiFi disassociation
/// overlaps a server-side 5xx burst (the link *and* the origin misbehave
/// at once).
fn fault_cases() -> Vec<FaultCase> {
    vec![
        FaultCase {
            name: "burst-loss",
            script: FaultScript::new().burst_loss(
                secs(20),
                SimDuration::from_secs(40),
                GilbertElliott::new(0.05, 0.30, 0.5),
            ),
            server: ServerFaultScript::new(),
            window: (20.0, 60.0),
        },
        FaultCase {
            name: "rtt-storm",
            script: FaultScript::new().rtt_spike(
                secs(20),
                SimDuration::from_secs(40),
                SimDuration::from_millis(300),
                SimDuration::from_millis(100),
            ),
            server: ServerFaultScript::new(),
            window: (20.0, 60.0),
        },
        FaultCase {
            name: "rate-collapse",
            script: FaultScript::new().rate_collapse(secs(20), SimDuration::from_secs(40), 0.15),
            server: ServerFaultScript::new(),
            window: (20.0, 60.0),
        },
        FaultCase {
            name: "disassociation",
            script: FaultScript::new().disassociation(
                secs(40),
                SimDuration::from_secs(15),
                SimDuration::from_secs(2),
            ),
            server: ServerFaultScript::new(),
            window: (40.0, 57.0),
        },
        FaultCase {
            name: "disassoc+5xx",
            script: FaultScript::new().disassociation(
                secs(40),
                SimDuration::from_secs(15),
                SimDuration::from_secs(2),
            ),
            server: ServerFaultScript::new().error_burst(secs(20), SimDuration::from_secs(8)),
            window: (40.0, 57.0),
        },
    ]
}

/// Baseline first: the fold computes MP-DASH invariants against it.
fn matrix_modes() -> [TransportMode; 3] {
    [
        TransportMode::Vanilla,
        TransportMode::WifiOnly,
        TransportMode::mpdash_rate_based(),
    ]
}

fn fault_video(quick: bool) -> Video {
    let chunks = if quick { 20 } else { 30 };
    Video::new(
        "BBB-fault",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        chunks,
    )
}

fn jobs(quick: bool) -> Vec<Job> {
    let mut jobs = Vec::new();
    for case in fault_cases() {
        for mode in matrix_modes() {
            let cfg = SessionConfig::controlled_mbps(4.5, 4.0, AbrKind::Festive, mode)
                .with_video(fault_video(quick))
                .with_wifi_faults(case.script.clone())
                .with_server_faults(case.server.clone());
            jobs.push(Job::session(format!("{}/{}", case.name, mode.label()), cfg));
        }
    }
    jobs
}

/// Cellular payload bytes received inside the fault window (plus a small
/// tail for in-flight data).
fn window_cell_bytes(r: &SessionReport, window: (f64, f64)) -> u64 {
    r.records
        .iter()
        .filter(|p| {
            p.path == PathId::CELLULAR
                && p.t.as_secs_f64() >= window.0
                && p.t.as_secs_f64() < window.1 + 5.0
        })
        .map(|p| p.len)
        .sum()
}

fn fold(quick: bool, batch: Vec<BatchResult>) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "faults",
        "Resilience matrix — fault injection on the preferred path",
    )
    .with_quick(quick);
    res.text(concat!(
        "\nEvery fault hits the WiFi link mid-session; the invariants\n",
        "checked: MP-DASH never stalls more than baseline MPTCP, cellular\n",
        "bridges every WiFi fault window, deadline-miss rate stays bounded.\n",
        "The disassoc+5xx row overlaps a server-side error burst with the\n",
        "link fault: every mode must retry through it without wedging.",
    ));

    let mut t = Table::new(&[
        "fault",
        "mode",
        "stalls",
        "stall s",
        "bitrate",
        "cell MB",
        "missed",
        "bridged",
        "failovers",
        "revivals",
        "retries",
    ]);
    let mut next = batch.iter();
    let mut max_excess_stalls: i64 = 0;
    let mut min_window_cell = u64::MAX;
    let mut worst_miss_rate: f64 = 0.0;
    for case in fault_cases() {
        let mut base_stalls = 0u64;
        for mode in matrix_modes() {
            let r = next.next().unwrap().session().expect("session job");
            t.row(&[
                case.name.into(),
                mode.label(),
                format!("{}", r.qoe.stalls),
                format!("{:.2}", r.qoe.stall_time.as_secs_f64()),
                format!("{:.2}", r.qoe.mean_bitrate_mbps),
                format!("{:.2}", r.cell_bytes as f64 / 1e6),
                format!("{}", r.degradation.deadline_misses),
                format!("{}", r.degradation.outage_bridged_chunks),
                format!("{}", r.degradation.subflow_failures),
                format!("{}", r.degradation.subflow_revivals),
                format!("{}", r.lifecycle.retried),
            ]);
            // The combined row: every mode must ride out the 5xx burst by
            // retrying (no session may wedge on a server error), and the
            // burst must actually have been hit.
            if !case.server.is_empty() {
                assert!(
                    r.lifecycle.retried > 0,
                    "{}/{}: the 8s 5xx burst produced no retries",
                    case.name,
                    mode.label()
                );
            }
            match mode {
                TransportMode::Vanilla => base_stalls = r.qoe.stalls,
                TransportMode::MpDash { .. } => {
                    // Invariant 1: faults on the preferred path must never
                    // make MP-DASH stall more than always-on MPTCP.
                    let excess = r.qoe.stalls as i64 - base_stalls as i64;
                    assert!(
                        excess <= 0,
                        "{}: MP-DASH stalled {} vs baseline {}",
                        case.name,
                        r.qoe.stalls,
                        base_stalls
                    );
                    max_excess_stalls = max_excess_stalls.max(excess);
                    // Invariant 2: the costly path actually bridges the
                    // fault window.
                    let bridged = window_cell_bytes(r, case.window);
                    assert!(
                        bridged > 0,
                        "{}: no cellular bytes inside the fault window",
                        case.name
                    );
                    min_window_cell = min_window_cell.min(bridged);
                    // Invariant 3: deadline misses stay a bounded fraction
                    // of completed transfers.
                    let stats = r.scheduler_stats;
                    let (missed, completed) = (stats.missed_deadlines, stats.completed_transfers);
                    let rate = if completed == 0 {
                        0.0
                    } else {
                        missed as f64 / completed as f64
                    };
                    assert!(
                        rate <= 0.5,
                        "{}: deadline-miss rate {rate:.2} out of bounds",
                        case.name
                    );
                    worst_miss_rate = worst_miss_rate.max(rate);
                }
                _ => {}
            }
        }
    }
    res.table(t);
    res.scalars(
        ScalarGroup::new("degradation invariants")
            .with("max_excess_stalls_vs_baseline", max_excess_stalls as f64)
            .with("min_window_cell_bytes", min_window_cell as f64)
            .with("worst_deadline_miss_rate", worst_miss_rate),
    );
    res
}

/// Compute the resilience matrix on the default worker pool.
pub fn result(quick: bool) -> ExperimentResult {
    fold(quick, run_batch(jobs(quick)))
}

/// Same matrix on an explicit worker count — the determinism test pins
/// both sides of its comparison with this.
pub fn result_with_workers(quick: bool, workers: usize) -> ExperimentResult {
    fold(quick, run_batch_with(jobs(quick), workers))
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("faults", quick, result);
}

/// Full matrix behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}

#[cfg(test)]
mod tests {
    /// The acceptance property: the persisted artifact is bit-identical
    /// at any worker count (1 is the sequential reference).
    #[test]
    fn artifact_is_bit_identical_across_worker_counts() {
        let seq = super::result_with_workers(true, 1);
        let par = super::result_with_workers(true, 4);
        assert_eq!(
            seq.to_json().to_pretty(),
            par.to_json().to_pretty(),
            "exp_faults must serialize identically at any MPDASH_WORKERS"
        );
    }
}
