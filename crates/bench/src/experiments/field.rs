//! Figures 9 & 10 and Table 5: the 33-location field study.
//!
//! Every location in the corpus streams Big Buck Bunny under six schemes
//! (FESTIVE and BBA, each with vanilla MPTCP, MP-DASH rate-based and
//! MP-DASH duration-based). Reported:
//!
//! * Figure 9 — CDF of cellular-data savings (paper: 25/50/75th
//!   percentiles at 48% / 59% / 82%).
//! * Figure 10 — CDF of playback-bitrate reduction (paper: no reduction
//!   in 82.65% of experiments; average 2.5% among the rest).
//! * Table 5 — per-location savings for the seven named locations.
//! * Radio-energy savings percentiles (paper: 7.7% / 17% / 53%).
//!
//! This is the heaviest sweep (33 locations × 2 visits × 6 schemes =
//! 396 sessions on the full run) and the batch runner's showcase: the
//! whole grid is one flat job list, and the persisted CDF quantiles are
//! byte-identical at any `MPDASH_WORKERS` setting.

use crate::{pct, Table};
use mpdash_dash::abr::AbrKind;
use mpdash_results::{CdfSummary, ExperimentResult, ScalarGroup};
use mpdash_session::{run_batch, BatchResult, Job, SessionConfig, TransportMode};
use mpdash_sim::series::Cdf;
use mpdash_trace::field::{field_corpus, Location};

struct LocationResult {
    name: String,
    // [abr][mode] savings vs that abr's baseline: (cell, energy, bitrate_red)
    festive: [(f64, f64, f64); 2],
    bba: [(f64, f64, f64); 2],
}

const ABRS: [AbrKind; 2] = [AbrKind::Festive, AbrKind::Bba];

/// Baseline + the two MP-DASH deadline modes, in fold order.
fn scheme_modes() -> [TransportMode; 3] {
    [
        TransportMode::Vanilla,
        TransportMode::mpdash_rate_based(),
        TransportMode::mpdash_duration_based(),
    ]
}

/// Fold the next three reports (baseline, rate, duration) into per-mode
/// savings versus the baseline.
fn fold_study<'a>(next: &mut impl Iterator<Item = &'a BatchResult>) -> [(f64, f64, f64); 2] {
    let base = next.next().unwrap().session().expect("session job");
    let mut out = [(0.0, 0.0, 0.0); 2];
    for slot in &mut out {
        let r = next.next().unwrap().session().expect("session job");
        *slot = (
            r.cell_saving_vs(base),
            r.energy_saving_vs(base),
            r.qoe.bitrate_reduction_vs(&base.qoe),
        );
    }
    out
}

/// Compute the field study. `quick` limits the corpus to 6 locations and
/// one visit (used by integration smoke tests); the full study covers all
/// 33 locations twice.
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "field",
        "Figures 9 & 10 + Table 5 — the 33-location field study",
    )
    .with_quick(quick);
    let corpus = field_corpus();
    let corpus: Vec<&Location> = if quick {
        corpus.iter().take(6).collect()
    } else {
        corpus.iter().collect()
    };

    // The paper visits each site multiple times at different times of
    // day; revisits share the site's means but draw fresh instantaneous
    // conditions. Table 5 reports the first visit.
    let visits: u64 = if quick { 1 } else { 2 };
    let mut jobs = Vec::new();
    for loc in &corpus {
        for visit in 0..visits {
            let at = loc.revisit(visit);
            for abr in ABRS {
                for mode in scheme_modes() {
                    jobs.push(Job::session(
                        format!("{}/v{visit}/{}/{}", at.name, abr.name(), mode.label()),
                        SessionConfig::at_location(&at, abr, mode),
                    ));
                }
            }
        }
    }
    let batch = run_batch(jobs);
    let mut next = batch.iter();

    let mut results = Vec::new();
    let mut cell_cdf = Cdf::new();
    let mut energy_cdf = Cdf::new();
    let mut bitrate_cdf = Cdf::new();
    for loc in &corpus {
        for visit in 0..visits {
            let festive = fold_study(&mut next);
            let bba = fold_study(&mut next);
            for set in [&festive, &bba] {
                for &(cell, energy, bitrate) in set.iter() {
                    cell_cdf.push(cell);
                    energy_cdf.push(energy);
                    bitrate_cdf.push(bitrate);
                }
            }
            if visit == 0 {
                results.push(LocationResult {
                    name: loc.name.clone(),
                    festive,
                    bba,
                });
            }
        }
    }

    res.text("\nFigure 9 — cellular-data savings across all experiments:");
    let mut t = Table::new(&["percentile", "saving (paper)", "saving (measured)"]);
    for (q, paper) in [(0.25, "48%"), (0.50, "59%"), (0.75, "82%")] {
        t.row(&[
            format!("{:.0}th", q * 100.0),
            paper.into(),
            pct(cell_cdf.quantile(q).unwrap_or(0.0)),
        ]);
    }
    res.table(t);
    res.cdf(CdfSummary::from_cdf("cell_saving", &mut cell_cdf));

    res.text("Radio-energy savings (paper: 7.7% / 17% / 53%):");
    let mut t = Table::new(&["percentile", "saving (measured)"]);
    for q in [0.25, 0.50, 0.75] {
        t.row(&[
            format!("{:.0}th", q * 100.0),
            pct(energy_cdf.quantile(q).unwrap_or(0.0)),
        ]);
    }
    res.table(t);
    res.cdf(CdfSummary::from_cdf("energy_saving", &mut energy_cdf));

    res.text("Figure 10 — playback-bitrate reduction:");
    let no_reduction = bitrate_cdf.fraction_at_most(0.005);
    res.text(format!(
        "  experiments with (essentially) no reduction: {} (paper: 82.65%)",
        pct(no_reduction)
    ));
    res.text(format!(
        "  median reduction: {} | 95th percentile: {}",
        pct(bitrate_cdf.quantile(0.5).unwrap_or(0.0)),
        pct(bitrate_cdf.quantile(0.95).unwrap_or(0.0)),
    ));
    res.cdf(CdfSummary::from_cdf("bitrate_reduction", &mut bitrate_cdf));
    res.scalars(
        ScalarGroup::new("headline numbers")
            .with("no_reduction_fraction", no_reduction)
            .with("median_cell_saving", cell_cdf.quantile(0.5).unwrap_or(0.0))
            .with(
                "median_energy_saving",
                energy_cdf.quantile(0.5).unwrap_or(0.0),
            ),
    );

    res.text("\nTable 5 — named locations (savings in % vs vanilla MPTCP):");
    let mut t = Table::new(&[
        "location",
        "FEST/bytes R",
        "FEST/bytes D",
        "FEST/energy R",
        "FEST/energy D",
        "BBA/bytes R",
        "BBA/bytes D",
        "BBA/energy R",
        "BBA/energy D",
    ]);
    let named = [
        "Hotel Hi",
        "Hotel Ha",
        "Food Market",
        "Airport",
        "Coffeehouse",
        "Library",
        "Elec. Store",
    ];
    for r in &results {
        if !named.contains(&r.name.as_str()) {
            continue;
        }
        t.row(&[
            r.name.clone(),
            pct(r.festive[0].0),
            pct(r.festive[1].0),
            pct(r.festive[0].1),
            pct(r.festive[1].1),
            pct(r.bba[0].0),
            pct(r.bba[1].0),
            pct(r.bba[0].1),
            pct(r.bba[1].1),
        ]);
    }
    res.table(t);
    res
}

/// Compute, render, persist. `quick` limits the corpus.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("field", quick, result);
}

/// Full study behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
