//! Figures 9 & 10 and Table 5: the 33-location field study.
//!
//! Every location in the corpus streams Big Buck Bunny under six schemes
//! (FESTIVE and BBA, each with vanilla MPTCP, MP-DASH rate-based and
//! MP-DASH duration-based). Reported:
//!
//! * Figure 9 — CDF of cellular-data savings (paper: 25/50/75th
//!   percentiles at 48% / 59% / 82%).
//! * Figure 10 — CDF of playback-bitrate reduction (paper: no reduction
//!   in 82.65% of experiments; average 2.5% among the rest).
//! * Table 5 — per-location savings for the seven named locations.
//! * Radio-energy savings percentiles (paper: 7.7% / 17% / 53%).

use crate::experiments::banner;
use crate::{pct, Table};
use mpdash_dash::abr::AbrKind;
use mpdash_session::{SessionConfig, SessionReport, StreamingSession, TransportMode};
use mpdash_sim::series::Cdf;
use mpdash_trace::field::{field_corpus, Location};

struct LocationResult {
    name: String,
    // [abr][mode] savings vs that abr's baseline: (cell, energy, bitrate_red)
    festive: [(f64, f64, f64); 2],
    bba: [(f64, f64, f64); 2],
}

fn run_one(loc: &Location, abr: AbrKind, mode: TransportMode) -> SessionReport {
    StreamingSession::run(SessionConfig::at_location(loc, abr, mode))
}

fn study(loc: &Location, abr: AbrKind) -> ([(f64, f64, f64); 2], SessionReport) {
    let base = run_one(loc, abr, TransportMode::Vanilla);
    let mut out = [(0.0, 0.0, 0.0); 2];
    for (i, mode) in [
        TransportMode::mpdash_rate_based(),
        TransportMode::mpdash_duration_based(),
    ]
    .into_iter()
    .enumerate()
    {
        let r = run_one(loc, abr, mode);
        out[i] = (
            r.cell_saving_vs(&base),
            r.energy_saving_vs(&base),
            r.qoe.bitrate_reduction_vs(&base.qoe),
        );
    }
    (out, base)
}

/// Run the experiment. `quick` limits the corpus (used by integration
/// smoke tests); the full study covers all 33 locations.
pub fn run_with(quick: bool) {
    banner("Figures 9 & 10 + Table 5 — the 33-location field study");
    let corpus = field_corpus();
    let corpus: Vec<&Location> = if quick {
        corpus.iter().take(6).collect()
    } else {
        corpus.iter().collect()
    };

    // The paper visits each site multiple times at different times of
    // day; revisits share the site's means but draw fresh instantaneous
    // conditions. Table 5 reports the first visit.
    let visits: u64 = if quick { 1 } else { 2 };
    let mut results = Vec::new();
    let mut cell_cdf = Cdf::new();
    let mut energy_cdf = Cdf::new();
    let mut bitrate_cdf = Cdf::new();
    for loc in &corpus {
        for visit in 0..visits {
            let at = loc.revisit(visit);
            let (festive, _) = study(&at, AbrKind::Festive);
            let (bba, _) = study(&at, AbrKind::Bba);
            for set in [&festive, &bba] {
                for &(cell, energy, bitrate) in set.iter() {
                    cell_cdf.push(cell);
                    energy_cdf.push(energy);
                    bitrate_cdf.push(bitrate);
                }
            }
            if visit == 0 {
                results.push(LocationResult {
                    name: loc.name.clone(),
                    festive,
                    bba,
                });
            }
        }
        eprintln!("  finished {}", loc.name);
    }

    println!("\nFigure 9 — cellular-data savings across all experiments:");
    let mut t = Table::new(&["percentile", "saving (paper)", "saving (measured)"]);
    for (q, paper) in [(0.25, "48%"), (0.50, "59%"), (0.75, "82%")] {
        t.row(&[
            format!("{:.0}th", q * 100.0),
            paper.into(),
            pct(cell_cdf.quantile(q).unwrap_or(0.0)),
        ]);
    }
    println!("{}", t.render());

    println!("Radio-energy savings (paper: 7.7% / 17% / 53%):");
    let mut t = Table::new(&["percentile", "saving (measured)"]);
    for q in [0.25, 0.50, 0.75] {
        t.row(&[
            format!("{:.0}th", q * 100.0),
            pct(energy_cdf.quantile(q).unwrap_or(0.0)),
        ]);
    }
    println!("{}", t.render());

    println!("Figure 10 — playback-bitrate reduction:");
    let no_reduction = bitrate_cdf.fraction_at_most(0.005);
    println!(
        "  experiments with (essentially) no reduction: {} (paper: 82.65%)",
        pct(no_reduction)
    );
    println!(
        "  median reduction: {} | 95th percentile: {}",
        pct(bitrate_cdf.quantile(0.5).unwrap_or(0.0)),
        pct(bitrate_cdf.quantile(0.95).unwrap_or(0.0)),
    );

    println!("\nTable 5 — named locations (savings in % vs vanilla MPTCP):");
    let mut t = Table::new(&[
        "location",
        "FEST/bytes R", "FEST/bytes D",
        "FEST/energy R", "FEST/energy D",
        "BBA/bytes R", "BBA/bytes D",
        "BBA/energy R", "BBA/energy D",
    ]);
    let named = [
        "Hotel Hi", "Hotel Ha", "Food Market", "Airport", "Coffeehouse", "Library",
        "Elec. Store",
    ];
    for r in &results {
        if !named.contains(&r.name.as_str()) {
            continue;
        }
        t.row(&[
            r.name.clone(),
            pct(r.festive[0].0),
            pct(r.festive[1].0),
            pct(r.festive[0].1),
            pct(r.festive[1].1),
            pct(r.bba[0].0),
            pct(r.bba[1].0),
            pct(r.bba[0].1),
            pct(r.bba[1].1),
        ]);
    }
    println!("{}", t.render());
}

/// Full study.
pub fn run() {
    run_with(false);
}
