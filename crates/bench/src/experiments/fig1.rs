//! Figure 1: WiFi/LTE subflow throughput while a DASH video streams over
//! vanilla MPTCP (WiFi 3.8 Mbps, LTE 3.0 Mbps, GPAC adaptation).
//!
//! Shape target: LTE runs near its full capacity throughout the steady
//! state even though WiFi alone nearly suffices, and the flow shows
//! on/off idle gaps as the player's buffer fills.

use crate::Table;
use mpdash_analysis::throughput_timeline;
use mpdash_dash::abr::AbrKind;
use mpdash_link::PathId;
use mpdash_results::{ExperimentResult, MetricSeries, ScalarGroup};
use mpdash_session::{run_sessions, SessionConfig, TransportMode};
use mpdash_sim::{Series, SimDuration};
use mpdash_trace::table1;

/// Compute the experiment (one session).
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig1",
        "Figure 1 — vanilla MPTCP throughput while streaming DASH (W3.8/L3.0)",
    )
    .with_quick(quick);
    let cfg = SessionConfig::controlled(
        table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
        AbrKind::Gpac,
        TransportMode::Vanilla,
    );
    let report = run_sessions(vec![cfg]).remove(0);

    // Per-second throughput of each subflow over the steady state.
    let mut wifi = Series::new("wifi-bytes");
    let mut cell = Series::new("cell-bytes");
    for r in &report.records {
        match r.path {
            PathId::WIFI => wifi.push(r.t, r.len as f64),
            PathId::CELLULAR => cell.push(r.t, r.len as f64),
            _ => {}
        }
    }
    let window = SimDuration::from_secs(1);
    let wifi_th = wifi.throughput_mbps(window);
    let cell_th = cell.throughput_mbps(window);
    res.series(MetricSeries::throughput("wifi_mbps", &wifi, window));
    res.series(MetricSeries::throughput("cell_mbps", &cell, window));

    let mut t = Table::new(&["t (s)", "WiFi Mbps", "LTE Mbps", "MPTCP Mbps"]);
    for i in 10..40 {
        let w = wifi_th.get(i).map(|&(_, v)| v).unwrap_or(0.0);
        let c = cell_th
            .iter()
            .find(|(tt, _)| (tt.as_secs_f64() - i as f64).abs() < 0.5)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        t.row(&[
            format!("{i}"),
            format!("{w:.2}"),
            format!("{c:.2}"),
            format!("{:.2}", w + c),
        ]);
    }
    res.table(t);

    res.text(format!(
        "session: {} on WiFi, {} on LTE ({} of bytes over the metered link)",
        crate::mb(report.wifi_bytes),
        crate::mb(report.cell_bytes),
        crate::pct(report.cell_fraction()),
    ));
    res.text(format!(
        "mean playback bitrate {:.2} Mbps, stalls {}",
        report.qoe.mean_bitrate_mbps, report.qoe.stalls
    ));
    res.scalars(
        ScalarGroup::new("session totals")
            .with("wifi_bytes", report.wifi_bytes as f64)
            .with("cell_bytes", report.cell_bytes as f64)
            .with("cell_fraction", report.cell_fraction())
            .with("mean_bitrate_mbps", report.qoe.mean_bitrate_mbps)
            .with("stalls", report.qoe.stalls as f64),
    );
    res.text("\nfirst 60 s, 1 s buckets:");
    res.text(throughput_timeline(
        &report.records,
        SimDuration::from_secs(1),
        SimDuration::from_secs(60),
    ));
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("fig1", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
