//! Figure 11: the mobility scenario — walking a loop around the WiFi AP
//! (WiFi swings 5 Mbps → near-zero → 5 Mbps, LTE steady at 5 Mbps),
//! streaming with FESTIVE.
//!
//! Shape targets: MP-DASH uses cellular only while the WiFi trough
//! starves the buffer, the default MPTCP drives LTE at full rate
//! throughout, and WiFi-only cannot hold the top bitrate (paper: 81%
//! cellular / 47% energy savings with no bitrate loss).

use crate::{mb, pct, Table};
use mpdash_analysis::throughput_timeline;
use mpdash_core::predict::PredictorKind;
use mpdash_dash::abr::AbrKind;
use mpdash_energy::DeviceProfile;
use mpdash_mptcp::{CcKind, SchedulerSpec};
use mpdash_results::{ExperimentResult, ScalarGroup};
use mpdash_session::{run_sessions, SessionConfig, TransportMode};
use mpdash_sim::{Rate, SimDuration};
use mpdash_trace::mobility::MobilityWalk;

fn config(mode: TransportMode) -> SessionConfig {
    let walk = MobilityWalk::default();
    let (wifi, cell) = walk.links();
    SessionConfig {
        video: mpdash_dash::video::Video::big_buck_bunny(),
        wifi,
        cell,
        abr: AbrKind::Festive,
        mode,
        buffer_capacity: SimDuration::from_secs(40),
        scheduler: SchedulerSpec::MinRtt,
        cc: CcKind::Reno,
        device: DeviceProfile::galaxy_note(),
        priors: (
            Rate::from_mbps_f64(walk.peak_mbps * 0.5),
            Rate::from_mbps_f64(walk.lte_mbps),
        ),
        predictor: PredictorKind::control_default(),
        enable_debounce: 4,
        sample_slot: SimDuration::from_millis(250),
        adapter_config: None,
        preference: Default::default(),
        server_faults: Default::default(),
        lifecycle: Default::default(),
        origins: None,
        cache: None,
        tracer: Default::default(),
        telemetry: None,
        start_offset: SimDuration::ZERO,
        max_watch: None,
    }
}

/// Compute the experiment (three sessions, batched).
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig11",
        "Figure 11 — mobility walk (WiFi 5↔0 Mbps, LTE 5 Mbps, FESTIVE)",
    )
    .with_quick(quick);
    let reports = run_sessions(vec![
        config(TransportMode::Vanilla),
        config(TransportMode::mpdash_rate_based()),
        config(TransportMode::WifiOnly),
    ]);
    let (base, mp, wifi_only) = (&reports[0], &reports[1], &reports[2]);

    let mut t = Table::new(&[
        "config",
        "cell bytes",
        "energy (J)",
        "bitrate (Mbps)",
        "stalls",
    ]);
    for (name, r) in [
        ("MP-DASH (rate)", mp),
        ("default MPTCP", base),
        ("WiFi only", wifi_only),
    ] {
        t.row(&[
            name.into(),
            mb(r.cell_bytes),
            format!("{:.1}", r.energy.total_j()),
            format!("{:.2}", r.qoe.mean_bitrate_mbps),
            format!("{}", r.qoe.stalls),
        ]);
    }
    res.table(t);
    res.text(format!(
        "MP-DASH vs default: cellular saving {}, energy saving {} (paper: 81.4% / 47.3%)",
        pct(mp.cell_saving_vs(base)),
        pct(mp.energy_saving_vs(base)),
    ));
    res.scalars(
        ScalarGroup::new("MP-DASH vs default MPTCP")
            .with("cell_saving", mp.cell_saving_vs(base))
            .with("energy_saving", mp.energy_saving_vs(base)),
    );

    res.text("\ntraffic over two walk laps (1 s buckets):");
    for (name, r) in [
        ("MP-DASH", mp),
        ("default MPTCP", base),
        ("WiFi only", wifi_only),
    ] {
        res.text(format!("\n{name}:"));
        res.text(throughput_timeline(
            &r.records,
            SimDuration::from_secs(1),
            SimDuration::from_secs(60),
        ));
    }
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("fig11", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
