//! Figure 3: bitrate oscillation of the original BBA algorithm when the
//! MPTCP capacity (~3.4 Mbps) sits between two encoding bitrates
//! (2.41 and 3.94 Mbps for Big Buck Bunny), and how BBA-C locks the rate.

use mpdash_dash::abr::AbrKind;
use mpdash_results::{ExperimentResult, ScalarGroup};
use mpdash_session::{run_sessions, SessionConfig, SessionReport, TransportMode};
use mpdash_trace::table1;

fn oscillations(report: &SessionReport) -> (usize, Vec<usize>) {
    let levels: Vec<usize> = report.chunks.iter().map(|c| c.level).collect();
    let steady = &levels[levels.len() / 5..];
    let switches = steady.windows(2).filter(|w| w[0] != w[1]).count();
    (switches, levels)
}

/// Compute the experiment (two sessions, batched).
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig3",
        "Figure 3 — BBA bitrate oscillation at MPTCP capacity ~3.4 Mbps",
    )
    .with_quick(quick);
    // WiFi 2.0 + LTE 1.5 gives an aggregate goodput near 3.4 Mbps —
    // squarely between levels 4 (2.41) and 5 (3.94).
    let mk = |abr| {
        SessionConfig::controlled(
            table1::synthetic_profile_pair(2.0, 1.5, 0.05, 9),
            abr,
            TransportMode::Vanilla,
        )
    };
    let reports = run_sessions(vec![mk(AbrKind::Bba), mk(AbrKind::BbaC)]);
    let (bba, bbac) = (&reports[0], &reports[1]);

    let (bba_sw, bba_levels) = oscillations(bba);
    let (bbac_sw, _) = oscillations(bbac);

    res.text(format!(
        "BBA   steady-state switches: {bba_sw} (mean bitrate {:.2} Mbps)",
        bba.qoe.mean_bitrate_mbps
    ));
    res.text(format!(
        "BBA-C steady-state switches: {bbac_sw} (mean bitrate {:.2} Mbps)",
        bbac.qoe.mean_bitrate_mbps
    ));
    res.scalars(
        ScalarGroup::new("steady-state switches")
            .with("bba_switches", bba_sw as f64)
            .with("bbac_switches", bbac_sw as f64)
            .with("bba_mean_bitrate_mbps", bba.qoe.mean_bitrate_mbps)
            .with("bbac_mean_bitrate_mbps", bbac.qoe.mean_bitrate_mbps),
    );
    res.text("\nBBA level per chunk (steady state, 1 char per chunk):");
    let line: String = bba_levels
        .iter()
        .map(|&l| char::from_digit(l as u32, 10).unwrap_or('?'))
        .collect();
    res.text(line);
    res.text(
        "\nShape check: BBA oscillates (switches ≫ 0) while BBA-C locks the \
         highest sustainable level — the paper's §5.2.2 motivation.",
    );
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("fig3", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
