//! Figure 3: bitrate oscillation of the original BBA algorithm when the
//! MPTCP capacity (~3.4 Mbps) sits between two encoding bitrates
//! (2.41 and 3.94 Mbps for Big Buck Bunny), and how BBA-C locks the rate.

use crate::experiments::banner;
use mpdash_dash::abr::AbrKind;
use mpdash_session::{SessionConfig, SessionReport, StreamingSession, TransportMode};
use mpdash_trace::table1;

fn oscillations(report: &SessionReport) -> (usize, Vec<usize>) {
    let levels: Vec<usize> = report.chunks.iter().map(|c| c.level).collect();
    let steady = &levels[levels.len() / 5..];
    let switches = steady.windows(2).filter(|w| w[0] != w[1]).count();
    (switches, levels)
}

/// Run the experiment.
pub fn run() {
    banner("Figure 3 — BBA bitrate oscillation at MPTCP capacity ~3.4 Mbps");
    // WiFi 2.0 + LTE 1.5 gives an aggregate goodput near 3.4 Mbps —
    // squarely between levels 4 (2.41) and 5 (3.94).
    let mk = |abr| {
        SessionConfig::controlled(
            table1::synthetic_profile_pair(2.0, 1.5, 0.05, 9),
            abr,
            TransportMode::Vanilla,
        )
    };
    let bba = StreamingSession::run(mk(AbrKind::Bba));
    let bbac = StreamingSession::run(mk(AbrKind::BbaC));

    let (bba_sw, bba_levels) = oscillations(&bba);
    let (bbac_sw, _) = oscillations(&bbac);

    println!("BBA   steady-state switches: {bba_sw} (mean bitrate {:.2} Mbps)", bba.qoe.mean_bitrate_mbps);
    println!("BBA-C steady-state switches: {bbac_sw} (mean bitrate {:.2} Mbps)", bbac.qoe.mean_bitrate_mbps);
    println!("\nBBA level per chunk (steady state, 1 char per chunk):");
    let line: String = bba_levels
        .iter()
        .map(|&l| char::from_digit(l as u32, 10).unwrap_or('?'))
        .collect();
    println!("{line}");
    println!(
        "\nShape check: BBA oscillates (switches ≫ 0) while BBA-C locks the \
         highest sustainable level — the paper's §5.2.2 motivation."
    );
}
