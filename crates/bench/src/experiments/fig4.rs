//! Figure 4: the MP-DASH scheduler alone (single 5 MB download, WiFi
//! 3.8 / LTE 3.0 Mbps) — bytes over LTE and radio energy versus deadline
//! (8/9/10 s) under both stock MPTCP packet schedulers, plus the §7.2.1
//! α-sensitivity study.
//!
//! Shape targets: MP-DASH cuts LTE bytes and energy versus the baseline;
//! longer deadlines save more (paper: 68% cellular / 44% energy at 10 s);
//! α = 0.8 still saves (paper: 28% / 15%) but less than α = 1.

use crate::experiments::banner;
use crate::{mb, pct, Table};
use mpdash_dash::adapter::DeadlineMode;
use mpdash_mptcp::SchedulerKind;
use mpdash_session::{FileTransfer, FileTransferConfig, TransportMode};
use mpdash_sim::SimDuration;

fn mpdash(alpha: f64) -> TransportMode {
    TransportMode::MpDash {
        deadline: DeadlineMode::Rate,
        alpha,
    }
}

/// Run the experiment.
pub fn run() {
    banner("Figure 4 — MP-DASH scheduler alone: 5 MB, WiFi 3.8 / LTE 3.0");
    for sched in [SchedulerKind::MinRtt, SchedulerKind::RoundRobin] {
        let name = match sched {
            SchedulerKind::MinRtt => "default (minRTT)",
            SchedulerKind::RoundRobin => "round-robin",
        };
        println!("\nMPTCP scheduler: {name}");
        let base = FileTransfer::run(
            FileTransferConfig::testbed(3.8, 3.0, TransportMode::Vanilla).with_scheduler(sched),
        );
        let mut t = Table::new(&[
            "config", "LTE bytes", "energy (J)", "finish (s)", "LTE saving", "energy saving",
        ]);
        t.row(&[
            "Baseline".into(),
            mb(base.cell_bytes),
            format!("{:.1}", base.energy.total_j()),
            format!("{:.2}", base.duration.as_secs_f64()),
            "-".into(),
            "-".into(),
        ]);
        for d in [8u64, 9, 10] {
            let r = FileTransfer::run(
                FileTransferConfig::testbed(3.8, 3.0, mpdash(1.0))
                    .with_deadline(SimDuration::from_secs(d))
                    .with_scheduler(sched),
            );
            assert!(!r.missed_deadline, "deadline {d}s must be met");
            t.row(&[
                format!("MP-DASH D={d}s"),
                mb(r.cell_bytes),
                format!("{:.1}", r.energy.total_j()),
                format!("{:.2}", r.duration.as_secs_f64()),
                pct(1.0 - r.cell_bytes as f64 / base.cell_bytes as f64),
                pct(1.0 - r.energy.total_j() / base.energy.total_j()),
            ]);
        }
        println!("{}", t.render());
    }

    println!("\nα sensitivity at D = 10 s (minRTT):");
    let base = FileTransfer::run(FileTransferConfig::testbed(3.8, 3.0, TransportMode::Vanilla));
    let mut t = Table::new(&["alpha", "LTE bytes", "LTE saving", "energy saving", "finish (s)"]);
    for alpha in [1.0, 0.95, 0.9, 0.8] {
        let r = FileTransfer::run(
            FileTransferConfig::testbed(3.8, 3.0, mpdash(alpha))
                .with_deadline(SimDuration::from_secs(10)),
        );
        t.row(&[
            format!("{alpha:.2}"),
            mb(r.cell_bytes),
            pct(1.0 - r.cell_bytes as f64 / base.cell_bytes as f64),
            pct(1.0 - r.energy.total_j() / base.energy.total_j()),
            format!("{:.2}", r.duration.as_secs_f64()),
        ]);
    }
    println!("{}", t.render());
}
