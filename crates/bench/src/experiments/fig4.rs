//! Figure 4: the MP-DASH scheduler alone (single 5 MB download, WiFi
//! 3.8 / LTE 3.0 Mbps) — bytes over LTE and radio energy versus deadline
//! (8/9/10 s) under both stock MPTCP packet schedulers, plus the §7.2.1
//! α-sensitivity study.
//!
//! Shape targets: MP-DASH cuts LTE bytes and energy versus the baseline;
//! longer deadlines save more (paper: 68% cellular / 44% energy at 10 s);
//! α = 0.8 still saves (paper: 28% / 15%) but less than α = 1.

use crate::{mb, pct, Table};
use mpdash_dash::adapter::DeadlineMode;
use mpdash_mptcp::SchedulerSpec;
use mpdash_results::ExperimentResult;
use mpdash_session::{run_transfers, FileTransferConfig, TransportMode};
use mpdash_sim::SimDuration;

fn mpdash(alpha: f64) -> TransportMode {
    TransportMode::MpDash {
        deadline: DeadlineMode::Rate,
        alpha,
    }
}

const DEADLINES_S: [u64; 3] = [8, 9, 10];
const ALPHAS: [f64; 4] = [1.0, 0.95, 0.9, 0.8];

/// Compute the experiment: one flat transfer batch (baseline + deadline
/// grid per scheduler, then the α sweep), folded into per-scheduler
/// tables.
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig4",
        "Figure 4 — MP-DASH scheduler alone: 5 MB, WiFi 3.8 / LTE 3.0",
    )
    .with_quick(quick);

    let schedulers = [SchedulerSpec::MinRtt, SchedulerSpec::RoundRobin];
    let mut configs = Vec::new();
    for sched in schedulers {
        configs.push(
            FileTransferConfig::testbed(3.8, 3.0, TransportMode::Vanilla).with_scheduler(sched),
        );
        for d in DEADLINES_S {
            configs.push(
                FileTransferConfig::testbed(3.8, 3.0, mpdash(1.0))
                    .with_deadline(SimDuration::from_secs(d))
                    .with_scheduler(sched),
            );
        }
    }
    configs.push(FileTransferConfig::testbed(
        3.8,
        3.0,
        TransportMode::Vanilla,
    ));
    for alpha in ALPHAS {
        configs.push(
            FileTransferConfig::testbed(3.8, 3.0, mpdash(alpha))
                .with_deadline(SimDuration::from_secs(10)),
        );
    }
    let reports = run_transfers(configs);
    let mut next = reports.iter();

    for sched in schedulers {
        let name = match sched {
            SchedulerSpec::MinRtt => "default (minRTT)",
            SchedulerSpec::RoundRobin => "round-robin",
            _ => unreachable!("fig4 reproduces the paper's two stock schedulers"),
        };
        res.text(format!("\nMPTCP scheduler: {name}"));
        let base = next.next().unwrap();
        let mut t = Table::new(&[
            "config",
            "LTE bytes",
            "energy (J)",
            "finish (s)",
            "LTE saving",
            "energy saving",
        ]);
        t.row(&[
            "Baseline".into(),
            mb(base.cell_bytes),
            format!("{:.1}", base.energy.total_j()),
            format!("{:.2}", base.duration.as_secs_f64()),
            "-".into(),
            "-".into(),
        ]);
        for d in DEADLINES_S {
            let r = next.next().unwrap();
            assert!(!r.missed_deadline, "deadline {d}s must be met");
            t.row(&[
                format!("MP-DASH D={d}s"),
                mb(r.cell_bytes),
                format!("{:.1}", r.energy.total_j()),
                format!("{:.2}", r.duration.as_secs_f64()),
                pct(1.0 - r.cell_bytes as f64 / base.cell_bytes as f64),
                pct(1.0 - r.energy.total_j() / base.energy.total_j()),
            ]);
        }
        res.table(t);
    }

    res.text("\nα sensitivity at D = 10 s (minRTT):");
    let base = next.next().unwrap();
    let mut t = Table::new(&[
        "alpha",
        "LTE bytes",
        "LTE saving",
        "energy saving",
        "finish (s)",
    ]);
    for alpha in ALPHAS {
        let r = next.next().unwrap();
        t.row(&[
            format!("{alpha:.2}"),
            mb(r.cell_bytes),
            pct(1.0 - r.cell_bytes as f64 / base.cell_bytes as f64),
            pct(1.0 - r.energy.total_j() / base.energy.total_j()),
            format!("{:.2}", r.duration.as_secs_f64()),
        ]);
    }
    res.table(t);
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("fig4", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
