//! Figure 5: two field bandwidth traces (Fast Food, Coffeehouse) together
//! with their Holt-Winters one-step-ahead predictions.
//!
//! Shape target: the prediction tracks the fluctuating trace closely,
//! with bounded lag — the property Table 2's small online-vs-optimal gap
//! relies on.

use crate::Table;
use mpdash_core::predict::{HoltWinters, Predictor};
use mpdash_results::{ExperimentResult, MetricSeries, ScalarGroup};
use mpdash_sim::{SimDuration, SimTime};
use mpdash_trace::table1;

/// Compute the experiment. Pure prediction replay, so `quick` only tags
/// the artifact.
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig5",
        "Figure 5 — bandwidth traces and Holt-Winters prediction",
    )
    .with_quick(quick);
    let rows = table1::table1_rows();
    for row in rows
        .iter()
        .filter(|r| r.name.contains("Fast Food") || r.name.contains("Coffeehouse"))
    {
        res.text(format!("\ntrace: {}", row.name));
        let slot = SimDuration::from_millis(500);
        let mut hw = HoltWinters::default();
        let mut t = Table::new(&["t (s)", "actual Mbps", "HW forecast Mbps", "error"]);
        let mut forecast_points = Vec::new();
        let mut abs_err = 0.0;
        let mut n = 0;
        for i in 0..70 {
            let at = SimTime::ZERO + slot * i;
            let actual = row.wifi.rate_at(at).as_mbps_f64();
            let forecast = hw.forecast().map(|r| r.as_mbps_f64());
            if let Some(f) = forecast {
                abs_err += (f - actual).abs();
                n += 1;
                forecast_points.push((at.as_secs_f64(), f));
                if i % 4 == 0 {
                    t.row(&[
                        format!("{:.1}", at.as_secs_f64()),
                        format!("{actual:.2}"),
                        format!("{f:.2}"),
                        format!("{:+.2}", f - actual),
                    ]);
                }
            }
            hw.observe(row.wifi.rate_at(at));
        }
        res.table(t);
        res.series(MetricSeries::from_points(
            format!("hw_forecast/{}", row.name),
            "Mbps",
            forecast_points,
        ));
        let mean_abs_err = abs_err / n as f64;
        res.text(format!("mean |error| over 35 s: {mean_abs_err:.3} Mbps"));
        res.scalars(
            ScalarGroup::new(format!("prediction error — {}", row.name))
                .with("mean_abs_error_mbps", mean_abs_err),
        );
    }
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("fig5", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
