//! Figure 5: two field bandwidth traces (Fast Food, Coffeehouse) together
//! with their Holt-Winters one-step-ahead predictions.
//!
//! Shape target: the prediction tracks the fluctuating trace closely,
//! with bounded lag — the property Table 2's small online-vs-optimal gap
//! relies on.

use crate::experiments::banner;
use crate::Table;
use mpdash_core::predict::{HoltWinters, Predictor};
use mpdash_trace::table1;
use mpdash_sim::{SimDuration, SimTime};

/// Run the experiment.
pub fn run() {
    banner("Figure 5 — bandwidth traces and Holt-Winters prediction");
    let rows = table1::table1_rows();
    for row in rows.iter().filter(|r| r.name.contains("Fast Food") || r.name.contains("Coffeehouse")) {
        println!("\ntrace: {}", row.name);
        let slot = SimDuration::from_millis(500);
        let mut hw = HoltWinters::default();
        let mut t = Table::new(&["t (s)", "actual Mbps", "HW forecast Mbps", "error"]);
        let mut abs_err = 0.0;
        let mut n = 0;
        for i in 0..70 {
            let at = SimTime::ZERO + slot * i;
            let actual = row.wifi.rate_at(at).as_mbps_f64();
            let forecast = hw.forecast().map(|r| r.as_mbps_f64());
            if let Some(f) = forecast {
                abs_err += (f - actual).abs();
                n += 1;
                if i % 4 == 0 {
                    t.row(&[
                        format!("{:.1}", at.as_secs_f64()),
                        format!("{actual:.2}"),
                        format!("{f:.2}"),
                        format!("{:+.2}", f - actual),
                    ]);
                }
            }
            hw.observe(row.wifi.rate_at(at));
        }
        println!("{}", t.render());
        println!("mean |error| over 35 s: {:.3} Mbps", abs_err / n as f64);
    }
}
