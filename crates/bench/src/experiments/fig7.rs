//! Figure 7(a–c): MP-DASH resource savings for FESTIVE, BBA and BBA-C
//! under the three controlled network conditions — W3.8/L3.0, W2.8/L3.0
//! and W2.2/L1.2 Mbps (Big Buck Bunny, 4 s chunks).
//!
//! Shape targets: savings for FESTIVE in all conditions, rate-based ≥
//! duration-based; BBA saves less (it is more aggressive) and nothing at
//! W2.2/L1.2 where it oscillates; BBA-C unlocks savings there by locking
//! the sustainable level (paper: ~69% cellular / 50% energy at a ~29%
//! bitrate cost versus oscillating BBA).

use crate::experiments::banner;
use crate::{mb, pct, Table};
use mpdash_dash::abr::AbrKind;
use mpdash_session::{SessionConfig, SessionReport, StreamingSession, TransportMode};
use mpdash_trace::table1;

const CONDITIONS: [(&str, f64, f64); 3] = [
    ("W3.8/L3.0", 3.8, 3.0),
    ("W2.8/L3.0", 2.8, 3.0),
    ("W2.2/L1.2", 2.2, 1.2),
];

fn run_one(wifi: f64, lte: f64, abr: AbrKind, mode: TransportMode) -> SessionReport {
    let cfg = SessionConfig::controlled(
        table1::synthetic_profile_pair(wifi, lte, 0.10, 42),
        abr,
        mode,
    );
    StreamingSession::run(cfg)
}

/// Run the experiment.
pub fn run() {
    banner("Figure 7 — FESTIVE / BBA / BBA-C under three network conditions");
    for abr in [AbrKind::Festive, AbrKind::Bba, AbrKind::BbaC] {
        println!("\n--- {} ---", abr.name());
        let mut t = Table::new(&[
            "condition", "config", "cell bytes", "energy (J)", "bitrate", "stalls",
            "cell saving", "energy saving",
        ]);
        for (cname, w, l) in CONDITIONS {
            let base = run_one(w, l, abr, TransportMode::Vanilla);
            for (mname, mode) in [
                ("Baseline", TransportMode::Vanilla),
                ("Duration", TransportMode::mpdash_duration_based()),
                ("Rate", TransportMode::mpdash_rate_based()),
            ] {
                let r = if mname == "Baseline" {
                    base.clone()
                } else {
                    run_one(w, l, abr, mode)
                };
                t.row(&[
                    cname.into(),
                    mname.into(),
                    mb(r.cell_bytes),
                    format!("{:.1}", r.energy.total_j()),
                    format!("{:.2}", r.qoe.mean_bitrate_mbps),
                    format!("{}", r.qoe.stalls),
                    if mname == "Baseline" {
                        "-".into()
                    } else {
                        pct(r.cell_saving_vs(&base))
                    },
                    if mname == "Baseline" {
                        "-".into()
                    } else {
                        pct(r.energy_saving_vs(&base))
                    },
                ]);
            }
        }
        println!("{}", t.render());
    }
    println!(
        "\nBBA vs BBA-C at W2.2/L1.2: BBA-C trades the oscillating 4↔5 \
         playback for a locked level, giving MP-DASH room to save (§7.3.2)."
    );
}
