//! Figure 7(a–c): MP-DASH resource savings for FESTIVE, BBA and BBA-C
//! under the three controlled network conditions — W3.8/L3.0, W2.8/L3.0
//! and W2.2/L1.2 Mbps (Big Buck Bunny, 4 s chunks).
//!
//! Shape targets: savings for FESTIVE in all conditions, rate-based ≥
//! duration-based; BBA saves less (it is more aggressive) and nothing at
//! W2.2/L1.2 where it oscillates; BBA-C unlocks savings there by locking
//! the sustainable level (paper: ~69% cellular / 50% energy at a ~29%
//! bitrate cost versus oscillating BBA).

use crate::{mb, pct, Table};
use mpdash_dash::abr::AbrKind;
use mpdash_results::ExperimentResult;
use mpdash_session::{run_batch, Job, SessionConfig, TransportMode};
use mpdash_trace::table1;

const CONDITIONS: [(&str, f64, f64); 3] = [
    ("W3.8/L3.0", 3.8, 3.0),
    ("W2.8/L3.0", 2.8, 3.0),
    ("W2.2/L1.2", 2.2, 1.2),
];

/// A transport-mode constructor, named so the mode table stays legible.
type ModeCtor = fn() -> TransportMode;

const MODES: [(&str, ModeCtor); 3] = [
    ("Baseline", || TransportMode::Vanilla),
    ("Duration", TransportMode::mpdash_duration_based),
    ("Rate", TransportMode::mpdash_rate_based),
];

fn config(wifi: f64, lte: f64, abr: AbrKind, mode: TransportMode) -> SessionConfig {
    SessionConfig::controlled(
        table1::synthetic_profile_pair(wifi, lte, 0.10, 42),
        abr,
        mode,
    )
}

/// Compute the experiment: the full 3 ABRs × 3 conditions × 3 modes grid
/// as one batch, folded into one table per ABR.
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig7",
        "Figure 7 — FESTIVE / BBA / BBA-C under three network conditions",
    )
    .with_quick(quick);

    let abrs = [AbrKind::Festive, AbrKind::Bba, AbrKind::BbaC];
    let mut jobs = Vec::new();
    for abr in abrs {
        for (cname, w, l) in CONDITIONS {
            for (mname, mode) in MODES {
                jobs.push(Job::session(
                    format!("{}/{cname}/{mname}", abr.name()),
                    config(w, l, abr, mode()),
                ));
            }
        }
    }
    let results = run_batch(jobs);
    let mut next = results.iter();

    for abr in abrs {
        res.text(format!("\n--- {} ---", abr.name()));
        let mut t = Table::new(&[
            "condition",
            "config",
            "cell bytes",
            "energy (J)",
            "bitrate",
            "stalls",
            "cell saving",
            "energy saving",
        ]);
        for (cname, _, _) in CONDITIONS {
            // The batch keeps input order, so each condition's three mode
            // rows arrive together, baseline first.
            let rows: Vec<_> = MODES
                .iter()
                .map(|_| next.next().unwrap().session().expect("session job"))
                .collect();
            let base = rows[0];
            for ((mname, _), r) in MODES.iter().zip(&rows) {
                let is_base = *mname == "Baseline";
                t.row(&[
                    cname.into(),
                    (*mname).into(),
                    mb(r.cell_bytes),
                    format!("{:.1}", r.energy.total_j()),
                    format!("{:.2}", r.qoe.mean_bitrate_mbps),
                    format!("{}", r.qoe.stalls),
                    if is_base {
                        "-".into()
                    } else {
                        pct(r.cell_saving_vs(base))
                    },
                    if is_base {
                        "-".into()
                    } else {
                        pct(r.energy_saving_vs(base))
                    },
                ]);
            }
        }
        res.table(t);
    }
    res.text(
        "\nBBA vs BBA-C at W2.2/L1.2: BBA-C trades the oscillating 4↔5 \
         playback for a locked level, giving MP-DASH room to save (§7.3.2).",
    );
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("fig7", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
