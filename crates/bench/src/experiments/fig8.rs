//! Figure 8: the analysis tool's chunk-bar visualization, comparing
//! default MPTCP against MP-DASH with rate- and duration-based deadlines
//! (FESTIVE, W3.8/L3.0).
//!
//! Shape targets: the default MPTCP rows show large cellular fractions
//! in every chunk; MP-DASH rows show mostly-WiFi chunks with occasional
//! cellular slivers, and the duration-based setting uses more cellular on
//! larger-than-nominal chunks than the rate-based one.

use mpdash_analysis::{analyze, chunk_path_splits, render_chunk_bars, ChunkInfo};
use mpdash_dash::abr::AbrKind;
use mpdash_results::ExperimentResult;
use mpdash_session::{run_sessions, SessionConfig, SessionReport, TransportMode};
use mpdash_trace::table1;

fn chunk_infos(report: &SessionReport) -> Vec<ChunkInfo> {
    report
        .chunks
        .iter()
        .map(|c| ChunkInfo {
            index: c.index,
            level: c.level,
            size: c.size,
            started: c.started,
            completed: c.completed,
            body_dss: (c.body_dss.start, c.body_dss.end),
        })
        .collect()
}

/// Compute the experiment (three sessions, batched).
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig8",
        "Figure 8 — analysis-tool chunk bars (FESTIVE, W3.8/L3.0)",
    )
    .with_quick(quick);
    let modes = [
        ("default MPTCP", TransportMode::Vanilla),
        ("MP-DASH rate-based", TransportMode::mpdash_rate_based()),
        (
            "MP-DASH duration-based",
            TransportMode::mpdash_duration_based(),
        ),
    ];
    let configs = modes
        .iter()
        .map(|&(_, mode)| {
            SessionConfig::controlled(
                table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
                AbrKind::Festive,
                mode,
            )
        })
        .collect();
    let reports = run_sessions(configs);
    for ((name, _), report) in modes.iter().zip(&reports) {
        let chunks = chunk_infos(report);
        let splits = chunk_path_splits(&report.records, &chunks);
        let a = analyze(&report.records, &chunks, 5);
        res.text(format!("\n{name} — chunks 30..46 (of {}):", chunks.len()));
        res.text(render_chunk_bars(&chunks[30..46], &splits[30..46], 24));
        res.text(format!(
            "session cellular body bytes: {:.2} MB | idle gaps >0.5 s: {} | switches: {}",
            a.cell_body_bytes as f64 / 1e6,
            a.idle_gaps.len(),
            a.switches
        ));
    }
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("fig8", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
