//! `exp_fleet` — multi-client contention at shared bottlenecks (beyond
//! the paper).
//!
//! Every other experiment gives one client a private pair of links; this
//! one puts N streaming sessions behind one WiFi AP and one cellular
//! sector (both [`mpdash_link::SharedBottleneck`]s whose capacity scales
//! with the fleet so per-client shares stay scarce), crossed with:
//!
//! * **queue discipline** — FIFO/DropTail vs flow-queue round-robin
//!   (the FQ-PIE spirit: per-flow isolation at the shared queue);
//! * **transport mode** — vanilla MPTCP with its minRTT scheduler vs
//!   MP-DASH with rate-based deadlines.
//!
//! The fold asserts the two fleet invariants this PR promises:
//!
//! 1. MP-DASH's cellular savings *survive contention*: at every fleet
//!    size and under both disciplines, the MP-DASH fleet moves fewer
//!    cellular bytes than the minRTT fleet;
//! 2. flow-queuing never hurts fairness: at every size and mode, FQ's
//!    Jain index on per-client bitrate is at least FIFO's.
//!
//! Each fleet replica runs as one [`mpdash_session::Job`] (a custom job
//! returning the replica's summary JSON), so the size × discipline ×
//! mode grid shards over `MPDASH_WORKERS` with bit-identical artifacts
//! at any worker count.

use crate::Table;
use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_fleet::{fleet_job, FleetConfig, SharedLinkSpec};
use mpdash_link::{QueueDiscipline, SharedBottleneckConfig};
use mpdash_results::{ExperimentResult, Json, ScalarGroup};
use mpdash_session::{run_batch, run_batch_with, BatchResult, Job, SessionConfig, TransportMode};
use mpdash_sim::SimDuration;

/// MTU-sized DRR quantum (one full packet per round).
const FQ_QUANTUM: u64 = 1540;

/// Quick starts at 4 clients: a 2-client "fleet" is barely contended,
/// so its fairness indices are within noise of each other and say
/// nothing about the disciplines.
fn fleet_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![4, 8]
    } else {
        vec![4, 8, 16]
    }
}

fn disciplines() -> [QueueDiscipline; 2] {
    [
        QueueDiscipline::Fifo,
        QueueDiscipline::FlowQueue {
            quantum: FQ_QUANTUM,
        },
    ]
}

/// minRTT first: the fold computes the cellular-savings invariant
/// against it.
fn modes() -> [TransportMode; 2] {
    [TransportMode::Vanilla, TransportMode::mpdash_rate_based()]
}

fn mode_name(mode: &TransportMode) -> &'static str {
    match mode {
        TransportMode::Vanilla => "minRTT",
        _ => "mpdash",
    }
}

/// Same 20-chunk ladder in both shapes: shorter videos are dominated by
/// the ABR ramp transient, whose fairness is window noise rather than a
/// property of the queue discipline. Quick saves time on fleet sizes,
/// not session length.
fn fleet_video() -> Video {
    Video::new(
        "BBB-fleet",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        20,
    )
}

/// One fleet cell of the grid. Capacity scales with the fleet — the AP
/// gives each client ~2.5 Mbps and the sector ~0.75 Mbps, so the
/// 3.94 Mbps top level never fits and the shared queues stay contended
/// at every size, while WiFi keeps enough headroom that a
/// deadline-aware scheduler *can* shed cellular traffic (with no
/// headroom at all, deadline pressure forces cellular on for everyone
/// and there are no savings left to measure).
fn fleet_cfg(clients: usize, d: QueueDiscipline, mode: TransportMode) -> FleetConfig {
    let base = SessionConfig::controlled_mbps(50.0, 30.0, AbrKind::Festive, mode)
        .with_video(fleet_video());
    FleetConfig::new(base, clients)
        .with_stagger(SimDuration::from_secs(1))
        // Heterogeneous RTTs (client k: +10k ms one-way) are what let
        // FIFO's RTT bias show; DRR should erase it.
        .with_rtt_skew(SimDuration::from_millis(10))
        .with_seed(11)
        .with_shared(SharedLinkSpec::wifi_ap(
            SharedBottleneckConfig::fifo_mbps(2.5 * clients as f64).with_discipline(d),
        ))
        .with_shared(SharedLinkSpec::cell_sector(
            SharedBottleneckConfig::fifo_mbps(0.75 * clients as f64).with_discipline(d),
        ))
}

fn jobs(quick: bool) -> Vec<Job> {
    let mut jobs = Vec::new();
    for &clients in &fleet_sizes(quick) {
        for d in disciplines() {
            for mode in modes() {
                jobs.push(fleet_job(
                    format!("n{clients}/{}/{}", d.label(), mode_name(&mode)),
                    fleet_cfg(clients, d, mode),
                ));
            }
        }
    }
    jobs
}

fn num(j: &Json, key: &str) -> f64 {
    j.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("fleet summary missing '{key}'"))
}

fn fold(quick: bool, batch: Vec<BatchResult>) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fleet",
        "Fleet contention — N clients sharing an AP and a cell sector",
    )
    .with_quick(quick);
    res.text(concat!(
        "\nN sessions share one WiFi AP (2.5 Mbps/client) and one cell\n",
        "sector (0.75 Mbps/client), FIFO vs flow-queue (DRR), minRTT vs\n",
        "MP-DASH. Invariants: MP-DASH moves fewer cellular bytes than\n",
        "minRTT at every size and discipline, and FQ's Jain bitrate\n",
        "fairness is never below FIFO's at the same size and mode.",
    ));

    let mut t = Table::new(&[
        "clients",
        "queue",
        "mode",
        "bitrate",
        "jain(bitrate)",
        "jain(cell)",
        "cell MB",
        "miss rate",
        "stalls",
        "drops",
    ]);
    let mut next = batch.iter();
    let mut worst_cell_ratio: f64 = 0.0;
    let mut worst_jain_delta: f64 = f64::INFINITY;
    for &clients in &fleet_sizes(quick) {
        // jain_bitrate per (discipline, mode), indexed [d][m].
        let mut jains = [[0.0f64; 2]; 2];
        for (di, d) in disciplines().into_iter().enumerate() {
            let mut minrtt_cell = 0.0f64;
            for (mi, mode) in modes().into_iter().enumerate() {
                let j = next.next().unwrap().value().expect("fleet job").clone();
                let cell = num(&j, "total_cell_bytes");
                let jain_bitrate = num(&j, "jain_bitrate");
                jains[di][mi] = jain_bitrate;
                let mean_bitrate: f64 = j
                    .get("per_client")
                    .and_then(|v| v.as_arr())
                    .map(|rows| {
                        rows.iter()
                            .map(|r| num(r, "mean_bitrate_mbps"))
                            .sum::<f64>()
                            / rows.len().max(1) as f64
                    })
                    .unwrap_or(0.0);
                let drops: f64 = j
                    .get("bottlenecks")
                    .and_then(|v| v.as_arr())
                    .map(|bns| bns.iter().map(|b| num(b, "dropped_packets")).sum())
                    .unwrap_or(0.0);
                t.row(&[
                    format!("{clients}"),
                    d.label().into(),
                    mode_name(&mode).into(),
                    format!("{mean_bitrate:.2}"),
                    format!("{jain_bitrate:.4}"),
                    format!("{:.4}", num(&j, "jain_cell_bytes")),
                    format!("{:.2}", cell / 1e6),
                    format!("{:.3}", num(&j, "deadline_miss_rate")),
                    format!("{}", num(&j, "total_stalls") as u64),
                    format!("{drops}"),
                ]);
                match mode {
                    TransportMode::Vanilla => minrtt_cell = cell,
                    _ => {
                        // Invariant 1: cellular savings survive contention.
                        assert!(
                            cell < minrtt_cell,
                            "n{clients}/{}: MP-DASH cellular {cell} >= minRTT {minrtt_cell}",
                            d.label()
                        );
                        worst_cell_ratio = worst_cell_ratio.max(cell / minrtt_cell.max(1.0));
                    }
                }
            }
        }
        // Invariant 2: FQ is at least as fair as FIFO, per mode.
        for (mi, mode) in modes().into_iter().enumerate() {
            let (fifo, fq) = (jains[0][mi], jains[1][mi]);
            assert!(
                fq + 1e-9 >= fifo,
                "n{clients}/{}: FQ jain {fq:.4} < FIFO jain {fifo:.4}",
                mode_name(&mode)
            );
            worst_jain_delta = worst_jain_delta.min(fq - fifo);
        }
    }
    res.table(t);
    res.scalars(
        ScalarGroup::new("fleet invariants")
            .with("worst_mpdash_cell_ratio_vs_minrtt", worst_cell_ratio)
            .with("min_fq_minus_fifo_jain_bitrate", worst_jain_delta),
    );
    res
}

/// Compute the fleet grid on the default worker pool.
pub fn result(quick: bool) -> ExperimentResult {
    fold(quick, run_batch(jobs(quick)))
}

/// Same grid on an explicit worker count — the determinism test pins
/// both sides of its comparison with this.
pub fn result_with_workers(quick: bool, workers: usize) -> ExperimentResult {
    fold(quick, run_batch_with(jobs(quick), workers))
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("fleet", quick, result);
}

/// Full grid behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}

#[cfg(test)]
mod tests {
    /// The acceptance property: the persisted artifact is bit-identical
    /// at any worker count (1 is the sequential reference).
    #[test]
    fn artifact_is_bit_identical_across_worker_counts() {
        let seq = super::result_with_workers(true, 1);
        let par = super::result_with_workers(true, 4);
        assert_eq!(
            seq.to_json().to_pretty(),
            par.to_json().to_pretty(),
            "exp_fleet must serialize identically at any MPDASH_WORKERS"
        );
    }
}
