//! `exp_lifecycle` — the request-lifecycle resilience matrix (beyond
//! the paper).
//!
//! Every server-side fault family of [`mpdash_http::ServerFaultScript`]
//! is injected at the origin mid-session and crossed with three request
//! lifecycle policies:
//!
//! * **wait** — wait-forever: never times out, naive immediate
//!   re-request on a 5xx (the pre-PR-4 behaviour);
//! * **retry** — seeded exponential backoff + jitter on 5xx, but no
//!   mid-download abandonment;
//! * **resume** — the full deadline-aware machinery: stall/deadline
//!   timeouts, mid-chunk abandonment, byte-range resume.
//!
//! The fold asserts the robustness invariants the lifecycle work
//! promises, per fault script:
//!
//! 1. **resume** never misses more chunk deadlines than **wait**;
//! 2. **resume** never stalls playback longer than **wait**;
//! 3. on at least one script the improvement is strict (the stalled-body
//!    fault, where wait-forever rides out a 30 s freeze that resume
//!    cancels within its stall window);
//! 4. every abandonment is followed by exactly one byte-range resume and
//!    no chunk is lost to a cancel.
//!
//! All sessions run MP-DASH rate-based deadlines over the controlled
//! W4.5/C4.0 pair with a deliberately small (10 s) player buffer so a
//! frozen response body actually reaches the screen as a stall. Like
//! every experiment, the artifact is bit-identical at any
//! `MPDASH_WORKERS` setting.

use crate::Table;
use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_http::{LifecyclePolicy, ServerFaultScript};
use mpdash_results::{ExperimentResult, ScalarGroup};
use mpdash_session::{
    run_batch, run_batch_with, BatchResult, Job, SessionConfig, SessionReport, TransportMode,
};
use mpdash_sim::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// The server-fault axis: a 5xx burst, a mid-body freeze far longer
/// than any sane timeout, a slow-first-byte window, and a combination.
fn fault_scripts() -> Vec<(&'static str, ServerFaultScript)> {
    vec![
        (
            "err-burst",
            ServerFaultScript::new().error_burst(secs(10), SimDuration::from_secs(3)),
        ),
        // The fault window spans 6 s — wider than the steady-state
        // request cadence (one 4 s chunk at a time) — so at least one
        // response is guaranteed to freeze mid-body for 30 s.
        (
            "stalled-body",
            ServerFaultScript::new().stalled_body(
                secs(8),
                SimDuration::from_secs(6),
                SimDuration::from_secs(30),
                0.5,
            ),
        ),
        // The first-byte delay sits just *below* the deadline-aware
        // stall window (1.5 s): the row checks the policy does not
        // spuriously cancel a request that is merely slow to start —
        // abandoning here would re-pay the delay on every resume.
        (
            "slow-first-byte",
            ServerFaultScript::new().slow_first_byte(
                secs(12),
                SimDuration::from_secs(6),
                SimDuration::from_secs(1),
            ),
        ),
        (
            "combined",
            ServerFaultScript::new()
                .error_burst(secs(5), SimDuration::from_secs(2))
                .stalled_body(
                    secs(20),
                    SimDuration::from_secs(6),
                    SimDuration::from_secs(30),
                    0.4,
                ),
        ),
    ]
}

/// The policy axis; **wait** comes first so the fold can baseline
/// against it.
fn policies() -> [(&'static str, LifecyclePolicy); 3] {
    [
        ("wait", LifecyclePolicy::wait_forever()),
        ("retry", LifecyclePolicy::retry_only()),
        ("resume", LifecyclePolicy::deadline_aware()),
    ]
}

fn lifecycle_video(quick: bool) -> Video {
    let chunks = if quick { 20 } else { 30 };
    Video::new(
        "BBB-lifecycle",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        chunks,
    )
}

fn jobs(quick: bool) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (fault_name, script) in fault_scripts() {
        for (policy_name, policy) in policies() {
            let cfg = SessionConfig::controlled_mbps(
                4.5,
                4.0,
                AbrKind::Festive,
                TransportMode::mpdash_rate_based(),
            )
            .with_video(lifecycle_video(quick))
            .with_buffer_capacity(SimDuration::from_secs(10))
            .with_server_faults(script.clone())
            .with_lifecycle(policy);
            jobs.push(Job::session(format!("{fault_name}/{policy_name}"), cfg));
        }
    }
    jobs
}

/// Chunk-log deadline misses: chunks the scheduler granted a window
/// that took longer than the window to arrive. Policy-independent
/// (unlike the in-scheduler counter, it sees resumed chunks complete),
/// so it is the fair basis for the wait-vs-resume comparison.
fn log_deadline_misses(r: &SessionReport) -> u64 {
    r.chunks
        .iter()
        .filter(|c| match c.deadline {
            Some(d) => c.completed.saturating_since(c.started) > d,
            None => false,
        })
        .count() as u64
}

fn fold(quick: bool, batch: Vec<BatchResult>) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "lifecycle",
        "Request-lifecycle matrix — server-side faults x timeout/abandon/resume policy",
    )
    .with_quick(quick);
    res.text(concat!(
        "\nEvery fault is injected at the origin server; the invariants\n",
        "checked: abandonment+resume never misses more deadlines and never\n",
        "stalls longer than wait-forever under any fault script, with a\n",
        "strict improvement on at least one, and every abandonment is\n",
        "followed by exactly one byte-range resume.",
    ));

    let mut t = Table::new(&[
        "fault",
        "policy",
        "stalls",
        "stall s",
        "misses",
        "timeouts",
        "abandoned",
        "resumed",
        "retried",
        "wasted KB",
        "dur s",
    ]);
    let mut next = batch.iter();
    let mut strict_improvements = 0u64;
    let mut worst_excess_misses: i64 = i64::MIN;
    let mut total_wasted = 0u64;
    for (fault_name, _) in fault_scripts() {
        let mut wait_misses = 0u64;
        let mut wait_stall = SimDuration::ZERO;
        for (policy_name, _) in policies() {
            let r = next.next().unwrap().session().expect("session job");
            let misses = log_deadline_misses(r);
            let lc = r.lifecycle;
            t.row(&[
                fault_name.into(),
                policy_name.into(),
                format!("{}", r.qoe_all.stalls),
                format!("{:.2}", r.qoe_all.stall_time.as_secs_f64()),
                format!("{misses}"),
                format!("{}", lc.timeouts),
                format!("{}", lc.abandoned),
                format!("{}", lc.resumed),
                format!("{}", lc.retried),
                format!("{:.1}", lc.wasted_bytes as f64 / 1e3),
                format!("{:.1}", r.duration.as_secs_f64()),
            ]);
            // Invariant 4: cancellation never loses a chunk, and every
            // abandonment resumes exactly once.
            assert_eq!(
                lc.resumed, lc.abandoned,
                "{fault_name}/{policy_name}: {} abandons but {} resumes",
                lc.abandoned, lc.resumed
            );
            total_wasted += lc.wasted_bytes;
            match policy_name {
                "wait" => {
                    wait_misses = misses;
                    wait_stall = r.qoe_all.stall_time;
                    assert_eq!(lc.abandoned, 0, "wait-forever must never cancel");
                }
                "resume" => {
                    // No false positives: a first-byte delay below the
                    // stall window must never trigger an abandonment.
                    if fault_name == "slow-first-byte" {
                        assert_eq!(
                            lc.abandoned, 0,
                            "slow-first-byte below the stall window spuriously cancelled"
                        );
                    }
                    // Invariants 1 + 2: abandonment+resume dominates
                    // wait-forever on every script.
                    assert!(
                        misses <= wait_misses,
                        "{fault_name}: resume missed {misses} vs wait {wait_misses}"
                    );
                    assert!(
                        r.qoe_all.stall_time <= wait_stall,
                        "{fault_name}: resume stalled {:.2}s vs wait {:.2}s",
                        r.qoe_all.stall_time.as_secs_f64(),
                        wait_stall.as_secs_f64()
                    );
                    if misses < wait_misses || r.qoe_all.stall_time < wait_stall {
                        strict_improvements += 1;
                    }
                    worst_excess_misses =
                        worst_excess_misses.max(misses as i64 - wait_misses as i64);
                }
                _ => {}
            }
        }
    }
    // Invariant 3: the machinery must actually pay off somewhere.
    assert!(
        strict_improvements >= 1,
        "abandonment+resume strictly improved on no fault script:\n{}",
        t.render()
    );
    res.table(t);
    res.scalars(
        ScalarGroup::new("lifecycle invariants")
            .with("strict_improvements", strict_improvements as f64)
            .with("worst_excess_misses_vs_wait", worst_excess_misses as f64)
            .with("total_wasted_bytes", total_wasted as f64),
    );
    res
}

/// Compute the lifecycle matrix on the default worker pool.
pub fn result(quick: bool) -> ExperimentResult {
    fold(quick, run_batch(jobs(quick)))
}

/// Same matrix on an explicit worker count — the determinism test pins
/// both sides of its comparison with this.
pub fn result_with_workers(quick: bool, workers: usize) -> ExperimentResult {
    fold(quick, run_batch_with(jobs(quick), workers))
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("lifecycle", quick, result);
}

/// Full matrix behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}

#[cfg(test)]
mod tests {
    /// The acceptance property: the persisted artifact is bit-identical
    /// at any worker count (1 is the sequential reference).
    #[test]
    fn artifact_is_bit_identical_across_worker_counts() {
        let seq = super::result_with_workers(true, 1);
        let par = super::result_with_workers(true, 4);
        assert_eq!(
            seq.to_json().to_pretty(),
            par.to_json().to_pretty(),
            "exp_lifecycle must serialize identically at any MPDASH_WORKERS"
        );
    }
}
