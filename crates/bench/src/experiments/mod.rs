//! One module per reproduced table/figure. Each exposes `run()`, which
//! prints the regenerated rows/series to stdout; the `exp_*` binaries are
//! thin wrappers, and `exp_all` chains every experiment.

pub mod ablation;
pub mod field;
pub mod fig1;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod motivation;
pub mod mpc;
pub mod tab2;
pub mod tab4;
pub mod tab6;

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}
