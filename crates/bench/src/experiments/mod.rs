//! One module per reproduced table/figure.
//!
//! Every module follows the same pipeline:
//!
//! * `result(quick) -> ExperimentResult` **computes** the experiment —
//!   building a flat job list, fanning it over
//!   [`mpdash_session::run_batch`], and folding the reports into typed
//!   blocks (tables, CDF summaries, series, scalars);
//! * [`execute`] **renders** the result to stdout and **persists** it as
//!   a JSON artifact under `results/` (see
//!   [`mpdash_results::write_artifact`]);
//! * `run()` wires the two together behind the shared `--quick` /
//!   `MPDASH_QUICK` switch ([`crate::cli::quick_requested`]).
//!
//! The `exp_*` binaries are thin wrappers over `run()`, and `exp_all`
//! chains every experiment. Because rendering is a pure function of the
//! result, re-rendering a deserialized artifact reproduces the printed
//! report byte-for-byte — the round-trip the test suite asserts.

pub mod ablation;
pub mod aqm;
pub mod churn;
pub mod faults;
pub mod field;
pub mod fig1;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fleet;
pub mod lifecycle;
pub mod motivation;
pub mod mpc;
pub mod origin;
pub mod sched;
pub mod tab2;
pub mod tab4;
pub mod tab6;

use mpdash_results::{artifact_dir, write_artifact, ExperimentResult};

/// Render `result` to stdout and persist its JSON artifact; the artifact
/// path goes to stderr so piped stdout stays a clean report.
pub fn execute(result: &ExperimentResult) {
    print!("{}", result.render());
    match write_artifact(result) {
        Ok(path) => eprintln!("[artifact] {}", path.display()),
        Err(e) => {
            let path = artifact_dir().join(format!("{}.json", result.name));
            eprintln!("[artifact] {} not written: {e}", path.display());
        }
    }
}

/// Compute `result(quick)`, then render and persist it, reporting
/// per-stage wall-clock on stderr as `[stage]` lines. Timing is
/// diagnostic only: it goes to stderr, never into stdout or the
/// artifact, so reports stay byte-stable across machines.
pub fn run_timed(name: &str, quick: bool, result: impl FnOnce(bool) -> ExperimentResult) {
    let t0 = std::time::Instant::now();
    let res = result(quick);
    let computed = t0.elapsed();
    let t1 = std::time::Instant::now();
    execute(&res);
    eprintln!(
        "[stage] {name}: compute {:.2}s, render+persist {:.3}s",
        computed.as_secs_f64(),
        t1.elapsed().as_secs_f64()
    );
}

#[cfg(test)]
mod tests {
    use mpdash_results::ExperimentResult;

    /// The pipeline contract: every experiment's artifact deserializes to
    /// a value that renders byte-identically to the original. `tab2` is
    /// the cheapest full experiment, so it stands in for the family.
    #[test]
    fn artifact_round_trips_to_identical_render() {
        let r = super::tab2::result(true);
        let text = r.to_json().to_pretty();
        let back = ExperimentResult::parse(&text).expect("artifact parses");
        assert_eq!(back, r);
        assert_eq!(back.render(), r.render());
        assert_eq!(back.to_json().to_pretty(), text);
    }
}
