//! §2.2's motivating measurement study, re-run over the corpus: at each
//! location, can WiFi alone sustain the highest bitrate of a 1080p video?
//!
//! The paper classifies its 33 locations 64% / 15% / 21% into "never /
//! sometimes / almost always" and observes that **MPTCP sustains the
//! highest bitrate at every location**. We stream a (shortened) session
//! WiFi-only and over vanilla MPTCP at every corpus location and classify
//! by the fraction of steady-state chunks fetched at the top level.

use crate::{pct, Table};
use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_results::{ExperimentResult, ScalarGroup};
use mpdash_session::{run_batch, Job, SessionConfig, TransportMode};
use mpdash_sim::SimDuration;
use mpdash_trace::field::{field_corpus, Scenario};

/// Shortened Big Buck Bunny so the 66-session sweep stays quick.
fn video() -> Video {
    Video::new(
        "BBB-motivation",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        60,
    )
}

fn top_level_fraction(report: &mpdash_session::SessionReport) -> f64 {
    let top = 4;
    let counted = &report.chunks[report.chunks.len() / 5..];
    counted.iter().filter(|c| c.level == top).count() as f64 / counted.len() as f64
}

fn classify(frac: f64) -> Scenario {
    if frac < 0.10 {
        Scenario::WifiNeverSufficient
    } else if frac < 0.90 {
        Scenario::WifiSometimesSufficient
    } else {
        Scenario::WifiAlwaysSufficient
    }
}

/// Compute the study: two sessions per corpus location (WiFi-only and
/// vanilla MPTCP) as one flat batch. `quick` keeps the first 8 locations.
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "motivation",
        "§2.2 motivation — can WiFi alone sustain the top bitrate?",
    )
    .with_quick(quick);
    let mut corpus = field_corpus();
    if quick {
        corpus.truncate(8);
    }
    let mut jobs = Vec::new();
    for loc in &corpus {
        jobs.push(Job::session(
            format!("{}/wifi-only", loc.name),
            SessionConfig::at_location(loc, AbrKind::Festive, TransportMode::WifiOnly)
                .with_video(video()),
        ));
        jobs.push(Job::session(
            format!("{}/mptcp", loc.name),
            SessionConfig::at_location(loc, AbrKind::Festive, TransportMode::Vanilla)
                .with_video(video()),
        ));
    }
    let results = run_batch(jobs);
    let mut next = results.iter();

    let mut counts = [0usize; 3];
    let mut mptcp_ok = 0usize;
    let mut sample = Table::new(&[
        "location",
        "WiFi Mbps",
        "WiFi-only top-rate %",
        "class",
        "MPTCP top-rate %",
    ]);
    for (i, loc) in corpus.iter().enumerate() {
        let wifi_only = next.next().unwrap().session().expect("session job");
        let mptcp = next.next().unwrap().session().expect("session job");
        let frac = top_level_fraction(wifi_only);
        let class = classify(frac);
        counts[match class {
            Scenario::WifiNeverSufficient => 0,
            Scenario::WifiSometimesSufficient => 1,
            Scenario::WifiAlwaysSufficient => 2,
        }] += 1;
        let mfrac = top_level_fraction(mptcp);
        if mfrac > 0.95 && mptcp.qoe.stalls == 0 {
            mptcp_ok += 1;
        }
        if i % 5 == 0 {
            sample.row(&[
                loc.name.clone(),
                format!("{:.2}", loc.wifi_mbps),
                pct(frac),
                class.label().into(),
                pct(mfrac),
            ]);
        }
    }
    res.text("every 5th location:");
    res.table(sample);
    let n = corpus.len();
    res.text(format!(
        "classification: never {}/{} ({}), sometimes {}/{} ({}), always {}/{} ({})",
        counts[0],
        n,
        pct(counts[0] as f64 / n as f64),
        counts[1],
        n,
        pct(counts[1] as f64 / n as f64),
        counts[2],
        n,
        pct(counts[2] as f64 / n as f64),
    ));
    res.text("paper: 64% / 15% / 21%");
    res.text(format!(
        "MPTCP sustains the top bitrate (≥95% of steady chunks, 0 stalls) at {mptcp_ok}/{n} locations \
         (paper: all locations)"
    ));
    res.scalars(
        ScalarGroup::new("classification")
            .with("never_fraction", counts[0] as f64 / n as f64)
            .with("sometimes_fraction", counts[1] as f64 / n as f64)
            .with("always_fraction", counts[2] as f64 / n as f64)
            .with("mptcp_ok_fraction", mptcp_ok as f64 / n as f64),
    );
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("motivation", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
