//! The MPC experiment — the paper's §5.2.3 sketch, implemented: a
//! model-predictive (hybrid throughput+buffer) rate adaptation running
//! under MP-DASH, across the three controlled network conditions.
//!
//! The paper lists "having not evaluated other DASH algorithms such as
//! MPC" among its limitations (§8); this is that evaluation. Expected
//! shapes: MPC behaves between FESTIVE (throughput-led) and BBA
//! (buffer-led); MP-DASH saves cellular for it with no stalls and little
//! bitrate impact, like the other throughput-consuming algorithms.

use crate::experiments::banner;
use crate::{mb, pct, Table};
use mpdash_dash::abr::AbrKind;
use mpdash_session::{SessionConfig, SessionReport, StreamingSession, TransportMode};
use mpdash_trace::table1;

fn run_one(wifi: f64, lte: f64, mode: TransportMode) -> SessionReport {
    StreamingSession::run(SessionConfig::controlled(
        table1::synthetic_profile_pair(wifi, lte, 0.10, 42),
        AbrKind::Mpc,
        mode,
    ))
}

/// Run the experiment.
pub fn run() {
    banner("Extension — MPC (hybrid) rate adaptation under MP-DASH (§5.2.3)");
    let mut t = Table::new(&[
        "condition", "config", "cell bytes", "energy (J)", "bitrate", "switches", "stalls",
        "cell saving",
    ]);
    for (cname, w, l) in [
        ("W3.8/L3.0", 3.8, 3.0),
        ("W2.8/L3.0", 2.8, 3.0),
        ("W2.2/L1.2", 2.2, 1.2),
    ] {
        let base = run_one(w, l, TransportMode::Vanilla);
        for (mname, mode) in [
            ("Baseline", TransportMode::Vanilla),
            ("Rate", TransportMode::mpdash_rate_based()),
            ("Duration", TransportMode::mpdash_duration_based()),
        ] {
            let r = if mname == "Baseline" {
                base.clone()
            } else {
                run_one(w, l, mode)
            };
            t.row(&[
                cname.into(),
                mname.into(),
                mb(r.cell_bytes),
                format!("{:.1}", r.energy.total_j()),
                format!("{:.2}", r.qoe.mean_bitrate_mbps),
                format!("{}", r.qoe.switches),
                format!("{}", r.qoe.stalls),
                if mname == "Baseline" {
                    "-".into()
                } else {
                    pct(r.cell_saving_vs(&base))
                },
            ]);
        }
    }
    println!("{}", t.render());
}
