//! The MPC experiment — the paper's §5.2.3 sketch, implemented: a
//! model-predictive (hybrid throughput+buffer) rate adaptation running
//! under MP-DASH, across the three controlled network conditions.
//!
//! The paper lists "having not evaluated other DASH algorithms such as
//! MPC" among its limitations (§8); this is that evaluation. Expected
//! shapes: MPC behaves between FESTIVE (throughput-led) and BBA
//! (buffer-led); MP-DASH saves cellular for it with no stalls and little
//! bitrate impact, like the other throughput-consuming algorithms.

use crate::{mb, pct, Table};
use mpdash_dash::abr::AbrKind;
use mpdash_results::ExperimentResult;
use mpdash_session::{run_batch, Job, SessionConfig, TransportMode};
use mpdash_trace::table1;

const CONDITIONS: [(&str, f64, f64); 3] = [
    ("W3.8/L3.0", 3.8, 3.0),
    ("W2.8/L3.0", 2.8, 3.0),
    ("W2.2/L1.2", 2.2, 1.2),
];

/// A transport-mode constructor, named so the mode table stays legible.
type ModeCtor = fn() -> TransportMode;

const MODES: [(&str, ModeCtor); 3] = [
    ("Baseline", || TransportMode::Vanilla),
    ("Rate", TransportMode::mpdash_rate_based),
    ("Duration", TransportMode::mpdash_duration_based),
];

fn config(wifi: f64, lte: f64, mode: TransportMode) -> SessionConfig {
    SessionConfig::controlled(
        table1::synthetic_profile_pair(wifi, lte, 0.10, 42),
        AbrKind::Mpc,
        mode,
    )
}

/// Compute the experiment (the 3 conditions × 3 modes grid as one batch).
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "mpc",
        "Extension — MPC (hybrid) rate adaptation under MP-DASH (§5.2.3)",
    )
    .with_quick(quick);
    let mut jobs = Vec::new();
    for (cname, w, l) in CONDITIONS {
        for (mname, mode) in MODES {
            jobs.push(Job::session(
                format!("{cname}/{mname}"),
                config(w, l, mode()),
            ));
        }
    }
    let results = run_batch(jobs);
    let mut next = results.iter();

    let mut t = Table::new(&[
        "condition",
        "config",
        "cell bytes",
        "energy (J)",
        "bitrate",
        "switches",
        "stalls",
        "cell saving",
    ]);
    for (cname, _, _) in CONDITIONS {
        let rows: Vec<_> = MODES
            .iter()
            .map(|_| next.next().unwrap().session().expect("session job"))
            .collect();
        let base = rows[0];
        for ((mname, _), r) in MODES.iter().zip(&rows) {
            t.row(&[
                cname.into(),
                (*mname).into(),
                mb(r.cell_bytes),
                format!("{:.1}", r.energy.total_j()),
                format!("{:.2}", r.qoe.mean_bitrate_mbps),
                format!("{}", r.qoe.switches),
                format!("{}", r.qoe.stalls),
                if *mname == "Baseline" {
                    "-".into()
                } else {
                    pct(r.cell_saving_vs(base))
                },
            ]);
        }
    }
    res.table(t);
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("mpc", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
