//! `exp_origin` — multi-origin serving under an origin outage (beyond
//! the paper).
//!
//! One of three origins goes dark three times mid-run and the grid
//! crosses the serving strategies the multi-origin layer offers:
//!
//! * **single/wait** — one implicit origin, wait-forever lifecycle: the
//!   pre-pool baseline that rides out the full outage;
//! * **single/resume** — one origin, the deadline-aware lifecycle:
//!   abandons and resumes, but every resume lands on the same dark
//!   origin;
//! * **pool/failover** — three origins with circuit breakers: the
//!   blackholed primary trips Open after consecutive failures and
//!   routing falls over to a backup replica;
//! * **pool/hedged** — wait-forever lifecycle plus the hedged fetch:
//!   the pool races a second origin when a deadline-granted request
//!   stalls past the hedge quantile, so even a policy that never times
//!   out escapes the blackhole.
//!
//! The fold asserts the acceptance invariants of the multi-origin PR:
//!
//! 1. circuit-breaking failover misses **strictly fewer** chunk
//!    deadlines than the single-origin deadline-aware policy, and never
//!    more than wait-forever;
//! 2. every hedged request resolves to **exactly one winner** (the
//!    primary or the hedge, never both, never neither) and the loser's
//!    delivered bytes are charged to `wasted_bytes`;
//! 3. a shared fleet cache's hit ratio is **monotone nondecreasing in
//!    fleet size** on a shared manifest, and zero for a lone client.
//!
//! Fleet cells run as one [`mpdash_session::Job`] each, so the whole
//! grid shards over `MPDASH_WORKERS` with bit-identical artifacts at
//! any worker count.

use crate::Table;
use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_fleet::{fleet_job, FleetCacheSpec, FleetConfig};
use mpdash_http::{LifecyclePolicy, OriginPoolConfig, OriginSpec, ServerFaultScript};
use mpdash_results::{ExperimentResult, Json, ScalarGroup};
use mpdash_session::{
    run_batch, run_batch_with, BatchResult, Job, SessionConfig, SessionReport, TransportMode,
};
use mpdash_sim::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// The outage under test: the primary goes completely dark three times
/// for 25 s each — longer than any deadline the player grants (the
/// 20 s buffer bounds them), so a strategy that waits out an outage
/// misses that chunk's deadline every single time, while one that
/// escapes to a healthy replica within a few seconds does not.
fn outage() -> ServerFaultScript {
    ServerFaultScript::new()
        .blackhole(secs(20), SimDuration::from_secs(25))
        .blackhole(secs(55), SimDuration::from_secs(25))
        .blackhole(secs(90), SimDuration::from_secs(25))
}

/// Three replicas: the blackholed primary plus two healthy backups at
/// increasing distance.
fn pool(hedge_quantile: Option<f64>) -> OriginPoolConfig {
    let cfg = OriginPoolConfig::new(vec![
        OriginSpec::new("primary").with_faults(outage()),
        OriginSpec::new("backup-east").with_rtt_penalty(SimDuration::from_millis(20)),
        OriginSpec::new("backup-west").with_rtt_penalty(SimDuration::from_millis(40)),
    ]);
    match hedge_quantile {
        Some(q) => cfg.with_hedge_quantile(q),
        None => cfg,
    }
}

/// Same ladder and chunk length as `exp_lifecycle`; quick trims the
/// post-outage tail, not the outage itself.
fn origin_video(quick: bool) -> Video {
    let chunks = if quick { 25 } else { 35 };
    Video::new(
        "BBB-origin",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        chunks,
    )
}

fn base_cfg(quick: bool) -> SessionConfig {
    SessionConfig::controlled_mbps(
        4.5,
        4.0,
        AbrKind::Festive,
        TransportMode::mpdash_rate_based(),
    )
    .with_video(origin_video(quick))
    .with_buffer_capacity(SimDuration::from_secs(20))
}

/// The serving-strategy axis. Order matters to the fold: the two
/// single-origin baselines come first.
fn strategies(quick: bool) -> Vec<(&'static str, SessionConfig)> {
    vec![
        (
            "single/wait",
            base_cfg(quick)
                .with_server_faults(outage())
                .with_lifecycle(LifecyclePolicy::wait_forever()),
        ),
        (
            "single/resume",
            base_cfg(quick)
                .with_server_faults(outage())
                .with_lifecycle(LifecyclePolicy::deadline_aware()),
        ),
        (
            "pool/failover",
            base_cfg(quick)
                .with_origins(pool(None))
                .with_lifecycle(LifecyclePolicy::deadline_aware()),
        ),
        (
            "pool/hedged",
            base_cfg(quick)
                .with_origins(pool(Some(0.5)))
                .with_lifecycle(LifecyclePolicy::wait_forever()),
        ),
    ]
}

/// Quick stops at 4 clients; the full grid doubles once more.
fn fleet_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// A cache-fronted fleet on private links and a shared manifest: every
/// client streams the same 10-chunk clip, so all but the first fetch of
/// a hot segment can be served from the edge.
fn cache_fleet_cfg(clients: usize) -> FleetConfig {
    let video = Video::new(
        "BBB-edge",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        10,
    );
    let base = SessionConfig::controlled_mbps(
        20.0,
        8.0,
        AbrKind::Festive,
        TransportMode::mpdash_rate_based(),
    )
    .with_video(video);
    FleetConfig::new(base, clients).with_cache(FleetCacheSpec::new(256 * 1024 * 1024))
}

/// The 16-client shared-manifest fleet `bench_origin` times with the
/// edge cache on and off.
pub fn bench_fleet_config() -> FleetConfig {
    cache_fleet_cfg(16)
}

fn jobs(quick: bool) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (name, cfg) in strategies(quick) {
        jobs.push(Job::session(name, cfg));
    }
    for &clients in &fleet_sizes(quick) {
        jobs.push(fleet_job(
            format!("cache/n{clients}"),
            cache_fleet_cfg(clients),
        ));
    }
    jobs
}

/// Chunk-log deadline misses (same policy-independent basis as
/// `exp_lifecycle`): chunks whose granted window elapsed before the
/// last byte arrived.
fn log_deadline_misses(r: &SessionReport) -> u64 {
    r.chunks
        .iter()
        .filter(|c| match c.deadline {
            Some(d) => c.completed.saturating_since(c.started) > d,
            None => false,
        })
        .count() as u64
}

fn miss_rate(r: &SessionReport) -> f64 {
    let granted = r.chunks.iter().filter(|c| c.deadline.is_some()).count();
    if granted == 0 {
        0.0
    } else {
        log_deadline_misses(r) as f64 / granted as f64
    }
}

fn num(j: &Json, key: &str) -> f64 {
    j.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("fleet summary missing '{key}'"))
}

fn fold(quick: bool, batch: Vec<BatchResult>) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "origin",
        "Multi-origin serving — breakers, hedged failover, and the edge cache under an outage",
    )
    .with_quick(quick);
    res.text(concat!(
        "\nThe primary origin is blackholed three times for 25 s mid-run.\n",
        "Invariants:\n",
        "circuit-breaking failover misses strictly fewer deadlines than\n",
        "the single-origin deadline-aware policy and never more than\n",
        "wait-forever; every hedge race resolves to exactly one winner\n",
        "with the loser's bytes charged as waste; and the shared fleet\n",
        "cache's hit ratio is monotone nondecreasing in fleet size.",
    ));

    let mut t = Table::new(&[
        "strategy",
        "misses",
        "miss rate",
        "stall s",
        "failovers",
        "opens",
        "hedges",
        "winP",
        "winH",
        "wasted KB",
        "dur s",
    ]);
    let mut next = batch.iter();
    let mut wait_misses = 0u64;
    let mut resume_misses = 0u64;
    let mut failover_miss_rate = 0.0f64;
    let mut single_resume_miss_rate = 0.0f64;
    let mut total_hedges = 0u64;
    let mut total_wasted = 0u64;
    for (name, _) in strategies(quick) {
        let r = next.next().unwrap().session().expect("session job");
        let misses = log_deadline_misses(r);
        let o = &r.origin;
        t.row(&[
            name.into(),
            format!("{misses}"),
            format!("{:.3}", miss_rate(r)),
            format!("{:.2}", r.qoe_all.stall_time.as_secs_f64()),
            format!("{}", o.failovers),
            format!("{}", o.breaker_opens),
            format!("{}", o.hedges),
            format!("{}", o.hedge_wins_primary),
            format!("{}", o.hedge_wins_hedge),
            format!("{:.1}", r.lifecycle.wasted_bytes as f64 / 1e3),
            format!("{:.1}", r.duration.as_secs_f64()),
        ]);
        // Invariant 2 (one half): a hedge race never has zero or two
        // winners — on every strategy, hedged or not.
        assert_eq!(
            o.hedges,
            o.hedge_wins_primary + o.hedge_wins_hedge,
            "{name}: {} hedges but {}+{} winners",
            o.hedges,
            o.hedge_wins_primary,
            o.hedge_wins_hedge
        );
        total_hedges += o.hedges;
        total_wasted += r.lifecycle.wasted_bytes;
        match name {
            "single/wait" => {
                wait_misses = misses;
                assert_eq!(o.failovers, 0, "a single origin has nowhere to fail over");
            }
            "single/resume" => {
                resume_misses = misses;
                single_resume_miss_rate = miss_rate(r);
            }
            "pool/failover" => {
                failover_miss_rate = miss_rate(r);
                // Invariant 1: the breaker must trip during the outage
                // and failover must strictly beat retrying the dark
                // origin, while never losing to blind patience.
                assert!(o.breaker_opens >= 1, "the outage never tripped a breaker");
                assert!(o.failovers >= 1, "routing never left the dark primary");
                assert!(
                    misses < resume_misses,
                    "failover missed {misses} deadlines vs single-origin resume {resume_misses}"
                );
                assert!(
                    misses <= wait_misses,
                    "failover missed {misses} deadlines vs wait-forever {wait_misses}"
                );
            }
            "pool/hedged" => {
                // Invariant 2 (other half): the stalled request actually
                // hedges, the hedge side wins at least once (the primary
                // is dark), and wait-forever never abandons on its own.
                assert!(o.hedges >= 1, "the blackhole never triggered a hedge");
                assert!(o.hedge_wins_hedge >= 1, "no hedge beat the dark primary");
                assert_eq!(r.lifecycle.abandoned, 0, "wait-forever must never cancel");
                assert!(
                    misses <= wait_misses,
                    "hedging missed {misses} deadlines vs wait-forever {wait_misses}"
                );
            }
            _ => unreachable!("unknown strategy {name}"),
        }
    }
    res.table(t);

    let mut ct = Table::new(&["clients", "hits", "misses", "insertions", "hit ratio"]);
    let mut prev_ratio = -1.0f64;
    let mut last_ratio = 0.0f64;
    for &clients in &fleet_sizes(quick) {
        let j = next.next().unwrap().value().expect("fleet job").clone();
        let cache = j.get("cache").expect("cache summary").clone();
        let ratio = num(&cache, "hit_ratio");
        ct.row(&[
            format!("{clients}"),
            format!("{}", num(&cache, "hits") as u64),
            format!("{}", num(&cache, "misses") as u64),
            format!("{}", num(&cache, "insertions") as u64),
            format!("{ratio:.3}"),
        ]);
        // Invariant 3: the shared cache only gets more useful as the
        // fleet grows, and a lone client never hits its own cold cache.
        if clients == 1 {
            assert_eq!(ratio, 0.0, "a lone client hit its own cold cache");
        }
        assert!(
            ratio + 1e-12 >= prev_ratio,
            "hit ratio fell from {prev_ratio:.3} to {ratio:.3} at {clients} clients"
        );
        prev_ratio = ratio;
        last_ratio = ratio;
    }
    assert!(
        last_ratio > 0.0,
        "the largest fleet never reused a cached segment"
    );
    res.table(ct);
    res.scalars(
        ScalarGroup::new("origin invariants")
            .with("failover_miss_rate", failover_miss_rate)
            .with("single_resume_miss_rate", single_resume_miss_rate)
            .with("total_hedges", total_hedges as f64)
            .with("total_wasted_bytes", total_wasted as f64)
            .with("max_fleet_cache_hit_ratio", last_ratio),
    );
    res
}

/// Compute the multi-origin grid on the default worker pool.
pub fn result(quick: bool) -> ExperimentResult {
    fold(quick, run_batch(jobs(quick)))
}

/// Same grid on an explicit worker count — the determinism test pins
/// both sides of its comparison with this.
pub fn result_with_workers(quick: bool, workers: usize) -> ExperimentResult {
    fold(quick, run_batch_with(jobs(quick), workers))
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("origin", quick, result);
}

/// Full grid behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}

#[cfg(test)]
mod tests {
    /// The acceptance property: the persisted artifact is bit-identical
    /// at any worker count (1 is the sequential reference).
    #[test]
    fn artifact_is_bit_identical_across_worker_counts() {
        let seq = super::result_with_workers(true, 1);
        let par = super::result_with_workers(true, 4);
        assert_eq!(
            seq.to_json().to_pretty(),
            par.to_json().to_pretty(),
            "exp_origin must serialize identically at any MPDASH_WORKERS"
        );
    }
}
