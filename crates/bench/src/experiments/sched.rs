//! `exp_sched` — the pluggable packet-scheduler grid (beyond the paper).
//!
//! Crosses every [`SchedulerSpec`] with {solo, N-client fleet on shared
//! bottlenecks} × {vanilla MPTCP, MP-DASH rate-based}:
//!
//! * **solo** — one client on private links. Private links expose no
//!   queue signal, so QAware must degenerate to exactly minRTT: the fold
//!   asserts their session summaries serialize *byte-identically*.
//! * **fleet** — N clients behind one WiFi AP and one cellular sector.
//!   The AP is deliberately scarce (deep shared queue) while the sector
//!   keeps headroom, so a scheduler that only watches SRTT keeps piling
//!   onto WiFi until queueing delay finally shows up in its RTT samples,
//!   while QAware sees the queue depth directly and detours first.
//!
//! The fold asserts the tentpole invariant: under contention QAware
//! never increases the deadline-miss rate versus minRTT at any fleet
//! point, and strictly improves it at one or more points.
//!
//! Every cell is one [`mpdash_session::Job`] (solo sessions and fleet
//! replicas alike), so the grid shards over `MPDASH_WORKERS` with
//! bit-identical artifacts at any worker count.

use crate::Table;
use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_fleet::{fleet_job, FleetConfig, SharedLinkSpec};
use mpdash_link::SharedBottleneckConfig;
use mpdash_mptcp::SchedulerSpec;
use mpdash_results::{ExperimentResult, Json, ScalarGroup};
use mpdash_session::{run_batch, run_batch_with, BatchResult, Job, SessionConfig, TransportMode};
use mpdash_sim::SimDuration;

/// Quick keeps the 16-client fleet — the contention level where the
/// queue-aware win is structural (at 8 clients the deep AP buffer never
/// fills enough for the schedulers to diverge). Full adds that 8-client
/// tie point. Solo always runs (it carries the degeneracy proof).
fn fleet_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![16]
    } else {
        vec![8, 16]
    }
}

/// minRTT first: the fold computes every invariant against it.
fn schedulers() -> [SchedulerSpec; 3] {
    [
        SchedulerSpec::MinRtt,
        SchedulerSpec::RoundRobin,
        SchedulerSpec::QAware,
    ]
}

fn modes() -> [TransportMode; 2] {
    [TransportMode::Vanilla, TransportMode::mpdash_rate_based()]
}

fn mode_name(mode: &TransportMode) -> &'static str {
    match mode {
        TransportMode::Vanilla => "vanilla",
        _ => "mpdash",
    }
}

/// Same 20-chunk ladder as the fleet experiment: long enough that the
/// steady state, not the ABR ramp, dominates the miss rate.
fn sched_video() -> Video {
    Video::new(
        "BBB-sched",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        20,
    )
}

/// One solo cell: the paper's testbed rates on private links.
fn solo_cfg(sched: SchedulerSpec, mode: TransportMode) -> SessionConfig {
    SessionConfig::controlled_mbps(3.8, 3.0, AbrKind::Festive, mode)
        .with_video(sched_video())
        .with_scheduler(sched)
}

/// One fleet cell. The AP gives each client ~1.5 Mbps behind a *deep*
/// buffer (64 KiB/client — bufferbloat territory: at capacity the queue
/// holds hundreds of milliseconds), while the sector keeps ~2 Mbps per
/// client of headroom behind the stock shallow queue. DASH traffic is
/// on-off, so at each fetch start a queue-blind scheduler steers by an
/// SRTT measured *before* the idle gap — it dumps the chunk into
/// whatever the other clients piled up meanwhile and only learns the
/// price one inflated RTT sample later. QAware reads the shared queue's
/// occupancy directly at pick time and detours first.
fn fleet_cfg(clients: usize, sched: SchedulerSpec, mode: TransportMode) -> FleetConfig {
    let base = SessionConfig::controlled_mbps(50.0, 30.0, AbrKind::Festive, mode)
        .with_video(sched_video())
        .with_scheduler(sched);
    FleetConfig::new(base, clients)
        .with_stagger(SimDuration::from_secs(1))
        .with_rtt_skew(SimDuration::from_millis(10))
        .with_seed(11)
        .with_shared(SharedLinkSpec::wifi_ap(
            SharedBottleneckConfig::fifo_mbps(1.5 * clients as f64)
                .with_capacity(64 * 1024 * clients as u64),
        ))
        .with_shared(SharedLinkSpec::cell_sector(
            SharedBottleneckConfig::fifo_mbps(2.0 * clients as f64),
        ))
}

/// The heaviest cell of the grid — the 16-client contended fleet under
/// MP-DASH with QAware — which `bench_sched` times for its sessions/sec
/// trajectory figure.
pub fn bench_fleet_config() -> FleetConfig {
    fleet_cfg(
        16,
        SchedulerSpec::QAware,
        TransportMode::mpdash_rate_based(),
    )
}

fn jobs(quick: bool) -> Vec<Job> {
    let mut jobs = Vec::new();
    for mode in modes() {
        for sched in schedulers() {
            jobs.push(Job::session(
                format!("solo/{}/{}", mode_name(&mode), sched.label()),
                solo_cfg(sched, mode),
            ));
        }
    }
    for &clients in &fleet_sizes(quick) {
        for mode in modes() {
            for sched in schedulers() {
                jobs.push(fleet_job(
                    format!("n{clients}/{}/{}", mode_name(&mode), sched.label()),
                    fleet_cfg(clients, sched, mode),
                ));
            }
        }
    }
    jobs
}

fn num(j: &Json, key: &str) -> f64 {
    j.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("fleet summary missing '{key}'"))
}

fn fold(quick: bool, batch: Vec<BatchResult>) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "sched",
        "Packet schedulers — minRTT vs round-robin vs QAware, solo and fleet",
    )
    .with_quick(quick);
    res.text(concat!(
        "\nEvery packet scheduler crossed with {solo, contended fleet} and\n",
        "{vanilla, MP-DASH}. Invariants: solo QAware is byte-identical to\n",
        "solo minRTT (no queue signal on private links), and under fleet\n",
        "contention QAware never misses more deadlines than minRTT and\n",
        "strictly beats it somewhere in the grid.",
    ));
    let mut next = batch.iter();

    // Solo: QAware must degenerate to minRTT exactly.
    let mut t = Table::new(&["topo", "mode", "scheduler", "bitrate", "stalls", "cell MB"]);
    for mode in modes() {
        let mut minrtt_summary = String::new();
        for sched in schedulers() {
            let r = next.next().unwrap().session().expect("solo job");
            let summary = r.summary_json().to_pretty();
            match sched {
                SchedulerSpec::MinRtt => minrtt_summary = summary,
                SchedulerSpec::QAware => assert_eq!(
                    summary,
                    minrtt_summary,
                    "solo/{}: QAware must be byte-identical to minRTT on private links",
                    mode_name(&mode)
                ),
                SchedulerSpec::RoundRobin => {}
            }
            t.row(&[
                "solo".into(),
                mode_name(&mode).into(),
                sched.label().into(),
                format!("{:.2}", r.qoe_all.mean_bitrate_mbps),
                format!("{}", r.qoe_all.stalls),
                format!("{:.2}", r.cell_bytes as f64 / 1e6),
            ]);
        }
    }
    res.table(t);

    // Fleet: QAware's miss rate never exceeds minRTT's, and beats it
    // strictly at one or more points.
    let mut t = Table::new(&[
        "clients",
        "mode",
        "scheduler",
        "bitrate",
        "jain(bitrate)",
        "miss rate",
        "stalls",
        "cell MB",
        "wifi MB",
    ]);
    let mut best_improvement: f64 = 0.0;
    let mut worst_regression: f64 = 0.0;
    for &clients in &fleet_sizes(quick) {
        for mode in modes() {
            let mut minrtt_miss = 0.0f64;
            for sched in schedulers() {
                let j = next.next().unwrap().value().expect("fleet job").clone();
                let miss = num(&j, "deadline_miss_rate");
                let mean_bitrate: f64 = j
                    .get("per_client")
                    .and_then(|v| v.as_arr())
                    .map(|rows| {
                        rows.iter()
                            .map(|r| num(r, "mean_bitrate_mbps"))
                            .sum::<f64>()
                            / rows.len().max(1) as f64
                    })
                    .unwrap_or(0.0);
                t.row(&[
                    format!("{clients}"),
                    mode_name(&mode).into(),
                    sched.label().into(),
                    format!("{mean_bitrate:.2}"),
                    format!("{:.4}", num(&j, "jain_bitrate")),
                    format!("{miss:.3}"),
                    format!("{}", num(&j, "total_stalls") as u64),
                    format!("{:.2}", num(&j, "total_cell_bytes") / 1e6),
                    format!("{:.2}", num(&j, "total_wifi_bytes") / 1e6),
                ]);
                match sched {
                    SchedulerSpec::MinRtt => minrtt_miss = miss,
                    SchedulerSpec::QAware => {
                        assert!(
                            miss <= minrtt_miss,
                            "n{clients}/{}: QAware miss rate {miss:.4} > minRTT {minrtt_miss:.4}",
                            mode_name(&mode)
                        );
                        best_improvement = best_improvement.max(minrtt_miss - miss);
                        worst_regression = worst_regression.max(miss - minrtt_miss);
                    }
                    SchedulerSpec::RoundRobin => {}
                }
            }
        }
    }
    assert!(
        best_improvement > 0.0,
        "QAware must strictly beat minRTT's deadline-miss rate somewhere in the grid"
    );
    res.table(t);
    res.scalars(
        ScalarGroup::new("scheduler invariants")
            .with("best_qaware_miss_improvement", best_improvement)
            .with("worst_qaware_miss_regression", worst_regression),
    );
    res
}

/// Compute the scheduler grid on the default worker pool.
pub fn result(quick: bool) -> ExperimentResult {
    fold(quick, run_batch(jobs(quick)))
}

/// Same grid on an explicit worker count — the determinism test pins
/// both sides of its comparison with this.
pub fn result_with_workers(quick: bool, workers: usize) -> ExperimentResult {
    fold(quick, run_batch_with(jobs(quick), workers))
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("sched", quick, result);
}

/// Full grid behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}

#[cfg(test)]
mod tests {
    /// The acceptance property: the persisted artifact is bit-identical
    /// at any worker count (1 is the sequential reference).
    #[test]
    fn artifact_is_bit_identical_across_worker_counts() {
        let seq = super::result_with_workers(true, 1);
        let par = super::result_with_workers(true, 4);
        assert_eq!(
            seq.to_json().to_pretty(),
            par.to_json().to_pretty(),
            "exp_sched must serialize identically at any MPDASH_WORKERS"
        );
    }
}
