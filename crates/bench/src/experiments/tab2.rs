//! Tables 1 & 2: trace-driven simulation of the online MP-DASH scheduler
//! versus the perfect-knowledge optimum, across the five Table 1
//! bandwidth profiles and the paper's deadline grid.
//!
//! Shape targets: online ≥ optimal everywhere; the gap ("Diff.") stays
//! small; deadlines are essentially never missed (the paper has a single
//! 10 ms miss); longer deadlines need less cellular.

use crate::experiments::banner;
use crate::{pct, simulate_online, Table};
use mpdash_sim::SimDuration;
use mpdash_trace::table1::table1_rows;

/// Run the experiment.
pub fn run() {
    banner("Table 2 — online vs optimal cellular usage (trace-driven)");
    let mut t = Table::new(&[
        "trace", "D/L (s)", "Cell% optimal", "Cell% online", "Diff.", "Miss?",
    ]);
    for row in table1_rows() {
        for &d in row.deadlines_s {
            let r = simulate_online(
                &row.wifi,
                &row.cell,
                row.file_size,
                SimDuration::from_secs(d),
                SimDuration::from_millis(50),
                1.0,
            );
            t.row(&[
                row.name.into(),
                format!("{d}"),
                pct(r.optimal_cell_frac),
                pct(r.online_cell_frac),
                pct(r.diff()),
                if r.missed { "YES".into() } else { "No".into() },
            ]);
        }
    }
    println!("{}", t.render());
}
