//! Tables 1 & 2: trace-driven simulation of the online MP-DASH scheduler
//! versus the perfect-knowledge optimum, across the five Table 1
//! bandwidth profiles and the paper's deadline grid.
//!
//! Shape targets: online ≥ optimal everywhere; the gap ("Diff.") stays
//! small; deadlines are essentially never missed (the paper has a single
//! 10 ms miss); longer deadlines need less cellular.

use crate::{pct, simulate_online, Table};
use mpdash_results::ExperimentResult;
use mpdash_sim::SimDuration;
use mpdash_trace::table1::table1_rows;

/// Compute the experiment. Pure CPU (no sessions), so `quick` only tags
/// the artifact.
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "tab2",
        "Table 2 — online vs optimal cellular usage (trace-driven)",
    )
    .with_quick(quick);
    let mut t = Table::new(&[
        "trace",
        "D/L (s)",
        "Cell% optimal",
        "Cell% online",
        "Diff.",
        "Miss?",
    ]);
    for row in table1_rows() {
        for &d in row.deadlines_s {
            let r = simulate_online(
                &row.wifi,
                &row.cell,
                row.file_size,
                SimDuration::from_secs(d),
                SimDuration::from_millis(50),
                1.0,
            );
            t.row(&[
                row.name.into(),
                format!("{d}"),
                pct(r.optimal_cell_frac),
                pct(r.online_cell_frac),
                pct(r.diff()),
                if r.missed { "YES".into() } else { "No".into() },
            ]);
        }
    }
    res.table(t);
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("tab2", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
