//! Table 4 + Figure 6: the cellular-throttling alternative versus
//! MP-DASH, streaming with GPAC adaptation at WiFi 3.8 / LTE 3.0.
//!
//! Shape targets: throttling reduces cellular bytes but wastes radio
//! energy by dribbling (the LTE radio never rests); MP-DASH achieves both
//! the lowest cellular usage and the lowest energy; low throttle caps
//! also degrade chunk quality.

use crate::experiments::banner;
use crate::{mb, pct, Table};
use mpdash_analysis::throughput_timeline;
use mpdash_dash::abr::AbrKind;
use mpdash_session::{SessionConfig, SessionReport, StreamingSession, TransportMode};
use mpdash_sim::SimDuration;
use mpdash_trace::table1;

fn run_one(mode: TransportMode) -> SessionReport {
    let cfg = SessionConfig::controlled(
        table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
        AbrKind::Gpac,
        mode,
    );
    StreamingSession::run(cfg)
}

/// Run the experiment.
pub fn run() {
    banner("Table 4 — cellular throttling vs MP-DASH (GPAC, W3.8/L3.0)");
    let configs = [
        ("Default", TransportMode::Vanilla),
        ("Throttle 700 Kbps", TransportMode::Throttled { kbps: 700 }),
        ("Throttle 1000 Kbps", TransportMode::Throttled { kbps: 1000 }),
        ("MP-DASH (rate)", TransportMode::mpdash_rate_based()),
    ];
    let mut reports = Vec::new();
    let mut t = Table::new(&[
        "config", "cell bytes", "% of cell data", "radio energy (J)", "mean bitrate", "stalls",
    ]);
    for (name, mode) in configs {
        let r = run_one(mode);
        t.row(&[
            name.into(),
            mb(r.cell_bytes),
            pct(r.cell_fraction()),
            format!("{:.1}", r.energy.total_j()),
            format!("{:.2}", r.qoe.mean_bitrate_mbps),
            format!("{}", r.qoe.stalls),
        ]);
        reports.push((name, r));
    }
    println!("{}", t.render());

    println!("\nFigure 6 — traffic patterns (first 60 s, 1 s buckets):");
    for (name, r) in &reports {
        if *name == "Throttle 1000 Kbps" {
            continue; // the paper's figure shows 700k / MP-DASH / default
        }
        println!("\n{name}:");
        println!(
            "{}",
            throughput_timeline(&r.records, SimDuration::from_secs(1), SimDuration::from_secs(60))
        );
    }
}
