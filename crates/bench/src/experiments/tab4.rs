//! Table 4 + Figure 6: the cellular-throttling alternative versus
//! MP-DASH, streaming with GPAC adaptation at WiFi 3.8 / LTE 3.0.
//!
//! Shape targets: throttling reduces cellular bytes but wastes radio
//! energy by dribbling (the LTE radio never rests); MP-DASH achieves both
//! the lowest cellular usage and the lowest energy; low throttle caps
//! also degrade chunk quality.

use crate::{mb, pct, Table};
use mpdash_analysis::throughput_timeline;
use mpdash_dash::abr::AbrKind;
use mpdash_results::ExperimentResult;
use mpdash_session::{run_sessions, SessionConfig, TransportMode};
use mpdash_sim::SimDuration;
use mpdash_trace::table1;

/// Compute the experiment (four sessions, batched).
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "tab4",
        "Table 4 — cellular throttling vs MP-DASH (GPAC, W3.8/L3.0)",
    )
    .with_quick(quick);
    let configs = [
        ("Default", TransportMode::Vanilla),
        ("Throttle 700 Kbps", TransportMode::Throttled { kbps: 700 }),
        (
            "Throttle 1000 Kbps",
            TransportMode::Throttled { kbps: 1000 },
        ),
        ("MP-DASH (rate)", TransportMode::mpdash_rate_based()),
    ];
    let reports = run_sessions(
        configs
            .iter()
            .map(|&(_, mode)| {
                SessionConfig::controlled(
                    table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
                    AbrKind::Gpac,
                    mode,
                )
            })
            .collect(),
    );
    let mut t = Table::new(&[
        "config",
        "cell bytes",
        "% of cell data",
        "radio energy (J)",
        "mean bitrate",
        "stalls",
    ]);
    for ((name, _), r) in configs.iter().zip(&reports) {
        t.row(&[
            (*name).into(),
            mb(r.cell_bytes),
            pct(r.cell_fraction()),
            format!("{:.1}", r.energy.total_j()),
            format!("{:.2}", r.qoe.mean_bitrate_mbps),
            format!("{}", r.qoe.stalls),
        ]);
    }
    res.table(t);

    res.text("\nFigure 6 — traffic patterns (first 60 s, 1 s buckets):");
    for ((name, _), r) in configs.iter().zip(&reports) {
        if *name == "Throttle 1000 Kbps" {
            continue; // the paper's figure shows 700k / MP-DASH / default
        }
        res.text(format!("\n{name}:"));
        res.text(throughput_timeline(
            &r.records,
            SimDuration::from_secs(1),
            SimDuration::from_secs(60),
        ));
    }
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("tab4", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
