//! Table 6: the HD experiment — Tears of Steel HD (10 Mbps top rate) at
//! a location where even WiFi + LTE cannot sustain the highest level, so
//! the player lives at levels 3–4 and BBA-C's cap is exercised in the
//! wild.
//!
//! Shape targets (paper, rate-based deadlines): ~40% cellular saving for
//! FESTIVE with an *increased* playback bitrate (the transport-layer
//! estimate beats the app-level one), ~37% for BBA-C with a small bitrate
//! dip; single-digit energy savings.

use crate::{mb, pct, Table};
use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_results::ExperimentResult;
use mpdash_session::{run_batch, Job, SessionConfig, TransportMode};
use mpdash_trace::table1;

fn config(abr: AbrKind, mode: TransportMode) -> SessionConfig {
    // "Supermarket": WiFi 4.5 + LTE 3.5 ≈ 8 Mbps aggregate < the 10 Mbps
    // top rate.
    SessionConfig::controlled(
        table1::synthetic_profile_pair(4.5, 3.5, 0.15, 31),
        abr,
        mode,
    )
    .with_video(Video::tears_of_steel_hd())
}

/// Compute the experiment (four sessions — baseline + MP-DASH per ABR —
/// as one batch).
pub fn result(quick: bool) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "tab6",
        "Table 6 — HD video (Tears of Steel HD, aggregate < top rate)",
    )
    .with_quick(quick);
    let abrs = [AbrKind::Festive, AbrKind::BbaC];
    let mut jobs = Vec::new();
    for abr in abrs {
        // BBA-C's baseline is unmodified BBA over vanilla MPTCP, per the
        // paper's "37% for BBA-C over the unmodified BBA".
        let base_abr = if abr == AbrKind::BbaC {
            AbrKind::Bba
        } else {
            abr
        };
        jobs.push(Job::session(
            format!("{}/baseline", abr.name()),
            config(base_abr, TransportMode::Vanilla),
        ));
        jobs.push(Job::session(
            format!("{}/rate", abr.name()),
            config(abr, TransportMode::mpdash_rate_based()),
        ));
    }
    let results = run_batch(jobs);
    let mut next = results.iter();

    let mut t = Table::new(&[
        "algorithm",
        "config",
        "cell bytes",
        "energy (J)",
        "bitrate (Mbps)",
        "cell saving",
        "energy saving",
        "bitrate change",
    ]);
    for abr in abrs {
        let base = next.next().unwrap().session().expect("session job");
        let mp = next.next().unwrap().session().expect("session job");
        for (name, r) in [("Baseline", base), ("MP-DASH rate", mp)] {
            let is_base = name == "Baseline";
            let delta = -r.qoe.bitrate_reduction_vs(&base.qoe);
            t.row(&[
                abr.name().into(),
                name.into(),
                mb(r.cell_bytes),
                format!("{:.1}", r.energy.total_j()),
                format!("{:.2}", r.qoe.mean_bitrate_mbps),
                if is_base {
                    "-".into()
                } else {
                    pct(r.cell_saving_vs(base))
                },
                if is_base {
                    "-".into()
                } else {
                    pct(r.energy_saving_vs(base))
                },
                if is_base {
                    "-".into()
                } else {
                    format!("{}{}", if delta >= 0.0 { "+" } else { "" }, pct(delta))
                },
            ]);
        }
    }
    res.table(t);
    res
}

/// Compute, render, persist.
pub fn run_with(quick: bool) {
    crate::experiments::run_timed("tab6", quick, result);
}

/// [`run_with`] behind the shared quick switch.
pub fn run() {
    run_with(crate::cli::quick_requested());
}
