//! Table 6: the HD experiment — Tears of Steel HD (10 Mbps top rate) at
//! a location where even WiFi + LTE cannot sustain the highest level, so
//! the player lives at levels 3–4 and BBA-C's cap is exercised in the
//! wild.
//!
//! Shape targets (paper, rate-based deadlines): ~40% cellular saving for
//! FESTIVE with an *increased* playback bitrate (the transport-layer
//! estimate beats the app-level one), ~37% for BBA-C with a small bitrate
//! dip; single-digit energy savings.

use crate::experiments::banner;
use crate::{mb, pct, Table};
use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_session::{SessionConfig, SessionReport, StreamingSession, TransportMode};
use mpdash_trace::table1;

fn run_one(abr: AbrKind, mode: TransportMode) -> SessionReport {
    // "Supermarket": WiFi 4.5 + LTE 3.5 ≈ 8 Mbps aggregate < the 10 Mbps
    // top rate.
    let cfg = SessionConfig::controlled(
        table1::synthetic_profile_pair(4.5, 3.5, 0.15, 31),
        abr,
        mode,
    )
    .with_video(Video::tears_of_steel_hd());
    StreamingSession::run(cfg)
}

/// Run the experiment.
pub fn run() {
    banner("Table 6 — HD video (Tears of Steel HD, aggregate < top rate)");
    let mut t = Table::new(&[
        "algorithm", "config", "cell bytes", "energy (J)", "bitrate (Mbps)",
        "cell saving", "energy saving", "bitrate change",
    ]);
    for abr in [AbrKind::Festive, AbrKind::BbaC] {
        // BBA-C's baseline is unmodified BBA over vanilla MPTCP, per the
        // paper's "37% for BBA-C over the unmodified BBA".
        let base_abr = if abr == AbrKind::BbaC { AbrKind::Bba } else { abr };
        let base = run_one(base_abr, TransportMode::Vanilla);
        let mp = run_one(abr, TransportMode::mpdash_rate_based());
        for (name, r) in [("Baseline", &base), ("MP-DASH rate", &mp)] {
            let is_base = name == "Baseline";
            let delta = -r.qoe.bitrate_reduction_vs(&base.qoe);
            t.row(&[
                abr.name().into(),
                name.into(),
                mb(r.cell_bytes),
                format!("{:.1}", r.energy.total_j()),
                format!("{:.2}", r.qoe.mean_bitrate_mbps),
                if is_base { "-".into() } else { pct(r.cell_saving_vs(&base)) },
                if is_base { "-".into() } else { pct(r.energy_saving_vs(&base)) },
                if is_base {
                    "-".into()
                } else {
                    format!("{}{}", if delta >= 0.0 { "+" } else { "" }, pct(delta))
                },
            ]);
        }
    }
    println!("{}", t.render());
}
