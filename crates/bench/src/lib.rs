//! Shared machinery for the experiment binaries that regenerate every
//! table and figure of the paper's evaluation (§7).
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_fig1`  | Figure 1 — vanilla MPTCP throughput while streaming |
//! | `exp_fig3`  | Figure 3 — BBA bitrate oscillation |
//! | `exp_fig4`  | Figure 4 — scheduler-only savings vs deadline (+ §7.2.1 α study) |
//! | `exp_fig5`  | Figure 5 — bandwidth traces and Holt-Winters predictions |
//! | `exp_tab2`  | Tables 1 & 2 — online vs optimal cellular usage |
//! | `exp_tab4`  | Table 4 & Figure 6 — throttling vs MP-DASH |
//! | `exp_fig7`  | Figure 7(a–c) — FESTIVE/BBA/BBA-C under three network conditions |
//! | `exp_fig8`  | Figure 8 — analysis-tool chunk visualization |
//! | `exp_field` | Figures 9 & 10, Table 5 — the 33-location field study |
//! | `exp_fig11` | Figure 11 — the mobility scenario |
//! | `exp_tab6`  | Table 6 — HD video |
//! | `exp_faults` | resilience matrix — fault injection on the preferred path (beyond the paper) |
//! | `exp_lifecycle` | request-lifecycle matrix — server faults x timeout/abandon/resume policy (beyond the paper) |
//! | `exp_all`   | everything above, in sequence |
//!
//! The library half hosts the trace-driven simulator behind Table 2 (the
//! paper's §7.2.2 methodology: discrete bandwidth slots of one RTT, the
//! online Algorithm 1 with Holt-Winters prediction versus the
//! perfect-knowledge optimum) plus small table-formatting helpers.

use mpdash_core::deadline::{CellDecision, DeadlineScheduler, SchedulerParams};
use mpdash_core::optimal::optimal_cellular_bytes;
use mpdash_core::predict::{HoltWinters, Predictor};
use mpdash_link::BandwidthProfile;
use mpdash_sim::{SimDuration, SimTime};

/// Result of one trace-driven scheduler simulation (one Table 2 cell).
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// Cellular fraction of all transferred bytes under the online
    /// algorithm.
    pub online_cell_frac: f64,
    /// Cellular fraction under the perfect-knowledge optimum.
    pub optimal_cell_frac: f64,
    /// Whether the online algorithm missed the deadline.
    pub missed: bool,
    /// Online completion time.
    pub finish: SimDuration,
}

impl Table2Row {
    /// The "Diff." column: online minus optimal cellular fraction.
    pub fn diff(&self) -> f64 {
        self.online_cell_frac - self.optimal_cell_frac
    }
}

/// Trace-driven simulation of Algorithm 1 (the paper's §7.2.2 set-up):
/// time advances in `slot`-wide steps; per-slot bandwidths come straight
/// from the profiles; WiFi is always used at its full slot capacity;
/// cellular contributes its slot capacity while the scheduler has it
/// enabled. The WiFi estimate driving the decision is a Holt-Winters
/// forecast over the *observed* WiFi slot rates, exactly as the kernel
/// implementation estimates (§6).
pub fn simulate_online(
    wifi: &BandwidthProfile,
    cell: &BandwidthProfile,
    size: u64,
    deadline: SimDuration,
    slot: SimDuration,
    alpha: f64,
) -> Table2Row {
    let mut sched = DeadlineScheduler::new(SchedulerParams::with_alpha(alpha));
    sched.enable(SimTime::ZERO, size, deadline);
    // The textbook-aggressive parameters are right here: the trace-driven
    // simulation feeds clean per-slot bandwidths (no TCP ramp-up
    // artifacts), so fast tracking minimizes conservatism — matching the
    // paper's kernel estimator setting.
    let mut hw = HoltWinters::default();

    let mut sent: u64 = 0;
    let mut cell_bytes: u64 = 0;
    let mut cell_on = false;
    let mut t = SimTime::ZERO;
    // Hard stop far beyond any sane deadline, to keep the loop total even
    // on malformed inputs.
    let hard_stop = SimTime::ZERO + deadline * 10 + SimDuration::from_secs(60);

    while sent < size && t < hard_stop {
        let wifi_rate = wifi.rate_at(t);
        let cell_rate = cell.rate_at(t);
        // Decision first (Algorithm 1 runs ahead of each transmission),
        // using the forecast — the prior for the very first slot is the
        // profile's first observation, like the paper's pre-measurement.
        let estimate = hw.forecast().unwrap_or(wifi_rate);
        match sched.on_progress(t, sent, estimate) {
            CellDecision::Enable => cell_on = true,
            CellDecision::Disable => cell_on = false,
            CellDecision::NoChange => {}
        }

        // Transfer one slot.
        let wifi_slot_bytes = wifi_rate.bytes_in(slot).min(size - sent);
        sent += wifi_slot_bytes;
        if cell_on && sent < size {
            let cell_slot_bytes = cell_rate.bytes_in(slot).min(size - sent);
            sent += cell_slot_bytes;
            cell_bytes += cell_slot_bytes;
        }
        // Observe the WiFi slot.
        hw.observe(wifi_rate);
        t += slot;
    }

    let finish = t.saturating_since(SimTime::ZERO);
    let n_slots = (deadline.as_nanos() / slot.as_nanos()) as usize;
    let wifi_slots: Vec<u64> = wifi
        .sample_slots(SimTime::ZERO, slot, n_slots)
        .iter()
        .map(|r| r.bytes_in(slot))
        .collect();
    let cell_slots: Vec<u64> = cell
        .sample_slots(SimTime::ZERO, slot, n_slots)
        .iter()
        .map(|r| r.bytes_in(slot))
        .collect();
    let optimal_cell = optimal_cellular_bytes(&wifi_slots, &cell_slots, size);

    Table2Row {
        online_cell_frac: cell_bytes as f64 / size as f64,
        optimal_cell_frac: optimal_cell
            .map(|c| c as f64 / size as f64)
            .unwrap_or(f64::NAN),
        missed: finish > deadline,
        finish,
    }
}

// The table/formatting helpers moved to `mpdash-results` when experiments
// split into compute → persist → render; the old names stay as aliases so
// experiment code reads unchanged.
pub use mpdash_results::TableData as Table;
pub use mpdash_results::{mb, pct};

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_trace::synth::SynthSpec;

    #[test]
    fn online_never_beats_optimal() {
        // Property over the Table 1 synthetic profile family.
        for seed in 0..5 {
            let wifi = SynthSpec::new(3.8, 0.3, seed).profile();
            let cell = SynthSpec::new(3.0, 0.3, seed + 100).profile();
            let row = simulate_online(
                &wifi,
                &cell,
                5_000_000,
                SimDuration::from_secs(10),
                SimDuration::from_millis(50),
                1.0,
            );
            assert!(
                row.online_cell_frac + 1e-9 >= row.optimal_cell_frac,
                "seed {seed}: online {} < optimal {}",
                row.online_cell_frac,
                row.optimal_cell_frac
            );
            // Paper: the online gap is consistently small (<10% of the
            // transfer). Our σ=30% synthetic noise is AR(1)-correlated
            // (multi-second excursions the clairvoyant optimum can
            // exploit), which is more adversarial than white noise, so
            // the bound carries slack.
            assert!(row.diff() < 0.20, "seed {seed}: diff {}", row.diff());
        }
    }

    #[test]
    fn longer_deadlines_use_less_cellular() {
        let wifi = SynthSpec::new(3.8, 0.1, 1).profile();
        let cell = SynthSpec::new(3.0, 0.1, 2).profile();
        let mut prev = f64::INFINITY;
        for d in [8u64, 9, 10] {
            let row = simulate_online(
                &wifi,
                &cell,
                5_000_000,
                SimDuration::from_secs(d),
                SimDuration::from_millis(50),
                1.0,
            );
            assert!(!row.missed, "deadline {d} missed");
            assert!(
                row.online_cell_frac <= prev,
                "deadline {d}: {} vs prev {}",
                row.online_cell_frac,
                prev
            );
            prev = row.online_cell_frac;
        }
    }

    #[test]
    fn ample_wifi_needs_no_cellular() {
        let wifi = SynthSpec::new(28.4, 0.08, 3).profile();
        let cell = SynthSpec::new(19.1, 0.1, 4).profile();
        // Office row, 18 s deadline: paper reports 0.00% for both.
        let row = simulate_online(
            &wifi,
            &cell,
            50_000_000,
            SimDuration::from_secs(18),
            SimDuration::from_millis(50),
            1.0,
        );
        assert_eq!(row.optimal_cell_frac, 0.0);
        assert!(
            row.online_cell_frac < 0.02,
            "online {}",
            row.online_cell_frac
        );
        assert!(!row.missed);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| a | bbbb |"));
        assert!(s.contains("| 1 |    2 |"));
    }
}
pub mod cli;
pub mod experiments;
