//! The scheduler-trait refactor's byte-identity proof at the artifact
//! level: the `exp_fig4` quick grid — every MinRtt and RoundRobin cell
//! the paper's Figure 4 sweeps — must serialize byte-for-byte equal to
//! the artifact the seed enum dispatcher produced.
//!
//! `golden_fig4_quick_seed.json` was recorded by running the seed's
//! `exp_fig4 --quick` immediately before the refactor landed. Note this
//! covers the round-robin rotation fix too: on fig4's stable two-path
//! grid the last-picked-path rotation reproduces the seed cursor's pick
//! sequence exactly, so no golden expectation shifted.

const SEED_GOLDEN: &str = include_str!("golden_fig4_quick_seed.json");

#[test]
fn fig4_quick_artifact_is_byte_identical_to_the_seed_enum() {
    let now = mpdash_bench::experiments::fig4::result(true)
        .to_json()
        .to_pretty();
    assert_eq!(
        now, SEED_GOLDEN,
        "trait-dispatched MinRtt/RoundRobin must reproduce the seed artifact byte-for-byte"
    );
}
