//! [`MpDashControl`]: the socket-option-shaped control surface of the
//! MP-DASH scheduler (§3.2 of the paper).
//!
//! The paper exposes two things to applications:
//!
//! 1. `MP_DASH_ENABLE(S, D)` / `MP_DASH_DISABLE` — activate the
//!    deadline-aware scheduler for the next `S` bytes with window `D`.
//! 2. A query for the **aggregated throughput across all paths**, which
//!    the video adapter feeds to throughput-based DASH algorithms so the
//!    player "has a consistent view of the overall available network
//!    resources" even while MP-DASH has the cellular path disabled (§5.2.1).
//!
//! This type bundles the N-path scheduler with one Holt-Winters throughput
//! sampler per path and owns the estimate-freshness policy:
//!
//! * **Enabled** paths roll their samplers continuously — zero-byte slots
//!   are real signal (a blacked-out WiFi link must drag its estimate down
//!   so the scheduler reacts, Table 2's "Miss?" scenarios).
//! * **Disabled** paths freeze their samplers — no data flows on them *by
//!   design*, so their last live estimate (or a configured prior, e.g. the
//!   pre-play probe measurement the paper mentions in §7.3.3) stands in.

use crate::deadline::SchedulerParams;
use crate::multipath::MultiPathScheduler;
use crate::predict::{Predictor, PredictorKind, ThroughputSampler};
use mpdash_sim::{Rate, SimDuration, SimTime};

/// Lifetime statistics of a deadline scheduler instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Costly-path enable/disable flips (Algorithm 1 decisions that
    /// changed the enabled set).
    pub toggles: u64,
    /// Transfers whose deadline window expired before completion.
    pub missed_deadlines: u64,
    /// Transfers that finished under scheduler control.
    pub completed_transfers: u64,
}

/// Per-transfer, per-path MP-DASH control plane. See module docs.
pub struct MpDashControl {
    sched: MultiPathScheduler,
    samplers: Vec<ThroughputSampler<Box<dyn Predictor>>>,
    priors: Vec<Rate>,
    enabled: Vec<bool>,
}

impl MpDashControl {
    /// Build the control plane.
    ///
    /// * `costs` — per-path unit cost (lower = preferred); index is the
    ///   path id.
    /// * `priors` — per-path initial throughput estimates used until a
    ///   path has live samples (the paper seeds these from pre-play
    ///   measurements).
    /// * `params` — Algorithm 1 tunables (α).
    /// * `slot` — sampling slot width; the paper uses one RTT (§7.2.2).
    pub fn new(
        costs: Vec<f64>,
        priors: Vec<Rate>,
        params: SchedulerParams,
        slot: SimDuration,
    ) -> Self {
        // Holt-Winters at α = 0.5 (rather than the textbook-aggressive
        // 0.8) because scheduler decisions ride on these forecasts: a
        // single ramp-up or half-filled slot must not swing the estimate
        // enough to toggle the cellular subflow. Blackout response is
        // still a few slots (zero samples compound as (1−α)^k plus a
        // negative trend).
        Self::with_predictor(
            costs,
            priors,
            params,
            slot,
            PredictorKind::control_default(),
        )
    }

    /// Like [`MpDashControl::new`] but with an explicit predictor choice
    /// (the EWMA option feeds the predictor-ablation bench).
    pub fn with_predictor(
        costs: Vec<f64>,
        priors: Vec<Rate>,
        params: SchedulerParams,
        slot: SimDuration,
        predictor: PredictorKind,
    ) -> Self {
        assert_eq!(costs.len(), priors.len(), "one prior per path");
        let n = costs.len();
        MpDashControl {
            sched: MultiPathScheduler::new(costs, params),
            samplers: (0..n)
                .map(|_| ThroughputSampler::new(predictor.build(), slot))
                .collect(),
            priors,
            enabled: vec![true; n],
        }
    }

    /// Number of paths.
    pub fn n_paths(&self) -> usize {
        self.priors.len()
    }

    /// Whether a transfer is active under MP-DASH control.
    pub fn is_active(&self) -> bool {
        self.sched.is_active()
    }

    /// Currently enabled paths.
    pub fn enabled(&self) -> &[bool] {
        &self.enabled
    }

    /// Lifetime scheduler statistics.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            toggles: self.sched.toggles(),
            missed_deadlines: self.sched.missed_deadlines(),
            completed_transfers: self.sched.completed(),
        }
    }

    /// `MP_DASH_ENABLE(S, D)`. Returns the enabled set to apply (only the
    /// preferred path). Enabled paths' samplers are re-anchored at `now`
    /// so the idle gap since the last chunk does not count as zero
    /// throughput — but their predictor state (the last chunk's estimate)
    /// carries over, which is what lets Algorithm 1 judge WiFi before the
    /// first progress sample of the new chunk.
    pub fn mp_dash_enable(&mut self, now: SimTime, size: u64, window: SimDuration) -> &[bool] {
        self.enabled = self.sched.enable(now, size, window);
        for (i, s) in self.samplers.iter_mut().enumerate() {
            if self.enabled[i] {
                s.reanchor(now);
            }
        }
        &self.enabled
    }

    /// `MP_DASH_DISABLE`. Returns the enabled set (all paths — vanilla
    /// MPTCP).
    pub fn mp_dash_disable(&mut self) -> &[bool] {
        self.enabled = self.sched.disable();
        &self.enabled
    }

    /// Feed `bytes` received on `path` at time `t` into its sampler.
    pub fn on_bytes(&mut self, path: usize, t: SimTime, bytes: u64) {
        self.samplers[path].on_bytes(t, bytes);
    }

    /// Current throughput estimate of `path`: live forecast when the path
    /// has one, configured prior otherwise.
    pub fn estimate(&self, path: usize) -> Rate {
        self.samplers[path].forecast().unwrap_or(self.priors[path])
    }

    /// The §3.2 aggregate-throughput interface: the sum of per-path
    /// estimates. This is what the video adapter hands to a
    /// throughput-based DASH algorithm in place of its own (single-path,
    /// under-counting) measurement.
    pub fn aggregate_throughput(&self) -> Rate {
        (0..self.n_paths())
            .map(|p| self.estimate(p))
            .fold(Rate::ZERO, Rate::saturating_add)
    }

    /// A path's subflow was torn down and re-established (e.g. WiFi
    /// reassociation after a disassociation fault): the Holt-Winters
    /// state learned on the old association is stale — the AP, channel
    /// conditions, or even the BSS may have changed — so reset the
    /// path's predictor and re-anchor its slot clock at `now`. Until
    /// fresh samples arrive the estimate falls back to the configured
    /// prior.
    pub fn on_path_reset(&mut self, path: usize, now: SimTime) {
        self.samplers[path].reset_at(now);
    }

    /// Progress update: advance busy paths' sampling clocks to `now`,
    /// run the scheduler on `total_sent` delivered bytes, and return the
    /// new enabled set if it changed.
    ///
    /// `busy[p]` must be `true` while path `p` has data outstanding (the
    /// transport's in-flight signal). Only busy, enabled paths roll their
    /// samplers: a silent busy path is a blackout (zero slots drag its
    /// estimate down, Algorithm 1 reacts), while a silent idle path just
    /// has nothing to carry — e.g. the tail of a chunk whose remainder is
    /// assigned to the other subflow — and its estimate must freeze, or
    /// every chunk tail would masquerade as a WiFi outage and force the
    /// costly path on at the next chunk.
    pub fn on_progress(
        &mut self,
        now: SimTime,
        total_sent: u64,
        busy: &[bool],
    ) -> Option<Vec<bool>> {
        assert_eq!(busy.len(), self.n_paths(), "one busy flag per path");
        for (i, s) in self.samplers.iter_mut().enumerate() {
            if self.enabled[i] && busy[i] {
                s.roll_to(now);
            }
        }
        let estimates: Vec<Rate> = (0..self.n_paths()).map(|p| self.estimate(p)).collect();
        let change = self.sched.on_progress(now, total_sent, &estimates)?;
        // Paths coming online restart their sampling clock at `now`.
        for (i, s) in self.samplers.iter_mut().enumerate() {
            if change[i] && !self.enabled[i] {
                s.reanchor(now);
            }
        }
        self.enabled = change.clone();
        Some(change)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(m: f64) -> Rate {
        Rate::from_mbps_f64(m)
    }

    const MB: u64 = 1_000_000;

    fn control() -> MpDashControl {
        MpDashControl::new(
            vec![0.0, 1.0],
            vec![mbps(4.0), mbps(3.0)],
            SchedulerParams::default(),
            SimDuration::from_millis(50),
        )
    }

    #[test]
    fn enable_starts_preferred_only() {
        let mut c = control();
        let en = c.mp_dash_enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));
        assert_eq!(en, &[true, false]);
        assert!(c.is_active());
    }

    #[test]
    fn priors_stand_in_before_samples() {
        let c = control();
        assert_eq!(c.estimate(0), mbps(4.0));
        assert_eq!(c.estimate(1), mbps(3.0));
        assert_eq!(c.aggregate_throughput(), mbps(7.0));
    }

    #[test]
    fn live_samples_override_priors() {
        let mut c = control();
        c.mp_dash_enable(SimTime::ZERO, 10 * MB, SimDuration::from_secs(30));
        // 2 Mbps of real WiFi traffic for 1 s.
        for i in 0..20u64 {
            c.on_bytes(0, SimTime::from_millis(i * 50 + 10), 12_500);
        }
        c.on_progress(SimTime::from_secs(1), 250_000, &[true, true]);
        let est = c.estimate(0).as_mbps_f64();
        assert!((est - 2.0).abs() < 0.3, "estimate {est}");
    }

    #[test]
    fn underperforming_wifi_turns_cell_on_via_progress() {
        let mut c = control();
        // Need 4 Mbps, prior says WiFi has 4.0... just short after the
        // first samples come in at 2 Mbps.
        c.mp_dash_enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));
        for i in 0..20u64 {
            c.on_bytes(0, SimTime::from_millis(i * 50 + 10), 12_500); // 2 Mbps
        }
        let change = c.on_progress(SimTime::from_secs(1), 250_000, &[true, true]);
        assert_eq!(change, Some(vec![true, true]), "cell must come on");
        assert_eq!(c.enabled(), &[true, true]);
    }

    #[test]
    fn disabled_path_estimate_freezes_not_collapses() {
        let mut c = control();
        c.mp_dash_enable(SimTime::ZERO, 20 * MB, SimDuration::from_secs(60));
        // Cell disabled from the start; WiFi active at 1 Mbps (i.e. slow).
        for i in 0..40u64 {
            c.on_bytes(0, SimTime::from_millis(i * 50 + 10), 6_250);
        }
        c.on_progress(SimTime::from_secs(2), 250_000, &[true, true]);
        // Cellular never carried a byte: estimate must still be the prior,
        // not zero — otherwise the greedy would think cellular is useless.
        assert_eq!(c.estimate(1), mbps(3.0));
    }

    #[test]
    fn idle_gap_between_chunks_does_not_zero_the_estimate() {
        let mut c = control();
        c.mp_dash_enable(SimTime::ZERO, MB, SimDuration::from_secs(4));
        // Chunk 1 at 4 Mbps.
        for i in 0..40u64 {
            c.on_bytes(0, SimTime::from_millis(i * 50 + 10), 25_000);
        }
        c.on_progress(SimTime::from_secs(2), MB, &[true, true]); // completes
        assert!(!c.is_active());
        // 30 s idle (player buffer full), then the next chunk starts.
        let later = SimTime::from_secs(32);
        c.mp_dash_enable(later, MB, SimDuration::from_secs(4));
        let est = c.estimate(0).as_mbps_f64();
        assert!(est > 3.0, "idle gap must not collapse estimate: {est}");
    }

    #[test]
    fn blackout_during_transfer_does_collapse_the_estimate() {
        let mut c = control();
        c.mp_dash_enable(SimTime::ZERO, 20 * MB, SimDuration::from_secs(60));
        for i in 0..40u64 {
            c.on_bytes(0, SimTime::from_millis(i * 50 + 10), 25_000); // 4 Mbps
        }
        c.on_progress(SimTime::from_secs(2), MB, &[true, true]);
        assert!(c.estimate(0).as_mbps_f64() > 3.0);
        // WiFi goes dark for 3 s mid-transfer *with data in flight*.
        c.on_progress(SimTime::from_secs(5), MB, &[true, true]);
        assert!(
            c.estimate(0).as_mbps_f64() < 0.5,
            "in-transfer silence is a blackout: {}",
            c.estimate(0).as_mbps_f64()
        );
    }

    #[test]
    fn stats_flow_through() {
        let mut c = control();
        c.mp_dash_enable(SimTime::ZERO, MB, SimDuration::from_secs(4));
        c.on_progress(SimTime::from_secs(1), MB, &[true, true]);
        let stats = c.stats();
        assert_eq!(stats.missed_deadlines, 0);
        assert_eq!(stats.completed_transfers, 1);
    }
}
