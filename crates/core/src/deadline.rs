//! Algorithm 1: the online deadline-aware MP-DASH scheduler.
//!
//! One transfer (a video chunk, or any delay-tolerant blob) is described
//! by its size `S` and download window `D`. The scheduler starts with the
//! costly (cellular) path **off**, drives the preferred (WiFi) path at
//! full rate, and after every progress update re-evaluates lines 16–21 of
//! the paper's Algorithm 1:
//!
//! ```text
//! if (α·D − timeSpent) · R_wifi > S − sentBytes  and cell on  → turn cell off
//! if (α·D − timeSpent) · R_wifi < S − sentBytes  and cell off → turn cell on
//! ```
//!
//! `α ≤ 1` shrinks the target window to absorb estimation error (§4); the
//! paper's evaluations use α = 1 with an α = 0.8 sensitivity point
//! (§7.2.1). If the real deadline passes before completion, both
//! interfaces stay on until the transfer finishes (§7.2.1).
//!
//! The scheduler is deliberately a pure decision function — no clocks, no
//! transport. The session layer feeds it `(now, bytes delivered, WiFi
//! estimate)` and applies the returned decision to the MPTCP path mask.
//!
//! ```
//! use mpdash_core::deadline::{CellDecision, DeadlineScheduler, SchedulerParams};
//! use mpdash_sim::{Rate, SimDuration, SimTime};
//!
//! let mut s = DeadlineScheduler::new(SchedulerParams::default());
//! // MP_DASH_ENABLE: 5 MB due in 10 s; the costly path starts off.
//! s.enable(SimTime::ZERO, 5_000_000, SimDuration::from_secs(10));
//!
//! // WiFi estimated at 3 Mbps can move only 3.75 MB in 10 s: enable LTE.
//! let d = s.on_progress(SimTime::ZERO, 0, Rate::from_mbps(3));
//! assert_eq!(d, CellDecision::Enable);
//!
//! // Two seconds in, 2.5 MB are through and WiFi recovered to 6 Mbps:
//! // the remaining 2.5 MB fit in the 8 s left — LTE goes dark again.
//! let d = s.on_progress(SimTime::from_secs(2), 2_500_000, Rate::from_mbps(6));
//! assert_eq!(d, CellDecision::Disable);
//! ```

use mpdash_sim::{Rate, SimDuration, SimTime};

/// Tunable parameters of Algorithm 1.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerParams {
    /// Target-window shrink factor α in `(0, 1]`. Smaller values finish
    /// earlier (fewer missed deadlines) at the price of more cellular
    /// bytes.
    pub alpha: f64,
    /// Enable-side debounce: the "WiFi alone will miss the deadline"
    /// condition must hold for this many consecutive progress checks
    /// before the costly path turns on. `1` is the paper's Algorithm 1
    /// verbatim; a few checks (the session layer uses 4, i.e. 200 ms of
    /// 50 ms ticks) filters throughput-estimate flicker that would
    /// otherwise toggle the cellular subflow several times per chunk —
    /// each spurious enable bursts a full retained congestion window onto
    /// the metered path and re-arms the LTE radio's high-power window.
    /// Disables are never debounced (turning cellular *off* is always
    /// safe).
    pub enable_debounce: u32,
}

impl Default for SchedulerParams {
    fn default() -> Self {
        SchedulerParams {
            alpha: 1.0,
            enable_debounce: 1,
        }
    }
}

impl SchedulerParams {
    /// Parameters with a specific α.
    ///
    /// # Panics
    /// If `alpha` is outside `(0, 1]`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        SchedulerParams {
            alpha,
            enable_debounce: 1,
        }
    }

    /// Same parameters with an enable-side debounce of `checks`
    /// consecutive progress evaluations (min 1).
    pub fn with_debounce(mut self, checks: u32) -> Self {
        self.enable_debounce = checks.max(1);
        self
    }
}

/// What the decision function wants done with the costly path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellDecision {
    /// Enable the costly path (WiFi alone will miss the deadline).
    Enable,
    /// Disable the costly path (WiFi alone suffices).
    Disable,
    /// Keep the current setting.
    NoChange,
}

#[derive(Clone, Debug)]
struct Active {
    size: u64,
    started: SimTime,
    window: SimDuration,
    sent: u64,
    cell_enabled: bool,
    missed: bool,
    /// Consecutive progress checks that wanted the costly path on.
    enable_streak: u32,
}

/// The per-transfer state machine of Algorithm 1. See module docs.
#[derive(Clone, Debug)]
pub struct DeadlineScheduler {
    params: SchedulerParams,
    active: Option<Active>,
    /// Lifetime count of cellular on/off transitions (diagnostics; the
    /// analysis tool reports toggle churn).
    toggles: u64,
    /// Lifetime count of transfers that missed their real deadline.
    missed_deadlines: u64,
    /// Lifetime count of completed transfers.
    completed: u64,
}

impl DeadlineScheduler {
    /// A scheduler with the given parameters and no active transfer.
    pub fn new(params: SchedulerParams) -> Self {
        DeadlineScheduler {
            params,
            active: None,
            toggles: 0,
            missed_deadlines: 0,
            completed: 0,
        }
    }

    /// `MP_DASH_ENABLE`: activate for the next `size` bytes with download
    /// window `window`. Per Algorithm 1 the costly path starts **off**, so
    /// the returned decision is always [`CellDecision::Disable`]; callers
    /// apply it immediately.
    ///
    /// # Panics
    /// If `size` is zero (nothing to schedule) or `window` is zero (the
    /// deadline already passed at activation — callers should treat that
    /// as "don't activate").
    pub fn enable(&mut self, now: SimTime, size: u64, window: SimDuration) -> CellDecision {
        assert!(size > 0, "transfer size must be positive");
        assert!(!window.is_zero(), "deadline window must be positive");
        self.active = Some(Active {
            size,
            started: now,
            window,
            sent: 0,
            cell_enabled: false,
            missed: false,
            enable_streak: 0,
        });
        CellDecision::Disable
    }

    /// `MP_DASH_DISABLE`: deactivate explicitly. The transport reverts to
    /// vanilla MPTCP, so the costly path comes back on.
    pub fn disable(&mut self) -> CellDecision {
        self.active = None;
        CellDecision::Enable
    }

    /// Whether a transfer is currently being scheduled.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Whether the costly path is currently enabled under MP-DASH control
    /// (`true` also when inactive — vanilla MPTCP uses every path).
    pub fn cell_enabled(&self) -> bool {
        self.active.as_ref().is_none_or(|a| a.cell_enabled)
    }

    /// The real (un-shrunk) deadline of the active transfer.
    pub fn deadline(&self) -> Option<SimTime> {
        self.active.as_ref().map(|a| a.started + a.window)
    }

    /// Lifetime cellular on/off transition count.
    pub fn toggles(&self) -> u64 {
        self.toggles
    }

    /// Lifetime missed-deadline count.
    pub fn missed_deadlines(&self) -> u64 {
        self.missed_deadlines
    }

    /// Lifetime completed-transfer count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Progress update: `total_sent` is the cumulative bytes of the
    /// *active transfer* delivered so far, `wifi_rate` the current
    /// preferred-path throughput estimate. Returns what to do with the
    /// costly path.
    ///
    /// Completion (`total_sent ≥ S`) deactivates the scheduler; per the
    /// interface contract (§3.2) the transport reverts to vanilla MPTCP,
    /// so completion returns [`CellDecision::Enable`]. DASH adapters
    /// immediately re-`enable` for the next chunk, and the link is idle in
    /// between, so no stray cellular bytes flow from this.
    pub fn on_progress(&mut self, now: SimTime, total_sent: u64, wifi_rate: Rate) -> CellDecision {
        let Some(a) = self.active.as_mut() else {
            return CellDecision::NoChange;
        };
        a.sent = a.sent.max(total_sent);

        // (1) Completed: deactivate.
        if a.sent >= a.size {
            self.completed += 1;
            self.active = None;
            return CellDecision::Enable;
        }

        // (2) Real deadline passed: both interfaces from now on (§7.2.1).
        if now >= a.started + a.window {
            if !a.missed {
                a.missed = true;
                self.missed_deadlines += 1;
            }
            if !a.cell_enabled {
                a.cell_enabled = true;
                self.toggles += 1;
                return CellDecision::Enable;
            }
            return CellDecision::NoChange;
        }

        // (3) Lines 16–21: compare what WiFi alone can still move within
        // the α-shrunk window against what remains.
        let remaining = a.size - a.sent;
        let spent = now.saturating_since(a.started);
        let target = a.window.mul_f64(self.params.alpha);
        let time_left = target.saturating_sub(spent);
        let wifi_can = wifi_rate.bytes_in(time_left);

        if wifi_can > remaining && a.cell_enabled {
            a.enable_streak = 0;
            a.cell_enabled = false;
            self.toggles += 1;
            CellDecision::Disable
        } else if wifi_can < remaining && !a.cell_enabled {
            a.enable_streak += 1;
            if a.enable_streak >= self.params.enable_debounce {
                a.enable_streak = 0;
                a.cell_enabled = true;
                self.toggles += 1;
                CellDecision::Enable
            } else {
                CellDecision::NoChange
            }
        } else {
            a.enable_streak = 0;
            CellDecision::NoChange
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(m: f64) -> Rate {
        Rate::from_mbps_f64(m)
    }

    fn sched() -> DeadlineScheduler {
        DeadlineScheduler::new(SchedulerParams::default())
    }

    const MB: u64 = 1_000_000;

    #[test]
    fn starts_with_cell_disabled() {
        let mut s = sched();
        let d = s.enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));
        assert_eq!(d, CellDecision::Disable);
        assert!(s.is_active());
        assert!(!s.cell_enabled());
    }

    #[test]
    fn wifi_sufficient_keeps_cell_off() {
        // 5 MB in 10 s window needs 4 Mbps; WiFi at 4.8 Mbps suffices.
        let mut s = sched();
        s.enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));
        let d = s.on_progress(SimTime::from_secs(1), 600_000, mbps(4.8));
        assert_eq!(d, CellDecision::NoChange);
        assert!(!s.cell_enabled());
    }

    #[test]
    fn underperforming_wifi_enables_cell() {
        // 5 MB in 10 s but WiFi only 3.0 Mbps (can move 3.75 MB): enable.
        let mut s = sched();
        s.enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));
        let d = s.on_progress(SimTime::from_secs(0), 0, mbps(3.0));
        assert_eq!(d, CellDecision::Enable);
        assert!(s.cell_enabled());
        assert_eq!(s.toggles(), 1);
    }

    #[test]
    fn recovering_wifi_disables_cell_again() {
        let mut s = sched();
        s.enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));
        s.on_progress(SimTime::ZERO, 0, mbps(3.0)); // enable
                                                    // WiFi recovers to 10 Mbps: 9 s left can move 11 MB > 4.6 MB left.
        let d = s.on_progress(SimTime::from_secs(1), 400_000, mbps(10.0));
        assert_eq!(d, CellDecision::Disable);
        assert!(!s.cell_enabled());
        assert_eq!(s.toggles(), 2);
    }

    #[test]
    fn completion_deactivates_and_restores_vanilla() {
        let mut s = sched();
        s.enable(SimTime::ZERO, MB, SimDuration::from_secs(10));
        let d = s.on_progress(SimTime::from_secs(3), MB, mbps(4.0));
        assert_eq!(d, CellDecision::Enable);
        assert!(!s.is_active());
        assert_eq!(s.completed(), 1);
        assert_eq!(s.missed_deadlines(), 0);
        // Further progress reports are no-ops.
        assert_eq!(
            s.on_progress(SimTime::from_secs(4), 2 * MB, mbps(4.0)),
            CellDecision::NoChange
        );
    }

    #[test]
    fn missed_deadline_forces_both_paths_on() {
        let mut s = sched();
        s.enable(SimTime::ZERO, 10 * MB, SimDuration::from_secs(5));
        // Pretend WiFi looked great so cell stayed off...
        s.on_progress(SimTime::from_secs(1), 500_000, mbps(100.0));
        assert!(!s.cell_enabled());
        // ...but at t=5 s the transfer is incomplete: deadline missed.
        let d = s.on_progress(SimTime::from_secs(5), 600_000, mbps(100.0));
        assert_eq!(d, CellDecision::Enable);
        assert_eq!(s.missed_deadlines(), 1);
        // Even a glowing WiFi estimate cannot disable cell any more.
        let d2 = s.on_progress(SimTime::from_secs(6), 700_000, mbps(1000.0));
        assert_eq!(d2, CellDecision::NoChange);
        assert!(s.cell_enabled());
        // Missing is counted once.
        s.on_progress(SimTime::from_secs(7), 800_000, mbps(1.0));
        assert_eq!(s.missed_deadlines(), 1);
    }

    #[test]
    fn alpha_shrinks_the_target_window() {
        // 5 MB, 10 s window, WiFi 4.8 Mbps: with α=1 WiFi suffices
        // (6 MB > 5 MB), with α=0.8 it does not (4.8 MB < 5 MB).
        let mut relaxed = DeadlineScheduler::new(SchedulerParams::with_alpha(1.0));
        relaxed.enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));
        assert_eq!(
            relaxed.on_progress(SimTime::ZERO, 0, mbps(4.8)),
            CellDecision::NoChange
        );

        let mut tight = DeadlineScheduler::new(SchedulerParams::with_alpha(0.8));
        tight.enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));
        assert_eq!(
            tight.on_progress(SimTime::ZERO, 0, mbps(4.8)),
            CellDecision::Enable
        );
    }

    #[test]
    fn explicit_disable_reverts_to_vanilla() {
        let mut s = sched();
        s.enable(SimTime::ZERO, MB, SimDuration::from_secs(4));
        assert_eq!(s.disable(), CellDecision::Enable);
        assert!(!s.is_active());
        assert!(s.cell_enabled(), "inactive means vanilla MPTCP");
    }

    #[test]
    fn progress_is_monotone_even_with_stale_reports() {
        let mut s = sched();
        s.enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));
        s.on_progress(SimTime::from_secs(1), 2 * MB, mbps(4.0));
        // A stale (smaller) progress report must not resurrect remaining
        // bytes.
        let d = s.on_progress(SimTime::from_secs(2), MB, mbps(3.2));
        // remaining = 3 MB, 8 s at 3.2 Mbps = 3.2 MB > 3 MB: stays off.
        assert_eq!(d, CellDecision::NoChange);
        assert!(!s.cell_enabled());
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn zero_alpha_rejected() {
        let _ = SchedulerParams::with_alpha(0.0);
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn zero_size_rejected() {
        let mut s = sched();
        s.enable(SimTime::ZERO, 0, SimDuration::from_secs(1));
    }
}
