//! The MP-DASH deadline-aware multipath scheduler — the paper's primary
//! contribution (§4), plus the machinery around it.
//!
//! * [`predict`] — the non-seasonal Holt-Winters throughput predictor the
//!   kernel implementation uses (§6), plus an EWMA baseline for ablation
//!   and a windowed byte-counter that turns packet arrivals into rate
//!   samples.
//! * [`deadline`] — Algorithm 1: the online scheduler that drives the
//!   preferred path at full rate and toggles the costly path based on
//!   whether the preferred path alone can finish `S` bytes within the
//!   (α-shrunk) deadline window `D`.
//! * [`optimal`] — the offline formulation: the 0-1 min-knapsack over
//!   `(path, slot)` items solved exactly by dynamic programming, used as
//!   the "Cell % (Optimal)" reference of Table 2 and by property tests.
//! * [`multipath`] — the cost-varying generalization to N interfaces
//!   (§4 "Optimality"): sort paths by unit cost, enable the cheapest
//!   prefix whose estimated capacity meets the deadline.
//! * [`api`] — the socket-option-shaped control surface
//!   (`MP_DASH_ENABLE` / `MP_DASH_DISABLE`) and the aggregate-throughput
//!   query the video adapter reads (§3.2).
//!
//! The crate is transport-agnostic on purpose: paths are dense indices,
//! rates come in as [`mpdash_sim::Rate`] samples, and decisions come out
//! as per-path enable flags. `mpdash-session` binds those to the MPTCP
//! model's path mask — or, in a real deployment, to a kernel socket
//! option.

pub mod api;
pub mod deadline;
pub mod multipath;
pub mod optimal;
pub mod predict;

pub use api::{MpDashControl, SchedulerStats};
pub use deadline::{CellDecision, DeadlineScheduler, SchedulerParams};
pub use optimal::{optimal_cellular_bytes, optimal_min_cost, SlotPlan};
pub use predict::{EwmaPredictor, HoltWinters, Predictor, PredictorKind, ThroughputSampler};
