//! The cost-varying generalization of Algorithm 1 to N interfaces.
//!
//! §4 of the paper: *"we can first sort the interfaces based on their
//! costs, and then feed data from low-cost to high-cost interfaces, by
//! turning on/off the paths accordingly."* This module implements that
//! greedy: at every progress update it enables the cheapest prefix of
//! interfaces whose combined estimated capacity over the remaining
//! (α-shrunk) window covers the remaining bytes. The cheapest interface is
//! always on (it is the preferred path Algorithm 1 drives at full rate);
//! with N = 2 the behaviour reduces exactly to Algorithm 1, which the
//! tests assert.

use crate::deadline::SchedulerParams;
use mpdash_sim::{Rate, SimDuration, SimTime};

#[derive(Clone, Debug)]
struct ActiveN {
    size: u64,
    started: SimTime,
    window: SimDuration,
    sent: u64,
    enabled: Vec<bool>,
    missed: bool,
    /// Per-path consecutive checks wanting the path enabled (enable-side
    /// debounce; see [`SchedulerParams::enable_debounce`]).
    enable_streak: Vec<u32>,
}

/// N-interface deadline-aware scheduler (greedy cheapest-prefix).
#[derive(Clone, Debug)]
pub struct MultiPathScheduler {
    /// Unit cost per byte of each path (lower = preferred). Index = path.
    costs: Vec<f64>,
    /// Path indices sorted by ascending cost (ties break on index, so the
    /// conventional WiFi=0 wins against an equal-cost path).
    by_cost: Vec<usize>,
    params: SchedulerParams,
    active: Option<ActiveN>,
    toggles: u64,
    missed_deadlines: u64,
    completed: u64,
}

impl MultiPathScheduler {
    /// Build from per-path unit costs.
    ///
    /// # Panics
    /// If `costs` is empty or any cost is negative/non-finite.
    pub fn new(costs: Vec<f64>, params: SchedulerParams) -> Self {
        assert!(!costs.is_empty(), "need at least one path");
        assert!(
            costs.iter().all(|c| c.is_finite() && *c >= 0.0),
            "costs must be finite and non-negative"
        );
        let mut by_cost: Vec<usize> = (0..costs.len()).collect();
        by_cost.sort_by(|&a, &b| costs[a].partial_cmp(&costs[b]).unwrap().then(a.cmp(&b)));
        MultiPathScheduler {
            costs,
            by_cost,
            params,
            active: None,
            toggles: 0,
            missed_deadlines: 0,
            completed: 0,
        }
    }

    /// Number of paths.
    pub fn n_paths(&self) -> usize {
        self.costs.len()
    }

    /// The path index the policy prefers most (lowest cost).
    pub fn preferred(&self) -> usize {
        self.by_cost[0]
    }

    /// Whether a transfer is being scheduled.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Currently enabled paths under MP-DASH control (all paths when
    /// inactive — vanilla MPTCP).
    pub fn enabled(&self) -> Vec<bool> {
        match &self.active {
            Some(a) => a.enabled.clone(),
            None => vec![true; self.costs.len()],
        }
    }

    /// Lifetime enable/disable transition count across all paths.
    pub fn toggles(&self) -> u64 {
        self.toggles
    }

    /// Lifetime missed-deadline count.
    pub fn missed_deadlines(&self) -> u64 {
        self.missed_deadlines
    }

    /// Lifetime completed-transfer count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Activate for `size` bytes within `window`. Only the preferred path
    /// starts enabled (Algorithm 1 line 3, generalized). Returns the
    /// initial enabled set.
    pub fn enable(&mut self, now: SimTime, size: u64, window: SimDuration) -> Vec<bool> {
        assert!(size > 0, "transfer size must be positive");
        assert!(!window.is_zero(), "deadline window must be positive");
        let mut enabled = vec![false; self.costs.len()];
        enabled[self.by_cost[0]] = true;
        self.active = Some(ActiveN {
            size,
            started: now,
            window,
            sent: 0,
            enabled: enabled.clone(),
            missed: false,
            enable_streak: vec![0; self.costs.len()],
        });
        enabled
    }

    /// Deactivate; the transport reverts to vanilla MPTCP (all paths).
    pub fn disable(&mut self) -> Vec<bool> {
        self.active = None;
        vec![true; self.costs.len()]
    }

    /// Progress update. `estimates[i]` is the current throughput estimate
    /// of path `i`. Returns `Some(enabled)` when the enabled set changed,
    /// `None` otherwise. Completion and missed deadlines behave as in
    /// [`crate::deadline::DeadlineScheduler`].
    pub fn on_progress(
        &mut self,
        now: SimTime,
        total_sent: u64,
        estimates: &[Rate],
    ) -> Option<Vec<bool>> {
        assert_eq!(estimates.len(), self.costs.len(), "one estimate per path");
        let a = self.active.as_mut()?;
        a.sent = a.sent.max(total_sent);

        if a.sent >= a.size {
            self.completed += 1;
            self.active = None;
            return Some(vec![true; self.costs.len()]);
        }

        if now >= a.started + a.window {
            if !a.missed {
                a.missed = true;
                self.missed_deadlines += 1;
            }
            let all = vec![true; self.costs.len()];
            if a.enabled != all {
                self.toggles += a.enabled.iter().filter(|&&e| !e).count() as u64;
                a.enabled = all.clone();
                return Some(all);
            }
            return None;
        }

        let remaining = a.size - a.sent;
        let spent = now.saturating_since(a.started);
        let target = a.window.mul_f64(self.params.alpha);
        let time_left = target.saturating_sub(spent);

        // Greedy cheapest prefix: accumulate capacity until it covers the
        // remaining bytes. The preferred path is unconditionally on.
        let mut want = vec![false; self.costs.len()];
        let mut capacity: u64 = 0;
        for &p in &self.by_cost {
            want[p] = true;
            capacity = capacity.saturating_add(estimates[p].bytes_in(time_left));
            // Strict comparison mirrors Algorithm 1's line 16/19
            // inequalities: at exact equality we keep the next path on
            // (conservative toward meeting the deadline).
            if capacity > remaining {
                break;
            }
        }
        // If even all paths cannot cover, `want` is all-true — matching
        // Algorithm 1's "enable and hope" behaviour.

        // Enable-side debounce: a path may only turn ON after the greedy
        // has wanted it for `enable_debounce` consecutive checks; turning
        // OFF is immediate (always safe for the deadline).
        for (p, w) in want.iter_mut().enumerate() {
            if *w && !a.enabled[p] {
                a.enable_streak[p] += 1;
                if a.enable_streak[p] < self.params.enable_debounce {
                    *w = false; // not yet
                }
            } else {
                a.enable_streak[p] = 0;
            }
        }

        if want != a.enabled {
            self.toggles += want
                .iter()
                .zip(a.enabled.iter())
                .filter(|(w, e)| w != e)
                .count() as u64;
            a.enabled = want.clone();
            Some(want)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::{CellDecision, DeadlineScheduler};

    fn mbps(m: f64) -> Rate {
        Rate::from_mbps_f64(m)
    }

    const MB: u64 = 1_000_000;

    fn two_path() -> MultiPathScheduler {
        MultiPathScheduler::new(vec![0.0, 1.0], SchedulerParams::default())
    }

    #[test]
    fn starts_with_only_preferred_path() {
        let mut s = two_path();
        let en = s.enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));
        assert_eq!(en, vec![true, false]);
    }

    #[test]
    fn enables_second_path_when_first_insufficient() {
        let mut s = two_path();
        s.enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));
        let en = s
            .on_progress(SimTime::ZERO, 0, &[mbps(3.0), mbps(3.0)])
            .unwrap();
        assert_eq!(en, vec![true, true]);
    }

    #[test]
    fn three_paths_enable_in_cost_order() {
        // Path costs: p1 cheapest, p0 middle, p2 dearest.
        let mut s = MultiPathScheduler::new(vec![0.5, 0.0, 1.0], SchedulerParams::default());
        assert_eq!(s.preferred(), 1);
        let en = s.enable(SimTime::ZERO, 10 * MB, SimDuration::from_secs(10));
        assert_eq!(en, vec![false, true, false]);
        // p1 alone: 2 Mbps·10 s = 2.5 MB < 10 MB → add p0 (4 Mbps → 7.5 MB
        // total, still short) → add p2.
        let en = s
            .on_progress(SimTime::ZERO, 0, &[mbps(4.0), mbps(2.0), mbps(8.0)])
            .unwrap();
        assert_eq!(en, vec![true, true, true]);
        // Transfer catches up: 9 MB sent, 5 s left; p1 alone moves
        // 1.25 MB > 1 MB remaining → back to preferred only.
        let en = s
            .on_progress(
                SimTime::from_secs(5),
                9 * MB,
                &[mbps(4.0), mbps(2.0), mbps(8.0)],
            )
            .unwrap();
        assert_eq!(en, vec![false, true, false]);
    }

    #[test]
    fn reduces_to_algorithm_one_for_two_paths() {
        // Replay the same random-ish progress trajectory through both
        // schedulers and assert identical cellular decisions.
        let mut multi = two_path();
        let mut single = DeadlineScheduler::new(SchedulerParams::default());
        multi.enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));
        single.enable(SimTime::ZERO, 5 * MB, SimDuration::from_secs(10));

        let traj: &[(u64, u64, f64)] = &[
            // (millis, sent, wifi_mbps)
            (0, 0, 4.8),
            (500, 300_000, 4.5),
            (1_000, 500_000, 2.0),
            (2_000, 900_000, 2.0),
            (3_000, 1_600_000, 6.0),
            (4_000, 2_600_000, 6.0),
            (6_000, 4_000_000, 6.0),
            (8_000, 5_000_000, 6.0),
        ];
        for &(ms, sent, wifi) in traj {
            let now = SimTime::from_millis(ms);
            let est = [mbps(wifi), mbps(3.0)];
            let multi_cell = multi.on_progress(now, sent, &est).map(|en| en[1]);
            let single_cell = match single.on_progress(now, sent, mbps(wifi)) {
                CellDecision::Enable => Some(true),
                CellDecision::Disable => Some(false),
                CellDecision::NoChange => None,
            };
            // Completion returns all-enabled from both.
            assert_eq!(multi_cell, single_cell, "at t={ms}ms sent={sent}");
        }
        assert_eq!(multi.completed(), 1);
        assert_eq!(single.completed(), 1);
    }

    #[test]
    fn missed_deadline_enables_everything() {
        let mut s = MultiPathScheduler::new(vec![0.0, 1.0, 2.0], SchedulerParams::default());
        s.enable(SimTime::ZERO, 100 * MB, SimDuration::from_secs(1));
        let en = s
            .on_progress(
                SimTime::from_secs(2),
                MB,
                &[mbps(1.0), mbps(1.0), mbps(1.0)],
            )
            .unwrap();
        assert_eq!(en, vec![true, true, true]);
        assert_eq!(s.missed_deadlines(), 1);
    }

    #[test]
    fn inactive_scheduler_is_vanilla() {
        let s = two_path();
        assert_eq!(s.enabled(), vec![true, true]);
    }

    #[test]
    #[should_panic(expected = "one estimate per path")]
    fn estimate_arity_checked() {
        let mut s = two_path();
        s.enable(SimTime::ZERO, MB, SimDuration::from_secs(1));
        s.on_progress(SimTime::ZERO, 0, &[mbps(1.0)]);
    }
}
