//! The offline optimum: MP-DASH's scheduling problem solved with perfect
//! knowledge of future bandwidth.
//!
//! §4 of the paper formulates chunk delivery as a 0-1 **min-knapsack**:
//! items are `(interface i, time slot j)` pairs with weight `b(i,j)·d`
//! (bytes the slot can carry) and value `c(i,j)·b(i,j)·d` (their cost);
//! pick items whose total weight is at least the chunk size `S` while
//! minimizing total value. Two solvers live here:
//!
//! * [`optimal_cellular_bytes`] — the two-path, WiFi-free/cellular-costly
//!   special case used as Table 2's "Cell % (Optimal)" column. Because
//!   the sender may stop mid-slot once `S` bytes are through, the fluid
//!   optimum is simply `max(0, S − Σ WiFi capacity)`, provided the
//!   aggregate capacity suffices.
//! * [`optimal_min_cost`] — the general binary DP over discretized
//!   coverage, for arbitrary per-slot costs and N interfaces. Exact for
//!   the binary formulation; item weights are floored to the chosen unit,
//!   which can only over-provision (never under-report) coverage cost.

/// One knapsack item: a `(path, slot)` pair's capacity and cost.
#[derive(Clone, Copy, Debug)]
pub struct SlotItem {
    /// Bytes this slot can carry (`b(i,j)·d`).
    pub bytes: u64,
    /// Cost of using the slot (`c(i,j)·b(i,j)·d`), any non-negative unit.
    pub cost: f64,
}

/// Result of [`optimal_min_cost`].
#[derive(Clone, Debug, PartialEq)]
pub struct SlotPlan {
    /// Minimal total cost.
    pub total_cost: f64,
    /// Indices of the chosen items, ascending.
    pub chosen: Vec<usize>,
    /// Bytes the chosen items cover (≥ the requested size).
    pub covered_bytes: u64,
}

/// Two-path fluid optimum: minimum cellular bytes to deliver `size` bytes
/// within the window, with perfect knowledge.
///
/// `wifi_slots` / `cell_slots` are per-slot byte capacities across the
/// deadline window. Returns `None` when even both paths together cannot
/// make the deadline. The optimal strategy keeps WiFi busy for the whole
/// window and tops up the deficit over cellular, stopping exactly at `S`
/// (the proof sketch in §4: disabling cellular later or enabling it
/// earlier than the perfect-knowledge schedule can only add cost).
pub fn optimal_cellular_bytes(wifi_slots: &[u64], cell_slots: &[u64], size: u64) -> Option<u64> {
    let wifi_total: u64 = wifi_slots.iter().sum();
    let cell_total: u64 = cell_slots.iter().sum();
    let deficit = size.saturating_sub(wifi_total);
    if deficit > cell_total {
        return None;
    }
    Some(deficit)
}

/// Exact binary min-knapsack by dynamic programming over coverage units.
///
/// `need` bytes must be covered; coverage is discretized to `unit` bytes
/// (item weights are floored to whole units, so a returned plan always
/// covers at least `need` real bytes). Returns `None` when the items
/// cannot cover `need` even all together.
///
/// Complexity `O(items · need/unit)` time, same space. Table 2's largest
/// instance (50 MB, 10 ms-granularity units of 64 KiB) stays well under a
/// million states.
pub fn optimal_min_cost(items: &[SlotItem], need: u64, unit: u64) -> Option<SlotPlan> {
    assert!(unit > 0, "unit must be positive");
    if need == 0 {
        return Some(SlotPlan {
            total_cost: 0.0,
            chosen: Vec::new(),
            covered_bytes: 0,
        });
    }
    let k_max = need.div_ceil(unit) as usize;
    let width = k_max + 1;

    // Row-by-row DP: `f[k]` is the min cost covering at least `k` units
    // using the items processed so far. Per item we record a packed
    // decision bit ("the optimum at state k after item i takes item i"),
    // which makes backtracking exact — single-row parent pointers can
    // splice chains from different passes and double-count items.
    let mut f = vec![f64::INFINITY; width];
    f[0] = 0.0;
    let words_per_row = width.div_ceil(64);
    let mut took = vec![0u64; items.len() * words_per_row];
    // At the saturated top state, the predecessor is not `k_max − w`; we
    // record it explicitly per item row.
    let mut pred_at_top = vec![usize::MAX; items.len()];

    let mut prev = f.clone();
    for (idx, item) in items.iter().enumerate() {
        let w = (item.bytes / unit) as usize;
        if w == 0 {
            continue; // carries less than one unit; cannot help coverage
        }
        prev.copy_from_slice(&f);
        let row = &mut took[idx * words_per_row..(idx + 1) * words_per_row];
        // Exact states: predecessor k − w.
        for k2 in w..k_max {
            let cand = prev[k2 - w] + item.cost;
            if cand < f[k2] {
                f[k2] = cand;
                row[k2 / 64] |= 1 << (k2 % 64);
            }
        }
        // Saturated top state: any predecessor ≥ k_max − w reaches it.
        let lo = k_max.saturating_sub(w);
        let mut best_pred = usize::MAX;
        let mut best = f[k_max];
        for (p, prev_cost) in prev.iter().enumerate().take(k_max).skip(lo) {
            let cand = prev_cost + item.cost;
            if cand < best {
                best = cand;
                best_pred = p;
            }
        }
        if best_pred != usize::MAX {
            f[k_max] = best;
            row[k_max / 64] |= 1 << (k_max % 64);
            pred_at_top[idx] = best_pred;
        }
    }

    if !f[k_max].is_finite() {
        return None;
    }
    // Backtrack through the decision bits, items in reverse.
    let mut chosen = Vec::new();
    let mut k = k_max;
    for idx in (0..items.len()).rev() {
        if k == 0 {
            break;
        }
        let row = &took[idx * words_per_row..(idx + 1) * words_per_row];
        if row[k / 64] & (1 << (k % 64)) == 0 {
            continue;
        }
        let w = (items[idx].bytes / unit) as usize;
        chosen.push(idx);
        k = if k == k_max && pred_at_top[idx] != usize::MAX {
            pred_at_top[idx]
        } else {
            k - w
        };
    }
    debug_assert_eq!(k, 0, "backtrack must reach the empty state");
    chosen.sort_unstable();
    let covered_bytes = chosen.iter().map(|&i| items[i].bytes).sum();
    Some(SlotPlan {
        total_cost: f[k_max],
        chosen,
        covered_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluid_optimum_zero_when_wifi_suffices() {
        let wifi = vec![1_000_000; 10]; // 10 MB capacity
        let cell = vec![500_000; 10];
        assert_eq!(optimal_cellular_bytes(&wifi, &cell, 8_000_000), Some(0));
    }

    #[test]
    fn fluid_optimum_is_exact_deficit() {
        let wifi = vec![400_000; 10]; // 4 MB
        let cell = vec![300_000; 10]; // 3 MB
        assert_eq!(
            optimal_cellular_bytes(&wifi, &cell, 5_000_000),
            Some(1_000_000)
        );
    }

    #[test]
    fn fluid_optimum_infeasible() {
        let wifi = vec![100_000; 5];
        let cell = vec![100_000; 5];
        assert_eq!(optimal_cellular_bytes(&wifi, &cell, 2_000_000), None);
    }

    #[test]
    fn dp_picks_cheapest_cover() {
        // Three items; need 2 units of 100 bytes.
        let items = [
            SlotItem {
                bytes: 100,
                cost: 5.0,
            },
            SlotItem {
                bytes: 100,
                cost: 1.0,
            },
            SlotItem {
                bytes: 100,
                cost: 2.0,
            },
        ];
        let plan = optimal_min_cost(&items, 200, 100).unwrap();
        assert_eq!(plan.total_cost, 3.0);
        assert_eq!(plan.chosen, vec![1, 2]);
        assert_eq!(plan.covered_bytes, 200);
    }

    #[test]
    fn dp_prefers_one_big_item_over_many_small() {
        let items = [
            SlotItem {
                bytes: 1000,
                cost: 3.0,
            },
            SlotItem {
                bytes: 300,
                cost: 1.5,
            },
            SlotItem {
                bytes: 300,
                cost: 1.5,
            },
            SlotItem {
                bytes: 300,
                cost: 1.5,
            },
            SlotItem {
                bytes: 300,
                cost: 1.5,
            },
        ];
        let plan = optimal_min_cost(&items, 1000, 100).unwrap();
        assert_eq!(plan.total_cost, 3.0);
        assert_eq!(plan.chosen, vec![0]);
    }

    #[test]
    fn dp_infeasible_returns_none() {
        let items = [SlotItem {
            bytes: 100,
            cost: 1.0,
        }];
        assert!(optimal_min_cost(&items, 1000, 10).is_none());
    }

    #[test]
    fn dp_zero_need_is_free() {
        let plan = optimal_min_cost(&[], 0, 100).unwrap();
        assert_eq!(plan.total_cost, 0.0);
        assert!(plan.chosen.is_empty());
    }

    #[test]
    fn dp_subunit_items_are_ignored() {
        // Items smaller than a unit can't be counted toward coverage.
        let items = [
            SlotItem {
                bytes: 50,
                cost: 0.1,
            },
            SlotItem {
                bytes: 200,
                cost: 2.0,
            },
        ];
        let plan = optimal_min_cost(&items, 200, 100).unwrap();
        assert_eq!(plan.chosen, vec![1]);
    }

    #[test]
    fn dp_matches_fluid_bound_for_uniform_cost() {
        // With WiFi free and uniform cellular cost per byte, the DP's
        // cellular byte count approaches the fluid deficit from above
        // (binary slots cannot split, so ≥).
        let wifi: Vec<u64> = vec![400_000; 10];
        let cell: Vec<u64> = vec![300_000; 10];
        let size = 5_000_000u64;
        let fluid = optimal_cellular_bytes(&wifi, &cell, size).unwrap();

        // Items: all WiFi slots at cost 0, all cell slots costing their
        // byte count.
        let mut items: Vec<SlotItem> = wifi
            .iter()
            .map(|&b| SlotItem {
                bytes: b,
                cost: 0.0,
            })
            .collect();
        items.extend(cell.iter().map(|&b| SlotItem {
            bytes: b,
            cost: b as f64,
        }));
        let plan = optimal_min_cost(&items, size, 10_000).unwrap();
        let dp_cell_bytes = plan.total_cost as u64;
        assert!(dp_cell_bytes >= fluid);
        // Binary overshoot bounded by one cell slot.
        assert!(dp_cell_bytes <= fluid + 300_000);
    }

    #[test]
    fn dp_handles_exact_boundary() {
        let items = [
            SlotItem {
                bytes: 500,
                cost: 1.0,
            },
            SlotItem {
                bytes: 500,
                cost: 1.0,
            },
        ];
        let plan = optimal_min_cost(&items, 1000, 100).unwrap();
        assert_eq!(plan.total_cost, 2.0);
        assert_eq!(plan.covered_bytes, 1000);
    }
}
