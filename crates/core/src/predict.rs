//! Throughput prediction.
//!
//! The paper's kernel module estimates per-subflow throughput with the
//! **non-seasonal Holt-Winters predictor** — double exponential smoothing
//! with a trend term — because it is "more robust than other approaches
//! such as EWMA for non-stationary processes" (§6, citing He et al.,
//! SIGCOMM '05). Both predictors are implemented here; the EWMA one feeds
//! the ablation benches.
//!
//! [`ThroughputSampler`] converts raw packet-arrival byte counts into
//! fixed-slot rate samples (the paper uses one slot per RTT, §7.2.2).

use mpdash_sim::{Rate, SimDuration, SimTime};

/// A one-step-ahead throughput predictor over a stream of rate samples.
pub trait Predictor {
    /// Ingest the next observed sample.
    fn observe(&mut self, sample: Rate);
    /// Current one-step-ahead forecast, or `None` before any observation.
    fn forecast(&self) -> Option<Rate>;
    /// Drop all state (used when a path goes idle long enough that old
    /// samples say nothing about the future).
    fn reset(&mut self);
}

impl Predictor for Box<dyn Predictor> {
    fn observe(&mut self, sample: Rate) {
        (**self).observe(sample)
    }
    fn forecast(&self) -> Option<Rate> {
        (**self).forecast()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

/// Which predictor the MP-DASH control plane runs — the paper argues for
/// Holt-Winters over EWMA (§6); [`PredictorKind::Ewma`] exists for the
/// ablation benches.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PredictorKind {
    /// Non-seasonal Holt-Winters with the given (α, β).
    HoltWinters {
        /// Level smoothing factor.
        alpha: f64,
        /// Trend smoothing factor.
        beta: f64,
    },
    /// Plain EWMA with the given α.
    Ewma {
        /// Smoothing factor.
        alpha: f64,
    },
}

impl PredictorKind {
    /// The control-plane default: Holt-Winters with moderate smoothing
    /// (see `mpdash-core::api` for the rationale).
    pub fn control_default() -> Self {
        PredictorKind::HoltWinters {
            alpha: 0.5,
            beta: 0.2,
        }
    }

    /// Instantiate.
    pub fn build(self) -> Box<dyn Predictor> {
        match self {
            PredictorKind::HoltWinters { alpha, beta } => Box::new(HoltWinters::new(alpha, beta)),
            PredictorKind::Ewma { alpha } => Box::new(EwmaPredictor::new(alpha)),
        }
    }

    /// Display name for result tables.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::HoltWinters { .. } => "Holt-Winters",
            PredictorKind::Ewma { .. } => "EWMA",
        }
    }
}

/// Non-seasonal Holt-Winters (double exponential smoothing with trend).
///
/// ```text
/// level_t = α·x_t + (1−α)·(level_{t−1} + trend_{t−1})
/// trend_t = β·(level_t − level_{t−1}) + (1−β)·trend_{t−1}
/// forecast = max(0, level_t + trend_t)
/// ```
///
/// Defaults α = 0.8, β = 0.3 follow the heavily-level-weighted settings
/// He et al. found effective for TCP throughput series; both are
/// configurable for sensitivity studies.
#[derive(Clone, Debug)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    level: Option<f64>, // Mbps
    trend: f64,         // Mbps per step
}

impl HoltWinters {
    /// Predictor with explicit smoothing parameters.
    ///
    /// # Panics
    /// If either parameter is outside `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta in (0,1]");
        HoltWinters {
            alpha,
            beta,
            level: None,
            trend: 0.0,
        }
    }

    /// Smoothing parameters (for diagnostics and serialization).
    pub fn params(&self) -> (f64, f64) {
        (self.alpha, self.beta)
    }
}

impl Default for HoltWinters {
    fn default() -> Self {
        HoltWinters::new(0.8, 0.3)
    }
}

impl Predictor for HoltWinters {
    fn observe(&mut self, sample: Rate) {
        let x = sample.as_mbps_f64();
        match self.level {
            None => {
                self.level = Some(x);
                self.trend = 0.0;
            }
            Some(prev_level) => {
                let level = self.alpha * x + (1.0 - self.alpha) * (prev_level + self.trend);
                self.trend = self.beta * (level - prev_level) + (1.0 - self.beta) * self.trend;
                self.level = Some(level);
            }
        }
    }

    fn forecast(&self) -> Option<Rate> {
        self.level
            .map(|l| Rate::from_mbps_f64((l + self.trend).max(0.0)))
    }

    fn reset(&mut self) {
        self.level = None;
        self.trend = 0.0;
    }
}

/// Exponentially weighted moving average — the baseline the paper argues
/// Holt-Winters improves on; kept for the predictor-ablation bench.
#[derive(Clone, Debug)]
pub struct EwmaPredictor {
    alpha: f64,
    level: Option<f64>,
}

impl EwmaPredictor {
    /// EWMA with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
        EwmaPredictor { alpha, level: None }
    }
}

impl Default for EwmaPredictor {
    fn default() -> Self {
        EwmaPredictor::new(0.5)
    }
}

impl Predictor for EwmaPredictor {
    fn observe(&mut self, sample: Rate) {
        let x = sample.as_mbps_f64();
        self.level = Some(match self.level {
            None => x,
            Some(l) => self.alpha * x + (1.0 - self.alpha) * l,
        });
    }

    fn forecast(&self) -> Option<Rate> {
        self.level.map(Rate::from_mbps_f64)
    }

    fn reset(&mut self) {
        self.level = None;
    }
}

/// Turns packet-arrival byte counts into fixed-slot rate samples and feeds
/// them to a predictor.
///
/// The paper samples one slot per RTT (§7.2.2); the session layer picks
/// the slot width. Slots with zero bytes are still samples — a stalled
/// path must drag the estimate down, or the scheduler would keep trusting
/// a dead WiFi link (exactly the blackout case of Table 2's "Miss?"
/// column).
#[derive(Clone, Debug)]
pub struct ThroughputSampler<P: Predictor> {
    predictor: P,
    slot: SimDuration,
    slot_start: SimTime,
    bytes_in_slot: u64,
    /// Most recent completed-slot measurement (not the forecast).
    last_sample: Option<Rate>,
    /// After a re-anchor, suppress slot emission until the first bytes
    /// arrive: the request round-trip and connection ramp-up before the
    /// first delivery are not evidence of a slow path, and counting them
    /// as zero-throughput slots would spuriously collapse the estimate at
    /// every chunk start. Mid-transfer silence (after bytes have flowed)
    /// IS evidence — a blackout — and still emits zero slots.
    awaiting_first_bytes: bool,
}

impl<P: Predictor> ThroughputSampler<P> {
    /// Sampler with the given slot width.
    ///
    /// # Panics
    /// If `slot` is zero.
    pub fn new(predictor: P, slot: SimDuration) -> Self {
        assert!(!slot.is_zero(), "slot width must be positive");
        ThroughputSampler {
            predictor,
            slot,
            slot_start: SimTime::ZERO,
            bytes_in_slot: 0,
            last_sample: None,
            awaiting_first_bytes: false,
        }
    }

    /// Record `bytes` arriving at `t`. Closes any elapsed slots first
    /// (emitting one sample per slot, zeros included).
    pub fn on_bytes(&mut self, t: SimTime, bytes: u64) {
        if self.awaiting_first_bytes {
            // First delivery since the re-anchor: measurement starts now.
            self.awaiting_first_bytes = false;
            self.slot_start = self.slot_start.max(t);
        }
        self.roll_to(t);
        self.bytes_in_slot += bytes;
    }

    /// Advance the slot clock to `t` without new bytes (call before
    /// reading a forecast so idle time is accounted).
    pub fn roll_to(&mut self, t: SimTime) {
        if self.awaiting_first_bytes {
            // No deliveries yet since the re-anchor: slide the slot clock
            // forward without emitting (see field docs).
            self.slot_start = self.slot_start.max(t);
            return;
        }
        while t.saturating_since(self.slot_start) >= self.slot {
            let secs = self.slot.as_secs_f64();
            let mbps = self.bytes_in_slot as f64 * 8.0 / secs / 1e6;
            let sample = Rate::from_mbps_f64(mbps);
            self.predictor.observe(sample);
            self.last_sample = Some(sample);
            self.bytes_in_slot = 0;
            self.slot_start += self.slot;
        }
    }

    /// Current forecast from the underlying predictor.
    pub fn forecast(&self) -> Option<Rate> {
        self.predictor.forecast()
    }

    /// The most recent completed-slot measurement.
    pub fn last_sample(&self) -> Option<Rate> {
        self.last_sample
    }

    /// The configured slot width.
    pub fn slot(&self) -> SimDuration {
        self.slot
    }

    /// Re-anchor the slot clock at `t` while *keeping* predictor state.
    /// Used across application-idle gaps (player buffer full): the gap is
    /// by design, not zero throughput, so the previous transfer's estimate
    /// carries over to seed the next one.
    pub fn reanchor(&mut self, t: SimTime) {
        self.slot_start = t;
        self.bytes_in_slot = 0;
        self.awaiting_first_bytes = true;
    }

    /// Reset predictor state and slot accumulation, re-anchoring the slot
    /// clock at `t`. Used when a transfer starts after a long idle gap.
    pub fn reset_at(&mut self, t: SimTime) {
        self.predictor.reset();
        self.bytes_in_slot = 0;
        self.slot_start = t;
        self.last_sample = None;
        self.awaiting_first_bytes = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(m: f64) -> Rate {
        Rate::from_mbps_f64(m)
    }

    #[test]
    fn hw_converges_on_constant_series() {
        let mut hw = HoltWinters::default();
        for _ in 0..50 {
            hw.observe(mbps(3.8));
        }
        let f = hw.forecast().unwrap().as_mbps_f64();
        assert!((f - 3.8).abs() < 1e-6, "forecast {f}");
    }

    #[test]
    fn hw_tracks_linear_trend() {
        let mut hw = HoltWinters::default();
        // Ramp 1.0, 1.1, ..., 3.0 Mbps.
        for i in 0..21 {
            hw.observe(mbps(1.0 + 0.1 * i as f64));
        }
        let f = hw.forecast().unwrap().as_mbps_f64();
        // One-step-ahead of a clean ramp ending at 3.0 is ≈ 3.1; EWMA
        // would lag below 3.0.
        assert!(f > 3.0, "trend-aware forecast {f} should lead the series");
        assert!(f < 3.4, "forecast {f} should not wildly overshoot");
    }

    #[test]
    fn ewma_lags_a_trend() {
        let mut ew = EwmaPredictor::default();
        for i in 0..21 {
            ew.observe(mbps(1.0 + 0.1 * i as f64));
        }
        let f = ew.forecast().unwrap().as_mbps_f64();
        assert!(f < 3.0, "EWMA {f} lags the ramp — the paper's motivation");
    }

    #[test]
    fn hw_never_forecasts_negative() {
        let mut hw = HoltWinters::default();
        // Steep collapse creates a negative trend.
        for v in [10.0, 8.0, 4.0, 1.0, 0.0, 0.0, 0.0] {
            hw.observe(mbps(v));
        }
        let f = hw.forecast().unwrap();
        assert!(f.as_mbps_f64() >= 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut hw = HoltWinters::default();
        hw.observe(mbps(5.0));
        assert!(hw.forecast().is_some());
        hw.reset();
        assert!(hw.forecast().is_none());
    }

    #[test]
    #[should_panic(expected = "alpha in (0,1]")]
    fn invalid_params_rejected() {
        let _ = HoltWinters::new(0.0, 0.5);
    }

    #[test]
    fn sampler_emits_one_sample_per_slot() {
        let mut s = ThroughputSampler::new(HoltWinters::default(), SimDuration::from_millis(50));
        // 25 kB within the first 50 ms slot = 4 Mbps.
        s.on_bytes(SimTime::from_millis(10), 12_500);
        s.on_bytes(SimTime::from_millis(40), 12_500);
        assert!(s.last_sample().is_none(), "slot not closed yet");
        s.roll_to(SimTime::from_millis(50));
        let m = s.last_sample().unwrap().as_mbps_f64();
        assert!((m - 4.0).abs() < 1e-9, "sample {m}");
    }

    #[test]
    fn sampler_counts_idle_slots_as_zero() {
        let mut s = ThroughputSampler::new(HoltWinters::default(), SimDuration::from_millis(50));
        for i in 0..20 {
            s.on_bytes(SimTime::from_millis(i * 50 + 10), 25_000);
        }
        let busy = s.forecast().unwrap().as_mbps_f64();
        assert!(busy > 3.5);
        // One second of silence: forecast must collapse.
        s.roll_to(SimTime::from_millis(20 * 50).max(SimTime::ZERO) + SimDuration::from_secs(1));
        let idle = s.forecast().unwrap().as_mbps_f64();
        assert!(idle < 0.5, "idle forecast {idle} should collapse");
    }

    #[test]
    fn sampler_reset_reanchors() {
        let mut s = ThroughputSampler::new(HoltWinters::default(), SimDuration::from_millis(50));
        s.on_bytes(SimTime::from_millis(10), 99_000);
        s.reset_at(SimTime::from_secs(10));
        assert!(s.forecast().is_none());
        // Measurement resumes with the first delivery (10.02 s); the slot
        // clock snaps there, so the sample closes at 10.07 s.
        s.on_bytes(SimTime::from_millis(10_020), 25_000);
        s.roll_to(SimTime::from_millis(10_050));
        assert!(s.last_sample().is_none(), "slot not complete yet");
        s.roll_to(SimTime::from_millis(10_070));
        assert!((s.last_sample().unwrap().as_mbps_f64() - 4.0).abs() < 1e-9);
    }
}
