//! Property tests on the MP-DASH core: Algorithm 1's safety/efficiency
//! envelope, the optimal solver's bounds, and predictor sanity.

use mpdash_core::deadline::{CellDecision, DeadlineScheduler, SchedulerParams};
use mpdash_core::multipath::MultiPathScheduler;
use mpdash_core::optimal::{optimal_cellular_bytes, optimal_min_cost, SlotItem};
use mpdash_core::predict::{HoltWinters, Predictor};
use mpdash_sim::{Rate, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With a perfect constant-rate estimate, Algorithm 1's fluid
    /// evolution (WiFi always on, cellular per decision) always meets a
    /// feasible deadline and never uses cellular when WiFi alone covers
    /// the whole transfer with margin.
    #[test]
    fn algorithm1_fluid_envelope(
        wifi_mbps in 0.5f64..20.0,
        cell_mbps in 0.5f64..20.0,
        size_kb in 100u64..10_000,
        deadline_ds in 20u64..300, // deciseconds: 2.0 .. 30.0 s
    ) {
        let size = size_kb * 1000;
        let window = SimDuration::from_millis(deadline_ds * 100);
        let wifi = Rate::from_mbps_f64(wifi_mbps);
        let cell = Rate::from_mbps_f64(cell_mbps);
        let feasible = wifi.bytes_in(window) + cell.bytes_in(window) >= size * 11 / 10;

        let mut s = DeadlineScheduler::new(SchedulerParams::default());
        s.enable(SimTime::ZERO, size, window);
        let slot = SimDuration::from_millis(50);
        let mut sent = 0u64;
        let mut cell_on = false;
        let mut cell_bytes = 0u64;
        let mut t = SimTime::ZERO;
        let hard_stop = SimTime::ZERO + window * 4 + SimDuration::from_secs(10);
        while sent < size && t < hard_stop {
            match s.on_progress(t, sent, wifi) {
                CellDecision::Enable => cell_on = true,
                CellDecision::Disable => cell_on = false,
                CellDecision::NoChange => {}
            }
            sent += wifi.bytes_in(slot);
            if cell_on && sent < size {
                let add = cell.bytes_in(slot).min(size - sent);
                sent += add;
                cell_bytes += add;
            }
            t += slot;
        }
        prop_assert!(sent >= size, "transfer never finished");
        if feasible {
            prop_assert!(
                t <= SimTime::ZERO + window + slot,
                "feasible deadline missed: finished at {t} window {window}"
            );
        }
        // WiFi covering 120% of the size within the window ⇒ no cellular.
        if wifi.bytes_in(window) >= size * 12 / 10 {
            prop_assert_eq!(cell_bytes, 0, "cellular used despite ample WiFi");
        }
    }

    /// The fluid optimum is a true lower bound for the fluid online
    /// evolution above, on constant rates.
    #[test]
    fn fluid_online_never_beats_optimal(
        wifi_mbps in 0.5f64..10.0,
        cell_mbps in 0.5f64..10.0,
        size_kb in 100u64..5_000,
        deadline_s in 3u64..20,
    ) {
        let size = size_kb * 1000;
        let window = SimDuration::from_secs(deadline_s);
        let slot = SimDuration::from_millis(50);
        let n = (deadline_s * 20) as usize;
        let wifi = Rate::from_mbps_f64(wifi_mbps);
        let cell = Rate::from_mbps_f64(cell_mbps);
        let wifi_slots = vec![wifi.bytes_in(slot); n];
        let cell_slots = vec![cell.bytes_in(slot); n];
        let Some(optimal) = optimal_cellular_bytes(&wifi_slots, &cell_slots, size) else {
            return Ok(()); // infeasible: nothing to compare
        };

        let mut s = DeadlineScheduler::new(SchedulerParams::default());
        s.enable(SimTime::ZERO, size, window);
        let mut sent = 0u64;
        let mut cell_on = false;
        let mut cell_bytes = 0u64;
        let mut t = SimTime::ZERO;
        while sent < size {
            match s.on_progress(t, sent, wifi) {
                CellDecision::Enable => cell_on = true,
                CellDecision::Disable => cell_on = false,
                CellDecision::NoChange => {}
            }
            sent += wifi.bytes_in(slot);
            if cell_on && sent < size {
                let add = cell.bytes_in(slot).min(size - sent);
                sent += add;
                cell_bytes += add;
            }
            t += slot;
            if t > SimTime::ZERO + window * 5 + SimDuration::from_secs(5) {
                break;
            }
        }
        // Slot quantization can overshoot by up to ~2 slots of cellular.
        let slack = cell.bytes_in(slot) * 2 + 1;
        prop_assert!(
            cell_bytes + slack >= optimal,
            "online {cell_bytes} beat the optimum {optimal}"
        );
    }

    /// The DP plan always covers the requested bytes at finite cost, and
    /// adding items never increases the optimal cost.
    #[test]
    fn dp_monotone_in_items(
        bytes in prop::collection::vec(50u64..500, 3..15),
        need in 100u64..1500,
    ) {
        let items: Vec<SlotItem> = bytes
            .iter()
            .map(|&b| SlotItem { bytes: b, cost: b as f64 })
            .collect();
        let full = optimal_min_cost(&items, need, 50);
        let fewer = optimal_min_cost(&items[..items.len() - 1], need, 50);
        match (full, fewer) {
            (Some(f), Some(g)) => prop_assert!(f.total_cost <= g.total_cost + 1e-9),
            (None, Some(_)) => prop_assert!(false, "more items cannot lose feasibility"),
            _ => {}
        }
    }

    /// The N-path greedy never disables the preferred path and never
    /// enables a costlier path while a cheaper disabled one exists.
    #[test]
    fn greedy_enables_in_cost_order(
        costs in prop::collection::vec(0.0f64..5.0, 2..6),
        estimates_mbps in prop::collection::vec(0.1f64..10.0, 2..6),
        size_kb in 100u64..5_000,
    ) {
        let n = costs.len().min(estimates_mbps.len());
        let costs = costs[..n].to_vec();
        let estimates: Vec<Rate> = estimates_mbps[..n]
            .iter()
            .map(|&m| Rate::from_mbps_f64(m))
            .collect();
        let mut s = MultiPathScheduler::new(costs.clone(), SchedulerParams::default());
        let preferred = s.preferred();
        s.enable(SimTime::ZERO, size_kb * 1000, SimDuration::from_secs(10));
        let enabled = match s.on_progress(SimTime::from_millis(100), 0, &estimates) {
            Some(e) => e,
            None => s.enabled(),
        };
        prop_assert!(enabled[preferred], "preferred path must stay on");
        // Cost-order property: every enabled path is at most as costly as
        // the cheapest disabled one (strictly: the enabled set is a
        // prefix in cost order, with index tie-breaks).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| costs[a].partial_cmp(&costs[b]).unwrap().then(a.cmp(&b)));
        let mut seen_disabled = false;
        for &p in &order {
            if !enabled[p] {
                seen_disabled = true;
            } else {
                prop_assert!(!seen_disabled, "enabled set is not a cost-prefix");
            }
        }
    }

    /// Holt-Winters forecasts are finite and non-negative for any finite
    /// non-negative input series.
    #[test]
    fn holt_winters_total(
        samples in prop::collection::vec(0.0f64..100.0, 1..100),
    ) {
        let mut hw = HoltWinters::default();
        for s in &samples {
            hw.observe(Rate::from_mbps_f64(*s));
            let f = hw.forecast().unwrap().as_mbps_f64();
            prop_assert!(f.is_finite() && f >= 0.0, "forecast {f}");
            // Bounded by a generous envelope of the series.
            let max = samples.iter().cloned().fold(0.0, f64::max);
            prop_assert!(f <= max * 3.0 + 1.0, "forecast {f} vs max {max}");
        }
    }
}
