//! Minimal in-tree benchmark harness with a criterion-compatible API.
//!
//! The workspace's micro-benchmarks were written against the `criterion`
//! crate, which cannot be fetched in this build environment (no registry
//! access). This path crate keeps `cargo bench` working by implementing
//! the subset those benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`] / [`criterion_main!`], and a
//! [`black_box`] re-export.
//!
//! Methodology: each benchmark warms up for ~`WARMUP`, then runs timed
//! batches until ~`MEASURE` of wall time has accumulated, and reports
//! mean ns/iteration with min/max over batches. No statistics beyond
//! that — this is a smoke-level harness, not a rigorous sampler.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(60);
const MEASURE: Duration = Duration::from_millis(240);

/// Runs one benchmark's closure in warmup and timed batches.
pub struct Bencher {
    batches: Vec<(u64, Duration)>,
}

impl Bencher {
    /// Benchmark `f`: warm up, then time batches of calls until the
    /// measurement budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup, also used to size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_secs_f64() / warm_iters.max(1) as f64;
        // Aim for ~20 batches over the measurement budget.
        let batch = ((MEASURE.as_secs_f64() / 20.0 / per_iter).ceil() as u64).max(1);

        let run_start = Instant::now();
        while run_start.elapsed() < MEASURE {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.batches.push((batch, t0.elapsed()));
        }
    }
}

/// Registry that runs named benchmarks and prints one line per result.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run `f` as the benchmark `name` and print its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            batches: Vec::new(),
        };
        f(&mut b);
        if b.batches.is_empty() {
            println!("{name:<40} (no measurements)");
            return self;
        }
        let total_iters: u64 = b.batches.iter().map(|&(n, _)| n).sum();
        let total_time: Duration = b.batches.iter().map(|&(_, d)| d).sum();
        let mean = total_time.as_nanos() as f64 / total_iters.max(1) as f64;
        let per_batch: Vec<f64> = b
            .batches
            .iter()
            .map(|&(n, d)| d.as_nanos() as f64 / n.max(1) as f64)
            .collect();
        let min = per_batch.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_batch.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{name:<40} {:>12}/iter  (min {}, max {}, {} iters)",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            total_iters
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions under one name, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn bencher_records_batches() {
        let mut b = Bencher {
            batches: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(!b.batches.is_empty());
        assert!(b.batches.iter().all(|&(n, _)| n >= 1));
    }
}
