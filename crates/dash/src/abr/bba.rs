//! Buffer-Based Adaptation (Huang et al., SIGCOMM '14) — BBA-2 — and the
//! paper's cellular-friendly variant BBA-C (§5.2.2).
//!
//! BBA's core is the **chunk map**: a piecewise-linear function `f(B)`
//! from buffer occupancy to bitrate, anchored at the lowest level below a
//! `reservoir` and at the highest level above a `cushion`. The selected
//! level follows the map with hysteresis: step up only when `f(B)` reaches
//! the *next* level's bitrate, step down only when it falls below the
//! *current* level's. That hysteresis notwithstanding, when the network
//! capacity sits between two encoding bitrates BBA oscillates between
//! them (the paper's Figure 3): the buffer grows at the lower level,
//! crosses the up-threshold, drains at the higher level, and falls back.
//!
//! **BBA-C** adds one rule (the paper's §5.2.2 fix): never select a level
//! whose bitrate exceeds the measured MPTCP throughput. With MP-DASH this
//! uses the aggregate override, so the cap reflects the true multipath
//! capacity.

use super::{Abr, AbrInput, AbrKind};
use crate::video::Video;
#[cfg(test)]
use mpdash_sim::Rate;
use mpdash_sim::SimDuration;

/// The BBA chunk map: buffer-occupancy thresholds per level.
#[derive(Clone, Debug)]
pub struct BbaMap {
    /// Lower reservoir: below this, always the lowest level.
    reservoir: SimDuration,
    /// Upper anchor: at or above this, the highest level.
    cushion_top: SimDuration,
    /// Level bitrates (Mbps), ascending.
    rates: Vec<f64>,
}

impl BbaMap {
    /// Build the map for `video` with a buffer of `capacity`.
    /// Reservoir = 25% of capacity; the map reaches the top rate at 55%
    /// of capacity — the proportion implied by the paper's §5.2.2 example
    /// (top level's buffer range starting at 20 s of a ~40 s buffer).
    /// This is also what makes BBA "aggressive": it occupies the highest
    /// level from mid-buffer onward.
    pub fn new(video: &Video, capacity: SimDuration) -> Self {
        BbaMap {
            reservoir: capacity.mul_f64(0.25),
            cushion_top: capacity.mul_f64(0.55),
            rates: video.bitrates().iter().map(|r| r.as_mbps_f64()).collect(),
        }
    }

    /// The map `f(B)`: linear from the lowest to the highest bitrate
    /// across the cushion.
    pub fn rate_at(&self, buffer: SimDuration) -> f64 {
        let lo = self.rates[0];
        let hi = *self.rates.last().unwrap();
        if buffer <= self.reservoir {
            return lo;
        }
        if buffer >= self.cushion_top {
            return hi;
        }
        let span = (self.cushion_top - self.reservoir).as_secs_f64();
        let x = (buffer - self.reservoir).as_secs_f64();
        lo + (hi - lo) * x / span
    }

    /// Inverse of the map: the buffer level at which `f(B)` reaches
    /// `rate` (clamped into the cushion).
    fn buffer_for_rate(&self, rate: f64) -> SimDuration {
        let lo = self.rates[0];
        let hi = *self.rates.last().unwrap();
        if rate <= lo {
            return self.reservoir;
        }
        if rate >= hi {
            return self.cushion_top;
        }
        let span = (self.cushion_top - self.reservoir).as_secs_f64();
        let x = (rate - lo) / (hi - lo) * span;
        self.reservoir + SimDuration::from_secs_f64(x)
    }

    /// The buffer-occupancy range `[e_l, e_h)` in which the map holds
    /// `level` (the Ω inputs of §5.2.2).
    pub fn level_range(&self, level: usize) -> (SimDuration, SimDuration) {
        let el = self.buffer_for_rate(self.rates[level]);
        let eh = if level + 1 < self.rates.len() {
            self.buffer_for_rate(self.rates[level + 1])
        } else {
            SimDuration::MAX
        };
        (el, eh)
    }

    /// Apply the map with BBA's hysteresis, given the current level.
    pub fn select(&self, buffer: SimDuration, current: usize) -> usize {
        let f = self.rate_at(buffer);
        // Step up while the map reaches the next level's rate.
        let mut level = current;
        while level + 1 < self.rates.len() && f >= self.rates[level + 1] {
            level += 1;
        }
        // Step down while the map is below the current level's rate.
        while level > 0 && f < self.rates[level] {
            level -= 1;
        }
        level
    }
}

/// BBA-2, optionally with the BBA-C throughput cap.
#[derive(Clone, Debug)]
pub struct Bba {
    map: Option<BbaMap>,
    /// BBA-C: cap the selection at the measured throughput.
    cellular_friendly: bool,
    /// BBA-2 startup phase: active until the buffer first enters the
    /// cushion (or the map would pick below the current level).
    startup: bool,
    /// Buffer level at the previous decision, for the startup Δ-buffer
    /// rule.
    prev_buffer: SimDuration,
}

impl Bba {
    /// `cellular_friendly = true` builds BBA-C.
    pub fn new(_video: &Video, cellular_friendly: bool) -> Self {
        Bba {
            map: None,
            cellular_friendly,
            startup: true,
            prev_buffer: SimDuration::ZERO,
        }
    }

    fn ensure_map(&mut self, video: &Video, capacity: SimDuration) -> &BbaMap {
        if self.map.is_none() {
            self.map = Some(BbaMap::new(video, capacity));
        }
        self.map.as_ref().unwrap()
    }
}

impl Abr for Bba {
    fn select(&mut self, video: &Video, input: &AbrInput) -> usize {
        let cellular_friendly = self.cellular_friendly;
        let map = self.ensure_map(video, input.buffer_capacity);
        let current = input.last_level.unwrap_or(0);
        let map_level = map.select(input.buffer, current);

        // BBA-2 startup: while the steady-state map would hold the player
        // at the floor (empty-ish buffer), ramp by the Δ-buffer rule —
        // step up one level whenever the previous chunk downloaded fast
        // enough that the buffer grew by more than ~⅛ of its playout
        // time. Startup ends when the map takes over (its choice reaches
        // the ramped level) or the buffer stops growing.
        let mut level = if self.startup {
            let grew = input.buffer.saturating_sub(self.prev_buffer);
            let threshold = video.chunk_duration().mul_f64(0.875);
            if input.last_level.is_some() && grew < threshold {
                // The buffer stopped growing fast: the network can no
                // longer outrun playback at this level — startup is over
                // and the steady-state map takes it from here (BBA-2's
                // exit condition).
                self.startup = false;
                map_level
            } else if input.last_level.is_some() {
                let ramped = (current + 1).min(video.n_levels() - 1);
                if map_level >= ramped {
                    self.startup = false;
                    map_level
                } else {
                    ramped
                }
            } else {
                // Very first chunk: nothing measured, start at the floor.
                map_level
            }
        } else {
            map_level
        };
        self.prev_buffer = input.buffer;

        if cellular_friendly {
            // BBA-C (§5.2.2): never above the actual network capacity.
            if let Some(rate) = input.throughput_signal() {
                let cap = video.highest_level_at_most(rate);
                level = level.min(cap);
            }
        }
        level
    }

    fn kind(&self) -> AbrKind {
        if self.cellular_friendly {
            AbrKind::BbaC
        } else {
            AbrKind::Bba
        }
    }

    fn level_buffer_range(&self, level: usize) -> Option<(SimDuration, SimDuration)> {
        self.map.as_ref().map(|m| m.level_range(level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    fn input(buffer: f64, last_level: Option<usize>, tput: Option<f64>) -> AbrInput {
        AbrInput {
            buffer: secs(buffer),
            buffer_capacity: secs(40.0),
            last_level,
            last_chunk_throughput: tput.map(Rate::from_mbps_f64),
            override_throughput: None,
        }
    }

    #[test]
    fn map_anchors() {
        let v = Video::big_buck_bunny();
        let m = BbaMap::new(&v, secs(40.0));
        // Below reservoir (10 s): lowest rate.
        assert_eq!(m.rate_at(secs(5.0)), 0.58);
        // At/above cushion top (36 s): highest rate.
        assert_eq!(m.rate_at(secs(36.0)), 3.94);
        assert_eq!(m.rate_at(secs(40.0)), 3.94);
        // Monotone in between.
        assert!(m.rate_at(secs(20.0)) < m.rate_at(secs(30.0)));
    }

    #[test]
    fn low_buffer_picks_lowest() {
        let v = Video::big_buck_bunny();
        let mut b = Bba::new(&v, false);
        assert_eq!(b.select(&v, &input(2.0, None, None)), 0);
    }

    #[test]
    fn full_buffer_picks_highest() {
        let v = Video::big_buck_bunny();
        let mut b = Bba::new(&v, false);
        assert_eq!(b.select(&v, &input(38.0, Some(3), None)), 4);
    }

    #[test]
    fn map_bands_bound_the_selection() {
        let v = Video::big_buck_bunny();
        let m = BbaMap::new(&v, secs(40.0));
        // Just below level 3's band the map yields level 2; just above,
        // level 3 — regardless of the previous level.
        let (el3, _) = m.level_range(3);
        let just_below = el3 - SimDuration::from_millis(500);
        let just_above = el3 + SimDuration::from_millis(500);
        for current in 0..v.n_levels() {
            assert_eq!(m.select(just_below, current), 2);
            assert_eq!(m.select(just_above, current), 3);
        }
        let (el4, _) = m.level_range(4);
        assert_eq!(m.select(el4, 2), 4, "map at top rate climbs fully");
    }

    #[test]
    fn startup_ramps_on_buffer_growth() {
        // Fast network: each 4 s chunk downloads quickly, the buffer
        // grows by nearly a full chunk per decision, and BBA-2's startup
        // rule climbs one level per chunk instead of waiting for the
        // buffer to crawl through the reservoir.
        let v = Video::big_buck_bunny();
        let mut b = Bba::new(&v, false);
        let mut buffer = 0.0f64;
        let mut level = None;
        let mut picks = vec![];
        for _ in 0..6 {
            let l = b.select(
                &v,
                &AbrInput {
                    buffer: secs(buffer),
                    buffer_capacity: secs(40.0),
                    last_level: level,
                    last_chunk_throughput: Some(Rate::from_mbps_f64(20.0)),
                    override_throughput: None,
                },
            );
            picks.push(l);
            level = Some(l);
            buffer += 3.8; // downloads fast: ~full chunk added per pick
        }
        assert!(
            picks.windows(2).all(|w| w[1] >= w[0]),
            "monotone ramp: {picks:?}"
        );
        assert!(*picks.last().unwrap() >= 3, "ramped high: {picks:?}");
    }

    #[test]
    fn startup_holds_on_slow_networks() {
        // Slow network: the buffer barely grows; startup must not ramp.
        let v = Video::big_buck_bunny();
        let mut b = Bba::new(&v, false);
        let mut level = None;
        for i in 0..4 {
            let l = b.select(
                &v,
                &AbrInput {
                    buffer: secs(i as f64 * 0.3),
                    buffer_capacity: secs(40.0),
                    last_level: level,
                    last_chunk_throughput: Some(Rate::from_mbps_f64(0.6)),
                    override_throughput: None,
                },
            );
            assert_eq!(l, 0, "no ramp while the buffer crawls");
            level = Some(l);
        }
    }

    #[test]
    fn oscillation_between_adjacent_levels() {
        // Figure 3's mechanism, reproduced in miniature: capacity
        // R = 3.4 Mbps sits between level 3 (2.41) and level 4 (3.94).
        // Simulate crude buffer dynamics: downloading level l changes the
        // buffer at rate (R / bitrate(l) − 1) per content-second.
        let v = Video::big_buck_bunny();
        let mut b = Bba::new(&v, false);
        let capacity = 3.4; // Mbps
        let mut buffer = 20.0f64; // start mid-cushion
        let mut level = 3usize;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            level = b.select(&v, &input(buffer, Some(level), Some(capacity)));
            seen.insert(level);
            let rate = v.bitrate(level).as_mbps_f64();
            // One 4-second chunk: download time = 4·rate/capacity.
            buffer += 4.0 - 4.0 * rate / capacity;
            buffer = buffer.clamp(0.0, 40.0);
        }
        assert!(
            seen.contains(&3) && seen.contains(&4),
            "BBA oscillates between 3 and 4: saw {seen:?}"
        );
    }

    #[test]
    fn bba_c_caps_at_capacity() {
        // Same setup as the oscillation test, but BBA-C locks to level 3.
        let v = Video::big_buck_bunny();
        let mut b = Bba::new(&v, true);
        let capacity = 3.4;
        let mut buffer = 20.0f64;
        let mut level = 3usize;
        let mut above = 0;
        for i in 0..200 {
            level = b.select(&v, &input(buffer, Some(level), Some(capacity)));
            if i > 10 && level > 3 {
                above += 1;
            }
            let rate = v.bitrate(level).as_mbps_f64();
            buffer += 4.0 - 4.0 * rate / capacity;
            buffer = buffer.clamp(0.0, 40.0);
        }
        assert_eq!(above, 0, "BBA-C must never exceed the sustainable level");
        assert_eq!(level, 3);
    }

    #[test]
    fn level_ranges_are_ordered_and_cover_cushion() {
        let v = Video::big_buck_bunny();
        let m = BbaMap::new(&v, secs(40.0));
        let mut prev_el = SimDuration::ZERO;
        for lvl in 0..v.n_levels() {
            let (el, eh) = m.level_range(lvl);
            assert!(el >= prev_el, "e_l must be non-decreasing");
            assert!(eh > el);
            prev_el = el;
        }
        // Paper example shape: ranges live inside the buffer capacity.
        let (el4, _) = m.level_range(4);
        assert!(el4 <= secs(36.0));
    }
}
