//! FESTIVE rate adaptation (Jiang, Sekar, Zhang — CoNEXT '12), the
//! representative throughput-based algorithm of the paper's evaluation.
//!
//! Three of FESTIVE's mechanisms matter for chunk selection (the fairness
//! machinery for competing players does not apply to a single client):
//!
//! * **Harmonic-mean estimation** over the last [`Festive::WINDOW`] chunk
//!   throughputs — robust to outlier-fast chunks served from caches.
//! * **Efficiency margin**: target the highest level whose bitrate is at
//!   most `γ ×` the estimate (γ = 0.85).
//! * **Gradual & stable switching**: step up at most one level at a time,
//!   and only after the target has persisted for a few consecutive
//!   decisions; stepping down is immediate.

use super::{Abr, AbrInput, AbrKind};
use crate::video::Video;
use mpdash_sim::Rate;
use std::collections::VecDeque;

/// FESTIVE state. See module docs.
#[derive(Clone, Debug)]
pub struct Festive {
    /// Recent per-chunk throughput samples (Mbps).
    samples: VecDeque<f64>,
    /// Consecutive decisions in which the target exceeded the current
    /// level (stability gate for up-switches).
    up_streak: u32,
}

impl Festive {
    /// Harmonic-mean window, in chunks.
    pub const WINDOW: usize = 5;
    /// Efficiency factor γ: use at most this fraction of the estimate.
    pub const GAMMA: f64 = 0.85;
    /// Up-switches require the target to persist this many decisions.
    pub const STABILITY: u32 = 3;

    /// A new instance.
    pub fn new() -> Self {
        Festive {
            samples: VecDeque::with_capacity(Self::WINDOW),
            up_streak: 0,
        }
    }

    fn harmonic_mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let denom: f64 = self.samples.iter().map(|&s| 1.0 / s.max(1e-9)).sum();
        Some(self.samples.len() as f64 / denom)
    }
}

impl Default for Festive {
    fn default() -> Self {
        Self::new()
    }
}

impl Abr for Festive {
    fn select(&mut self, video: &Video, input: &AbrInput) -> usize {
        // Ingest the newest sample. With the MP-DASH override active, the
        // aggregate estimate replaces the (single-path, under-counting)
        // app-level measurement — §5.2.1.
        if let Some(rate) = input.throughput_signal() {
            if self.samples.len() == Self::WINDOW {
                self.samples.pop_front();
            }
            self.samples.push_back(rate.as_mbps_f64());
        }

        let current = input.last_level.unwrap_or(0);
        let Some(hm) = self.harmonic_mean() else {
            return 0; // nothing measured yet
        };
        let target = video.highest_level_at_most(Rate::from_mbps_f64(hm * Self::GAMMA));

        if target > current {
            self.up_streak += 1;
            if self.up_streak >= Self::STABILITY {
                self.up_streak = 0;
                current + 1 // gradual: one level at a time
            } else {
                current
            }
        } else {
            self.up_streak = 0;
            target // down-switches (and holds) are immediate
        }
    }

    fn kind(&self) -> AbrKind {
        AbrKind::Festive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_sim::SimDuration;

    fn input(last_level: Option<usize>, mbps: f64) -> AbrInput {
        AbrInput {
            buffer: SimDuration::from_secs(20),
            buffer_capacity: SimDuration::from_secs(40),
            last_level,
            last_chunk_throughput: Some(Rate::from_mbps_f64(mbps)),
            override_throughput: None,
        }
    }

    #[test]
    fn starts_low_without_history() {
        let v = Video::big_buck_bunny();
        let mut f = Festive::new();
        let lvl = f.select(
            &v,
            &AbrInput {
                buffer: SimDuration::ZERO,
                buffer_capacity: SimDuration::from_secs(40),
                last_level: None,
                last_chunk_throughput: None,
                override_throughput: None,
            },
        );
        assert_eq!(lvl, 0);
    }

    #[test]
    fn climbs_gradually_with_stability_gate() {
        let v = Video::big_buck_bunny(); // top level 3.94 Mbps
        let mut f = Festive::new();
        let mut level = 0;
        let mut trajectory = vec![];
        for _ in 0..20 {
            level = f.select(&v, &input(Some(level), 8.0));
            trajectory.push(level);
        }
        // Reaches the top...
        assert_eq!(*trajectory.last().unwrap(), 4);
        // ...one step at a time...
        for w in trajectory.windows(2) {
            assert!(w[1] <= w[0] + 1, "jumped {} -> {}", w[0], w[1]);
        }
        // ...and not before the stability gate allows.
        assert_eq!(trajectory[0], 0);
        assert_eq!(trajectory[1], 0);
        assert!(trajectory[2] <= 1);
    }

    #[test]
    fn drops_immediately_on_collapse() {
        let v = Video::big_buck_bunny();
        let mut f = Festive::new();
        let mut level = 0;
        for _ in 0..20 {
            level = f.select(&v, &input(Some(level), 8.0));
        }
        assert_eq!(level, 4);
        // Throughput collapses to 1 Mbps; harmonic mean punishes fast:
        // within a couple of chunks the level must fall hard.
        level = f.select(&v, &input(Some(level), 1.0));
        let after_one = level;
        level = f.select(&v, &input(Some(level), 1.0));
        assert!(level < 4, "dropped from top: {after_one} then {level}");
        // Keep collapsing: settles at a low level.
        for _ in 0..5 {
            level = f.select(&v, &input(Some(level), 1.0));
        }
        assert!(level <= 1, "settled at {level}");
    }

    #[test]
    fn harmonic_mean_resists_outliers() {
        let mut f = Festive::new();
        for s in [2.0, 2.0, 2.0, 2.0, 100.0] {
            f.samples.push_back(s);
        }
        let hm = f.harmonic_mean().unwrap();
        assert!(hm < 2.6, "harmonic mean {hm} should discount the outlier");
    }

    #[test]
    fn efficiency_margin_avoids_borderline_levels() {
        let v = Video::big_buck_bunny();
        let mut f = Festive::new();
        let mut level = 0;
        // Estimate 2.5 Mbps: level 3 is 2.41 Mbps — a borderline fit that
        // γ=0.85 rejects (0.85·2.5 = 2.125 < 2.41). FESTIVE stays at 2.
        for _ in 0..20 {
            level = f.select(&v, &input(Some(level), 2.5));
        }
        assert_eq!(level, 2);
    }
}
