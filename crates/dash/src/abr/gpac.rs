//! GPAC's built-in rate adaptation (§6 of the paper): "estimates the
//! throughput by measuring the download time of the last chunk, and
//! selects the highest encoding bitrate lower than the estimated
//! throughput". The simplest throughput-based algorithm, used as the
//! workhorse of the throttling comparison (Table 4).

use super::{Abr, AbrInput, AbrKind};
use crate::video::Video;

/// The GPAC picker. Stateless beyond the trait object.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gpac;

impl Gpac {
    /// A new instance.
    pub fn new() -> Self {
        Gpac
    }
}

impl Abr for Gpac {
    fn select(&mut self, video: &Video, input: &AbrInput) -> usize {
        match input.throughput_signal() {
            // Highest level strictly below the estimate; ties resolve to
            // the level itself ("lower than" per the paper reads as ≤ in
            // the GPAC source — we use ≤, consistent with
            // `highest_level_at_most`).
            Some(rate) => video.highest_level_at_most(rate),
            // Nothing measured yet: start at the lowest level.
            None => 0,
        }
    }

    fn kind(&self) -> AbrKind {
        AbrKind::Gpac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_sim::{Rate, SimDuration};

    fn input(mbps: Option<f64>, override_mbps: Option<f64>) -> AbrInput {
        AbrInput {
            buffer: SimDuration::from_secs(10),
            buffer_capacity: SimDuration::from_secs(40),
            last_level: None,
            last_chunk_throughput: mbps.map(Rate::from_mbps_f64),
            override_throughput: override_mbps.map(Rate::from_mbps_f64),
        }
    }

    #[test]
    fn starts_at_lowest() {
        let v = Video::big_buck_bunny();
        assert_eq!(Gpac::new().select(&v, &input(None, None)), 0);
    }

    #[test]
    fn picks_highest_sustainable() {
        let v = Video::big_buck_bunny();
        // Ladder: 0.58 / 1.01 / 1.47 / 2.41 / 3.94.
        assert_eq!(Gpac::new().select(&v, &input(Some(4.5), None)), 4);
        assert_eq!(Gpac::new().select(&v, &input(Some(3.0), None)), 3);
        assert_eq!(Gpac::new().select(&v, &input(Some(1.2), None)), 1);
        assert_eq!(Gpac::new().select(&v, &input(Some(0.1), None)), 0);
    }

    #[test]
    fn mp_dash_override_wins() {
        let v = Video::big_buck_bunny();
        // App-level measurement (WiFi only, cell disabled) says 2 Mbps,
        // but the MP-DASH aggregate estimate says 6 Mbps.
        assert_eq!(Gpac::new().select(&v, &input(Some(2.0), Some(6.0))), 4);
    }
}
