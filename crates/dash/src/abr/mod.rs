//! DASH rate-adaptation algorithms.
//!
//! The paper evaluates two categories (§5.2) plus one hybrid (§5.2.3):
//!
//! | kind | category | selection signal |
//! |---|---|---|
//! | [`AbrKind::Gpac`] | throughput | last chunk's download throughput |
//! | [`AbrKind::Festive`] | throughput | harmonic mean + gradual/stable switching |
//! | [`AbrKind::Bba`] | buffer | buffer-occupancy chunk map (BBA-2) |
//! | [`AbrKind::BbaC`] | buffer | BBA capped at measured throughput (§5.2.2) |
//! | [`AbrKind::Mpc`] | hybrid | model-predictive horizon optimization |
//!
//! Every algorithm implements [`Abr`] and decides from an [`AbrInput`]
//! snapshot. The MP-DASH throughput override (§5.2.1) is visible here as
//! `AbrInput::override_throughput`: when the video adapter supplies it,
//! throughput-based algorithms use it *instead of* their own application-
//! level measurement, giving the player a view of the aggregate multipath
//! capacity even while the scheduler has the cellular path disabled.

mod bba;
mod festive;
mod gpac;
mod mpc;

pub use bba::{Bba, BbaMap};
pub use festive::Festive;
pub use gpac::Gpac;
pub use mpc::Mpc;

use crate::video::Video;
use mpdash_sim::{Rate, SimDuration};

/// Which algorithm (constructor shorthand + display name).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AbrKind {
    /// GPAC's built-in last-chunk-throughput picker.
    Gpac,
    /// FESTIVE (Jiang et al., CoNEXT '12).
    Festive,
    /// Buffer-Based Adaptation, BBA-2 (Huang et al., SIGCOMM '14).
    Bba,
    /// BBA-C: the paper's cellular-friendly BBA (§5.2.2).
    BbaC,
    /// Model-predictive control (Yin et al., SIGCOMM '15) — the hybrid the
    /// paper sketches in §5.2.3; implemented here as an extension.
    Mpc,
}

impl AbrKind {
    /// Algorithm category, which decides how the MP-DASH adapter
    /// integrates (Φ/Ω policies differ per §5.2.1 vs §5.2.2).
    pub fn category(self) -> AbrCategory {
        match self {
            AbrKind::Gpac | AbrKind::Festive => AbrCategory::ThroughputBased,
            AbrKind::Bba | AbrKind::BbaC => AbrCategory::BufferBased,
            AbrKind::Mpc => AbrCategory::Hybrid,
        }
    }

    /// Instantiate the algorithm for `video`.
    pub fn build(self, video: &Video) -> Box<dyn Abr> {
        match self {
            AbrKind::Gpac => Box::new(Gpac::new()),
            AbrKind::Festive => Box::new(Festive::new()),
            AbrKind::Bba => Box::new(Bba::new(video, false)),
            AbrKind::BbaC => Box::new(Bba::new(video, true)),
            AbrKind::Mpc => Box::new(Mpc::new()),
        }
    }

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            AbrKind::Gpac => "GPAC",
            AbrKind::Festive => "FESTIVE",
            AbrKind::Bba => "BBA",
            AbrKind::BbaC => "BBA-C",
            AbrKind::Mpc => "MPC",
        }
    }
}

/// Category of rate adaptation, governing adapter integration (§5.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbrCategory {
    /// Estimates future throughput from past chunk downloads.
    ThroughputBased,
    /// Maps buffer occupancy to quality.
    BufferBased,
    /// Uses both (MPC).
    Hybrid,
}

/// Everything an algorithm may look at when choosing the next chunk's
/// level.
#[derive(Clone, Copy, Debug)]
pub struct AbrInput {
    /// Current buffer occupancy.
    pub buffer: SimDuration,
    /// Buffer capacity.
    pub buffer_capacity: SimDuration,
    /// Level of the previously fetched chunk, if any.
    pub last_level: Option<usize>,
    /// Application-level throughput of the last chunk download
    /// (`size / download time`), if any chunk has completed.
    pub last_chunk_throughput: Option<Rate>,
    /// The MP-DASH aggregate-throughput override (§5.2.1); `None` when
    /// running without MP-DASH.
    pub override_throughput: Option<Rate>,
}

impl AbrInput {
    /// The throughput signal an algorithm should use: the MP-DASH
    /// override when present, the app-level measurement otherwise.
    pub fn throughput_signal(&self) -> Option<Rate> {
        self.override_throughput.or(self.last_chunk_throughput)
    }
}

/// A DASH rate-adaptation algorithm.
pub trait Abr {
    /// Choose the quality level for the next chunk.
    fn select(&mut self, video: &Video, input: &AbrInput) -> usize;

    /// Which kind this is (for reporting).
    fn kind(&self) -> AbrKind;

    /// For buffer-based algorithms: the buffer-occupancy range
    /// `[e_l, e_h)` mapped to `level`, used by the adapter's Ω rule
    /// (§5.2.2). `None` for algorithms without a chunk map.
    fn level_buffer_range(&self, _level: usize) -> Option<(SimDuration, SimDuration)> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        assert_eq!(AbrKind::Gpac.category(), AbrCategory::ThroughputBased);
        assert_eq!(AbrKind::Festive.category(), AbrCategory::ThroughputBased);
        assert_eq!(AbrKind::Bba.category(), AbrCategory::BufferBased);
        assert_eq!(AbrKind::BbaC.category(), AbrCategory::BufferBased);
        assert_eq!(AbrKind::Mpc.category(), AbrCategory::Hybrid);
    }

    #[test]
    fn override_takes_precedence() {
        let input = AbrInput {
            buffer: SimDuration::from_secs(10),
            buffer_capacity: SimDuration::from_secs(40),
            last_level: Some(2),
            last_chunk_throughput: Some(Rate::from_mbps(2)),
            override_throughput: Some(Rate::from_mbps(7)),
        };
        assert_eq!(input.throughput_signal(), Some(Rate::from_mbps(7)));
    }

    #[test]
    fn builders_produce_matching_kinds() {
        let v = Video::big_buck_bunny();
        for k in [
            AbrKind::Gpac,
            AbrKind::Festive,
            AbrKind::Bba,
            AbrKind::BbaC,
            AbrKind::Mpc,
        ] {
            assert_eq!(k.build(&v).kind(), k);
            assert!(!k.name().is_empty());
        }
    }
}
