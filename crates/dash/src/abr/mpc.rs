//! Model-predictive rate adaptation (Yin et al., SIGCOMM '15), the hybrid
//! class the paper sketches MP-DASH support for in §5.2.3 and defers to
//! future work — implemented here as an extension.
//!
//! Each decision solves a small horizon problem: enumerate level sequences
//! for the next [`Mpc::HORIZON`] chunks, simulate the buffer under the
//! throughput prediction (harmonic mean of recent chunks, as fastMPC
//! does), and score them with the standard QoE objective
//!
//! ```text
//! Σ q(R_k)  −  λ Σ |q(R_k) − q(R_{k−1})|  −  μ · rebuffer_seconds
//! ```
//!
//! with `q` the bitrate in Mbps, λ = 1 and μ = 8 × top-rate (harsh on
//! stalls, as in the original). The first level of the best sequence is
//! played; the horizon re-solves every chunk (receding horizon).

use super::{Abr, AbrInput, AbrKind};
use crate::video::Video;
use std::collections::VecDeque;

/// MPC state: the throughput sample window.
#[derive(Clone, Debug)]
pub struct Mpc {
    samples: VecDeque<f64>,
}

impl Mpc {
    /// Lookahead horizon, in chunks.
    pub const HORIZON: usize = 5;
    /// Throughput window for the harmonic-mean prediction.
    pub const WINDOW: usize = 5;
    /// Switching penalty weight λ.
    pub const LAMBDA: f64 = 1.0;

    /// A new instance.
    pub fn new() -> Self {
        Mpc {
            samples: VecDeque::with_capacity(Self::WINDOW),
        }
    }

    fn prediction(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let denom: f64 = self.samples.iter().map(|&s| 1.0 / s.max(1e-9)).sum();
        Some(self.samples.len() as f64 / denom)
    }

    /// Score one candidate sequence by simulating buffer evolution.
    fn score(
        video: &Video,
        seq: &[usize],
        mut buffer: f64,
        capacity: f64,
        pred_mbps: f64,
        prev_level: usize,
        mu: f64,
    ) -> f64 {
        let chunk_secs = video.chunk_duration().as_secs_f64();
        let mut utility = 0.0;
        let mut last = prev_level;
        for &lvl in seq {
            let rate = video.bitrate(lvl).as_mbps_f64();
            // Nominal download time of one chunk at `lvl` under the
            // prediction (future chunk sizes are unknown → use nominal).
            let dl = chunk_secs * rate / pred_mbps.max(1e-9);
            let rebuf = (dl - buffer).max(0.0);
            buffer = (buffer - dl).max(0.0) + chunk_secs;
            buffer = buffer.min(capacity);
            let q = rate;
            let q_last = video.bitrate(last).as_mbps_f64();
            utility += q - Self::LAMBDA * (q - q_last).abs() - mu * rebuf;
            last = lvl;
        }
        utility
    }
}

impl Default for Mpc {
    fn default() -> Self {
        Self::new()
    }
}

impl Abr for Mpc {
    fn select(&mut self, video: &Video, input: &AbrInput) -> usize {
        if let Some(rate) = input.throughput_signal() {
            if self.samples.len() == Self::WINDOW {
                self.samples.pop_front();
            }
            self.samples.push_back(rate.as_mbps_f64());
        }
        let Some(pred) = self.prediction() else {
            return 0;
        };
        let n_levels = video.n_levels();
        let prev = input.last_level.unwrap_or(0);
        let mu = 8.0 * video.bitrate(n_levels - 1).as_mbps_f64();
        let buffer = input.buffer.as_secs_f64();
        let capacity = input.buffer_capacity.as_secs_f64();

        // Enumerate all level sequences of length HORIZON (5^5 = 3125 for
        // a five-level ladder — small enough to brute-force, which is the
        // "solve the optimization directly" variant; the paper's table-
        // driven fastMPC precomputes the same answers).
        let mut best = (f64::NEG_INFINITY, 0usize);
        let total = n_levels.pow(Self::HORIZON as u32);
        let mut seq = [0usize; Self::HORIZON];
        for code in 0..total {
            let mut c = code;
            for slot in seq.iter_mut() {
                *slot = c % n_levels;
                c /= n_levels;
            }
            let s = Self::score(video, &seq, buffer, capacity, pred, prev, mu);
            if s > best.0 {
                best = (s, seq[0]);
            }
        }
        best.1
    }

    fn kind(&self) -> AbrKind {
        AbrKind::Mpc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_sim::{Rate, SimDuration};

    fn input(buffer: f64, last: Option<usize>, tput: f64) -> AbrInput {
        AbrInput {
            buffer: SimDuration::from_secs_f64(buffer),
            buffer_capacity: SimDuration::from_secs(40),
            last_level: last,
            last_chunk_throughput: Some(Rate::from_mbps_f64(tput)),
            override_throughput: None,
        }
    }

    #[test]
    fn starts_low() {
        let v = Video::big_buck_bunny();
        let mut m = Mpc::new();
        let lvl = m.select(
            &v,
            &AbrInput {
                buffer: SimDuration::ZERO,
                buffer_capacity: SimDuration::from_secs(40),
                last_level: None,
                last_chunk_throughput: None,
                override_throughput: None,
            },
        );
        assert_eq!(lvl, 0);
    }

    #[test]
    fn rich_network_full_buffer_goes_high() {
        let v = Video::big_buck_bunny();
        let mut m = Mpc::new();
        let mut lvl = 0;
        for _ in 0..8 {
            lvl = m.select(&v, &input(30.0, Some(lvl), 10.0));
        }
        assert_eq!(lvl, 4);
    }

    #[test]
    fn poor_network_low_buffer_stays_low() {
        let v = Video::big_buck_bunny();
        let mut m = Mpc::new();
        let lvl = m.select(&v, &input(2.0, Some(0), 0.7));
        assert_eq!(lvl, 0, "rebuffer risk dominates");
    }

    #[test]
    fn switching_penalty_smooths_transitions() {
        let v = Video::big_buck_bunny();
        let mut m = Mpc::new();
        // From level 0 with a rich network and a healthy buffer MPC climbs,
        // but the λ-penalty makes it prefer stepping over jumping when the
        // gain is marginal. With high buffer + high prediction the end
        // state is the top level either way.
        let mut lvl = 0;
        let mut seen = vec![];
        for _ in 0..6 {
            lvl = m.select(&v, &input(25.0, Some(lvl), 6.0));
            seen.push(lvl);
        }
        assert_eq!(*seen.last().unwrap(), 4);
    }

    #[test]
    fn buffer_protects_against_transient_dip() {
        let v = Video::big_buck_bunny();
        let mut m = Mpc::new();
        // Warm up at high throughput.
        let mut lvl = 0;
        for _ in 0..6 {
            lvl = m.select(&v, &input(35.0, Some(lvl), 6.0));
        }
        assert_eq!(lvl, 4);
        // One bad sample with a fat buffer: harmonic mean dips but the
        // buffer keeps the level from collapsing to the floor immediately.
        lvl = m.select(&v, &input(35.0, Some(lvl), 1.5));
        assert!(lvl >= 2, "buffer cushions the dip, got {lvl}");
    }
}
