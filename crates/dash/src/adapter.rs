//! The MP-DASH video adapter (§5): the thin shim between an off-the-shelf
//! DASH algorithm and the deadline-aware scheduler.
//!
//! For each chunk about to be requested, the adapter decides **whether**
//! MP-DASH should be active and **what deadline window** to hand it:
//!
//! 1. **Base deadline** (§5.1) — either the chunk's playout duration
//!    ([`DeadlineMode::Duration`]) or its size divided by the level's
//!    nominal bitrate ([`DeadlineMode::Rate`]). Both keep the buffer from
//!    decreasing: the first in the short term, the second in the long run.
//! 2. **Deadline extension** (§5.1) — above the high-buffer threshold Φ
//!    the player is in a "safe region"; the window is extended by
//!    `buffer − Φ` to give the scheduler more room to avoid cellular.
//! 3. **Low-buffer disable** (§5.1) — below the threshold Ω (startup,
//!    post-blackout) MP-DASH is turned off entirely and vanilla MPTCP
//!    takes over, protecting against stalls.
//!
//! Φ and Ω are category-specific (§5.2.1 vs §5.2.2); buffer-based
//! algorithms additionally keep MP-DASH off until the player has reached
//! the highest sustainable level.

use crate::abr::{Abr, AbrCategory};
use crate::video::Video;
use mpdash_sim::{Rate, SimDuration};

/// How the base deadline is derived (§5.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeadlineMode {
    /// `D` = the chunk's playout duration (stabilizes the buffer in the
    /// short term).
    Duration,
    /// `D` = chunk size ÷ the level's nominal average bitrate (stabilizes
    /// the buffer in the long run; the paper finds this the better
    /// performer, §7.3.2).
    Rate,
}

impl DeadlineMode {
    /// Display name matching the paper's table headers.
    pub fn name(self) -> &'static str {
        match self {
            DeadlineMode::Duration => "Duration",
            DeadlineMode::Rate => "Rate",
        }
    }
}

/// Adapter tunables; defaults are the paper's settings.
#[derive(Clone, Copy, Debug)]
pub struct AdapterConfig {
    /// Deadline derivation.
    pub mode: DeadlineMode,
    /// Throughput-based Φ as a fraction of buffer capacity (paper: 0.8).
    pub phi_fraction: f64,
    /// Throughput-based Ω window `T` as a multiple of the buffer
    /// capacity (paper: 2×; 1× or 3× "does not qualitatively change the
    /// results").
    pub t_factor: f64,
    /// Floor on Ω as a fraction of capacity (paper: 0.4).
    pub omega_floor: f64,
}

impl AdapterConfig {
    /// Paper defaults with the given deadline mode.
    pub fn new(mode: DeadlineMode) -> Self {
        AdapterConfig {
            mode,
            phi_fraction: 0.8,
            t_factor: 2.0,
            omega_floor: 0.4,
        }
    }
}

/// The adapter's verdict for one chunk request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeadlineDecision {
    /// Run this chunk under MP-DASH with the given (possibly extended)
    /// window.
    Schedule(SimDuration),
    /// Leave MP-DASH off for this chunk: vanilla MPTCP (low buffer, or a
    /// buffer-based player not yet at its sustainable level).
    Bypass,
}

/// The per-session video adapter. See module docs.
#[derive(Clone, Copy, Debug)]
pub struct VideoAdapter {
    cfg: AdapterConfig,
    category: AbrCategory,
}

impl VideoAdapter {
    /// Build for an algorithm category with the paper's default Φ/Ω.
    pub fn new(category: AbrCategory, mode: DeadlineMode) -> Self {
        VideoAdapter {
            cfg: AdapterConfig::new(mode),
            category,
        }
    }

    /// Build with explicit tunables.
    pub fn with_config(category: AbrCategory, cfg: AdapterConfig) -> Self {
        VideoAdapter { cfg, category }
    }

    /// The configured deadline mode.
    pub fn mode(&self) -> DeadlineMode {
        self.cfg.mode
    }

    /// The base (unextended) deadline for a chunk of `size` bytes at
    /// `level`.
    pub fn base_deadline(&self, video: &Video, level: usize, size: u64) -> SimDuration {
        match self.cfg.mode {
            DeadlineMode::Duration => video.chunk_duration(),
            DeadlineMode::Rate => {
                let rate = video.bitrate(level);
                rate.time_to_send(size)
            }
        }
    }

    /// The high-buffer extension threshold Φ for this category.
    pub fn phi(&self, video: &Video, capacity: SimDuration) -> SimDuration {
        match self.category {
            AbrCategory::ThroughputBased | AbrCategory::Hybrid => {
                capacity.mul_f64(self.cfg.phi_fraction)
            }
            // §5.2.2: conservatively capacity minus one chunk duration.
            AbrCategory::BufferBased => capacity.saturating_sub(video.chunk_duration()),
        }
    }

    /// The low-buffer disable threshold Ω for this category.
    ///
    /// * Throughput-based (§5.2.1): `Ω = max(T − T′, 0.4·capacity)` with
    ///   `T = 2 × capacity` and `T′` the content time downloadable in `T`
    ///   at the lowest bitrate under `estimate`.
    /// * Buffer-based (§5.2.2): `Ω = e_l(level) + chunk duration`, where
    ///   `e_l` comes from the algorithm's chunk map.
    pub fn omega(
        &self,
        video: &Video,
        abr: &dyn Abr,
        level: usize,
        capacity: SimDuration,
        estimate: Rate,
    ) -> SimDuration {
        match self.category {
            AbrCategory::ThroughputBased | AbrCategory::Hybrid => {
                let t = capacity.mul_f64(self.cfg.t_factor);
                let lowest = video.bitrate(0).as_mbps_f64();
                let supplied = t.mul_f64(estimate.as_mbps_f64() / lowest.max(1e-9));
                let omega = t.saturating_sub(supplied);
                omega.max(capacity.mul_f64(self.cfg.omega_floor))
            }
            AbrCategory::BufferBased => {
                let el = abr
                    .level_buffer_range(level)
                    .map(|(el, _)| el)
                    .unwrap_or(SimDuration::ZERO);
                el + video.chunk_duration()
            }
        }
    }

    /// Decide for the next chunk: given the level the ABR chose, the
    /// chunk size, the current buffer, and the MP-DASH aggregate
    /// throughput estimate.
    #[allow(clippy::too_many_arguments)] // one argument per §5 input; a
                                         // context struct would only relocate the same seven names
    pub fn decide(
        &self,
        video: &Video,
        abr: &dyn Abr,
        level: usize,
        size: u64,
        buffer: SimDuration,
        capacity: SimDuration,
        estimate: Rate,
    ) -> DeadlineDecision {
        // Buffer-based gate (§5.2.2): only at the highest sustainable
        // level is the scheduler allowed on.
        if self.category == AbrCategory::BufferBased {
            let sustainable = video.highest_level_at_most(estimate);
            if level != sustainable {
                return DeadlineDecision::Bypass;
            }
        }
        let omega = self.omega(video, abr, level, capacity, estimate);
        if buffer < omega {
            return DeadlineDecision::Bypass;
        }
        let mut window = self.base_deadline(video, level, size);
        let phi = self.phi(video, capacity);
        if buffer > phi {
            window += buffer - phi; // deadline extension (§5.1)
        }
        DeadlineDecision::Schedule(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abr::AbrKind;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    fn mbps(m: f64) -> Rate {
        Rate::from_mbps_f64(m)
    }

    const CAP: f64 = 40.0;

    #[test]
    fn duration_mode_uses_playout_time() {
        let v = Video::big_buck_bunny();
        let a = VideoAdapter::new(AbrCategory::ThroughputBased, DeadlineMode::Duration);
        assert_eq!(a.base_deadline(&v, 4, 999_999_999), secs(4.0));
    }

    #[test]
    fn rate_mode_scales_with_chunk_size() {
        let v = Video::big_buck_bunny();
        let a = VideoAdapter::new(AbrCategory::ThroughputBased, DeadlineMode::Rate);
        // Paper's example: 1 MB at 4.0 Mbps nominal → 2 s.
        let d = Rate::from_mbps(4).time_to_send(1_000_000);
        assert_eq!(d, secs(2.0));
        // A chunk exactly at nominal size gets exactly the playout time.
        let nominal = v.bitrate(4).bytes_in(v.chunk_duration());
        assert_eq!(a.base_deadline(&v, 4, nominal), v.chunk_duration());
        // Larger-than-nominal chunks get a longer window (rate-based
        // advantage per §7.3.2).
        assert!(a.base_deadline(&v, 4, nominal * 12 / 10) > v.chunk_duration());
    }

    #[test]
    fn throughput_phi_is_80_percent() {
        let v = Video::big_buck_bunny();
        let a = VideoAdapter::new(AbrCategory::ThroughputBased, DeadlineMode::Rate);
        assert_eq!(a.phi(&v, secs(CAP)), secs(32.0));
    }

    #[test]
    fn buffer_based_phi_is_capacity_minus_chunk() {
        let v = Video::big_buck_bunny();
        let a = VideoAdapter::new(AbrCategory::BufferBased, DeadlineMode::Rate);
        assert_eq!(a.phi(&v, secs(CAP)), secs(36.0));
    }

    #[test]
    fn deadline_extension_above_phi() {
        let v = Video::big_buck_bunny();
        let a = VideoAdapter::new(AbrCategory::ThroughputBased, DeadlineMode::Duration);
        let abr = AbrKind::Festive.build(&v);
        // Buffer at 36 s > Φ=32 s: window = 4 s + 4 s extension.
        let d = a.decide(&v, abr.as_ref(), 4, 1, secs(36.0), secs(CAP), mbps(5.0));
        assert_eq!(d, DeadlineDecision::Schedule(secs(8.0)));
    }

    #[test]
    fn low_buffer_bypasses() {
        let v = Video::big_buck_bunny();
        let a = VideoAdapter::new(AbrCategory::ThroughputBased, DeadlineMode::Rate);
        let abr = AbrKind::Festive.build(&v);
        // Ω floor = 16 s; buffer 10 s < Ω → bypass.
        let d = a.decide(&v, abr.as_ref(), 2, 1, secs(10.0), secs(CAP), mbps(5.0));
        assert_eq!(d, DeadlineDecision::Bypass);
    }

    #[test]
    fn omega_grows_when_estimate_is_poor() {
        let v = Video::big_buck_bunny();
        let a = VideoAdapter::new(AbrCategory::ThroughputBased, DeadlineMode::Rate);
        let abr = AbrKind::Festive.build(&v);
        // Rich estimate: supplied ≥ T, Ω = floor (16 s).
        let rich = a.omega(&v, abr.as_ref(), 0, secs(CAP), mbps(5.0));
        assert_eq!(rich, secs(16.0));
        // Estimate at half the lowest bitrate: T' = 40 s, Ω = 80−40 = 40 s.
        let poor = a.omega(&v, abr.as_ref(), 0, secs(CAP), mbps(0.29));
        assert_eq!(poor, secs(40.0));
        assert!(poor > rich);
    }

    #[test]
    fn buffer_based_gate_requires_sustainable_level() {
        let v = Video::big_buck_bunny();
        let a = VideoAdapter::new(AbrCategory::BufferBased, DeadlineMode::Rate);
        let mut abr = AbrKind::Bba.build(&v);
        // Run a selection so the BBA map exists (it is built lazily).
        let _ = abr.select(
            &v,
            &crate::abr::AbrInput {
                buffer: secs(30.0),
                buffer_capacity: secs(CAP),
                last_level: Some(3),
                last_chunk_throughput: Some(mbps(3.4)),
                override_throughput: None,
            },
        );
        // Estimate 3.4 Mbps sustains level 3; a level-2 chunk bypasses.
        let d = a.decide(&v, abr.as_ref(), 2, 1, secs(30.0), secs(CAP), mbps(3.4));
        assert_eq!(d, DeadlineDecision::Bypass);
        // At level 3 with a healthy buffer, it schedules.
        let d = a.decide(&v, abr.as_ref(), 3, 1, secs(30.0), secs(CAP), mbps(3.4));
        assert!(matches!(d, DeadlineDecision::Schedule(_)));
    }

    #[test]
    fn buffer_based_omega_uses_chunk_map() {
        let v = Video::big_buck_bunny();
        let a = VideoAdapter::new(AbrCategory::BufferBased, DeadlineMode::Rate);
        let mut abr = AbrKind::Bba.build(&v);
        let _ = abr.select(
            &v,
            &crate::abr::AbrInput {
                buffer: secs(30.0),
                buffer_capacity: secs(CAP),
                last_level: Some(4),
                last_chunk_throughput: Some(mbps(5.0)),
                override_throughput: None,
            },
        );
        let (el, _) = abr.level_buffer_range(4).unwrap();
        let omega = a.omega(&v, abr.as_ref(), 4, secs(CAP), mbps(5.0));
        assert_eq!(omega, el + v.chunk_duration());
        // Just below Ω: bypass. Just above: schedule.
        let below = omega - SimDuration::from_millis(1);
        assert_eq!(
            a.decide(&v, abr.as_ref(), 4, 1, below, secs(CAP), mbps(5.0)),
            DeadlineDecision::Bypass
        );
        let above = omega + SimDuration::from_millis(1);
        assert!(matches!(
            a.decide(&v, abr.as_ref(), 4, 1, above, secs(CAP), mbps(5.0)),
            DeadlineDecision::Schedule(_)
        ));
    }
}
