//! The DASH substrate: video model, player engine, rate-adaptation
//! algorithms, and the MP-DASH video adapter (§5 of the paper).
//!
//! * [`video`] — representations, chunk sizing (VBR), and the four-video
//!   dataset of Table 3 (Big Buck Bunny, Red Bull Playstreets, Tears of
//!   Steel, and its HD variant).
//! * [`player`] — the client buffer/playback engine: startup, steady
//!   state, stalls, quality switches, and the QoE ledger.
//! * [`abr`] — rate adaptation: GPAC (last-chunk throughput), FESTIVE
//!   (harmonic-mean + gradual/stable switching), BBA-2 (buffer-based),
//!   BBA-C (the paper's cellular-friendly cap, §5.2.2), and MPC (the
//!   hybrid the paper defers to future work, §5.2.3).
//! * [`adapter`] — the MP-DASH video adapter: deadline computation
//!   (duration- vs rate-based, §5.1), deadline extension above Φ,
//!   low-buffer disable below Ω (§5.2.1–5.2.2), and the
//!   aggregate-throughput override for throughput-based algorithms.
//! * [`qoe`] — session-level QoE summary (stalls, mean bitrate, switch
//!   count, per-level histogram).
//! * [`manifest`] — the MPD model, including the per-segment sizes the
//!   paper advocates making mandatory (§5.1), with XML round-tripping.

//!
//! ```
//! use mpdash_dash::abr::{AbrInput, AbrKind};
//! use mpdash_dash::video::Video;
//! use mpdash_sim::{Rate, SimDuration};
//!
//! let video = Video::big_buck_bunny();
//! let mut abr = AbrKind::Gpac.build(&video);
//! let level = abr.select(&video, &AbrInput {
//!     buffer: SimDuration::from_secs(20),
//!     buffer_capacity: SimDuration::from_secs(40),
//!     last_level: Some(2),
//!     last_chunk_throughput: Some(Rate::from_mbps_f64(2.0)),
//!     // The MP-DASH override: the player sees the aggregate capacity.
//!     override_throughput: Some(Rate::from_mbps_f64(6.8)),
//! });
//! assert_eq!(level, 4, "the override unlocks the top level");
//! ```

pub mod abr;
pub mod adapter;
pub mod manifest;
pub mod player;
pub mod qoe;
pub mod video;

pub use abr::{Abr, AbrCategory, AbrInput, AbrKind};
pub use adapter::{AdapterConfig, DeadlineDecision, DeadlineMode, VideoAdapter};
pub use manifest::{Manifest, Representation};
pub use player::{Player, PlayerConfig, PlayerEvent, PlayerState};
pub use qoe::{QoeScore, QoeSummary};
pub use video::{ChunkRef, Video};
