//! A DASH Media Presentation Description (MPD) model.
//!
//! The paper's §5.1 discusses the manifest directly: chunk size "is not a
//! mandatory field in the DASH manifest" — players fall back to the
//! HTTP `Content-Length` header — and the paper (with Yin et al.)
//! "advocates that chunk size … should be a mandatory part of the DASH
//! manifest". This module models an MPD at the level DASH control logic
//! consumes: representations with bandwidths, segment timing, and
//! *optional per-segment sizes*, so both worlds can be expressed:
//!
//! * [`Manifest::from_video`] without sizes — the status-quo manifest; the
//!   adapter must learn sizes from `Content-Length` (our HTTP layer's
//!   [`HeaderReceived`](mpdash_http::HttpEvent) equivalent).
//! * [`Manifest::from_video_with_sizes`] — the paper's advocated form; the
//!   scheduler can be armed with the exact size at request time (what the
//!   session driver does).
//!
//! A compact XML-like serialization is provided for interoperability and
//! golden-file testing; it is intentionally a subset of MPEG-DASH (one
//! period, one adaptation set, `SegmentTemplate`-style duration).

use crate::video::Video;
use mpdash_sim::{Rate, SimDuration};

/// One representation (quality level) in the manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct Representation {
    /// Representation id (level index as string, MPEG-DASH style).
    pub id: String,
    /// Declared average bandwidth, bits per second.
    pub bandwidth_bps: u64,
    /// Optional exact per-segment sizes in bytes (the paper's advocated
    /// extension). Length equals the segment count when present.
    pub segment_sizes: Option<Vec<u64>>,
}

/// The manifest: segment timing plus the representation ladder.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Presentation title.
    pub title: String,
    /// Fixed segment (chunk) duration.
    pub segment_duration: SimDuration,
    /// Number of segments.
    pub segment_count: usize,
    /// Quality ladder, ascending bandwidth.
    pub representations: Vec<Representation>,
}

impl Manifest {
    /// A status-quo manifest: bandwidths only, no sizes.
    pub fn from_video(video: &Video) -> Self {
        Manifest {
            title: video.name().to_string(),
            segment_duration: video.chunk_duration(),
            segment_count: video.n_chunks(),
            representations: video
                .bitrates()
                .iter()
                .enumerate()
                .map(|(i, r)| Representation {
                    id: i.to_string(),
                    bandwidth_bps: r.as_bps(),
                    segment_sizes: None,
                })
                .collect(),
        }
    }

    /// The paper's advocated manifest: exact segment sizes included.
    pub fn from_video_with_sizes(video: &Video) -> Self {
        let mut m = Self::from_video(video);
        for (level, rep) in m.representations.iter_mut().enumerate() {
            rep.segment_sizes = Some(
                (0..video.n_chunks())
                    .map(|i| video.chunk_size(i, level))
                    .collect(),
            );
        }
        m
    }

    /// Whether every representation declares per-segment sizes.
    pub fn has_sizes(&self) -> bool {
        self.representations
            .iter()
            .all(|r| r.segment_sizes.is_some())
    }

    /// The size a player can assume for `(segment, level)` before the
    /// download starts: the exact size when the manifest carries sizes,
    /// otherwise the nominal `bandwidth × duration` estimate — precisely
    /// the fallback gap the paper's §5.1 complains about.
    pub fn size_hint(&self, segment: usize, level: usize) -> u64 {
        let rep = &self.representations[level];
        match &rep.segment_sizes {
            Some(sizes) => sizes[segment],
            None => Rate::from_bps(rep.bandwidth_bps).bytes_in(self.segment_duration),
        }
    }

    /// Total declared bytes of one representation (`None` without sizes).
    pub fn representation_bytes(&self, level: usize) -> Option<u64> {
        self.representations[level]
            .segment_sizes
            .as_ref()
            .map(|s| s.iter().sum())
    }

    /// Serialize to the compact MPD-subset XML.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        out.push_str("<?xml version=\"1.0\"?>\n");
        out.push_str(&format!(
            "<MPD title=\"{}\" segmentDurationMs=\"{}\" segmentCount=\"{}\">\n",
            xml_escape(&self.title),
            self.segment_duration.as_millis_f64() as u64,
            self.segment_count,
        ));
        out.push_str("  <AdaptationSet>\n");
        for rep in &self.representations {
            match &rep.segment_sizes {
                None => out.push_str(&format!(
                    "    <Representation id=\"{}\" bandwidth=\"{}\"/>\n",
                    rep.id, rep.bandwidth_bps
                )),
                Some(sizes) => {
                    out.push_str(&format!(
                        "    <Representation id=\"{}\" bandwidth=\"{}\">\n",
                        rep.id, rep.bandwidth_bps
                    ));
                    let list: Vec<String> = sizes.iter().map(|s| s.to_string()).collect();
                    out.push_str(&format!(
                        "      <SegmentSizes>{}</SegmentSizes>\n",
                        list.join(" ")
                    ));
                    out.push_str("    </Representation>\n");
                }
            }
        }
        out.push_str("  </AdaptationSet>\n</MPD>\n");
        out
    }

    /// Parse the compact MPD-subset XML produced by [`Manifest::to_xml`].
    /// A deliberately small recursive-descent-free parser: attribute
    /// scanning plus the one nested element we emit.
    pub fn from_xml(text: &str) -> Result<Self, String> {
        let title = attr(text, "MPD", "title").ok_or("missing MPD title")?;
        let dur_ms: u64 = attr(text, "MPD", "segmentDurationMs")
            .ok_or("missing segmentDurationMs")?
            .parse()
            .map_err(|e| format!("segmentDurationMs: {e}"))?;
        let count: usize = attr(text, "MPD", "segmentCount")
            .ok_or("missing segmentCount")?
            .parse()
            .map_err(|e| format!("segmentCount: {e}"))?;
        if dur_ms == 0 || count == 0 {
            return Err("segment duration and count must be positive".into());
        }

        let mut representations = Vec::new();
        let mut rest = text;
        while let Some(start) = rest.find("<Representation ") {
            let tag_end = rest[start..]
                .find('>')
                .ok_or("unterminated Representation tag")?
                + start;
            let tag = &rest[start..=tag_end];
            let id = attr(tag, "Representation", "id").ok_or("missing representation id")?;
            let bandwidth_bps: u64 = attr(tag, "Representation", "bandwidth")
                .ok_or("missing bandwidth")?
                .parse()
                .map_err(|e| format!("bandwidth: {e}"))?;
            let self_closing = tag.trim_end().ends_with("/>");
            let mut segment_sizes = None;
            let consumed = if self_closing {
                tag_end + 1
            } else {
                let close = rest[tag_end..]
                    .find("</Representation>")
                    .ok_or("unterminated Representation element")?
                    + tag_end;
                let body = &rest[tag_end + 1..close];
                if let Some(sizes_text) = element_text(body, "SegmentSizes") {
                    let sizes: Result<Vec<u64>, _> = sizes_text
                        .split_whitespace()
                        .map(str::parse::<u64>)
                        .collect();
                    let sizes = sizes.map_err(|e| format!("SegmentSizes: {e}"))?;
                    if sizes.len() != count {
                        return Err(format!(
                            "representation {id}: {} sizes for {count} segments",
                            sizes.len()
                        ));
                    }
                    segment_sizes = Some(sizes);
                }
                close + "</Representation>".len()
            };
            representations.push(Representation {
                id,
                bandwidth_bps,
                segment_sizes,
            });
            rest = &rest[consumed..];
        }
        if representations.is_empty() {
            return Err("no representations".into());
        }
        if !representations
            .windows(2)
            .all(|w| w[0].bandwidth_bps < w[1].bandwidth_bps)
        {
            return Err("representations must be strictly ascending in bandwidth".into());
        }
        Ok(Manifest {
            title,
            segment_duration: SimDuration::from_millis(dur_ms),
            segment_count: count,
            representations,
        })
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('"', "&quot;")
}

/// Value of `name="..."` inside the first `<element ...>` tag.
fn attr(text: &str, element: &str, name: &str) -> Option<String> {
    let open = format!("<{element} ");
    let start = text.find(&open)?;
    let tag_end = text[start..].find('>')? + start;
    let tag = &text[start..tag_end];
    let key = format!("{name}=\"");
    let vstart = tag.find(&key)? + key.len();
    let vend = tag[vstart..].find('"')? + vstart;
    Some(tag[vstart..vend].to_string())
}

/// Text content of `<element>...</element>` inside `body`.
fn element_text<'a>(body: &'a str, element: &str) -> Option<&'a str> {
    let open = format!("<{element}>");
    let close = format!("</{element}>");
    let s = body.find(&open)? + open.len();
    let e = body.find(&close)?;
    (e >= s).then(|| &body[s..e])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_quo_manifest_has_no_sizes() {
        let m = Manifest::from_video(&Video::big_buck_bunny());
        assert!(!m.has_sizes());
        assert_eq!(m.segment_count, 150);
        assert_eq!(m.representations.len(), 5);
        // Size hint falls back to bandwidth × duration — the §5.1 gap.
        let hint = m.size_hint(0, 4);
        let nominal = Rate::from_mbps_f64(3.94).bytes_in(SimDuration::from_secs(4));
        assert_eq!(hint, nominal);
        assert_eq!(m.representation_bytes(4), None);
    }

    #[test]
    fn sized_manifest_matches_the_video_exactly() {
        let v = Video::big_buck_bunny();
        let m = Manifest::from_video_with_sizes(&v);
        assert!(m.has_sizes());
        for i in [0usize, 7, 149] {
            for lvl in 0..v.n_levels() {
                assert_eq!(m.size_hint(i, lvl), v.chunk_size(i, lvl));
            }
        }
        assert_eq!(m.representation_bytes(4), Some(v.total_bytes_at(4)));
    }

    #[test]
    fn xml_round_trip_without_sizes() {
        let m = Manifest::from_video(&Video::tears_of_steel());
        let xml = m.to_xml();
        assert!(xml.contains("<MPD title=\"Tears of Steel\""));
        let back = Manifest::from_xml(&xml).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn xml_round_trip_with_sizes() {
        let v = Video::new("tiny", &[1.0, 2.0], SimDuration::from_secs(2), 5);
        let m = Manifest::from_video_with_sizes(&v);
        let xml = m.to_xml();
        assert!(xml.contains("<SegmentSizes>"));
        let back = Manifest::from_xml(&xml).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Manifest::from_xml("<MPD>").is_err());
        let missing_reps = "<?xml version=\"1.0\"?>\n<MPD title=\"x\" \
             segmentDurationMs=\"4000\" segmentCount=\"3\">\n</MPD>\n";
        assert!(Manifest::from_xml(missing_reps)
            .unwrap_err()
            .contains("no representations"));
        let wrong_count = "<?xml version=\"1.0\"?>\n<MPD title=\"x\" \
             segmentDurationMs=\"4000\" segmentCount=\"3\">\n  <AdaptationSet>\n    \
             <Representation id=\"0\" bandwidth=\"1000\">\n      \
             <SegmentSizes>1 2</SegmentSizes>\n    </Representation>\n  \
             </AdaptationSet>\n</MPD>\n";
        assert!(Manifest::from_xml(wrong_count)
            .unwrap_err()
            .contains("2 sizes for 3 segments"));
        let unsorted = "<?xml version=\"1.0\"?>\n<MPD title=\"x\" \
             segmentDurationMs=\"4000\" segmentCount=\"1\">\n  <AdaptationSet>\n    \
             <Representation id=\"0\" bandwidth=\"2000\"/>\n    \
             <Representation id=\"1\" bandwidth=\"1000\"/>\n  \
             </AdaptationSet>\n</MPD>\n";
        assert!(Manifest::from_xml(unsorted)
            .unwrap_err()
            .contains("ascending"));
    }

    #[test]
    fn titles_are_escaped() {
        let v = Video::new("A \"<B>\" & C", &[1.0], SimDuration::from_secs(4), 2);
        let m = Manifest::from_video(&v);
        let xml = m.to_xml();
        assert!(xml.contains("A &quot;&lt;B>&quot; &amp; C"));
    }

    #[test]
    fn size_hint_error_vs_truth_motivates_the_papers_advocacy() {
        // Quantify §5.1's point: without sizes, the rate-based deadline
        // would be computed from the nominal size, which misses the VBR
        // wobble by up to the spread (±25% here).
        let v = Video::big_buck_bunny();
        let plain = Manifest::from_video(&v);
        let max_err = (0..v.n_chunks())
            .map(|i| {
                let truth = v.chunk_size(i, 4) as f64;
                let hint = plain.size_hint(i, 4) as f64;
                (hint - truth).abs() / truth
            })
            .fold(0.0f64, f64::max);
        assert!(
            max_err > 0.10,
            "VBR makes the nominal hint meaningfully wrong: {max_err:.2}"
        );
    }
}
