//! The client playback engine: buffer dynamics, stalls, and the per-chunk
//! history the QoE summary and analysis tool consume.
//!
//! The player is passive with respect to time — the session drives it with
//! [`Player::advance_to`] — and passive with respect to the network: chunk
//! completions are pushed in with [`Player::on_chunk_complete`]. What it
//! owns is the buffer model:
//!
//! * **Startup**: playback begins once the first chunk is buffered.
//! * **Steady state**: buffered content drains in real time while playing.
//! * **Stall**: the buffer hitting empty mid-stream pauses playback until
//!   one full chunk duration is re-buffered, and is counted (the paper's
//!   first QoE metric; every MP-DASH experiment reports zero).

use crate::video::Video;
use mpdash_obs::{TraceEvent, Tracer};
use mpdash_sim::{SimDuration, SimTime};

/// One entry of the player's event log — the §6 analysis tool's second
/// input, alongside the packet trace. Each entry carries the instant and
/// the buffer level right after the transition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlayerEvent {
    /// Playback began (first frame).
    Started {
        /// When.
        at: SimTime,
    },
    /// The buffer ran dry mid-stream.
    Stalled {
        /// When.
        at: SimTime,
    },
    /// Playback resumed after a stall.
    Resumed {
        /// When.
        at: SimTime,
    },
    /// A chunk finished downloading.
    ChunkDone {
        /// When.
        at: SimTime,
        /// Chunk index.
        index: usize,
        /// Level fetched.
        level: usize,
        /// Buffer level right after the chunk was added.
        buffer: SimDuration,
    },
    /// The last frame played out.
    Finished {
        /// When.
        at: SimTime,
    },
}

/// Player configuration.
#[derive(Clone, Copy, Debug)]
pub struct PlayerConfig {
    /// Maximum buffered content. The paper's BBA discussion works with
    /// ~40 s buffers (§5.2.2 example); default 40 s.
    pub capacity: SimDuration,
    /// Content that must be re-buffered after a stall before playback
    /// resumes (one chunk duration by default, set in `new`).
    pub resume_threshold: SimDuration,
}

/// Playback state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlayerState {
    /// Nothing played yet; waiting for the first chunk.
    Startup,
    /// Playing.
    Playing,
    /// Stalled mid-stream, waiting for `resume_threshold` of content.
    Stalled,
    /// All chunks played out.
    Finished,
}

/// One downloaded chunk, as the player saw it.
#[derive(Clone, Copy, Debug)]
pub struct ChunkRecord {
    /// Chunk index.
    pub index: usize,
    /// Quality level it was fetched at.
    pub level: usize,
    /// Bytes downloaded.
    pub size: u64,
    /// When its download started (request issued).
    pub started: SimTime,
    /// When its last byte arrived.
    pub completed: SimTime,
}

/// The buffer/playback engine. See module docs.
pub struct Player {
    cfg: PlayerConfig,
    chunk_duration: SimDuration,
    n_chunks: usize,
    /// Buffered, not yet played content.
    buffer: SimDuration,
    /// Total content played out.
    played: SimDuration,
    state: PlayerState,
    last_advance: SimTime,
    stalls: u64,
    stall_time: SimDuration,
    startup_delay: Option<SimDuration>,
    /// When this session logically began (staggered fleet starts).
    /// Startup delay is measured from here, not from the epoch.
    origin: SimTime,
    chunks_downloaded: usize,
    /// Viewer left mid-stream: content ends at `chunks_downloaded`.
    departed: bool,
    history: Vec<ChunkRecord>,
    events: Vec<PlayerEvent>,
    /// Observe-only mirror of the event log into the trace layer.
    tracer: Tracer,
}

impl Player {
    /// A player for `video` with the given buffer capacity.
    pub fn new(video: &Video, capacity: SimDuration) -> Self {
        assert!(
            capacity >= video.chunk_duration() * 2,
            "buffer must hold at least two chunks"
        );
        Player {
            cfg: PlayerConfig {
                capacity,
                resume_threshold: video.chunk_duration(),
            },
            chunk_duration: video.chunk_duration(),
            n_chunks: video.n_chunks(),
            buffer: SimDuration::ZERO,
            played: SimDuration::ZERO,
            state: PlayerState::Startup,
            last_advance: SimTime::ZERO,
            stalls: 0,
            stall_time: SimDuration::ZERO,
            startup_delay: None,
            origin: SimTime::ZERO,
            chunks_downloaded: 0,
            departed: false,
            history: Vec::new(),
            events: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer: every buffer transition in the event log is
    /// mirrored as a [`TraceEvent::BufferTransition`]. Observe-only.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Set the session's logical start time (a staggered fleet client
    /// joins mid-simulation). Startup delay is measured from here.
    pub fn set_origin(&mut self, origin: SimTime) {
        self.origin = origin;
    }

    /// The session's logical start time.
    pub fn origin(&self) -> SimTime {
        self.origin
    }

    /// Mirror a state transition to the trace layer with the buffer
    /// level after it.
    fn trace_transition(&self, at: SimTime, state: &'static str) {
        let buffer_s = self.buffer.as_secs_f64();
        self.tracer
            .emit_with(at, || TraceEvent::BufferTransition { state, buffer_s });
    }

    /// Buffer capacity.
    pub fn capacity(&self) -> SimDuration {
        self.cfg.capacity
    }

    /// Current buffered content (after the last `advance_to`).
    pub fn buffer(&self) -> SimDuration {
        self.buffer
    }

    /// Current playback state.
    pub fn state(&self) -> PlayerState {
        self.state
    }

    /// Number of mid-stream stalls so far.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total time spent stalled (excluding initial startup wait).
    pub fn stall_time(&self) -> SimDuration {
        self.stall_time
    }

    /// Time from t=0 to first frame, once known.
    pub fn startup_delay(&self) -> Option<SimDuration> {
        self.startup_delay
    }

    /// Chunks downloaded so far.
    pub fn chunks_downloaded(&self) -> usize {
        self.chunks_downloaded
    }

    /// Index of the next chunk to request, or `None` when all are fetched.
    pub fn next_chunk_index(&self) -> Option<usize> {
        (self.chunks_downloaded < self.n_chunks).then_some(self.chunks_downloaded)
    }

    /// The per-chunk download history.
    pub fn history(&self) -> &[ChunkRecord] {
        &self.history
    }

    /// The event log (state transitions + chunk completions with buffer
    /// levels), time-ordered.
    pub fn events(&self) -> &[PlayerEvent] {
        &self.events
    }

    /// True when there is room to hold one more chunk (the standard DASH
    /// pacing rule: request when `buffer + chunk ≤ capacity`).
    pub fn has_space(&self) -> bool {
        self.buffer + self.chunk_duration <= self.cfg.capacity
    }

    /// How long from `now` until there is space for one more chunk
    /// (zero if there already is). Only meaningful while playing.
    pub fn time_until_space(&self, _now: SimTime) -> SimDuration {
        if self.has_space() {
            return SimDuration::ZERO;
        }
        // Excess content beyond (capacity − chunk) drains in real time.
        (self.buffer + self.chunk_duration).saturating_sub(self.cfg.capacity)
    }

    /// Advance the playback clock to `now`, draining the buffer and
    /// transitioning state (stall detection happens here).
    pub fn advance_to(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_advance);
        self.last_advance = self.last_advance.max(now);
        if dt.is_zero() {
            return;
        }
        match self.state {
            PlayerState::Playing => {
                if dt < self.buffer {
                    self.buffer -= dt;
                    self.played += dt;
                } else {
                    // Buffer ran dry somewhere inside [last, now].
                    let played_part = self.buffer;
                    let dry_at = now - (dt - played_part);
                    self.played += played_part;
                    self.buffer = SimDuration::ZERO;
                    if self.played >= self.total_content() {
                        self.state = PlayerState::Finished;
                        self.events.push(PlayerEvent::Finished { at: dry_at });
                        self.trace_transition(dry_at, "finished");
                    } else {
                        self.state = PlayerState::Stalled;
                        self.stalls += 1;
                        self.stall_time += dt - played_part;
                        self.events.push(PlayerEvent::Stalled { at: dry_at });
                        self.trace_transition(dry_at, "stalled");
                    }
                }
            }
            PlayerState::Stalled => {
                self.stall_time += dt;
            }
            PlayerState::Startup | PlayerState::Finished => {}
        }
    }

    /// The viewer departed mid-stream: content now ends at whatever has
    /// been downloaded, so draining the remaining buffer transitions to
    /// `Finished` rather than counting a phantom stall at the tail.
    pub fn depart(&mut self) {
        self.departed = true;
    }

    fn total_content(&self) -> SimDuration {
        let chunks = if self.departed {
            self.chunks_downloaded
        } else {
            self.n_chunks
        };
        self.chunk_duration * chunks as u64
    }

    /// A chunk finished downloading at `now`: add its playout duration to
    /// the buffer and record it. `started` is when its request was issued.
    ///
    /// # Panics
    /// If more chunks complete than the video has.
    pub fn on_chunk_complete(&mut self, now: SimTime, level: usize, size: u64, started: SimTime) {
        assert!(
            self.chunks_downloaded < self.n_chunks,
            "more chunks completed than the video has"
        );
        self.advance_to(now);
        let index = self.chunks_downloaded;
        self.chunks_downloaded += 1;
        self.buffer += self.chunk_duration;
        self.history.push(ChunkRecord {
            index,
            level,
            size,
            started,
            completed: now,
        });
        self.events.push(PlayerEvent::ChunkDone {
            at: now,
            index,
            level,
            buffer: self.buffer,
        });
        self.trace_transition(now, "chunk_buffered");
        match self.state {
            PlayerState::Startup => {
                self.state = PlayerState::Playing;
                self.startup_delay = Some(now.saturating_since(self.origin));
                self.events.push(PlayerEvent::Started { at: now });
                self.trace_transition(now, "started");
            }
            PlayerState::Stalled if self.buffer >= self.cfg.resume_threshold => {
                self.state = PlayerState::Playing;
                self.events.push(PlayerEvent::Resumed { at: now });
                self.trace_transition(now, "resumed");
            }
            _ => {}
        }
    }

    /// True once every chunk is downloaded (playout may still be draining).
    pub fn download_complete(&self) -> bool {
        self.chunks_downloaded == self.n_chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::Video;

    fn player() -> Player {
        Player::new(&Video::big_buck_bunny(), SimDuration::from_secs(40))
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn startup_then_play() {
        let mut p = player();
        assert_eq!(p.state(), PlayerState::Startup);
        p.advance_to(t(1.0));
        assert_eq!(p.state(), PlayerState::Startup, "no drain before start");
        p.on_chunk_complete(t(1.5), 0, 100_000, t(0.0));
        assert_eq!(p.state(), PlayerState::Playing);
        assert_eq!(p.startup_delay(), Some(SimDuration::from_millis(1500)));
        assert_eq!(p.buffer(), SimDuration::from_secs(4));
    }

    #[test]
    fn buffer_drains_in_real_time() {
        let mut p = player();
        p.on_chunk_complete(t(1.0), 0, 1, t(0.0));
        p.advance_to(t(2.5));
        assert_eq!(p.buffer(), SimDuration::from_millis(2500));
        assert_eq!(p.stalls(), 0);
    }

    #[test]
    fn stall_detection_and_resume() {
        let mut p = player();
        p.on_chunk_complete(t(0.5), 0, 1, t(0.0)); // 4 s buffered
        p.advance_to(t(6.0)); // drains dry at t=4.5
        assert_eq!(p.state(), PlayerState::Stalled);
        assert_eq!(p.stalls(), 1);
        assert_eq!(p.stall_time(), SimDuration::from_millis(1500));
        // One chunk re-buffered: resumes.
        p.on_chunk_complete(t(7.0), 0, 1, t(6.0));
        assert_eq!(p.state(), PlayerState::Playing);
        assert_eq!(p.stall_time(), SimDuration::from_millis(2500));
    }

    #[test]
    fn stall_counted_once_per_event() {
        let mut p = player();
        p.on_chunk_complete(t(0.0), 0, 1, t(0.0));
        p.advance_to(t(10.0));
        p.advance_to(t(11.0)); // still stalled, same event
        assert_eq!(p.stalls(), 1);
    }

    #[test]
    fn pacing_rule_has_space() {
        let mut p = player();
        // Fill to capacity: 40 s / 4 s = 10 chunks.
        for i in 0..10 {
            p.on_chunk_complete(t(0.0), 0, 1, t(0.0));
            let _ = i;
        }
        assert_eq!(p.buffer(), SimDuration::from_secs(40));
        assert!(!p.has_space());
        assert_eq!(p.time_until_space(t(0.0)), SimDuration::from_secs(4));
        // 4 s of playback opens one slot.
        p.advance_to(t(4.0));
        assert!(p.has_space());
    }

    #[test]
    fn history_records_levels_and_times() {
        let mut p = player();
        p.on_chunk_complete(t(1.0), 3, 2_000_000, t(0.2));
        p.on_chunk_complete(t(2.0), 4, 1_000_000, t(1.0));
        let h = p.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].level, 3);
        assert_eq!(h[0].index, 0);
        assert_eq!(h[1].index, 1);
        assert_eq!(h[1].started, t(1.0));
        assert_eq!(p.next_chunk_index(), Some(2));
    }

    #[test]
    fn event_log_captures_lifecycle() {
        let mut p = player();
        p.on_chunk_complete(t(0.5), 2, 1, t(0.0)); // starts playback
        p.advance_to(t(6.0)); // dry at 4.5 -> stall
        p.on_chunk_complete(t(7.0), 0, 1, t(6.0)); // resumes
        let ev = p.events();
        assert!(matches!(
            ev[0],
            PlayerEvent::ChunkDone {
                index: 0,
                level: 2,
                ..
            }
        ));
        assert!(matches!(ev[1], PlayerEvent::Started { at } if at == t(0.5)));
        assert!(matches!(ev[2], PlayerEvent::Stalled { at } if at == t(4.5)));
        assert!(matches!(ev[3], PlayerEvent::ChunkDone { index: 1, .. }));
        assert!(matches!(ev[4], PlayerEvent::Resumed { at } if at == t(7.0)));
        // Buffer levels recorded on completions.
        let PlayerEvent::ChunkDone { buffer, .. } = ev[0] else {
            panic!()
        };
        assert_eq!(buffer, SimDuration::from_secs(4));
    }

    #[test]
    fn finishes_after_last_chunk_plays_out() {
        let v = Video::new("tiny", &[1.0], SimDuration::from_secs(4), 2);
        let mut p = Player::new(&v, SimDuration::from_secs(8));
        p.on_chunk_complete(t(0.0), 0, 1, t(0.0));
        p.on_chunk_complete(t(1.0), 0, 1, t(0.0));
        assert!(p.download_complete());
        p.advance_to(t(9.0)); // 8 s of content from t=0
        assert_eq!(p.state(), PlayerState::Finished);
        assert_eq!(p.stalls(), 0, "running out at the end is not a stall");
    }
}
