//! Session-level QoE accounting: the paper's four metrics (§7.3) —
//! stalls, playback bitrate, plus quality switches and the per-level
//! histogram the analysis tool prints.

use crate::player::Player;
use crate::video::Video;
use mpdash_sim::SimDuration;

/// QoE summary over (a suffix of) a playback session.
#[derive(Clone, Debug, PartialEq)]
pub struct QoeSummary {
    /// Mid-stream stalls.
    pub stalls: u64,
    /// Total stalled time.
    pub stall_time: SimDuration,
    /// Time to first frame.
    pub startup_delay: Option<SimDuration>,
    /// Mean nominal playback bitrate over the counted chunks, Mbps.
    pub mean_bitrate_mbps: f64,
    /// Number of level changes between consecutive counted chunks.
    pub switches: u64,
    /// Chunks per level (index = level).
    pub level_histogram: Vec<usize>,
    /// Chunks counted (after any warm-up skip).
    pub chunks: usize,
}

impl QoeSummary {
    /// Summarize a player's history, skipping the first `skip_fraction`
    /// of chunks — the paper reports "the last 80% chunks, when the
    /// player is in its steady state" (§7.3), i.e. `skip_fraction = 0.2`.
    pub fn from_player(video: &Video, player: &Player, skip_fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&skip_fraction), "skip in [0,1)");
        let history = player.history();
        let skip = (history.len() as f64 * skip_fraction).floor() as usize;
        let counted = &history[skip.min(history.len())..];

        let mut histogram = vec![0usize; video.n_levels()];
        let mut switches = 0u64;
        let mut bitrate_sum = 0.0;
        let mut prev_level: Option<usize> = None;
        for rec in counted {
            histogram[rec.level] += 1;
            bitrate_sum += video.bitrate(rec.level).as_mbps_f64();
            if let Some(p) = prev_level {
                if p != rec.level {
                    switches += 1;
                }
            }
            prev_level = Some(rec.level);
        }
        QoeSummary {
            stalls: player.stalls(),
            stall_time: player.stall_time(),
            startup_delay: player.startup_delay(),
            mean_bitrate_mbps: if counted.is_empty() {
                0.0
            } else {
                bitrate_sum / counted.len() as f64
            },
            switches,
            level_histogram: histogram,
            chunks: counted.len(),
        }
    }

    /// Relative playback-bitrate change versus `baseline` (positive =
    /// this summary is *lower*, i.e. a reduction — the sign convention of
    /// the paper's Figure 10).
    pub fn bitrate_reduction_vs(&self, baseline: &QoeSummary) -> f64 {
        if baseline.mean_bitrate_mbps <= 0.0 {
            return 0.0;
        }
        (baseline.mean_bitrate_mbps - self.mean_bitrate_mbps) / baseline.mean_bitrate_mbps
    }
}

/// Normalized QoE score in the style of the PIE/FQ-PIE streaming-quality
/// analysis: the three time-resolved signals that paper evaluates AQM
/// disciplines by (rebuffer ratio, mean bitrate, switch rate), folded
/// into one composite in `[0, 100]`.
///
/// The composite is
/// `100 · clamp(bitrate/max − rebuffer_ratio − 0.25 · switches/chunks, 0, 1)`:
/// full marks for streaming the top rung with no stalls, a one-to-one
/// penalty for the fraction of wall time spent rebuffering (the
/// dominant QoE factor in every streaming study), and a quarter-weight
/// penalty per switch-per-chunk (switches annoy but don't halt
/// playback). All inputs are ratios, so scores are comparable across
/// sessions, epochs, and fleets of different sizes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QoeScore {
    /// Stalled time / (played + stalled) time, in `[0, 1]`.
    pub rebuffer_ratio: f64,
    /// Mean nominal bitrate of the counted chunks, Mbps.
    pub mean_bitrate_mbps: f64,
    /// Level switches per minute of session time.
    pub switch_rate_per_min: f64,
    /// The composite score in `[0, 100]` (0 when nothing played).
    pub composite: f64,
}

impl QoeScore {
    fn build(
        rebuffer_ratio: f64,
        mean_bitrate_mbps: f64,
        switches: u64,
        chunks: u64,
        duration: SimDuration,
        max_bitrate_mbps: f64,
    ) -> Self {
        let minutes = duration.as_secs_f64() / 60.0;
        let switch_frac = switches as f64 / chunks.max(1) as f64;
        let bitrate_frac = if max_bitrate_mbps > 0.0 {
            mean_bitrate_mbps / max_bitrate_mbps
        } else {
            0.0
        };
        let composite = if chunks == 0 {
            0.0
        } else {
            100.0 * (bitrate_frac - rebuffer_ratio - 0.25 * switch_frac).clamp(0.0, 1.0)
        };
        QoeScore {
            rebuffer_ratio,
            mean_bitrate_mbps,
            switch_rate_per_min: if minutes > 0.0 {
                switches as f64 / minutes
            } else {
                0.0
            },
            composite,
        }
    }

    /// Whole-session score from a [`QoeSummary`]. `duration` is the
    /// session's virtual span (first request to last event) and
    /// `max_bitrate_mbps` the ladder's top rung, which anchors the
    /// bitrate term.
    pub fn compute(summary: &QoeSummary, duration: SimDuration, max_bitrate_mbps: f64) -> Self {
        let total = duration.as_secs_f64();
        let rebuffer = if total > 0.0 {
            (summary.stall_time.as_secs_f64() / total).clamp(0.0, 1.0)
        } else {
            0.0
        };
        QoeScore::build(
            rebuffer,
            summary.mean_bitrate_mbps,
            summary.switches,
            summary.chunks as u64,
            duration,
            max_bitrate_mbps,
        )
    }

    /// Per-epoch score from telemetry counters: chunk completions,
    /// their summed nominal bitrate (kbps), level switches, and stalled
    /// milliseconds inside one epoch of width `epoch`.
    pub fn from_epoch(
        chunks: u64,
        bitrate_kbps_sum: u64,
        switches: u64,
        stall_ms: u64,
        epoch: SimDuration,
        max_bitrate_mbps: f64,
    ) -> Self {
        let epoch_ms = epoch.as_millis_f64();
        let rebuffer = if epoch_ms > 0.0 {
            (stall_ms as f64 / epoch_ms).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mean_bitrate_mbps = if chunks > 0 {
            bitrate_kbps_sum as f64 / chunks as f64 / 1000.0
        } else {
            0.0
        };
        QoeScore::build(
            rebuffer,
            mean_bitrate_mbps,
            switches,
            chunks,
            epoch,
            max_bitrate_mbps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_sim::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn run_levels(levels: &[usize]) -> (Video, Player) {
        let v = Video::big_buck_bunny();
        let mut p = Player::new(&v, SimDuration::from_secs(40));
        for (i, &lvl) in levels.iter().enumerate() {
            p.on_chunk_complete(t(i as f64), lvl, 1_000, t(i as f64 - 0.5));
        }
        (v, p)
    }

    #[test]
    fn histogram_and_switches() {
        let (v, p) = run_levels(&[0, 0, 1, 1, 2, 1]);
        let q = QoeSummary::from_player(&v, &p, 0.0);
        assert_eq!(q.chunks, 6);
        assert_eq!(q.level_histogram, vec![2, 3, 1, 0, 0]);
        assert_eq!(q.switches, 3);
    }

    #[test]
    fn skip_fraction_drops_warmup() {
        let (v, p) = run_levels(&[0, 0, 4, 4, 4, 4, 4, 4, 4, 4]);
        let q = QoeSummary::from_player(&v, &p, 0.2);
        assert_eq!(q.chunks, 8);
        assert_eq!(q.level_histogram[0], 0, "warm-up excluded");
        assert!((q.mean_bitrate_mbps - 3.94).abs() < 1e-9);
        assert_eq!(q.switches, 0);
    }

    #[test]
    fn bitrate_reduction_sign_convention() {
        let (v, p_high) = run_levels(&[4, 4, 4, 4]);
        let (_, p_low) = run_levels(&[3, 3, 3, 3]);
        let high = QoeSummary::from_player(&v, &p_high, 0.0);
        let low = QoeSummary::from_player(&v, &p_low, 0.0);
        let red = low.bitrate_reduction_vs(&high);
        assert!(red > 0.0, "lower bitrate = positive reduction");
        // (3.94-2.41)/3.94 ≈ 0.388 — the paper's "29%" style figure is in
        // this regime for oscillation-vs-locked comparisons.
        assert!((red - (3.94 - 2.41) / 3.94).abs() < 1e-9);
        let inc = high.bitrate_reduction_vs(&low);
        assert!(inc < 0.0, "higher bitrate = negative reduction (increase)");
    }

    #[test]
    fn empty_history_is_safe() {
        let v = Video::big_buck_bunny();
        let p = Player::new(&v, SimDuration::from_secs(40));
        let q = QoeSummary::from_player(&v, &p, 0.2);
        assert_eq!(q.chunks, 0);
        assert_eq!(q.mean_bitrate_mbps, 0.0);
    }

    #[test]
    fn perfect_session_scores_one_hundred() {
        let (v, p) = run_levels(&[4, 4, 4, 4]);
        let q = QoeSummary::from_player(&v, &p, 0.0);
        let s = QoeScore::compute(&q, SimDuration::from_secs(16), 3.94);
        assert_eq!(s.composite, 100.0);
        assert_eq!(s.rebuffer_ratio, 0.0);
        assert_eq!(s.switch_rate_per_min, 0.0);
    }

    #[test]
    fn rebuffering_and_switching_cost_points() {
        let (v, p) = run_levels(&[4, 3, 4, 3]);
        let q = QoeSummary::from_player(&v, &p, 0.0);
        // 3 switches over 4 chunks; mean bitrate (2·3.94 + 2·2.41)/4.
        let s = QoeScore::compute(&q, SimDuration::from_secs(60), 3.94);
        let bitrate_frac = ((3.94 + 2.41) / 2.0) / 3.94;
        let want = 100.0 * (bitrate_frac - 0.25 * 3.0 / 4.0);
        assert!((s.composite - want).abs() < 1e-9);
        assert!((s.switch_rate_per_min - 3.0).abs() < 1e-9);
    }

    #[test]
    fn epoch_score_matches_session_score_on_uniform_signals() {
        // One chunk at 1000 kbps, no switches, 500 ms stalled in a 2 s
        // epoch: rebuffer ratio 0.25, bitrate frac 0.5 of a 2 Mbps top.
        let s = QoeScore::from_epoch(1, 1000, 0, 500, SimDuration::from_secs(2), 2.0);
        assert!((s.rebuffer_ratio - 0.25).abs() < 1e-9);
        assert!((s.mean_bitrate_mbps - 1.0).abs() < 1e-9);
        assert!((s.composite - 25.0).abs() < 1e-9);
    }

    #[test]
    fn idle_epoch_scores_zero() {
        let s = QoeScore::from_epoch(0, 0, 0, 0, SimDuration::from_secs(2), 2.0);
        assert_eq!(s.composite, 0.0);
    }
}
