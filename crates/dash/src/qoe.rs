//! Session-level QoE accounting: the paper's four metrics (§7.3) —
//! stalls, playback bitrate, plus quality switches and the per-level
//! histogram the analysis tool prints.

use crate::player::Player;
use crate::video::Video;
use mpdash_sim::SimDuration;

/// QoE summary over (a suffix of) a playback session.
#[derive(Clone, Debug, PartialEq)]
pub struct QoeSummary {
    /// Mid-stream stalls.
    pub stalls: u64,
    /// Total stalled time.
    pub stall_time: SimDuration,
    /// Time to first frame.
    pub startup_delay: Option<SimDuration>,
    /// Mean nominal playback bitrate over the counted chunks, Mbps.
    pub mean_bitrate_mbps: f64,
    /// Number of level changes between consecutive counted chunks.
    pub switches: u64,
    /// Chunks per level (index = level).
    pub level_histogram: Vec<usize>,
    /// Chunks counted (after any warm-up skip).
    pub chunks: usize,
}

impl QoeSummary {
    /// Summarize a player's history, skipping the first `skip_fraction`
    /// of chunks — the paper reports "the last 80% chunks, when the
    /// player is in its steady state" (§7.3), i.e. `skip_fraction = 0.2`.
    pub fn from_player(video: &Video, player: &Player, skip_fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&skip_fraction), "skip in [0,1)");
        let history = player.history();
        let skip = (history.len() as f64 * skip_fraction).floor() as usize;
        let counted = &history[skip.min(history.len())..];

        let mut histogram = vec![0usize; video.n_levels()];
        let mut switches = 0u64;
        let mut bitrate_sum = 0.0;
        let mut prev_level: Option<usize> = None;
        for rec in counted {
            histogram[rec.level] += 1;
            bitrate_sum += video.bitrate(rec.level).as_mbps_f64();
            if let Some(p) = prev_level {
                if p != rec.level {
                    switches += 1;
                }
            }
            prev_level = Some(rec.level);
        }
        QoeSummary {
            stalls: player.stalls(),
            stall_time: player.stall_time(),
            startup_delay: player.startup_delay(),
            mean_bitrate_mbps: if counted.is_empty() {
                0.0
            } else {
                bitrate_sum / counted.len() as f64
            },
            switches,
            level_histogram: histogram,
            chunks: counted.len(),
        }
    }

    /// Relative playback-bitrate change versus `baseline` (positive =
    /// this summary is *lower*, i.e. a reduction — the sign convention of
    /// the paper's Figure 10).
    pub fn bitrate_reduction_vs(&self, baseline: &QoeSummary) -> f64 {
        if baseline.mean_bitrate_mbps <= 0.0 {
            return 0.0;
        }
        (baseline.mean_bitrate_mbps - self.mean_bitrate_mbps) / baseline.mean_bitrate_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_sim::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn run_levels(levels: &[usize]) -> (Video, Player) {
        let v = Video::big_buck_bunny();
        let mut p = Player::new(&v, SimDuration::from_secs(40));
        for (i, &lvl) in levels.iter().enumerate() {
            p.on_chunk_complete(t(i as f64), lvl, 1_000, t(i as f64 - 0.5));
        }
        (v, p)
    }

    #[test]
    fn histogram_and_switches() {
        let (v, p) = run_levels(&[0, 0, 1, 1, 2, 1]);
        let q = QoeSummary::from_player(&v, &p, 0.0);
        assert_eq!(q.chunks, 6);
        assert_eq!(q.level_histogram, vec![2, 3, 1, 0, 0]);
        assert_eq!(q.switches, 3);
    }

    #[test]
    fn skip_fraction_drops_warmup() {
        let (v, p) = run_levels(&[0, 0, 4, 4, 4, 4, 4, 4, 4, 4]);
        let q = QoeSummary::from_player(&v, &p, 0.2);
        assert_eq!(q.chunks, 8);
        assert_eq!(q.level_histogram[0], 0, "warm-up excluded");
        assert!((q.mean_bitrate_mbps - 3.94).abs() < 1e-9);
        assert_eq!(q.switches, 0);
    }

    #[test]
    fn bitrate_reduction_sign_convention() {
        let (v, p_high) = run_levels(&[4, 4, 4, 4]);
        let (_, p_low) = run_levels(&[3, 3, 3, 3]);
        let high = QoeSummary::from_player(&v, &p_high, 0.0);
        let low = QoeSummary::from_player(&v, &p_low, 0.0);
        let red = low.bitrate_reduction_vs(&high);
        assert!(red > 0.0, "lower bitrate = positive reduction");
        // (3.94-2.41)/3.94 ≈ 0.388 — the paper's "29%" style figure is in
        // this regime for oscillation-vs-locked comparisons.
        assert!((red - (3.94 - 2.41) / 3.94).abs() < 1e-9);
        let inc = high.bitrate_reduction_vs(&low);
        assert!(inc < 0.0, "higher bitrate = negative reduction (increase)");
    }

    #[test]
    fn empty_history_is_safe() {
        let v = Video::big_buck_bunny();
        let p = Player::new(&v, SimDuration::from_secs(40));
        let q = QoeSummary::from_player(&v, &p, 0.2);
        assert_eq!(q.chunks, 0);
        assert_eq!(q.mean_bitrate_mbps, 0.0);
    }
}
