//! Video metadata: representations, chunk sizing, and the Table 3 dataset.
//!
//! A DASH video is split into fixed-playout-duration chunks, each encoded
//! at every quality level. Real encodings are variable-bitrate: a chunk's
//! byte size wobbles around `bitrate × duration`. We reproduce that with a
//! deterministic per-(video, chunk, level) size factor drawn uniformly
//! from `[1−v, 1+v]` via a hash — the wobble is what makes the paper's
//! duration-based and rate-based deadline settings genuinely different
//! (§5.1: a larger-than-nominal chunk gets a longer window under the
//! rate-based scheme).

use mpdash_sim::{Rate, SimDuration};

/// Default VBR variability: sizes uniform in ±25% of nominal.
pub const DEFAULT_VBR_SPREAD: f64 = 0.25;

/// A reference to one chunk at one quality level, with its concrete size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkRef {
    /// Chunk index, `0..video.n_chunks()`.
    pub index: usize,
    /// Quality level, `0..video.n_levels()` (ascending bitrate).
    pub level: usize,
    /// Size in bytes of this chunk at this level.
    pub size: u64,
}

/// A DASH video: quality ladder + chunking.
#[derive(Clone, Debug)]
pub struct Video {
    name: String,
    /// Average encoding bitrate per level, ascending.
    levels: Vec<Rate>,
    chunk_duration: SimDuration,
    n_chunks: usize,
    vbr_spread: f64,
    seed: u64,
}

impl Video {
    /// Construct a video.
    ///
    /// # Panics
    /// If `levels` is empty or not strictly ascending, `chunk_duration`
    /// is zero, or `n_chunks` is zero.
    pub fn new(
        name: impl Into<String>,
        levels_mbps: &[f64],
        chunk_duration: SimDuration,
        n_chunks: usize,
    ) -> Self {
        assert!(!levels_mbps.is_empty(), "need at least one level");
        assert!(
            levels_mbps.windows(2).all(|w| w[0] < w[1]),
            "levels must be strictly ascending"
        );
        assert!(!chunk_duration.is_zero(), "chunk duration must be positive");
        assert!(n_chunks > 0, "need at least one chunk");
        let name = name.into();
        let seed = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
        Video {
            name,
            levels: levels_mbps
                .iter()
                .map(|&m| Rate::from_mbps_f64(m))
                .collect(),
            chunk_duration,
            n_chunks,
            vbr_spread: DEFAULT_VBR_SPREAD,
            seed,
        }
    }

    /// Same video with a different VBR spread (0 = perfectly CBR).
    pub fn with_vbr_spread(mut self, spread: f64) -> Self {
        assert!((0.0..1.0).contains(&spread), "spread in [0,1)");
        self.vbr_spread = spread;
        self
    }

    /// Table 3, "Big Buck Bunny": 0.58 / 1.01 / 1.47 / 2.41 / 3.94 Mbps,
    /// 10 minutes of 4-second chunks.
    pub fn big_buck_bunny() -> Self {
        Video::new(
            "Big Buck Bunny",
            &[0.58, 1.01, 1.47, 2.41, 3.94],
            SimDuration::from_secs(4),
            150,
        )
    }

    /// Table 3, "Red Bull Playstreets".
    pub fn red_bull_playstreets() -> Self {
        Video::new(
            "Red Bull Playstreets",
            &[0.50, 0.89, 1.50, 2.47, 3.99],
            SimDuration::from_secs(4),
            150,
        )
    }

    /// Table 3, "Tears of Steel".
    pub fn tears_of_steel() -> Self {
        Video::new(
            "Tears of Steel",
            &[0.50, 0.81, 1.51, 2.42, 4.01],
            SimDuration::from_secs(4),
            150,
        )
    }

    /// Table 3, "Tears of Steel HD" (10 Mbps top rate — the §7.3.5
    /// experiment where even WiFi+LTE cannot sustain the highest level).
    pub fn tears_of_steel_hd() -> Self {
        Video::new(
            "Tears of Steel HD",
            &[1.51, 2.42, 4.01, 6.03, 10.0],
            SimDuration::from_secs(4),
            150,
        )
    }

    /// The video's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of quality levels.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.n_chunks
    }

    /// Playout duration of every chunk.
    pub fn chunk_duration(&self) -> SimDuration {
        self.chunk_duration
    }

    /// Total playout duration.
    pub fn total_duration(&self) -> SimDuration {
        self.chunk_duration * self.n_chunks as u64
    }

    /// Average encoding bitrate of `level`.
    pub fn bitrate(&self, level: usize) -> Rate {
        self.levels[level]
    }

    /// All level bitrates, ascending.
    pub fn bitrates(&self) -> &[Rate] {
        &self.levels
    }

    /// The highest level whose bitrate does not exceed `rate`, or level 0
    /// if none fits (the common "highest sustainable level" query).
    pub fn highest_level_at_most(&self, rate: Rate) -> usize {
        self.levels.iter().rposition(|&b| b <= rate).unwrap_or(0)
    }

    /// Deterministic VBR size factor for `(chunk, level)` in
    /// `[1−spread, 1+spread]`.
    fn size_factor(&self, index: usize, level: usize) -> f64 {
        // SplitMix64 over (seed, index, level) for a uniform-ish factor.
        let mut z = self
            .seed
            .wrapping_add((index as u64).wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add((level as u64 + 1).wrapping_mul(0xBF58476D1CE4E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        1.0 - self.vbr_spread + 2.0 * self.vbr_spread * unit
    }

    /// Concrete byte size of chunk `index` at `level`.
    ///
    /// # Panics
    /// If `index` or `level` is out of range.
    pub fn chunk_size(&self, index: usize, level: usize) -> u64 {
        assert!(index < self.n_chunks, "chunk index out of range");
        let nominal = self.levels[level].bytes_in(self.chunk_duration) as f64;
        (nominal * self.size_factor(index, level)).round() as u64
    }

    /// A [`ChunkRef`] for `(index, level)`.
    pub fn chunk(&self, index: usize, level: usize) -> ChunkRef {
        ChunkRef {
            index,
            level,
            size: self.chunk_size(index, level),
        }
    }

    /// Total bytes of the whole video at a fixed `level`.
    pub fn total_bytes_at(&self, level: usize) -> u64 {
        (0..self.n_chunks).map(|i| self.chunk_size(i, level)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_ladders() {
        let v = Video::big_buck_bunny();
        assert_eq!(v.n_levels(), 5);
        assert_eq!(v.n_chunks(), 150);
        assert_eq!(v.chunk_duration(), SimDuration::from_secs(4));
        assert_eq!(v.total_duration(), SimDuration::from_secs(600));
        assert!((v.bitrate(4).as_mbps_f64() - 3.94).abs() < 1e-9);
        let hd = Video::tears_of_steel_hd();
        assert!((hd.bitrate(4).as_mbps_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn chunk_sizes_center_on_nominal() {
        let v = Video::big_buck_bunny();
        let nominal = v.bitrate(4).bytes_in(v.chunk_duration()) as f64;
        let mean = (0..v.n_chunks())
            .map(|i| v.chunk_size(i, 4) as f64)
            .sum::<f64>()
            / v.n_chunks() as f64;
        assert!(
            (mean / nominal - 1.0).abs() < 0.05,
            "mean {mean} vs nominal {nominal}"
        );
        // Sizes actually vary (VBR).
        let min = (0..v.n_chunks()).map(|i| v.chunk_size(i, 4)).min().unwrap();
        let max = (0..v.n_chunks()).map(|i| v.chunk_size(i, 4)).max().unwrap();
        assert!(max > min, "VBR must produce varying sizes");
        // Within the configured spread.
        assert!(min as f64 >= nominal * (1.0 - DEFAULT_VBR_SPREAD) - 1.0);
        assert!(max as f64 <= nominal * (1.0 + DEFAULT_VBR_SPREAD) + 1.0);
    }

    #[test]
    fn sizes_are_deterministic() {
        let a = Video::big_buck_bunny();
        let b = Video::big_buck_bunny();
        for i in 0..150 {
            assert_eq!(a.chunk_size(i, 2), b.chunk_size(i, 2));
        }
        // Different videos get different size patterns.
        let c = Video::tears_of_steel();
        assert_ne!(
            (0..10).map(|i| a.chunk_size(i, 2)).collect::<Vec<_>>(),
            (0..10).map(|i| c.chunk_size(i, 2)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cbr_mode_is_exact() {
        let v = Video::big_buck_bunny().with_vbr_spread(0.0);
        let nominal = v.bitrate(1).bytes_in(v.chunk_duration());
        for i in 0..10 {
            assert_eq!(v.chunk_size(i, 1), nominal);
        }
    }

    #[test]
    fn highest_level_at_most_queries() {
        let v = Video::big_buck_bunny();
        assert_eq!(v.highest_level_at_most(Rate::from_mbps_f64(10.0)), 4);
        assert_eq!(v.highest_level_at_most(Rate::from_mbps_f64(3.4)), 3);
        assert_eq!(v.highest_level_at_most(Rate::from_mbps_f64(1.0)), 0);
        assert_eq!(v.highest_level_at_most(Rate::ZERO), 0, "floor at lowest");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_ladder_rejected() {
        let _ = Video::new("x", &[2.0, 1.0], SimDuration::from_secs(4), 10);
    }
}
