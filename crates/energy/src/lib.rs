//! Radio energy models: LTE RRC/DRX and WiFi PSM.
//!
//! The paper computes radio energy by replaying captured network traces
//! through "the most comprehensive and up-to-date multipath radio energy
//! model" (Nika et al., WWW '15, with the LTE state machine of Huang et
//! al., MobiSys '12) under two device parameter sets — Samsung Galaxy Note
//! and Galaxy S III (§7.1). This crate is that replay engine:
//!
//! * A [`RadioModel`] is the classic burst model: an idle radio pays a
//!   **promotion** cost when traffic arrives, holds a high-power
//!   **active** state while packets flow, lingers at full power through
//!   the RRC **inactivity window** after the last packet (the waste the
//!   paper's Figure 6 "dribbling" analysis hinges on), then drops into
//!   cheap **connected DRX** for the rest of the ~11.6 s LTE tail before
//!   demoting to a near-free idle.
//! * Throughput-dependent transfer energy is charged per megabit on top
//!   of the active-state power.
//! * [`DeviceProfile`] carries one LTE and one WiFi model; both handsets
//!   from the paper are provided. Absolute milliwatt values follow the
//!   published Huang et al. measurements where available and are
//!   documented per field; the *relationships* that drive every result in
//!   the paper (LTE ≫ WiFi, long LTE tail, near-free DRX idle) hold by
//!   construction.
//!
//! Determinism note: given the same packet trace the energy is a pure
//! function — exactly the paper's "replay the trace under different power
//! models" methodology.
//!
//! ```
//! use mpdash_energy::{radio_energy, DeviceProfile};
//! use mpdash_sim::{SimDuration, SimTime};
//!
//! let device = DeviceProfile::galaxy_note();
//! // One 1 MB burst at t = 5 s, accounted over a minute.
//! let trace = [(SimTime::from_secs(5), 1_000_000u64)];
//! let e = radio_energy(&device.lte, &trace, SimDuration::from_secs(60));
//! // Promotion + 1 s inactivity window + DRX + per-bit cost, all > 0.
//! assert!(e.promotion_j > 0.0 && e.active_j > 0.0 && e.drx_j > 0.0);
//! // The same burst on WiFi costs far less (no promotion, short tail).
//! let w = radio_energy(&device.wifi, &trace, SimDuration::from_secs(60));
//! assert!(w.total_j() < e.total_j());
//! ```

use mpdash_sim::{SimDuration, SimTime};

/// Power/timing parameters of one radio.
///
/// The tail is two-stage, following the DRX-aware refinement of Nika et
/// al. that the paper's methodology cites: after the last packet the
/// radio holds **full active power** for the RRC inactivity window
/// (`tail_active`), then drops into **connected DRX** (`drx_time` at
/// `drx_power_mw` — the "only periodical DRX spikes" regime of the
/// paper's §6), and only then demotes to idle. Re-activating from
/// connected DRX is free; only an idle radio pays the promotion.
#[derive(Clone, Copy, Debug)]
pub struct RadioModel {
    /// Power during the idle→active promotion, in milliwatts.
    pub promo_power_mw: f64,
    /// Duration of the promotion.
    pub promo_time: SimDuration,
    /// Power while the radio is actively transferring (and through the
    /// inactivity window), in milliwatts.
    pub active_power_mw: f64,
    /// Extra energy per transferred megabit, in millijoules (the
    /// throughput-dependent term of the Huang et al. regression).
    pub per_mbit_mj: f64,
    /// Full-power dwell after the last packet (RRC inactivity timer;
    /// WiFi: PSM timeout).
    pub tail_active: SimDuration,
    /// Connected-DRX dwell after the inactivity window, before demoting
    /// to idle. Zero for WiFi (PSM sleeps immediately).
    pub drx_time: SimDuration,
    /// Average power during connected DRX, in milliwatts.
    pub drx_power_mw: f64,
    /// Average idle power including periodic paging spikes, in
    /// milliwatts.
    pub idle_power_mw: f64,
}

impl RadioModel {
    /// LTE parameters measured on the Samsung Galaxy Note by Huang et
    /// al. (MobiSys '12): 1210.7 mW × 260.1 ms promotion, ~1060 mW
    /// connected power, an 11.576 s tail (split here per the DRX-aware
    /// refinement into a 1 s full-power inactivity window plus 10.576 s
    /// of connected DRX at ~150 mW average), ≈52 mJ/Mbit downlink
    /// increment, and a ~11 mW average idle (paging spikes included).
    pub fn lte_galaxy_note() -> Self {
        RadioModel {
            promo_power_mw: 1210.7,
            promo_time: SimDuration::from_micros(260_100),
            active_power_mw: 1060.0,
            per_mbit_mj: 52.0,
            tail_active: SimDuration::from_secs(1),
            drx_time: SimDuration::from_micros(10_576_000),
            drx_power_mw: 150.0,
            idle_power_mw: 11.4,
        }
    }

    /// WiFi parameters for the same handset: no promotion to speak of
    /// (association is kept), ~250 mW receive-listen power (the Huang et
    /// al. regression base plus PSM overhead), ≈30 mJ/Mbit (an 802.11n
    /// radio draws well under 1 W even at tens of Mbps — the per-bit term
    /// is an order of magnitude below LTE's, which is the paper's whole
    /// premise for preferring WiFi), a 220 ms PSM-adaptive tail, and
    /// ~10 mW PSM idle.
    pub fn wifi_galaxy_note() -> Self {
        RadioModel {
            promo_power_mw: 0.0,
            promo_time: SimDuration::ZERO,
            active_power_mw: 250.0,
            per_mbit_mj: 30.0,
            tail_active: SimDuration::from_millis(220),
            drx_time: SimDuration::ZERO,
            drx_power_mw: 0.0,
            idle_power_mw: 10.0,
        }
    }

    /// LTE parameters for the Samsung Galaxy S III (same model family,
    /// slightly different constants; the paper reports both devices
    /// "yielding similar results").
    pub fn lte_galaxy_s3() -> Self {
        RadioModel {
            promo_power_mw: 1345.0,
            promo_time: SimDuration::from_micros(250_000),
            active_power_mw: 1120.0,
            per_mbit_mj: 55.0,
            tail_active: SimDuration::from_millis(900),
            drx_time: SimDuration::from_micros(9_300_000),
            drx_power_mw: 165.0,
            idle_power_mw: 12.0,
        }
    }

    /// WiFi parameters for the Galaxy S III.
    pub fn wifi_galaxy_s3() -> Self {
        RadioModel {
            promo_power_mw: 0.0,
            promo_time: SimDuration::ZERO,
            active_power_mw: 270.0,
            per_mbit_mj: 33.0,
            tail_active: SimDuration::from_millis(220),
            drx_time: SimDuration::ZERO,
            drx_power_mw: 0.0,
            idle_power_mw: 10.5,
        }
    }
}

/// One device's radios.
#[derive(Clone, Copy, Debug)]
pub struct DeviceProfile {
    /// Device display name.
    pub name: &'static str,
    /// The cellular radio.
    pub lte: RadioModel,
    /// The WiFi radio.
    pub wifi: RadioModel,
}

impl DeviceProfile {
    /// The paper's primary reporting device (§7.1).
    pub fn galaxy_note() -> Self {
        DeviceProfile {
            name: "Samsung Galaxy Note",
            lte: RadioModel::lte_galaxy_note(),
            wifi: RadioModel::wifi_galaxy_note(),
        }
    }

    /// The paper's cross-check device.
    pub fn galaxy_s3() -> Self {
        DeviceProfile {
            name: "Samsung Galaxy S III",
            lte: RadioModel::lte_galaxy_s3(),
            wifi: RadioModel::wifi_galaxy_s3(),
        }
    }
}

/// Energy breakdown of one radio over one trace, in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Promotion transitions.
    pub promotion_j: f64,
    /// Active-state dwell (bursts + full-power inactivity windows).
    pub active_j: f64,
    /// Connected-DRX dwell between bursts.
    pub drx_j: f64,
    /// Throughput-dependent transfer energy.
    pub transfer_j: f64,
    /// Idle (paging/PSM) floor.
    pub idle_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.promotion_j + self.active_j + self.drx_j + self.transfer_j + self.idle_j
    }
}

/// Replay a packet trace through a radio model.
///
/// `packets` are `(arrival time, payload bytes)` pairs in non-decreasing
/// time order; `horizon` is the accounting window `[0, horizon]` (idle
/// power is charged for all time not spent promoting or active).
///
/// Burst structure: packets closer together than `tail_active` share one
/// full-power active period ending `tail_active` after the period's last
/// packet (clipped to the horizon). Between active periods the radio sits
/// in connected DRX for up to `drx_time`; a new burst within that window
/// re-activates for free, while a longer gap demotes the radio to idle
/// and the next burst pays a promotion.
pub fn radio_energy(
    model: &RadioModel,
    packets: &[(SimTime, u64)],
    horizon: SimDuration,
) -> EnergyBreakdown {
    debug_assert!(
        packets.windows(2).all(|w| w[0].0 <= w[1].0),
        "packet trace must be time-ordered"
    );
    let horizon_end = SimTime::ZERO + horizon;
    let mut out = EnergyBreakdown::default();
    let mut total_bits: f64 = 0.0;
    let mut active_time = SimDuration::ZERO;
    let mut drx_time = SimDuration::ZERO;
    let mut promotions = 0u64;

    // End of the previous active period (exclusive), i.e. where its
    // connected-DRX window starts. `None` before the first burst (the
    // radio starts idle).
    let mut prev_active_end: Option<SimTime> = None;

    let mut i = 0;
    while i < packets.len() {
        // One active period: extend while the next packet lands within
        // the full-power inactivity window.
        let burst_start = packets[i].0;
        let mut burst_last = burst_start;
        while i < packets.len() {
            let (t, bytes) = packets[i];
            if t.saturating_since(burst_last) > model.tail_active {
                break;
            }
            burst_last = t;
            total_bits += bytes as f64 * 8.0;
            i += 1;
        }
        let active_end = (burst_last + model.tail_active).min(horizon_end);
        if active_end > burst_start {
            active_time += active_end - burst_start;
        }
        // Was the radio still in connected DRX when this burst started?
        match prev_active_end {
            Some(drx_start) if burst_start <= drx_start + model.drx_time => {
                // Re-activated from DRX: charge the DRX dwell, no promo.
                drx_time += burst_start.saturating_since(drx_start);
            }
            _ => {
                // Came from idle: full DRX window after the previous
                // burst (if any) already accounted below; pay promotion.
                if let Some(drx_start) = prev_active_end {
                    drx_time += (drx_start + model.drx_time)
                        .min(horizon_end)
                        .saturating_since(drx_start);
                }
                promotions += 1;
            }
        }
        prev_active_end = Some(active_end);
    }
    // Trailing DRX window of the final burst.
    if let Some(drx_start) = prev_active_end {
        drx_time += (drx_start + model.drx_time)
            .min(horizon_end)
            .saturating_since(drx_start);
    }

    out.promotion_j =
        promotions as f64 * model.promo_power_mw * model.promo_time.as_secs_f64() / 1_000.0;
    out.active_j = model.active_power_mw * active_time.as_secs_f64() / 1_000.0;
    out.drx_j = model.drx_power_mw * drx_time.as_secs_f64() / 1_000.0;
    out.transfer_j = total_bits / 1e6 * model.per_mbit_mj / 1_000.0;
    let promo_time = model.promo_time.mul_f64(promotions as f64);
    let idle = horizon
        .saturating_sub(active_time)
        .saturating_sub(drx_time)
        .saturating_sub(promo_time);
    out.idle_j = model.idle_power_mw * idle.as_secs_f64() / 1_000.0;
    out
}

/// Combined WiFi + LTE radio energy of one streaming session.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SessionEnergy {
    /// WiFi radio breakdown.
    pub wifi: EnergyBreakdown,
    /// LTE radio breakdown.
    pub lte: EnergyBreakdown,
}

impl SessionEnergy {
    /// Total joules across both radios.
    pub fn total_j(&self) -> f64 {
        self.wifi.total_j() + self.lte.total_j()
    }
}

/// Replay both radios of `device` over per-path traces.
pub fn session_energy(
    device: &DeviceProfile,
    wifi_packets: &[(SimTime, u64)],
    lte_packets: &[(SimTime, u64)],
    horizon: SimDuration,
) -> SessionEnergy {
    SessionEnergy {
        wifi: radio_energy(&device.wifi, wifi_packets, horizon),
        lte: radio_energy(&device.lte, lte_packets, horizon),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn idle_trace_costs_only_idle_power() {
        let m = RadioModel::lte_galaxy_note();
        let e = radio_energy(&m, &[], SimDuration::from_secs(100));
        assert_eq!(e.promotion_j, 0.0);
        assert_eq!(e.active_j, 0.0);
        assert_eq!(e.transfer_j, 0.0);
        assert!((e.idle_j - 11.4 * 100.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn single_packet_pays_promotion_inactivity_and_drx() {
        let m = RadioModel::lte_galaxy_note();
        let e = radio_energy(&m, &[(t(10.0), 1460)], SimDuration::from_secs(60));
        assert!(e.promotion_j > 0.0);
        // Full power through the 1 s inactivity window...
        assert!((e.active_j - 1.060 * 1.0).abs() < 1e-6, "{:?}", e);
        // ...then 10.576 s of connected DRX at 150 mW.
        assert!((e.drx_j - 0.150 * 10.576).abs() < 1e-6, "{:?}", e);
        assert!(e.transfer_j > 0.0);
    }

    #[test]
    fn drx_reactivation_needs_no_promotion() {
        let m = RadioModel::lte_galaxy_note();
        // Packets every 2 s for 20 s: each gap exceeds the 1 s inactivity
        // window but sits well inside connected DRX -> one promotion, 11
        // short active periods, DRX between them.
        let pkts: Vec<_> = (0..11).map(|i| (t(i as f64 * 2.0), 1000u64)).collect();
        let e = radio_energy(&m, &pkts, SimDuration::from_secs(60));
        assert!(
            (e.promotion_j - 1.2107 * 0.2601).abs() < 1e-6,
            "exactly one promotion: {:?}",
            e
        );
        // 11 active periods of 1 s (packet + inactivity window) each.
        assert!((e.active_j - 1.060 * 11.0).abs() < 0.05, "{:?}", e);
        // DRX: 10 gaps of 1 s between periods + the trailing full window.
        assert!((e.drx_j - 0.150 * (10.0 + 10.576)).abs() < 0.05, "{:?}", e);
    }

    #[test]
    fn distant_bursts_pay_two_promotions() {
        let m = RadioModel::lte_galaxy_note();
        // 40 s apart: beyond inactivity (1 s) + DRX (10.576 s) -> idle
        // demotion between bursts, so the second burst pays a promotion.
        let pkts = [(t(0.0), 1000u64), (t(40.0), 1000u64)];
        let e = radio_energy(&m, &pkts, SimDuration::from_secs(60));
        assert!((e.promotion_j - 2.0 * 1.2107 * 0.2601).abs() < 1e-6);
    }

    #[test]
    fn transfer_energy_scales_with_bytes() {
        let m = RadioModel::lte_galaxy_note();
        let small = radio_energy(&m, &[(t(0.0), 1_000_000)], SimDuration::from_secs(30));
        let large = radio_energy(&m, &[(t(0.0), 10_000_000)], SimDuration::from_secs(30));
        assert!((large.transfer_j / small.transfer_j - 10.0).abs() < 1e-9);
        // 1 MB = 8 Mbit at 52 mJ/Mbit = 0.416 J.
        assert!((small.transfer_j - 0.416).abs() < 1e-9);
    }

    #[test]
    fn tail_clipped_at_horizon() {
        let m = RadioModel::lte_galaxy_note();
        let e = radio_energy(&m, &[(t(59.5), 1000)], SimDuration::from_secs(60));
        // Only 0.5 s of the inactivity window fits before the horizon,
        // and no DRX at all.
        assert!((e.active_j - 1.060 * 0.5).abs() < 1e-6, "{:?}", e);
        assert_eq!(e.drx_j, 0.0);
        assert!(e.idle_j > 0.0);
    }

    #[test]
    fn dribbling_costs_more_than_bursting() {
        // The Figure 6 effect: the same bytes trickled slowly keep the
        // radio's tail alive continuously; sent fast, the radio sleeps.
        let m = RadioModel::lte_galaxy_note();
        let horizon = SimDuration::from_secs(120);
        // Dribble: 1 packet every 5 s for 100 s (gaps < tail → always on).
        let dribble: Vec<_> = (0..21).map(|i| (t(i as f64 * 5.0), 50_000u64)).collect();
        // Burst: all ~1 MB at t=0.
        let burst: Vec<_> = (0..21).map(|_| (t(0.5), 50_000u64)).collect();
        let e_dribble = radio_energy(&m, &dribble, horizon);
        let e_burst = radio_energy(&m, &burst, horizon);
        assert!(
            e_dribble.total_j() > 2.0 * e_burst.total_j(),
            "dribble {:.1} J vs burst {:.1} J",
            e_dribble.total_j(),
            e_burst.total_j()
        );
    }

    #[test]
    fn lte_costs_more_than_wifi_for_the_same_trace() {
        let d = DeviceProfile::galaxy_note();
        // Continuous 10 s transfer: LTE's higher active power wins but the
        // gap is modest (per-bit costs are comparable during bulk flow).
        let pkts: Vec<_> = (0..100).map(|i| (t(i as f64 * 0.1), 100_000u64)).collect();
        let horizon = SimDuration::from_secs(60);
        let lte = radio_energy(&d.lte, &pkts, horizon);
        let wifi = radio_energy(&d.wifi, &pkts, horizon);
        assert!(lte.total_j() > wifi.total_j());
    }

    #[test]
    fn bursty_traffic_makes_lte_disproportionately_expensive() {
        // The paper's core energy argument: sparse chunk fetches keep the
        // LTE radio tail alive (11.6 s per burst) while WiFi drops back to
        // PSM within 220 ms. Same bytes, very different bills.
        let d = DeviceProfile::galaxy_note();
        let pkts: Vec<_> = (0..8).map(|i| (t(i as f64 * 15.0), 500_000u64)).collect();
        let horizon = SimDuration::from_secs(120);
        let lte = radio_energy(&d.lte, &pkts, horizon);
        let wifi = radio_energy(&d.wifi, &pkts, horizon);
        assert!(
            lte.total_j() > 3.0 * wifi.total_j(),
            "lte {:.1} J vs wifi {:.1} J",
            lte.total_j(),
            wifi.total_j()
        );
    }

    #[test]
    fn devices_yield_similar_but_not_identical_results() {
        let pkts: Vec<_> = (0..50).map(|i| (t(i as f64), 500_000u64)).collect();
        let horizon = SimDuration::from_secs(120);
        let note = session_energy(&DeviceProfile::galaxy_note(), &pkts, &pkts, horizon);
        let s3 = session_energy(&DeviceProfile::galaxy_s3(), &pkts, &pkts, horizon);
        let ratio = note.total_j() / s3.total_j();
        assert!(ratio > 0.8 && ratio < 1.2, "ratio {ratio}");
        assert_ne!(note.total_j(), s3.total_j());
    }

    #[test]
    fn session_energy_sums_radios() {
        let d = DeviceProfile::galaxy_note();
        let wifi = [(t(1.0), 1_000_000u64)];
        let lte = [(t(2.0), 2_000_000u64)];
        let s = session_energy(&d, &wifi, &lte, SimDuration::from_secs(30));
        assert!((s.total_j() - s.wifi.total_j() - s.lte.total_j()).abs() < 1e-12);
        assert!(s.lte.total_j() > s.wifi.total_j());
    }
}
