//! Multi-session co-simulation: N streaming clients sharing bottlenecks.
//!
//! Every experiment below this crate simulates one MP-DASH client against
//! a private pair of links. The fleet co-simulator is the contention
//! substrate the ROADMAP's "millions of users" north-star needs first: it
//! interleaves N full [`StreamingSession`]s — each with its own MPTCP
//! connection, ABR, lifecycle policy, and staggered start — on one
//! deterministic virtual clock, with their subflows subscribed to
//! [`SharedBottleneck`] resources (a WiFi AP, a cell sector) instead of
//! private links.
//!
//! The loop is a global minimum over every bottleneck's next departure
//! and every unfinished session's next event, with a deterministic
//! tie-break (bottlenecks before sessions, then index order). That
//! ordering is also the correctness condition for the bottleneck's lazy
//! queue-discipline selection: offers reach each bottleneck in globally
//! non-decreasing time, and departures at time `t` are processed before
//! any session event at `t` can offer more packets.
//!
//! The output is a [`FleetReport`]: per-client [`SessionReport`]s plus
//! the cross-client aggregates the fairness questions need — Jain's
//! index on bitrate and on cellular bytes, the aggregate deadline-miss
//! rate, and per-bottleneck conservation stats and queue-depth
//! histograms. [`fleet_job`] wraps one replica as a batch-runner job so
//! sharded sweeps parallelise over `MPDASH_WORKERS` with bit-identical
//! artifacts at any worker count.

use mpdash_link::{FaultScript, PathId, SharedBottleneck, SharedBottleneckConfig, SharedStats};
use mpdash_obs::{
    telemetry_from_env, EpochSeries, InvariantViolation, MetricsSnapshot, TelemetrySpec,
    TraceEvent, Watchdog,
};
use mpdash_results::Json;
use mpdash_session::{
    CacheStats, Job, JobReport, ServerFaultScript, SessionConfig, SessionReport,
    SharedSegmentCache, StreamingSession,
};
use mpdash_sim::{derive_seed, Prng, SimDuration, SimTime};

/// One shared resource in the fleet topology: a bottleneck plus the
/// per-client paths that subscribe to it (e.g. every client's WiFi path
/// behind one AP).
#[derive(Clone, Debug)]
pub struct SharedLinkSpec {
    /// Capacity, queue bound, and discipline of the shared resource.
    pub config: SharedBottleneckConfig,
    /// Which of each client's paths ride this bottleneck. Every client
    /// subscribes each listed path, in client-major order.
    pub paths: Vec<PathId>,
}

impl SharedLinkSpec {
    /// A bottleneck shared by every client's WiFi path — the
    /// one-access-point topology of the multi-client AQM studies.
    pub fn wifi_ap(config: SharedBottleneckConfig) -> Self {
        SharedLinkSpec {
            config,
            paths: vec![PathId::WIFI],
        }
    }

    /// A bottleneck shared by every client's cellular path (one sector).
    pub fn cell_sector(config: SharedBottleneckConfig) -> Self {
        SharedLinkSpec {
            config,
            paths: vec![PathId::CELLULAR],
        }
    }
}

/// Shared segment-cache spec. [`run`] builds one *fresh* cache per
/// fleet run from this spec — rather than storing a live handle in the
/// config — so `run` stays a pure function of its configuration (a
/// stored handle would leak warm state between runs).
#[derive(Clone, Copy, Debug)]
pub struct FleetCacheSpec {
    /// Cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Modeled delivery delay of a cache hit (the cheap edge fetch).
    pub edge_delay: SimDuration,
}

impl FleetCacheSpec {
    /// A cache of `capacity_bytes` with the default 5 ms edge delay.
    pub fn new(capacity_bytes: u64) -> Self {
        FleetCacheSpec {
            capacity_bytes,
            edge_delay: SimDuration::from_millis(5),
        }
    }

    /// Same spec with a different edge-hit delay.
    pub fn with_edge_delay(mut self, delay: SimDuration) -> Self {
        self.edge_delay = delay;
        self
    }
}

/// Deterministic fleet churn: clients arrive at seeded exponential
/// inter-arrival times (replacing the fixed `stagger` grid) and each
/// draws a bounded viewing duration, after which the session departs —
/// finalizing a clean partial report — even with chapters left.
///
/// Both draws come from RNG streams derived from the fleet seed alone
/// (never from the per-client link streams), so adding churn perturbs
/// no client's packet-level randomness, and the whole arrival/departure
/// schedule is a pure function of `(seed, clients, spec)`.
#[derive(Clone, Copy, Debug)]
pub struct ChurnSpec {
    /// Mean of the exponential inter-arrival gap between client joins.
    pub mean_interarrival: SimDuration,
    /// Mean of the exponential viewing-duration draw.
    pub mean_watch: SimDuration,
    /// Floor on the viewing draw: nobody leaves before watching this
    /// long (an exponential's short tail would otherwise produce
    /// zero-length "sessions" that never request a chunk).
    pub min_watch: SimDuration,
}

impl ChurnSpec {
    /// Churn with the given arrival and viewing means and a 4 s viewing
    /// floor (one default chunk).
    pub fn new(mean_interarrival: SimDuration, mean_watch: SimDuration) -> Self {
        ChurnSpec {
            mean_interarrival,
            mean_watch,
            min_watch: SimDuration::from_secs(4),
        }
    }

    /// Same spec with a different viewing floor.
    pub fn with_min_watch(mut self, floor: SimDuration) -> Self {
        self.min_watch = floor;
        self
    }

    /// The deterministic `(arrival_offset, viewing_limit)` plan this
    /// spec draws for a fleet of `clients` under `seed` — cumulative
    /// exponential inter-arrivals and floored exponential viewing
    /// durations, from two fleet-level streams that no per-client
    /// randomness touches. [`run`] derives each client's start offset
    /// and watch limit from exactly this, so experiments can inspect
    /// the plan (e.g. to place a fault window relative to arrivals)
    /// without re-deriving the streams.
    pub fn plan(&self, seed: u64, clients: usize) -> Vec<(SimDuration, SimDuration)> {
        let mut arrivals = Prng::new(derive_seed(seed, CHURN_ARRIVAL_STREAM));
        let mut watches = Prng::new(derive_seed(seed, CHURN_WATCH_STREAM));
        let mut at = SimDuration::ZERO;
        (0..clients)
            .map(|_| {
                at += exponential(&mut arrivals, self.mean_interarrival);
                let watch = self
                    .min_watch
                    .max(exponential(&mut watches, self.mean_watch));
                (at, watch)
            })
            .collect()
    }
}

/// A correlated fault domain: one shared fault timeline applied to a
/// group of clients (a regional WiFi outage hitting every apartment on
/// one AP, a domain-wide origin blackout). Domain scripts *compose*
/// with whatever per-client scripts the base config already carries —
/// events merge into each member's timeline — while packet-level draws
/// still come from each member's own link seed, so members share the
/// fault window but not its coin flips.
#[derive(Clone, Debug, Default)]
pub struct FaultDomainSpec {
    /// Domain label (traces and scenario files).
    pub label: String,
    /// Client indices in the domain.
    pub members: Vec<usize>,
    /// Shared WiFi-link fault timeline for every member.
    pub wifi: FaultScript,
    /// Shared cellular-link fault timeline for every member.
    pub cell: FaultScript,
    /// Shared server-side fault timeline for every member's origins.
    pub server: ServerFaultScript,
}

impl FaultDomainSpec {
    /// An empty domain over the given members.
    pub fn new(label: impl Into<String>, members: Vec<usize>) -> Self {
        FaultDomainSpec {
            label: label.into(),
            members,
            wifi: FaultScript::new(),
            cell: FaultScript::new(),
            server: ServerFaultScript::new(),
        }
    }

    /// Same domain with a shared WiFi fault timeline.
    pub fn with_wifi(mut self, script: FaultScript) -> Self {
        self.wifi = script;
        self
    }

    /// Same domain with a shared cellular fault timeline.
    pub fn with_cell(mut self, script: FaultScript) -> Self {
        self.cell = script;
        self
    }

    /// Same domain with a shared server fault timeline.
    pub fn with_server(mut self, script: ServerFaultScript) -> Self {
        self.server = script;
        self
    }
}

/// Fleet-level overload protection: admission control at session
/// arrival. A joining client is *shed* — turned away with an empty
/// report, counted and traced — when the fleet already has `max_active`
/// admitted unfinished sessions, or when any shared bottleneck's queue
/// occupancy sits at or past `queue_threshold_bytes`. Shedding the
/// *newest* arrival (never an admitted session) is what keeps admitted
/// sessions' deadline-miss rate bounded under overload instead of
/// letting every client collapse together.
#[derive(Clone, Copy, Debug)]
pub struct OverloadPolicy {
    /// Admission cap on concurrently active (admitted, unfinished)
    /// sessions.
    pub max_active: usize,
    /// Shed arrivals while any shared bottleneck queues at least this
    /// many bytes.
    pub queue_threshold_bytes: u64,
}

impl OverloadPolicy {
    /// Cap concurrency at `n` sessions, with no queue-pressure trigger.
    pub fn max_active(n: usize) -> Self {
        OverloadPolicy {
            max_active: n,
            queue_threshold_bytes: u64::MAX,
        }
    }

    /// Same policy, also shedding while shared queues exceed `bytes`.
    pub fn with_queue_threshold(mut self, bytes: u64) -> Self {
        self.queue_threshold_bytes = bytes;
        self
    }
}

/// Configuration of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Template session configuration every client starts from.
    pub base: SessionConfig,
    /// Number of concurrent streaming clients.
    pub clients: usize,
    /// Start-time spacing: client `k` issues its first request at
    /// `k * stagger` (staggered joins avoid the synchronized-start
    /// artifact of all ABRs probing at once).
    pub stagger: SimDuration,
    /// Shared-link topology. Empty means private links per client (a
    /// degenerate fleet, still useful as a no-contention control).
    pub shared: Vec<SharedLinkSpec>,
    /// Per-client propagation-delay skew: client `k`'s private links
    /// carry `k * rtt_skew` of extra one-way delay. Heterogeneous RTTs
    /// are what separate the queue disciplines — short-RTT flows
    /// out-compete long-RTT flows at a FIFO queue, while per-flow DRR
    /// serves them evenly regardless.
    pub rtt_skew: SimDuration,
    /// Base seed; client `k`'s links are reseeded with independent
    /// streams derived from it.
    pub seed: u64,
    /// Forward the base config's tracer to exactly this client (the
    /// `mpdash explain --client K` replay hook); every other client runs
    /// untraced. `None` traces nobody.
    pub trace_client: Option<usize>,
    /// Shared segment cache every client fetches through. `None` means
    /// no cache (every chunk is an origin fetch).
    pub cache: Option<FleetCacheSpec>,
    /// Epoch telemetry for every client, every shared bottleneck, and
    /// the fleet loop itself. `None` falls back to `MPDASH_TELEMETRY`.
    /// Observe-only: artifacts are byte-identical either way.
    pub telemetry: Option<TelemetrySpec>,
    /// Measure wall-clock time per fleet-loop phase (peek/pop/step).
    /// Nondeterministic by nature, so it rides in
    /// [`FleetReport::wall_profile`] and never in artifact JSON.
    pub wall_profile: bool,
    /// Seeded arrival/viewing churn. When set, it replaces the fixed
    /// `stagger` grid: client `k` joins at the `k`-th exponential
    /// arrival and departs after its drawn viewing duration.
    pub churn: Option<ChurnSpec>,
    /// Correlated fault domains layered on top of the base config's
    /// per-client fault scripts.
    pub fault_domains: Vec<FaultDomainSpec>,
    /// Overload protection at admission. `None` admits everyone.
    pub overload: Option<OverloadPolicy>,
    /// Arm the runtime invariant watchdog inside the fleet loop.
    /// `None` defers to `MPDASH_WATCHDOG` (`0` disarms; default armed).
    /// Observe-only either way: artifacts are byte-identical.
    pub watchdog: Option<bool>,
}

impl FleetConfig {
    /// A fleet of `clients` identical sessions, 500 ms stagger, no
    /// shared links yet (add them with [`FleetConfig::with_shared`]).
    pub fn new(base: SessionConfig, clients: usize) -> Self {
        FleetConfig {
            base,
            clients,
            stagger: SimDuration::from_millis(500),
            shared: Vec::new(),
            rtt_skew: SimDuration::ZERO,
            seed: 1,
            trace_client: None,
            cache: None,
            telemetry: None,
            wall_profile: false,
            churn: None,
            fault_domains: Vec::new(),
            overload: None,
            watchdog: None,
        }
    }

    /// Same fleet with a different stagger.
    pub fn with_stagger(mut self, stagger: SimDuration) -> Self {
        self.stagger = stagger;
        self
    }

    /// Same fleet with an extra shared bottleneck.
    pub fn with_shared(mut self, spec: SharedLinkSpec) -> Self {
        self.shared.push(spec);
        self
    }

    /// Same fleet with heterogeneous client RTTs (client `k` gains
    /// `k * skew` of one-way delay on both private links).
    pub fn with_rtt_skew(mut self, skew: SimDuration) -> Self {
        self.rtt_skew = skew;
        self
    }

    /// Same fleet with a different base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same fleet, tracing exactly client `k` through the base config's
    /// tracer.
    pub fn with_trace_client(mut self, k: usize) -> Self {
        self.trace_client = Some(k);
        self
    }

    /// Same fleet with a shared segment cache in front of the origins.
    pub fn with_cache(mut self, spec: FleetCacheSpec) -> Self {
        self.cache = Some(spec);
        self
    }

    /// Same fleet with epoch telemetry on every client and bottleneck.
    pub fn with_telemetry(mut self, spec: TelemetrySpec) -> Self {
        self.telemetry = Some(spec);
        self
    }

    /// Same fleet with wall-clock phase profiling of the event loop.
    pub fn with_wall_profile(mut self) -> Self {
        self.wall_profile = true;
        self
    }

    /// Same fleet with seeded arrival/viewing churn.
    pub fn with_churn(mut self, spec: ChurnSpec) -> Self {
        self.churn = Some(spec);
        self
    }

    /// Same fleet with an extra correlated fault domain.
    pub fn with_fault_domain(mut self, spec: FaultDomainSpec) -> Self {
        self.fault_domains.push(spec);
        self
    }

    /// Same fleet with overload protection at admission.
    pub fn with_overload(mut self, policy: OverloadPolicy) -> Self {
        self.overload = Some(policy);
        self
    }

    /// Same fleet with the runtime watchdog explicitly armed/disarmed.
    pub fn with_watchdog(mut self, on: bool) -> Self {
        self.watchdog = Some(on);
        self
    }
}

/// Aggregate view of one shared bottleneck after the run.
#[derive(Clone, Debug)]
pub struct BottleneckSummary {
    /// Discipline label (`"fifo"` / `"fq"`).
    pub discipline: &'static str,
    /// Byte/packet conservation counters.
    pub stats: SharedStats,
    /// Queue-depth and queue-wait histograms recorded during the run.
    pub metrics: MetricsSnapshot,
    /// Per-epoch offered/delivered/dropped bytes and queue-depth
    /// histograms, when telemetry is on. Kept per-bottleneck (not
    /// merged fleet-wide) so two bottlenecks' `queue_depth_bytes`
    /// series stay distinguishable.
    pub epochs: Option<EpochSeries>,
}

/// Deterministic span accounting of the fleet event loop: how the
/// peek/pop/step interleave spent its virtual time. Pure counts of
/// loop decisions, so identical at any `MPDASH_WORKERS` and with
/// telemetry on or off.
#[derive(Clone, Debug, Default)]
pub struct FleetProfile {
    /// Iterations of the global-minimum scan (one per event, plus the
    /// final empty scan that ends the loop).
    pub loop_iterations: u64,
    /// Bottleneck departures popped.
    pub departures_popped: u64,
    /// Session events stepped.
    pub session_steps: u64,
    /// Invariant checks the runtime watchdog performed (0 = disarmed).
    /// Deterministic, but kept out of `summary_json` artifacts so the
    /// same config serializes byte-identically with the watchdog on or
    /// off.
    pub watchdog_checks: u64,
    /// Per-epoch `loop_steps` / `loop_departures` counters (plus
    /// `fleet_arrivals` / `fleet_departures` / `fleet_shed` lifecycle
    /// counters), when telemetry is on — the "steps per epoch" view the
    /// profiler and the timeline render.
    pub epochs: Option<EpochSeries>,
}

impl FleetProfile {
    /// Deterministic JSON view (the epoch series included).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("loop_iterations", Json::from(self.loop_iterations)),
            ("departures_popped", Json::from(self.departures_popped)),
            ("session_steps", Json::from(self.session_steps)),
            ("watchdog_checks", Json::from(self.watchdog_checks)),
            (
                "epochs",
                self.epochs
                    .as_ref()
                    .map(|e| e.to_json())
                    .unwrap_or(Json::Null),
            ),
        ])
    }
}

/// Wall-clock self-profile of the fleet loop, split by phase.
/// Nondeterministic (it measures the host machine), so it is reported
/// beside — never inside — deterministic artifacts.
#[derive(Clone, Copy, Debug, Default)]
pub struct FleetWallProfile {
    /// Nanoseconds spent scanning for the globally earliest event.
    pub peek_ns: u64,
    /// Nanoseconds spent popping bottleneck departures.
    pub pop_ns: u64,
    /// Nanoseconds spent stepping sessions.
    pub step_ns: u64,
}

impl FleetWallProfile {
    /// JSON view, in nanoseconds per phase plus the total.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("peek_ns", Json::from(self.peek_ns)),
            ("pop_ns", Json::from(self.pop_ns)),
            ("step_ns", Json::from(self.step_ns)),
            (
                "total_ns",
                Json::from(self.peek_ns + self.pop_ns + self.step_ns),
            ),
        ])
    }
}

/// Everything measured across one fleet run.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-client session reports, in client order.
    pub sessions: Vec<SessionReport>,
    /// Jain's fairness index over per-client mean bitrate.
    pub jain_bitrate: f64,
    /// Jain's fairness index over per-client cellular bytes.
    pub jain_cell_bytes: f64,
    /// Scheduler deadline misses over completed deadline transfers,
    /// summed across clients.
    pub deadline_miss_rate: f64,
    /// WiFi payload bytes summed across clients.
    pub total_wifi_bytes: u64,
    /// Cellular payload bytes summed across clients.
    pub total_cell_bytes: u64,
    /// Stalls summed across clients (all-chunk accounting).
    pub total_stalls: u64,
    /// Per-client shed flags (the overload policy turned the arrival
    /// away), in client order.
    pub shed: Vec<bool>,
    /// Sessions shed at admission by the overload policy.
    pub shed_sessions: u64,
    /// Sessions that departed before finishing the video (viewing limit
    /// reached, or shed).
    pub departed_sessions: u64,
    /// One summary per configured shared bottleneck, in topology order.
    pub bottlenecks: Vec<BottleneckSummary>,
    /// Global shared-cache counters at the end of the run, `None` when
    /// the fleet ran cacheless. Lives here and not in the per-session
    /// reports: the global hit/miss/eviction totals depend on how the
    /// fleet interleaved the clients, which no single session observes.
    pub cache: Option<CacheStats>,
    /// Fleet-wide epoch series: every client's session series merged in
    /// client order. Merge is associative and commutative, so this is
    /// bit-identical however the fleet was sharded. `None` when
    /// telemetry is off. Excluded from [`FleetReport::summary_json`],
    /// preserving artifact byte-identity with telemetry on vs off.
    pub epochs: Option<EpochSeries>,
    /// Deterministic loop-span accounting (also artifact-excluded).
    pub profile: FleetProfile,
    /// Wall-clock phase profile, present when
    /// [`FleetConfig::wall_profile`] was set.
    pub wall_profile: Option<FleetWallProfile>,
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`: 1 when all shares are
/// equal, → 1/n under a winner-take-all allocation. An empty or
/// all-zero allocation is vacuously fair.
pub fn jain(values: &[f64]) -> f64 {
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if values.is_empty() || sq == 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sq)
}

impl FleetReport {
    /// Mean of per-client mean bitrates.
    pub fn mean_bitrate_mbps(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        self.sessions
            .iter()
            .map(|s| s.qoe_all.mean_bitrate_mbps)
            .sum::<f64>()
            / self.sessions.len() as f64
    }

    /// Deterministic artifact JSON: cross-client aggregates, compact
    /// per-client rows, and per-bottleneck conservation + histograms.
    pub fn summary_json(&self) -> Json {
        let per_client = self.sessions.iter().enumerate().map(|(k, s)| {
            Json::obj([
                ("client", Json::from(k)),
                (
                    "mean_bitrate_mbps",
                    Json::Float(s.qoe_all.mean_bitrate_mbps),
                ),
                ("wifi_bytes", Json::from(s.wifi_bytes)),
                ("cell_bytes", Json::from(s.cell_bytes)),
                ("stalls", Json::from(s.qoe_all.stalls)),
                (
                    "startup_s",
                    Json::Float(
                        s.qoe_all
                            .startup_delay
                            .map(|d| d.as_secs_f64())
                            .unwrap_or(0.0),
                    ),
                ),
                (
                    "deadline_misses",
                    Json::from(s.scheduler_stats.missed_deadlines),
                ),
                ("qoe_composite", Json::Float(s.qoe_score.composite)),
                ("departed", Json::Bool(s.departed)),
                ("shed", Json::Bool(self.shed[k])),
            ])
        });
        let bottlenecks = self.bottlenecks.iter().map(|b| {
            let mut row = vec![
                ("discipline", Json::from(b.discipline)),
                ("offered_bytes", Json::from(b.stats.offered_bytes)),
                ("delivered_bytes", Json::from(b.stats.delivered_bytes)),
                ("dropped_bytes", Json::from(b.stats.dropped_bytes)),
                ("queued_bytes", Json::from(b.stats.queued_bytes)),
                ("dropped_packets", Json::from(b.stats.dropped_packets)),
            ];
            // DropReason breakdown, emitted only under an AQM discipline
            // so no-AQM artifacts stay byte-identical to pre-AQM runs.
            if matches!(b.discipline, "pie" | "fq_pie" | "codel") {
                row.push((
                    "dropped_overflow_packets",
                    Json::from(b.stats.dropped_overflow_packets),
                ));
                row.push((
                    "dropped_aqm_packets",
                    Json::from(b.stats.dropped_aqm_packets),
                ));
                row.push(("marked_packets", Json::from(b.stats.marked_packets)));
            }
            row.push(("metrics", b.metrics.to_json()));
            Json::obj(row)
        });
        let cache = match &self.cache {
            Some(c) => Json::obj([
                ("hits", Json::from(c.hits)),
                ("misses", Json::from(c.misses)),
                ("evictions", Json::from(c.evictions)),
                ("insertions", Json::from(c.insertions)),
                ("resident_bytes", Json::from(c.resident_bytes)),
                ("hit_ratio", Json::Float(c.hit_ratio())),
            ]),
            None => Json::Null,
        };
        Json::obj([
            ("clients", Json::from(self.sessions.len())),
            ("jain_bitrate", Json::Float(self.jain_bitrate)),
            ("jain_cell_bytes", Json::Float(self.jain_cell_bytes)),
            ("deadline_miss_rate", Json::Float(self.deadline_miss_rate)),
            ("total_wifi_bytes", Json::from(self.total_wifi_bytes)),
            ("total_cell_bytes", Json::from(self.total_cell_bytes)),
            ("total_stalls", Json::from(self.total_stalls)),
            ("shed_sessions", Json::from(self.shed_sessions)),
            ("departed_sessions", Json::from(self.departed_sessions)),
            ("cache", cache),
            ("per_client", Json::arr(per_client)),
            ("bottlenecks", Json::arr(bottlenecks)),
        ])
    }
}

/// RNG stream ids for the churn draws. They feed `derive_seed(seed, ·)`
/// alongside the per-client streams (which use `k` in `0..clients`), so
/// they sit far above any plausible client count.
const CHURN_ARRIVAL_STREAM: u64 = 0xC4A2_0001;
const CHURN_WATCH_STREAM: u64 = 0xC4A2_0002;

/// Exponential draw with the given mean: `-mean · ln(1 − u)`.
fn exponential(rng: &mut Prng, mean: SimDuration) -> SimDuration {
    mean.mul_f64(-(1.0 - rng.next_f64()).ln())
}

/// `MPDASH_WATCHDOG=0` disarms the runtime checker when the config
/// leaves it unset; any other value — or no value — leaves it armed.
fn watchdog_from_env() -> bool {
    std::env::var("MPDASH_WATCHDOG").map_or(true, |v| v != "0")
}

/// Run one fleet to completion. Deterministic: a pure function of the
/// configuration (tracing included — it is observe-only).
///
/// # Panics
/// On an [`InvariantViolation`] when the watchdog is armed; use
/// [`run_checked`] to handle violations as typed errors instead.
pub fn run(cfg: &FleetConfig) -> FleetReport {
    match run_checked(cfg) {
        Ok(report) => report,
        Err(v) => panic!("fleet invariant violated: {v}"),
    }
}

/// [`run`], with watchdog violations surfaced as typed errors. The
/// watchdog checks virtual-time monotonicity on every loop iteration,
/// byte conservation after every bottleneck departure, and breaker
/// sanity plus hedge accounting after every session step — each check a
/// few integer comparisons, cheap enough to leave armed everywhere.
pub fn run_checked(cfg: &FleetConfig) -> Result<FleetReport, InvariantViolation> {
    assert!(cfg.clients >= 1, "a fleet needs at least one client");
    // One resolution for the whole fleet: clients, bottlenecks, and the
    // loop profiler all observe on the same epoch grid (or not at all).
    let telemetry = cfg
        .telemetry
        .or(cfg.base.telemetry)
        .or_else(telemetry_from_env);
    let cache = cfg
        .cache
        .map(|spec| SharedSegmentCache::new(spec.capacity_bytes).with_edge_delay(spec.edge_delay));
    // Churn plan: cumulative exponential arrivals plus a floored
    // viewing draw per client (see [`ChurnSpec::plan`]).
    let churn_plan: Option<Vec<(SimDuration, SimDuration)>> =
        cfg.churn.map(|ch| ch.plan(cfg.seed, cfg.clients));
    let mut sessions: Vec<StreamingSession> = (0..cfg.clients)
        .map(|k| {
            let mut sc = cfg.base.clone();
            match churn_plan.as_ref() {
                Some(plan) => {
                    let (arrive, watch) = plan[k];
                    sc.start_offset = arrive;
                    sc.max_watch = Some(watch);
                }
                None => sc.start_offset = cfg.stagger * k as u64,
            }
            sc.telemetry = telemetry;
            // Correlated fault domains: merge every covering domain's
            // shared timeline into this member's own scripts. The
            // packet-level draws inside those windows still come from
            // the member's link seeds below — shared window, private
            // coin flips.
            for dom in &cfg.fault_domains {
                if !dom.members.contains(&k) {
                    continue;
                }
                if !dom.wifi.is_empty() {
                    let mut fs = sc.wifi.faults.take().unwrap_or_default();
                    for ev in dom.wifi.events() {
                        fs = fs.with_event(ev.clone());
                    }
                    sc.wifi.faults = Some(fs);
                }
                if !dom.cell.is_empty() {
                    let mut fs = sc.cell.faults.take().unwrap_or_default();
                    for ev in dom.cell.events() {
                        fs = fs.with_event(ev.clone());
                    }
                    sc.cell.faults = Some(fs);
                }
                if !dom.server.is_empty() {
                    let mut sf = std::mem::take(&mut sc.server_faults);
                    for ev in dom.server.events() {
                        sf = sf.with_event(*ev);
                    }
                    sc.server_faults = sf;
                }
            }
            let skew = cfg.rtt_skew * k as u64;
            sc.wifi.delay += skew;
            sc.cell.delay += skew;
            let client_seed = derive_seed(cfg.seed, k as u64);
            sc.wifi.seed = derive_seed(client_seed, 0);
            sc.cell.seed = derive_seed(client_seed, 1);
            // Per-client retry jitter: derive an independent lifecycle
            // seed so a shared fault burst does not make every client
            // back off in lockstep and re-stampede the server together.
            sc.lifecycle = sc.lifecycle.with_seed(derive_seed(client_seed, 2));
            if let Some(cache) = cache.as_ref() {
                sc.cache = Some(cache.clone());
            }
            if cfg.trace_client != Some(k) {
                sc.tracer = mpdash_obs::Tracer::disabled();
            }
            StreamingSession::start(sc)
        })
        .collect();

    // Build the shared topology. Subscription happens in client-major
    // order per bottleneck, so `route[b][flow]` maps a bottleneck's
    // flow id back to (client, path). Must precede any stepping: a
    // started session has only queued its first upstream request, no
    // data-link transmit has happened yet.
    let mut bottlenecks: Vec<SharedBottleneck> = Vec::with_capacity(cfg.shared.len());
    let mut route: Vec<Vec<(usize, PathId)>> = Vec::with_capacity(cfg.shared.len());
    for spec in &cfg.shared {
        let bn = SharedBottleneck::new(spec.config);
        if let Some(t) = telemetry {
            bn.enable_telemetry(t);
        }
        let mut flows = Vec::with_capacity(cfg.clients * spec.paths.len());
        for (k, session) in sessions.iter_mut().enumerate() {
            for &path in &spec.paths {
                let flow = session.attach_shared(path, &bn);
                debug_assert_eq!(flow, flows.len(), "flows subscribe densely");
                flows.push((k, path));
            }
        }
        bottlenecks.push(bn);
        route.push(flows);
    }

    // The fleet event loop: pop the globally earliest event. Tie-break
    // is (time, bottleneck-before-session, index), which both makes the
    // interleaving deterministic and guarantees departures at time t
    // precede any new offers made at t.
    let mut done = vec![false; cfg.clients];
    // Admission state: a session is "active" once its arrival event was
    // admitted and until it finishes. The overload policy only ever
    // sheds a *not-yet-arrived* session, at its arrival instant.
    let mut arrived = vec![false; cfg.clients];
    let mut shed = vec![false; cfg.clients];
    let mut shed_sessions = 0u64;
    let mut watchdog = cfg
        .watchdog
        .unwrap_or_else(watchdog_from_env)
        .then(Watchdog::new);
    // Fleet-level trace hook (shed decisions happen outside any one
    // session); observe-only like every tracer.
    let fleet_tracer = cfg.base.tracer.or_env();
    let mut profile = FleetProfile {
        epochs: telemetry.map(EpochSeries::new),
        ..FleetProfile::default()
    };
    let mut wall = cfg.wall_profile.then(FleetWallProfile::default);
    let mut mark = wall.map(|_| std::time::Instant::now());
    // Charge elapsed wall time to one phase and re-arm the stopwatch.
    // A no-op (never branches on wall time) unless wall_profile is set,
    // so profiling cannot perturb the deterministic interleave.
    let mut charge = move |wall: &mut Option<FleetWallProfile>,
                           pick: fn(&mut FleetWallProfile) -> &mut u64| {
        if let (Some(w), Some(m)) = (wall.as_mut(), mark.as_mut()) {
            let now = std::time::Instant::now();
            *pick(w) += now.duration_since(*m).as_nanos() as u64;
            *m = now;
        }
    };
    loop {
        let mut best: Option<(SimTime, usize, usize)> = None;
        for (i, bn) in bottlenecks.iter().enumerate() {
            if let Some(t) = bn.next_departure() {
                let key = (t, 0, i);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        for (k, session) in sessions.iter().enumerate() {
            if done[k] {
                continue;
            }
            if let Some(t) = session.peek_time() {
                let key = (t, 1, k);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        charge(&mut wall, |w| &mut w.peek_ns);
        profile.loop_iterations += 1;
        if let (Some(wd), Some(&(t, _, _))) = (watchdog.as_mut(), best.as_ref()) {
            wd.check_time(t)?;
        }
        match best {
            None => break,
            Some((t, 0, i)) => {
                let d = bottlenecks[i].pop_departure().expect("departure peeked");
                let (k, path) = route[i][d.flow];
                sessions[k].on_shared_departure(path, d.ticket, d.at, d.marked);
                // CoDel drops packets at dequeue time, while choosing this
                // departure; route each casualty back to its owner so the
                // per-flow ticket FIFO stays aligned. Empty (and
                // allocation-free) unless a dequeue-time AQM is active.
                for drop in bottlenecks[i].take_aqm_drops() {
                    let (dk, dpath) = route[i][drop.flow];
                    sessions[dk].on_shared_drop(dpath, drop.ticket, drop.at);
                    if let Some(e) = profile.epochs.as_mut() {
                        e.inc(t, "loop_aqm_drops");
                    }
                }
                profile.departures_popped += 1;
                if let Some(e) = profile.epochs.as_mut() {
                    e.inc(t, "loop_departures");
                }
                if let Some(wd) = watchdog.as_mut() {
                    wd.check_conservation(i, bottlenecks[i].conservation_counters())?;
                }
                charge(&mut wall, |w| &mut w.pop_ns);
            }
            Some((t, _, k)) => {
                if !arrived[k] {
                    // First event of session k is its arrival wake —
                    // admission control runs before it can issue any
                    // request.
                    if let Some(policy) = cfg.overload {
                        let active = arrived
                            .iter()
                            .zip(&done)
                            .filter(|&(&a, &d)| a && !d)
                            .count();
                        let queue = bottlenecks
                            .iter()
                            .map(|b| b.occupancy_bytes())
                            .max()
                            .unwrap_or(0);
                        if active >= policy.max_active || queue >= policy.queue_threshold_bytes {
                            // Shed: the session never steps, so its
                            // queued arrival wake is simply abandoned
                            // and its report is empty.
                            sessions[k].mark_shed();
                            done[k] = true;
                            shed[k] = true;
                            shed_sessions += 1;
                            if let Some(e) = profile.epochs.as_mut() {
                                e.inc(t, "fleet_shed");
                            }
                            fleet_tracer.emit_with(t, || TraceEvent::SessionShed {
                                client: k,
                                active: active as u64,
                                queue_bytes: queue,
                            });
                            charge(&mut wall, |w| &mut w.step_ns);
                            continue;
                        }
                    }
                    arrived[k] = true;
                    if let Some(e) = profile.epochs.as_mut() {
                        e.inc(t, "fleet_arrivals");
                    }
                }
                sessions[k].step_once();
                profile.session_steps += 1;
                if let Some(e) = profile.epochs.as_mut() {
                    e.inc(t, "loop_steps");
                }
                if let Some(wd) = watchdog.as_mut() {
                    wd.check_breakers(k, sessions[k].breaker_sanity())?;
                    let (hedges, wins_primary, wins_hedge) = sessions[k].hedge_accounting();
                    wd.check_hedges(k, hedges, wins_primary, wins_hedge)?;
                }
                if sessions[k].finished() {
                    // A finished session is quiescent: every packet it
                    // offered to a bottleneck has been acknowledged, so
                    // no departure can target it anymore. Its leftover
                    // timers are abandoned, exactly as the standalone
                    // driver abandons them.
                    done[k] = true;
                    if let Some(e) = profile.epochs.as_mut() {
                        e.inc(t, "fleet_departures");
                    }
                }
                charge(&mut wall, |w| &mut w.step_ns);
            }
        }
    }
    assert!(
        done.iter().all(|&d| d),
        "fleet deadlocked: {} of {} clients unfinished",
        done.iter().filter(|&&d| !d).count(),
        cfg.clients
    );
    profile.watchdog_checks = watchdog.as_ref().map_or(0, Watchdog::checks);

    let bottlenecks: Vec<BottleneckSummary> = bottlenecks
        .iter()
        .zip(&cfg.shared)
        .map(|(bn, spec)| {
            let stats = bn.stats();
            assert!(stats.conserved(), "bottleneck conservation: {stats:?}");
            BottleneckSummary {
                discipline: spec.config.discipline.label(),
                stats,
                metrics: bn.metrics_snapshot(),
                epochs: bn.epoch_series(),
            }
        })
        .collect();

    let sessions: Vec<SessionReport> = sessions.into_iter().map(|s| s.into_report()).collect();
    // Fleet-wide series: fold every client's series in client order.
    // merge() is associative + commutative, so any other fold order —
    // e.g. shard-local partial merges under MPDASH_WORKERS — yields the
    // same bytes.
    let epochs = telemetry.map(|spec| {
        let mut all = EpochSeries::new(spec);
        for s in &sessions {
            if let Some(e) = &s.epochs {
                all.merge(e);
            }
        }
        all
    });
    let bitrates: Vec<f64> = sessions
        .iter()
        .map(|s| s.qoe_all.mean_bitrate_mbps)
        .collect();
    let cell: Vec<f64> = sessions.iter().map(|s| s.cell_bytes as f64).collect();
    let missed: u64 = sessions
        .iter()
        .map(|s| s.scheduler_stats.missed_deadlines)
        .sum();
    let completed: u64 = sessions
        .iter()
        .map(|s| s.scheduler_stats.completed_transfers)
        .sum();
    Ok(FleetReport {
        jain_bitrate: jain(&bitrates),
        jain_cell_bytes: jain(&cell),
        deadline_miss_rate: missed as f64 / completed.max(1) as f64,
        total_wifi_bytes: sessions.iter().map(|s| s.wifi_bytes).sum(),
        total_cell_bytes: sessions.iter().map(|s| s.cell_bytes).sum(),
        total_stalls: sessions.iter().map(|s| s.qoe_all.stalls).sum(),
        shed_sessions,
        departed_sessions: sessions.iter().filter(|s| s.departed).count() as u64,
        shed,
        bottlenecks,
        cache: cache.map(|c| c.stats()),
        epochs,
        profile,
        wall_profile: wall,
        sessions,
    })
}

/// Wrap one fleet replica as a batch-runner job. The replica's summary
/// JSON rides back as a [`JobReport::Value`], so independent replicas
/// shard across `MPDASH_WORKERS` through the ordinary order-preserving
/// batch machinery.
pub fn fleet_job(label: impl Into<String>, cfg: FleetConfig) -> Job {
    Job::custom(label, move || {
        JobReport::Value(Box::new(run(&cfg).summary_json()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_dash::abr::AbrKind;
    use mpdash_dash::video::Video;
    use mpdash_link::QueueDiscipline;
    use mpdash_session::{run_batch_with, TransportMode};

    fn tiny_video() -> Video {
        Video::new(
            "tiny",
            &[0.58, 1.01, 1.47, 2.41, 3.94],
            SimDuration::from_secs(4),
            10,
        )
    }

    fn base(mode: TransportMode) -> SessionConfig {
        SessionConfig::controlled_mbps(20.0, 8.0, AbrKind::Festive, mode).with_video(tiny_video())
    }

    fn ap(mbps: f64, discipline: QueueDiscipline) -> SharedLinkSpec {
        SharedLinkSpec::wifi_ap(SharedBottleneckConfig::fifo_mbps(mbps).with_discipline(discipline))
    }

    #[test]
    fn a_private_link_fleet_matches_standalone_sessions() {
        // No shared links: each fleet client is an independent session,
        // so client 0 (zero stagger, same derived seed) must reproduce
        // the standalone run byte for byte.
        let cfg = FleetConfig::new(base(TransportMode::Vanilla), 3);
        let report = run(&cfg);
        assert_eq!(report.sessions.len(), 3);

        let mut alone = cfg.base.clone();
        let client_seed = derive_seed(cfg.seed, 0);
        alone.wifi.seed = derive_seed(client_seed, 0);
        alone.cell.seed = derive_seed(client_seed, 1);
        alone.lifecycle = alone.lifecycle.with_seed(derive_seed(client_seed, 2));
        let solo = StreamingSession::run(alone);
        assert_eq!(
            report.sessions[0].summary_json().to_pretty(),
            solo.summary_json().to_pretty()
        );
    }

    #[test]
    fn staggered_clients_measure_qoe_from_their_own_origin() {
        let cfg = FleetConfig::new(base(TransportMode::Vanilla), 3)
            .with_stagger(SimDuration::from_secs(2));
        let report = run(&cfg);
        for s in &report.sessions {
            let startup = s.qoe_all.startup_delay.expect("all clients played");
            // Startup is measured from each client's own join, not from
            // the epoch — so a 2 s/4 s-late join must not inflate it.
            assert!(
                startup < SimDuration::from_secs(2),
                "startup {startup:?} includes the stagger offset"
            );
        }
    }

    #[test]
    fn contention_on_a_shared_ap_is_visible_and_conserved() {
        // Same shared topology, scarce vs generous capacity. Both the
        // AP and the cell sector are shared — otherwise each client's
        // private cellular path quietly absorbs the AP's scarcity. At
        // 2 + 1 Mbps across 4 clients (~0.75 Mbps each), even FESTIVE's
        // ramp levels no longer fit, so bitrate must drop and sessions
        // must stretch — while every offered byte stays accounted for.
        let mk = |wifi_mbps, cell_mbps| {
            run(&FleetConfig::new(base(TransportMode::Vanilla), 4)
                .with_shared(ap(wifi_mbps, QueueDiscipline::Fifo))
                .with_shared(SharedLinkSpec::cell_sector(
                    SharedBottleneckConfig::fifo_mbps(cell_mbps),
                )))
        };
        let free = mk(100.0, 100.0);
        let contended = mk(2.0, 1.0);
        assert_eq!(contended.bottlenecks.len(), 2);
        for bn in &contended.bottlenecks {
            assert!(bn.stats.conserved());
            assert!(bn.stats.offered_bytes > 0, "traffic rode the bottleneck");
        }
        assert!(
            contended.mean_bitrate_mbps() < free.mean_bitrate_mbps(),
            "contended {:.2} vs free {:.2}",
            contended.mean_bitrate_mbps(),
            free.mean_bitrate_mbps()
        );
        let longest = |r: &FleetReport| {
            r.sessions
                .iter()
                .map(|s| s.duration)
                .max()
                .expect("non-empty fleet")
        };
        assert!(
            longest(&contended) > longest(&free),
            "scarcity must stretch sessions"
        );
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let mk = || {
            FleetConfig::new(base(TransportMode::mpdash_rate_based()), 4)
                .with_shared(ap(14.0, QueueDiscipline::Fifo))
                .with_seed(7)
        };
        let a = run(&mk()).summary_json().to_pretty();
        let b = run(&mk()).summary_json().to_pretty();
        assert_eq!(a, b);
    }

    #[test]
    fn replicas_shard_identically_across_worker_counts() {
        let jobs = |n: usize| -> Vec<Job> {
            (0..n)
                .map(|r| {
                    let cfg = FleetConfig::new(base(TransportMode::Vanilla), 3)
                        .with_shared(ap(12.0, QueueDiscipline::Fifo))
                        .with_seed(100 + r as u64);
                    fleet_job(format!("replica{r}"), cfg)
                })
                .collect()
        };
        let seq = run_batch_with(jobs(4), 1);
        let par = run_batch_with(jobs(4), 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.label, b.label);
            assert_eq!(
                a.value().unwrap().to_pretty(),
                b.value().unwrap().to_pretty()
            );
        }
    }

    #[test]
    fn fq_is_no_less_fair_than_fifo_under_contention() {
        let mk = |d| {
            run(&FleetConfig::new(base(TransportMode::Vanilla), 4)
                .with_shared(ap(10.0, d))
                .with_seed(3))
        };
        let fifo = mk(QueueDiscipline::Fifo);
        let fq = mk(QueueDiscipline::FlowQueue { quantum: 1540 });
        assert!(
            fq.jain_bitrate + 1e-9 >= fifo.jain_bitrate,
            "fq jain {:.4} < fifo jain {:.4}",
            fq.jain_bitrate,
            fifo.jain_bitrate
        );
    }

    #[test]
    fn shared_fault_burst_retries_desynchronize_across_clients() {
        use mpdash_obs::{RingSink, TraceEvent, Tracer};
        use mpdash_session::{LifecyclePolicy, ServerFaultScript};
        use std::sync::Arc;
        // Same fleet twice, tracing a different client each time: fleet
        // runs are deterministic and tracing is observe-only, so the
        // two runs are faithful per-client views of one fleet.
        let backoffs = |client: usize| -> Vec<f64> {
            let ring = Arc::new(RingSink::new(1 << 16));
            let base = base(TransportMode::mpdash_rate_based())
                .with_server_faults(
                    ServerFaultScript::new()
                        .error_burst(SimTime::from_secs(5), SimDuration::from_secs(2)),
                )
                .with_lifecycle(LifecyclePolicy::retry_only())
                .with_tracer(Tracer::new(ring.clone()));
            let cfg = FleetConfig::new(base, 2)
                .with_stagger(SimDuration::ZERO)
                .with_trace_client(client);
            run(&cfg);
            ring.events()
                .iter()
                .filter_map(|(_, e)| match e {
                    TraceEvent::RequestRetried { backoff_s, .. } => Some(*backoff_s),
                    _ => None,
                })
                .collect()
        };
        let c0 = backoffs(0);
        let c1 = backoffs(1);
        assert!(
            !c0.is_empty() && !c1.is_empty(),
            "the shared burst must force retries on both clients"
        );
        assert_ne!(
            c0, c1,
            "per-client lifecycle seeds must desynchronize retry backoffs"
        );
    }

    #[test]
    fn shared_cache_hit_ratio_is_monotone_in_fleet_size() {
        let report = |clients: usize| {
            run(&FleetConfig::new(base(TransportMode::Vanilla), clients)
                .with_cache(FleetCacheSpec::new(256 * 1024 * 1024)))
        };
        let ratio = |r: &FleetReport| {
            let c = r.cache.expect("cache configured");
            // The global counters must reconcile with the per-session
            // views — the cache serves only these clients.
            let hits: u64 = r.sessions.iter().map(|s| s.origin.cache_hits).sum();
            let misses: u64 = r.sessions.iter().map(|s| s.origin.cache_misses).sum();
            assert_eq!((c.hits, c.misses), (hits, misses));
            c.hit_ratio()
        };
        let r1 = report(1);
        let r2 = report(2);
        let r4 = report(4);
        let (h1, h2, h4) = (ratio(&r1), ratio(&r2), ratio(&r4));
        assert_eq!(h1, 0.0, "a lone client never hits its own cold cache");
        assert!(
            h2 > 0.0,
            "the second client must reuse the first one's inserts"
        );
        assert!(
            h1 <= h2 && h2 <= h4,
            "hit ratio must be monotone in fleet size: {h1:.3} {h2:.3} {h4:.3}"
        );
    }

    #[test]
    fn cached_fleet_runs_are_pure_functions_of_config() {
        // The cache spec (not a live handle) is what FleetConfig holds:
        // two runs of the same config must not leak warm-cache state
        // into each other.
        let mk = || {
            FleetConfig::new(base(TransportMode::Vanilla), 3)
                .with_cache(FleetCacheSpec::new(64 * 1024 * 1024))
                .with_seed(9)
        };
        let a = run(&mk()).summary_json().to_pretty();
        let b = run(&mk()).summary_json().to_pretty();
        assert_eq!(a, b);
    }

    #[test]
    fn fleet_telemetry_is_observe_only_and_merges_client_series() {
        let mk = |telemetry: bool| {
            let mut cfg = FleetConfig::new(base(TransportMode::mpdash_rate_based()), 3)
                .with_shared(ap(12.0, QueueDiscipline::Fifo))
                .with_seed(11);
            if telemetry {
                cfg = cfg
                    .with_telemetry(TelemetrySpec::seconds(2.0))
                    .with_wall_profile();
            }
            run(&cfg)
        };
        let off = mk(false);
        let on = mk(true);
        // The artifact invariant: telemetry and wall profiling change
        // no observable byte of the summary.
        assert_eq!(
            off.summary_json().to_pretty(),
            on.summary_json().to_pretty()
        );
        assert!(off.epochs.is_none() && off.profile.epochs.is_none());
        assert!(off.wall_profile.is_none() && on.wall_profile.is_some());

        // The merged fleet series reconciles with the summed reports.
        let fleet = on.epochs.as_ref().expect("telemetry on");
        assert_eq!(fleet.counter_total("wifi_bytes"), on.total_wifi_bytes);
        assert_eq!(fleet.counter_total("cell_bytes"), on.total_cell_bytes);
        let chunk_sum: u64 = on.sessions.iter().map(|s| s.chunks.len() as u64).sum();
        assert_eq!(fleet.counter_total("chunks"), chunk_sum);

        // Loop accounting: every event was either a pop or a step, and
        // the epoch view re-adds to the same totals.
        let p = &on.profile;
        assert_eq!(p.loop_iterations, p.departures_popped + p.session_steps + 1);
        let loop_epochs = p.epochs.as_ref().expect("telemetry on");
        assert_eq!(
            loop_epochs.counter_total("loop_departures"),
            p.departures_popped
        );
        assert_eq!(loop_epochs.counter_total("loop_steps"), p.session_steps);

        // The shared AP recorded its own epoch series.
        let bn = on.bottlenecks[0].epochs.as_ref().expect("telemetry on");
        assert_eq!(
            bn.counter_total("shared_delivered_bytes"),
            on.bottlenecks[0].stats.delivered_bytes
        );
    }

    #[test]
    fn churned_fleets_are_deterministic_and_report_partial_sessions() {
        // Mean watch of 12 s against a 40 s video. The buffer must be
        // smaller than the video so the download is paced by playback —
        // with the default 40 s buffer the whole video lands in ~6 s of
        // virtual time and no viewing limit ever fires.
        let mk = || {
            let mut b = base(TransportMode::Vanilla);
            b.buffer_capacity = SimDuration::from_secs(8);
            FleetConfig::new(b, 4)
                .with_churn(ChurnSpec::new(
                    SimDuration::from_millis(800),
                    SimDuration::from_secs(12),
                ))
                .with_seed(21)
        };
        let report = run(&mk());
        assert!(
            report.departed_sessions > 0,
            "a 12 s mean watch must cut some 40 s sessions short"
        );
        assert_eq!(report.shed_sessions, 0, "no overload policy, no shedding");
        for s in &report.sessions {
            if s.departed {
                assert!(
                    s.qoe_all.chunks < tiny_video().n_chunks(),
                    "a departed session must not have finished the video"
                );
                assert!(
                    s.qoe_all.chunks > 0,
                    "the viewing floor guarantees at least one chunk"
                );
            }
        }
        // Arrivals are strictly increasing (cumulative exponential), so
        // no two clients join at the same instant.
        let report2 = run(&mk());
        assert_eq!(
            report.summary_json().to_pretty(),
            report2.summary_json().to_pretty()
        );
    }

    #[test]
    fn a_domain_wifi_outage_hits_members_only_and_cellular_bridges_it() {
        use mpdash_link::FaultScript;
        // Private links, so the only coupling between clients would be
        // the fault domain itself: non-members must be byte-identical
        // to the domain-free control run.
        let mk = |domain: bool| {
            let mut cfg = FleetConfig::new(base(TransportMode::Vanilla), 3).with_seed(5);
            if domain {
                // Early outage: the tiny video downloads in ~6 s, so
                // the window must open while chunks are still in flight.
                cfg = cfg.with_fault_domain(
                    FaultDomainSpec::new("apartment-block", vec![0, 1]).with_wifi(
                        FaultScript::new().disassociation(
                            SimTime::from_secs(2),
                            SimDuration::from_secs(3),
                            SimDuration::from_secs(1),
                        ),
                    ),
                );
            }
            run(&cfg)
        };
        let control = mk(false);
        let outage = mk(true);
        for k in [0usize, 1] {
            // The outage can shrink *absolute* cell bytes (ABR drops
            // rungs while WiFi is dark), but cellular's share of the
            // session must grow — that is the bridge.
            assert!(
                outage.sessions[k].cell_fraction() > control.sessions[k].cell_fraction(),
                "client {k}: cellular share must grow across the outage \
                 ({:.3} vs {:.3})",
                outage.sessions[k].cell_fraction(),
                control.sessions[k].cell_fraction()
            );
            // The control run carries one 0.15 s Festive startup stall on
            // this tiny video; the link-down fast failover can erase it in
            // the outage run (cellular picks up before the buffer drains),
            // so the bound is "the outage adds none", not equality.
            assert!(
                outage.sessions[k].qoe_all.stalls <= control.sessions[k].qoe_all.stalls,
                "client {k}: an 8 Mbps cellular path bridges the outage without \
                 adding stalls ({} vs {})",
                outage.sessions[k].qoe_all.stalls,
                control.sessions[k].qoe_all.stalls
            );
        }
        assert_eq!(
            outage.sessions[2].summary_json().to_pretty(),
            control.sessions[2].summary_json().to_pretty(),
            "a client outside the domain must not observe the outage"
        );
    }

    #[test]
    fn domain_scripts_compose_with_per_client_scripts() {
        use mpdash_link::FaultScript;
        // The base config already carries a per-client WiFi fault; the
        // domain adds a second window. The member's merged timeline must
        // contain both (composition, not replacement).
        let burst =
            FaultScript::new().rate_collapse(SimTime::from_secs(2), SimDuration::from_secs(1), 0.5);
        let cfg = FleetConfig::new(
            base(TransportMode::Vanilla).with_wifi_faults(burst.clone()),
            2,
        )
        .with_fault_domain(FaultDomainSpec::new("region", vec![0]).with_wifi(
            FaultScript::new().rate_collapse(SimTime::from_secs(8), SimDuration::from_secs(1), 0.5),
        ))
        .with_seed(6);
        // Both runs complete; the member sees more fault exposure than
        // the non-member, which keeps only the per-client script.
        let report = run(&cfg);
        assert_eq!(report.sessions.len(), 2);
        // Indirect but deterministic evidence of composition: the two
        // clients' summaries must differ (same seed-derived streams,
        // different fault timelines).
        assert_ne!(
            report.sessions[0].summary_json().to_pretty(),
            report.sessions[1].summary_json().to_pretty()
        );
    }

    #[test]
    fn overload_shedding_caps_active_sessions_and_sheds_newest_arrivals() {
        let cfg = FleetConfig::new(base(TransportMode::Vanilla), 4)
            .with_stagger(SimDuration::from_millis(200))
            .with_overload(OverloadPolicy::max_active(2))
            .with_seed(13);
        let report = run(&cfg);
        assert_eq!(
            report.shed_sessions, 2,
            "clients 2 and 3 arrive while 0 and 1 still stream"
        );
        assert_eq!(report.shed, vec![false, false, true, true]);
        for (k, s) in report.sessions.iter().enumerate() {
            if report.shed[k] {
                assert!(s.departed, "a shed session reports as departed");
                assert_eq!(s.qoe_all.chunks, 0, "shed sessions never fetch");
                assert_eq!(s.wifi_bytes + s.cell_bytes, 0);
                assert_eq!(s.duration, SimDuration::ZERO);
            } else {
                assert!(!s.departed);
            }
        }
        assert_eq!(report.departed_sessions, report.shed_sessions);
        // The artifact rows carry both flags.
        let json = report.summary_json();
        let rows = json.get("per_client").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(rows[3].get("shed").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(rows[0].get("shed").and_then(|v| v.as_bool()), Some(false));
    }

    #[test]
    fn the_watchdog_is_observe_only_and_checks_every_iteration() {
        let mk = |wd: bool| {
            FleetConfig::new(base(TransportMode::mpdash_rate_based()), 3)
                .with_shared(ap(12.0, QueueDiscipline::Fifo))
                .with_churn(ChurnSpec::new(
                    SimDuration::from_millis(500),
                    SimDuration::from_secs(20),
                ))
                .with_seed(17)
                .with_watchdog(wd)
        };
        let armed = run_checked(&mk(true)).expect("no invariant violations");
        let disarmed = run_checked(&mk(false)).expect("watchdog off");
        assert!(
            armed.profile.watchdog_checks > armed.profile.loop_iterations,
            "time checks alone cover every iteration ({} checks, {} iterations)",
            armed.profile.watchdog_checks,
            armed.profile.loop_iterations
        );
        assert_eq!(disarmed.profile.watchdog_checks, 0);
        assert_eq!(
            armed.summary_json().to_pretty(),
            disarmed.summary_json().to_pretty(),
            "arming the watchdog must change zero artifact bytes"
        );
    }

    #[test]
    fn jain_index_basics() {
        assert!((jain(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
    }
}
