//! Property tests on shared-bottleneck co-simulation: K independent
//! MPTCP connections pushing random chunk schedules through one shared
//! queue never violate conservation, and per-flow DSS reassembly never
//! corrupts under cross-session interleaving.
//!
//! The invariants:
//!
//! * **conservation** — at quiescence every offered byte is accounted
//!   for: `delivered + dropped + queued == offered`, with nothing left
//!   queued;
//! * **reassembly** — each session's chunk bodies complete with exactly
//!   the requested length, and body DSS ranges ascend without overlap
//!   in that connection's sequence space, no matter how the bottleneck
//!   interleaves the sessions' packets;
//! * **monotonicity** — the global fleet clock never goes backwards.

use mpdash_http::{HttpEvent, HttpLayer};
use mpdash_link::{
    AqmConfig, LinkConfig, PathId, QueueDiscipline, SharedBottleneck, SharedBottleneckConfig,
};
use mpdash_mptcp::{MptcpConfig, MptcpSim, StepOutcome};
use mpdash_sim::{Prng, SimDuration, SimTime};
use proptest::prelude::*;

/// One client: a two-path connection (WiFi rides the shared bottleneck,
/// cellular stays private) fetching `sizes` chunk bodies sequentially.
struct Client {
    sim: MptcpSim,
    http: HttpLayer,
    sizes: Vec<u64>,
    next_chunk: usize,
    req: Option<u64>,
    last_dss_end: u64,
}

impl Client {
    fn new(seed: u64, sizes: Vec<u64>) -> Self {
        // The private WiFi link is fast so the shared queue is the only
        // WiFi constraint; odd delays desynchronise the clients.
        let wifi = LinkConfig::constant(1000.0, SimDuration::from_millis(5 + seed % 23));
        let cell = LinkConfig::constant(3.0, SimDuration::from_millis(30 + seed % 17));
        Client {
            sim: MptcpSim::new(MptcpConfig::two_path(wifi, cell)),
            http: HttpLayer::new(),
            sizes,
            next_chunk: 0,
            req: None,
            last_dss_end: 0,
        }
    }

    fn done(&self) -> bool {
        self.next_chunk >= self.sizes.len() && self.req.is_none()
    }

    /// Issue the next chunk request if idle; then report completion.
    fn pump(&mut self) {
        if self.req.is_none() && self.next_chunk < self.sizes.len() {
            let size = self.sizes[self.next_chunk];
            self.req = Some(self.http.get(&mut self.sim, size));
        }
    }

    fn on_events(&mut self, events: Vec<HttpEvent>) -> Result<(), TestCaseError> {
        for ev in events {
            if let HttpEvent::Complete { id, body_dss } = ev {
                prop_assert_eq!(Some(id), self.req, "completion for a foreign request");
                let size = self.sizes[self.next_chunk];
                // Exactly the requested body, in fresh sequence space.
                prop_assert_eq!(body_dss.len(), size, "chunk length corrupted");
                prop_assert!(
                    body_dss.start >= self.last_dss_end,
                    "body DSS overlaps an earlier chunk: {} < {}",
                    body_dss.start,
                    self.last_dss_end
                );
                self.last_dss_end = body_dss.end;
                self.req = None;
                self.next_chunk += 1;
            }
        }
        Ok(())
    }
}

/// Interleave all clients on one virtual clock with the fleet loop's
/// tie-break (bottleneck departures first, then client index) until
/// every schedule drains.
fn run_fleet(
    discipline: QueueDiscipline,
    rate_mbps: f64,
    schedules: Vec<Vec<u64>>,
) -> Result<(), TestCaseError> {
    let bn = SharedBottleneck::new(
        SharedBottleneckConfig::fifo_mbps(rate_mbps).with_discipline(discipline),
    );
    let mut clients: Vec<Client> = schedules
        .into_iter()
        .enumerate()
        .map(|(k, sizes)| Client::new(k as u64, sizes))
        .collect();
    // Client-major subscription: flow id == client index (one shared
    // path per client).
    for (k, c) in clients.iter_mut().enumerate() {
        let flow = c.sim.attach_shared(PathId::WIFI, &bn);
        prop_assert_eq!(flow, k, "flows subscribe densely in client order");
        c.pump();
    }

    let mut now = SimTime::ZERO;
    let mut guard = 0u64;
    loop {
        guard += 1;
        prop_assert!(guard < 5_000_000, "runaway fleet schedule");
        // Globally earliest event; bottleneck wins ties so departures at
        // `t` precede any new offers at `t`.
        let mut best: Option<(SimTime, usize, usize)> = bn.next_departure().map(|t| (t, 0, 0));
        for (k, c) in clients.iter().enumerate() {
            if let Some(t) = c.sim.peek_time() {
                let key = (t, 1, k);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        let Some((t, kind, k)) = best else { break };
        prop_assert!(t >= now, "fleet clock went backwards: {t} < {now}");
        now = t;
        if kind == 0 {
            let dep = bn.pop_departure().expect("a departure is due");
            clients[dep.flow]
                .sim
                .on_shared_departure(PathId::WIFI, dep.ticket, dep.at, dep.marked);
            for drop in bn.take_aqm_drops() {
                clients[drop.flow]
                    .sim
                    .on_shared_drop(PathId::WIFI, drop.ticket, drop.at);
            }
            continue;
        }
        let c = &mut clients[k];
        let Some((_, outcome)) = c.sim.step() else {
            continue;
        };
        let events = match outcome {
            StepOutcome::ServerMsg { id } => c.http.on_server_msg(&mut c.sim, id),
            StepOutcome::AppTimer { id } => {
                c.http.on_app_timer(&mut c.sim, id);
                Vec::new()
            }
            StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                c.http.on_delivered(newly_delivered)
            }
            StepOutcome::Transport { .. } => Vec::new(),
        };
        c.on_events(events)?;
        c.pump();
    }

    for (k, c) in clients.iter().enumerate() {
        prop_assert!(
            c.done(),
            "client {k} wedged at chunk {}/{}",
            c.next_chunk,
            c.sizes.len()
        );
        prop_assert_eq!(c.http.inflight(), 0, "requests linger after the fleet");
    }
    let stats = bn.stats();
    prop_assert!(stats.conserved(), "conservation violated: {stats:?}");
    prop_assert_eq!(stats.queued_bytes, 0, "bytes stranded in the shared queue");
    prop_assert!(
        stats.delivered_bytes > 0,
        "the bottleneck never carried data"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random fleets (2–5 clients, random chunk schedules) over a FIFO
    /// bottleneck: conservation + exact per-flow reassembly.
    #[test]
    fn fifo_interleaving_conserves_and_never_corrupts(
        seed in 0u64..1_000_000,
        n_clients in 2usize..6,
        rate_tenths in 20u64..120,
    ) {
        let mut rng = Prng::new(seed);
        let schedules = (0..n_clients)
            .map(|_| {
                (0..1 + rng.next_below(3))
                    .map(|_| 5_000 + rng.next_below(200_000))
                    .collect()
            })
            .collect();
        run_fleet(
            QueueDiscipline::Fifo,
            rate_tenths as f64 / 10.0,
            schedules,
        )?;
    }

    /// Same property under per-flow DRR, whose round-robin interleaving
    /// reorders packets *across* flows (never within one).
    #[test]
    fn drr_interleaving_conserves_and_never_corrupts(
        seed in 0u64..1_000_000,
        n_clients in 2usize..6,
        quantum in 600u64..4000,
    ) {
        let mut rng = Prng::new(seed);
        let schedules = (0..n_clients)
            .map(|_| {
                (0..1 + rng.next_below(3))
                    .map(|_| 5_000 + rng.next_below(200_000))
                    .collect()
            })
            .collect();
        run_fleet(QueueDiscipline::FlowQueue { quantum }, 6.0, schedules)?;
    }

    /// DRR composed with per-flow PIE (FQ-PIE): byte conservation and
    /// reassembly must survive the AQM's admission drops across the
    /// whole quantum sweep. AQM drops land in `dropped_bytes`, so the
    /// `conserved()` check in `run_fleet` covers them.
    #[test]
    fn fq_pie_quantum_sweep_conserves_and_never_corrupts(
        seed in 0u64..1_000_000,
        n_clients in 2usize..6,
        quantum in 600u64..4000,
        target_ms in 2u64..40,
    ) {
        let mut rng = Prng::new(seed);
        let schedules = (0..n_clients)
            .map(|_| {
                (0..1 + rng.next_below(3))
                    .map(|_| 5_000 + rng.next_below(200_000))
                    .collect()
            })
            .collect();
        let aqm = AqmConfig::pie().with_target_ms(target_ms as f64);
        run_fleet(QueueDiscipline::FqPie { quantum, aqm }, 6.0, schedules)?;
    }

    /// CoDel's dequeue-time drops route back through `take_aqm_drops`;
    /// the per-flow ticket FIFO must stay aligned and every byte must
    /// still be accounted for.
    #[test]
    fn codel_dequeue_drops_conserve_and_never_corrupt(
        seed in 0u64..1_000_000,
        n_clients in 2usize..6,
        target_ms in 1u64..20,
    ) {
        let mut rng = Prng::new(seed);
        let schedules = (0..n_clients)
            .map(|_| {
                (0..1 + rng.next_below(3))
                    .map(|_| 5_000 + rng.next_below(200_000))
                    .collect()
            })
            .collect();
        let aqm = AqmConfig::codel().with_target_ms(target_ms as f64);
        run_fleet(QueueDiscipline::Codel(aqm), 6.0, schedules)?;
    }
}
