//! A shared LRU segment cache — the edge tier in front of the origin
//! pool.
//!
//! Fleet clients streaming the same manifest request the same chunk
//! URLs; an edge cache turns all but the first fetch of a hot chunk
//! into a cheap local hit that never touches an origin (and therefore
//! never sees an origin fault or pays an origin RTT penalty). The model
//! here is intentionally small:
//!
//! * keys are `(chunk index, quality level)` — the segment URL;
//! * values are the segment's byte size, the only "content" the
//!   simulation carries (a hit **must** report exactly the size the
//!   origin would have served: the byte-identity property test in
//!   `tests/origin_props.rs` holds the cache to that);
//! * capacity is in bytes with strict LRU eviction, deterministic
//!   because every access is stamped with a monotone tick;
//! * a hit is served as an **edge fetch**: the same connection and the
//!   same transport bytes, but with the configured (small) edge delay
//!   instead of the origin's fault script and RTT penalty.
//!
//! The handle is `Arc<Mutex<..>>` so one cache instance can sit behind
//! every client of a fleet, mirroring the `SharedBottleneck` pattern.
//! The fleet loop is sequential over one virtual clock, so lock order
//! is deterministic and artifacts stay bit-identical at any
//! `MPDASH_WORKERS` (each batch job builds its own cache).

use mpdash_sim::SimDuration;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Segment identity: `(chunk index, quality level)`.
pub type SegmentKey = (usize, usize);

/// Counters the cache maintains; snapshotted into session and fleet
/// reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the segment.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Segments evicted to make room.
    pub evictions: u64,
    /// Segments inserted in total.
    pub insertions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Hits over lookups, 0 when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheInner {
    capacity: u64,
    /// key -> (size, last-access tick). Eviction scans for the minimum
    /// tick; ticks are unique, so the victim is deterministic.
    map: HashMap<SegmentKey, (u64, u64)>,
    tick: u64,
    stats: CacheStats,
}

impl CacheInner {
    fn lookup(&mut self, key: SegmentKey) -> Option<u64> {
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some((size, touched)) => {
                *touched = self.tick;
                self.stats.hits += 1;
                Some(*size)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: SegmentKey, size: u64) {
        if size > self.capacity {
            // A segment larger than the whole cache would evict
            // everything and still not fit; refuse it.
            return;
        }
        self.tick += 1;
        if let Some((old, touched)) = self.map.get_mut(&key) {
            // Same URL, same bytes: refreshing the stamp is enough.
            debug_assert_eq!(*old, size, "a segment key must map to one size");
            *touched = self.tick;
            return;
        }
        while self.stats.resident_bytes + size > self.capacity {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(k, (sz, _))| (*k, *sz))
                .expect("resident bytes imply a resident entry");
            self.map.remove(&victim.0);
            self.stats.resident_bytes -= victim.1;
            self.stats.evictions += 1;
        }
        self.map.insert(key, (size, self.tick));
        self.stats.resident_bytes += size;
        self.stats.insertions += 1;
    }
}

/// Cloneable handle to one shared segment cache.
#[derive(Clone, Debug)]
pub struct SharedSegmentCache {
    inner: Arc<Mutex<CacheInner>>,
    capacity: u64,
    edge_delay: SimDuration,
}

impl SharedSegmentCache {
    /// An empty cache holding at most `capacity_bytes`, with the
    /// default 5 ms edge first-byte delay.
    ///
    /// # Panics
    /// If `capacity_bytes` is zero — a cache that can hold nothing
    /// would count every fetch as a miss while pretending to exist.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "cache capacity must be > 0 bytes");
        SharedSegmentCache {
            inner: Arc::new(Mutex::new(CacheInner {
                capacity: capacity_bytes,
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            })),
            capacity: capacity_bytes,
            edge_delay: SimDuration::from_millis(5),
        }
    }

    /// Set the edge first-byte delay a hit pays instead of the origin
    /// path.
    pub fn with_edge_delay(mut self, delay: SimDuration) -> Self {
        self.edge_delay = delay;
        self
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// First-byte delay of an edge (cache-hit) fetch.
    pub fn edge_delay(&self) -> SimDuration {
        self.edge_delay
    }

    /// Look up a segment: `Some(size)` on a hit (stamps the LRU entry),
    /// `None` on a miss. Both outcomes count.
    pub fn lookup(&self, key: SegmentKey) -> Option<u64> {
        self.inner.lock().expect("cache lock").lookup(key)
    }

    /// Insert a completed segment, evicting least-recently-used entries
    /// until it fits.
    pub fn insert(&self, key: SegmentKey, size: u64) {
        self.inner.lock().expect("cache lock").insert(key, size)
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_misses_and_ratio() {
        let c = SharedSegmentCache::new(1_000_000);
        assert_eq!(c.lookup((0, 2)), None);
        c.insert((0, 2), 400_000);
        assert_eq!(c.lookup((0, 2)), Some(400_000));
        assert_eq!(c.lookup((1, 2)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 2, 1));
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_coldest_segment_deterministically() {
        let c = SharedSegmentCache::new(1_000);
        c.insert((0, 0), 400);
        c.insert((1, 0), 400);
        // Touch (0,0) so (1,0) becomes the LRU victim.
        assert_eq!(c.lookup((0, 0)), Some(400));
        c.insert((2, 0), 400);
        assert_eq!(c.lookup((1, 0)), None, "cold segment evicted");
        assert_eq!(c.lookup((0, 0)), Some(400), "hot segment survives");
        assert_eq!(c.lookup((2, 0)), Some(400));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_bytes, 800);
    }

    #[test]
    fn oversized_segments_are_refused_not_thrashed() {
        let c = SharedSegmentCache::new(1_000);
        c.insert((0, 0), 400);
        c.insert((9, 9), 5_000);
        let s = c.stats();
        assert_eq!(s.insertions, 1, "the oversized insert is a no-op");
        assert_eq!(s.evictions, 0, "nothing was thrashed out for it");
        assert_eq!(c.lookup((0, 0)), Some(400));
    }

    #[test]
    fn handles_share_one_cache() {
        let a = SharedSegmentCache::new(1_000_000);
        let b = a.clone();
        a.insert((3, 1), 123);
        assert_eq!(b.lookup((3, 1)), Some(123), "clone sees the insert");
        assert_eq!(a.stats().hits, 1, "stats are shared too");
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_rejected() {
        let _ = SharedSegmentCache::new(0);
    }
}
