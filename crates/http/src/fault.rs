//! Deterministic server-side fault injection: a scripted timeline of
//! adverse *application-layer* behaviour, mirroring the link layer's
//! [`FaultScript`](../../mpdash_link/fault/index.html) one layer up.
//!
//! PR 2's link faults exercise the transport (loss, latency, outages)
//! but a perfectly healthy pair of paths can still starve a player when
//! the *server* misbehaves: CDN edges return 5xx bursts under load,
//! origin fetches stall a response body halfway through, and overloaded
//! backends sit on a request before the first byte. A
//! [`ServerFaultScript`] layers exactly those three families over the
//! simulated HTTP server:
//!
//! * **Error burst** — every request *served* inside the window is
//!   answered with a 5xx (header-only response); the client sees
//!   [`HttpEvent::Error`](crate::HttpEvent::Error) and the request
//!   lifecycle's retry policy takes over.
//! * **Stalled body** — a response whose service starts inside the
//!   window sends its header plus `after_fraction` of the body, then
//!   nothing for `stall`; the remainder follows after the stall. This
//!   is the fault the lifecycle's stall detector and mid-download
//!   abandonment exist for.
//! * **Slow first byte** — a response whose service starts inside the
//!   window is queued only after `delay` (time-to-first-byte
//!   inflation).
//! * **Blackhole** — the origin goes completely dark: a request served
//!   inside the window gets no bytes at all until the window closes
//!   (the response is deferred to the window's end, as if the origin
//!   recovered and flushed its backlog). This is the whole-origin
//!   outage the multi-origin failover machinery exists for: a
//!   wait-forever client rides it out, a circuit-breaking client
//!   abandons and fetches the range from a healthy origin instead.
//!
//! Windows are half-open `[at, at + duration)` against the *service*
//! instant (when the request reaches the server), are kept sorted by
//! start (stable in insertion order), and contain no hidden randomness:
//! the same script and the same request arrival sequence reproduce the
//! same behaviour bit-for-bit. The seeded randomness of the lifecycle
//! layer (retry jitter) lives in
//! [`LifecyclePolicy`](crate::LifecyclePolicy) instead, on per-request
//! derived RNG streams.

use mpdash_sim::{SimDuration, SimTime};

/// One family of injected server behaviour. See the module docs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ServerFaultKind {
    /// Requests served in the window get a 5xx header-only response.
    ErrorBurst,
    /// Responses starting in the window send the header plus
    /// `after_fraction` of the body, stall for `stall`, then send the
    /// rest.
    StalledBody {
        /// How long the body hangs before the remainder is sent.
        stall: SimDuration,
        /// Fraction of the body sent before the stall, in `[0, 1)`.
        after_fraction: f64,
    },
    /// Responses starting in the window are queued only after `delay`.
    SlowFirstByte {
        /// Time-to-first-byte inflation.
        delay: SimDuration,
    },
    /// The origin answers nothing until the window closes: responses
    /// starting inside it are deferred to the window's end.
    Blackhole,
}

impl ServerFaultKind {
    /// Stable snake_case name, used by trace events and the `explain`
    /// timeline.
    pub fn name(&self) -> &'static str {
        match self {
            ServerFaultKind::ErrorBurst => "error_burst",
            ServerFaultKind::StalledBody { .. } => "stalled_body",
            ServerFaultKind::SlowFirstByte { .. } => "slow_first_byte",
            ServerFaultKind::Blackhole => "blackhole",
        }
    }
}

/// One scheduled server fault: a kind active on `[at, at + duration)`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ServerFaultEvent {
    /// When the fault window opens.
    pub at: SimTime,
    /// Window length (service instants inside it are affected).
    pub duration: SimDuration,
    /// What the fault does.
    pub kind: ServerFaultKind,
}

impl ServerFaultEvent {
    /// The instant the window closes.
    pub fn end(&self) -> SimTime {
        self.at + self.duration
    }

    /// Whether a request served at `t` falls inside the window.
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.at && t < self.end()
    }
}

/// A deterministic timeline of server-side fault events.
///
/// Events may overlap and compose: a slow first byte delays the start
/// of a response whose body then stalls. An error burst takes
/// precedence over both (the 5xx is generated before any body exists).
/// Attach to a connection with
/// [`HttpLayer::with_faults`](crate::HttpLayer::with_faults).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ServerFaultScript {
    events: Vec<ServerFaultEvent>,
}

impl ServerFaultScript {
    /// An empty script (a healthy server).
    pub fn new() -> Self {
        ServerFaultScript::default()
    }

    /// Add an arbitrary event, keeping the timeline ordered (stable for
    /// simultaneous events, so the timeline is a pure function of the
    /// construction sequence).
    pub fn with_event(mut self, event: ServerFaultEvent) -> Self {
        self.events.push(event);
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Add a 5xx error-burst window.
    pub fn error_burst(self, at: SimTime, duration: SimDuration) -> Self {
        self.with_event(ServerFaultEvent {
            at,
            duration,
            kind: ServerFaultKind::ErrorBurst,
        })
    }

    /// Add a stalled-body window: responses starting inside it send the
    /// header plus `after_fraction` of the body, hang for `stall`, then
    /// send the remainder.
    ///
    /// # Panics
    /// If `after_fraction` is outside `[0, 1)` — a fraction of 1 would
    /// be a healthy response.
    pub fn stalled_body(
        self,
        at: SimTime,
        duration: SimDuration,
        stall: SimDuration,
        after_fraction: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&after_fraction),
            "after_fraction must be in [0,1)"
        );
        self.with_event(ServerFaultEvent {
            at,
            duration,
            kind: ServerFaultKind::StalledBody {
                stall,
                after_fraction,
            },
        })
    }

    /// Add a slow-first-byte window deferring response starts by
    /// `delay`.
    pub fn slow_first_byte(self, at: SimTime, duration: SimDuration, delay: SimDuration) -> Self {
        self.with_event(ServerFaultEvent {
            at,
            duration,
            kind: ServerFaultKind::SlowFirstByte { delay },
        })
    }

    /// Add a blackhole window: requests served inside it get no bytes
    /// until the window closes.
    pub fn blackhole(self, at: SimTime, duration: SimDuration) -> Self {
        self.with_event(ServerFaultEvent {
            at,
            duration,
            kind: ServerFaultKind::Blackhole,
        })
    }

    /// The ordered event timeline.
    pub fn events(&self) -> &[ServerFaultEvent] {
        &self.events
    }

    /// Whether the script has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether a request served at `t` gets a 5xx.
    pub fn error_at(&self, t: SimTime) -> bool {
        self.events
            .iter()
            .any(|e| e.kind == ServerFaultKind::ErrorBurst && e.active_at(t))
    }

    /// Total time-to-first-byte inflation for a response starting at
    /// `t`: active slow-first-byte delays sum, and an active blackhole
    /// contributes the remainder of its window (no byte leaves the
    /// origin before the outage clears).
    pub fn first_byte_delay_at(&self, t: SimTime) -> SimDuration {
        self.events
            .iter()
            .filter(|e| e.active_at(t))
            .filter_map(|e| match e.kind {
                ServerFaultKind::SlowFirstByte { delay } => Some(delay),
                ServerFaultKind::Blackhole => Some(e.end().saturating_since(t)),
                _ => None,
            })
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }

    /// The stalled-body parameters applying to a response starting at
    /// `t` (first active window wins; overlapping stalls do not
    /// compose).
    pub fn stall_at(&self, t: SimTime) -> Option<(SimDuration, f64)> {
        self.events.iter().find_map(|e| match e.kind {
            ServerFaultKind::StalledBody {
                stall,
                after_fraction,
            } if e.active_at(t) => Some((stall, after_fraction)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_orders_events_and_reports_windows() {
        let s = ServerFaultScript::new()
            .stalled_body(
                SimTime::from_secs(30),
                SimDuration::from_secs(2),
                SimDuration::from_secs(8),
                0.5,
            )
            .error_burst(SimTime::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(s.events()[0].at, SimTime::from_secs(10));
        assert_eq!(s.events()[1].at, SimTime::from_secs(30));
        assert!(s.error_at(SimTime::from_secs(12)));
        assert!(!s.error_at(SimTime::from_secs(15)), "window is half-open");
        assert_eq!(
            s.stall_at(SimTime::from_secs(31)),
            Some((SimDuration::from_secs(8), 0.5))
        );
        assert_eq!(s.stall_at(SimTime::from_secs(33)), None);
    }

    #[test]
    fn slow_first_byte_delays_sum_when_overlapping() {
        let s = ServerFaultScript::new()
            .slow_first_byte(
                SimTime::ZERO,
                SimDuration::from_secs(10),
                SimDuration::from_millis(500),
            )
            .slow_first_byte(
                SimTime::from_secs(5),
                SimDuration::from_secs(10),
                SimDuration::from_millis(250),
            );
        assert_eq!(
            s.first_byte_delay_at(SimTime::from_secs(7)),
            SimDuration::from_millis(750)
        );
        assert_eq!(
            s.first_byte_delay_at(SimTime::from_secs(12)),
            SimDuration::from_millis(250)
        );
        assert_eq!(
            s.first_byte_delay_at(SimTime::from_secs(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "after_fraction")]
    fn full_fraction_stall_rejected() {
        let _ = ServerFaultScript::new().stalled_body(
            SimTime::ZERO,
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            1.0,
        );
    }

    #[test]
    fn blackhole_defers_to_the_window_end() {
        let s = ServerFaultScript::new()
            .blackhole(SimTime::from_secs(10), SimDuration::from_secs(20))
            .slow_first_byte(
                SimTime::from_secs(10),
                SimDuration::from_secs(20),
                SimDuration::from_secs(1),
            );
        // Mid-window: the remainder of the outage plus the overlapping
        // slow-first-byte delay.
        assert_eq!(
            s.first_byte_delay_at(SimTime::from_secs(18)),
            SimDuration::from_secs(12 + 1)
        );
        // Outside the window the origin is healthy again.
        assert_eq!(
            s.first_byte_delay_at(SimTime::from_secs(30)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(ServerFaultKind::ErrorBurst.name(), "error_burst");
        assert_eq!(
            ServerFaultKind::StalledBody {
                stall: SimDuration::ZERO,
                after_fraction: 0.0
            }
            .name(),
            "stalled_body"
        );
        assert_eq!(
            ServerFaultKind::SlowFirstByte {
                delay: SimDuration::ZERO
            }
            .name(),
            "slow_first_byte"
        );
        assert_eq!(ServerFaultKind::Blackhole.name(), "blackhole");
    }
}
