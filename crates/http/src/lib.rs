//! Minimal HTTP/1.1 over the simulated MPTCP connection, with a
//! deadline-aware request lifecycle.
//!
//! DASH is plain HTTP GETs: the player requests one chunk URL at a time
//! and the server answers with a `Content-Length`-framed body (§5.1 of the
//! paper notes the chunk size "can almost always" be read from that
//! header). This crate models exactly that much of HTTP, in byte counts:
//!
//! * a GET request is [`REQUEST_BYTES`] of upstream traffic;
//! * a response is [`RESPONSE_HEADER_BYTES`] of header followed by a
//!   `Content-Length` body, all on one persistent connection;
//! * pipelined requests are answered in order (the DASH players in this
//!   workspace issue one request at a time, but the framing supports
//!   pipelining and the tests exercise it).
//!
//! On top of the framing sit the PR 4 robustness pieces:
//!
//! * [`fault`] — a scripted server-side fault model (5xx bursts, stalled
//!   response bodies, slow first byte) mirroring `mpdash-link::fault`;
//! * [`lifecycle`] — the per-request state machine deciding when to stop
//!   waiting: stall/deadline timeouts, mid-download abandonment with
//!   byte-range resume, and bounded seeded retries;
//! * request **cancellation** ([`HttpLayer::cancel`]): a small upstream
//!   message that makes the server flush the unsent tail of the response
//!   it is serving, truncating it cleanly at the transport's committed
//!   boundary so the connection-level sequence space is never corrupted.
//!
//! The layer sits *beside* the transport rather than owning it, so the
//! session can keep manipulating the MPTCP path mask on the same
//! [`MptcpSim`] the HTTP layer drives.

use mpdash_mptcp::MptcpSim;
use mpdash_obs::{TraceEvent, Tracer};
use mpdash_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

pub mod cache;
pub mod fault;
pub mod lifecycle;
pub mod origin;

pub use cache::{CacheStats, SegmentKey, SharedSegmentCache};
pub use fault::{ServerFaultEvent, ServerFaultKind, ServerFaultScript};
pub use lifecycle::{
    AbortAccounting, LifecycleAction, LifecyclePolicy, LifecycleState, RequestTracker, RetryPolicy,
};
pub use origin::{BreakerState, HealthTransition, OriginPool, OriginPoolConfig, OriginSpec};

/// Upstream bytes of one GET request (request line + typical headers).
pub const REQUEST_BYTES: u64 = 180;
/// Downstream bytes of one response header block.
pub const RESPONSE_HEADER_BYTES: u64 = 220;
/// Upstream bytes of a cancellation (connection reset / range-abort
/// signal; smaller than a full request).
pub const CANCEL_BYTES: u64 = 60;
/// High bit marking an upstream message as a cancellation of the
/// request id in the low bits. Request ids start at 1 and count up, so
/// the flag can never collide with a real id.
pub const CANCEL_FLAG: u64 = 1 << 63;
/// Base for application-timer ids owned by the HTTP layer (deferred
/// server sends). Far above the session driver's small timer ids and
/// below [`CANCEL_FLAG`].
pub const HTTP_TIMER_BASE: u64 = 1 << 62;

/// Identifier of one GET exchange.
pub type RequestId = u64;

/// A half-open range `[start, end)` of the MPTCP connection-level
/// (data-sequence) byte stream. Replaces the bare `(u64, u64)` tuples
/// that used to flow through the public API.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DssRange {
    /// First connection-stream byte of the range.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
}

impl DssRange {
    /// Length of the range in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Client-visible protocol events produced as response bytes arrive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpEvent {
    /// The response header finished arriving; `content_length` is the
    /// body size (the chunk size the MP-DASH adapter reads, §5.1).
    HeaderReceived {
        /// Which exchange.
        id: RequestId,
        /// Body size in bytes.
        content_length: u64,
    },
    /// `received` of `total` body bytes have arrived (monotone; emitted on
    /// every delivery that advances the body).
    BodyProgress {
        /// Which exchange.
        id: RequestId,
        /// Body bytes received so far.
        received: u64,
        /// Body size.
        total: u64,
    },
    /// The body completed. `body_dss` is the connection-level byte range
    /// the body occupied — the key the analysis tool uses to attribute
    /// per-path bytes to chunks.
    Complete {
        /// Which exchange.
        id: RequestId,
        /// Connection-stream range of the body.
        body_dss: DssRange,
    },
    /// The server answered with a 5xx (header-only response, no body).
    /// The lifecycle's retry policy decides when to re-request.
    Error {
        /// Which exchange.
        id: RequestId,
    },
    /// A cancelled request finished draining: `received` body bytes
    /// arrived before the truncation point and no more will come. The
    /// byte-range resume can now be issued.
    Aborted {
        /// Which exchange.
        id: RequestId,
        /// Body bytes delivered for this request in total.
        received: u64,
        /// Connection-stream range the partial body occupied.
        body_dss: DssRange,
    },
}

#[derive(Clone, Copy, Debug)]
struct Response {
    id: RequestId,
    header_remaining: u64,
    body_len: u64,
    body_received: u64,
    /// DSS offset where the body starts (known once the header is
    /// consumed).
    body_dss_start: u64,
    /// The server answered 5xx: the "body" is absent and the exchange
    /// ends in [`HttpEvent::Error`] when the header drains.
    error: bool,
    /// Set by cancellation: total response bytes (header + body) that
    /// will actually arrive. When consumption reaches this, the
    /// exchange ends in [`HttpEvent::Aborted`].
    truncated: Option<u64>,
}

impl Response {
    fn consumed(&self) -> u64 {
        (RESPONSE_HEADER_BYTES - self.header_remaining) + self.body_received
    }

    /// Response bytes that will actually arrive (after any truncation).
    fn wire_total(&self) -> u64 {
        let full = RESPONSE_HEADER_BYTES + self.body_len;
        self.truncated.map_or(full, |t| t.min(full))
    }
}

/// Server-side record of a response being (or about to be) sent.
#[derive(Clone, Copy, Debug)]
struct ServerResponse {
    /// Connection-stream offset of the response's first byte.
    start: u64,
    /// Bytes this response will occupy absent cancellation.
    total: u64,
    /// Bytes handed to the transport so far.
    queued: u64,
}

/// Per-fault-event edge flags so activation/clearing trace events are
/// emitted exactly once each.
#[derive(Clone, Copy, Debug, Default)]
struct FaultEdge {
    activated: bool,
    cleared: bool,
}

/// Where a request's response comes from — decided at `get` time,
/// applied at serve time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Route {
    /// Pool origin `i`: that origin's fault script + RTT penalty.
    Origin(usize),
    /// The edge cache: no faults, just this first-byte delay.
    Edge(SimDuration),
}

/// One persistent HTTP/1.1 connection: client framing + server behaviour.
///
/// The "server" half is the response generator: when the simulator reports
/// a [`ServerMsg`](mpdash_mptcp::StepOutcome::ServerMsg), call
/// [`HttpLayer::on_server_msg`] and the registered resource's bytes are
/// queued on the connection — possibly delayed, stalled or replaced by a
/// 5xx according to the attached [`ServerFaultScript`].
pub struct HttpLayer {
    next_id: RequestId,
    /// Sizes of resources requested but not yet answered by the server.
    requested: HashMap<RequestId, u64>,
    /// Requests cancelled before they reached the server; their later
    /// arrival must be ignored silently.
    cancelled: HashSet<RequestId>,
    /// Client-side framing state: responses currently expected, in order.
    inflight: VecDeque<Response>,
    /// Server-side state of responses whose bytes are not fully
    /// delivered yet (keyed by request; removed when the client framing
    /// finishes the exchange).
    serving: HashMap<RequestId, ServerResponse>,
    /// Deferred response parts (slow first byte / stalled body), keyed
    /// by application-timer id.
    deferred: BTreeMap<u64, (RequestId, u64)>,
    /// Earliest virtual time the next response part may be queued —
    /// enforces FIFO stream order even when an earlier response's parts
    /// were deferred by a fault.
    next_free: SimTime,
    /// Total connection-stream bytes promised by served responses
    /// (allocator for `ServerResponse::start`).
    stream_planned: u64,
    /// Total connection-stream bytes the client has consumed (framing
    /// cursor; equals delivered bytes fed through `on_delivered`).
    cursor: u64,
    next_timer: u64,
    faults: ServerFaultScript,
    fault_edges: Vec<FaultEdge>,
    /// Per-origin serve-time behaviour (fault script + RTT penalty)
    /// when a pool is attached; requests without a [`Route`] use the
    /// legacy single-script `faults`.
    origins: Vec<(ServerFaultScript, SimDuration)>,
    origin_edges: Vec<Vec<FaultEdge>>,
    /// Routing decision per unanswered request.
    routes: HashMap<RequestId, Route>,
    tracer: Tracer,
}

impl Default for HttpLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl HttpLayer {
    /// A fresh connection with no requests in flight and a healthy
    /// server.
    pub fn new() -> Self {
        HttpLayer {
            next_id: 1,
            requested: HashMap::new(),
            cancelled: HashSet::new(),
            inflight: VecDeque::new(),
            serving: HashMap::new(),
            deferred: BTreeMap::new(),
            next_free: SimTime::ZERO,
            stream_planned: 0,
            cursor: 0,
            next_timer: 0,
            faults: ServerFaultScript::new(),
            fault_edges: Vec::new(),
            origins: Vec::new(),
            origin_edges: Vec::new(),
            routes: HashMap::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a server-side fault script.
    pub fn with_faults(mut self, faults: ServerFaultScript) -> Self {
        self.fault_edges = vec![FaultEdge::default(); faults.events().len()];
        self.faults = faults;
        self
    }

    /// Attach the serve-time half of an origin pool: each origin's
    /// fault script and RTT penalty, applied to requests issued through
    /// [`HttpLayer::get_from`]. Health tracking and routing live in
    /// [`OriginPool`], owned by the caller.
    pub fn with_origins(mut self, origins: &[OriginSpec]) -> Self {
        self.origin_edges = origins
            .iter()
            .map(|o| vec![FaultEdge::default(); o.faults.events().len()])
            .collect();
        self.origins = origins
            .iter()
            .map(|o| (o.faults.clone(), o.rtt_penalty))
            .collect();
        self
    }

    /// Attach a tracer for server-fault activation/clearing edges.
    /// Observe-only: attaching one changes no behaviour.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Issue a GET for a resource of `size` bytes. Sends the request
    /// upstream and registers the expected response framing.
    pub fn get(&mut self, sim: &mut MptcpSim, size: u64) -> RequestId {
        let id = self.next_id;
        self.next_id += 1;
        self.requested.insert(id, size);
        self.inflight.push_back(Response {
            id,
            header_remaining: RESPONSE_HEADER_BYTES,
            body_len: size,
            body_received: 0,
            body_dss_start: 0,
            error: false,
            truncated: None,
        });
        sim.send_request(id, REQUEST_BYTES);
        id
    }

    /// Issue a byte-range GET for the tail `[from, total)` of a
    /// resource — the resume after an abandonment. On the wire this is
    /// an ordinary request whose response body is the missing tail.
    pub fn get_range(&mut self, sim: &mut MptcpSim, total: u64, from: u64) -> RequestId {
        debug_assert!(from <= total, "range start past resource end");
        self.get(sim, total - from)
    }

    /// Issue a GET routed to pool origin `origin`: served under that
    /// origin's fault script and RTT penalty.
    pub fn get_from(&mut self, sim: &mut MptcpSim, size: u64, origin: usize) -> RequestId {
        debug_assert!(origin < self.origins.len(), "unknown origin {origin}");
        let id = self.get(sim, size);
        self.routes.insert(id, Route::Origin(origin));
        id
    }

    /// Issue a byte-range GET for `[from, total)` routed to pool origin
    /// `origin` — the failover resume and the hedge request.
    pub fn get_range_from(
        &mut self,
        sim: &mut MptcpSim,
        total: u64,
        from: u64,
        origin: usize,
    ) -> RequestId {
        debug_assert!(from <= total, "range start past resource end");
        self.get_from(sim, total - from, origin)
    }

    /// Issue a GET served by the edge cache: a healthy response after
    /// `edge_delay`, untouched by any origin fault script.
    pub fn get_edge(
        &mut self,
        sim: &mut MptcpSim,
        size: u64,
        edge_delay: SimDuration,
    ) -> RequestId {
        let id = self.get(sim, size);
        self.routes.insert(id, Route::Edge(edge_delay));
        id
    }

    /// Cancel request `id`: send the abort signal upstream. When it
    /// reaches the server, the unsent tail of the response is flushed
    /// and the client's framing is truncated at the transport's
    /// committed boundary; the exchange then ends in
    /// [`HttpEvent::Aborted`] once the surviving bytes drain.
    pub fn cancel(&mut self, sim: &mut MptcpSim, id: RequestId) {
        debug_assert!(id < CANCEL_FLAG);
        sim.send_request(CANCEL_FLAG | id, CANCEL_BYTES);
    }

    /// The server received upstream message `id`: either a request to
    /// serve (queue its response bytes, subject to the fault script) or
    /// a cancellation to apply. Returns any client-side events the
    /// cancellation produced (an already-drained abort surfaces here).
    pub fn on_server_msg(&mut self, sim: &mut MptcpSim, id: RequestId) -> Vec<HttpEvent> {
        if id & CANCEL_FLAG != 0 {
            return self.handle_cancel(sim, id & !CANCEL_FLAG);
        }
        let Some(size) = self.requested.remove(&id) else {
            // A cancel overtook its own request; the exchange was
            // already unwound when the cancel was processed.
            let was_cancelled = self.cancelled.remove(&id);
            debug_assert!(was_cancelled, "server saw unknown request {id}");
            return Vec::new();
        };
        let now = sim.now();
        // Resolve the serve-time behaviour for this request's route:
        // whether it 5xxes, its first-byte delay (fault + RTT penalty),
        // and any mid-body stall.
        let (is_error, first_delay, stall) = match self.routes.remove(&id) {
            Some(Route::Edge(delay)) => (false, delay, None),
            Some(Route::Origin(i)) => {
                Self::trace_edges(
                    &self.tracer,
                    &self.origins[i].0,
                    &mut self.origin_edges[i],
                    now,
                );
                let (script, penalty) = &self.origins[i];
                (
                    script.error_at(now),
                    script.first_byte_delay_at(now) + *penalty,
                    script.stall_at(now),
                )
            }
            None => {
                Self::trace_edges(&self.tracer, &self.faults, &mut self.fault_edges, now);
                (
                    self.faults.error_at(now),
                    self.faults.first_byte_delay_at(now),
                    self.faults.stall_at(now),
                )
            }
        };

        if is_error {
            // 5xx: a header-only response. The client reads the status
            // line from the same header block, so its expected body
            // shrinks to zero and the exchange ends in an Error event.
            if let Some(resp) = self.inflight.iter_mut().find(|r| r.id == id) {
                resp.body_len = 0;
                resp.error = true;
            }
            let start = self.stream_planned;
            self.stream_planned += RESPONSE_HEADER_BYTES;
            self.serving.insert(
                id,
                ServerResponse {
                    start,
                    total: RESPONSE_HEADER_BYTES,
                    queued: 0,
                },
            );
            self.queue_part(sim, id, RESPONSE_HEADER_BYTES, now);
            return Vec::new();
        }

        let total = RESPONSE_HEADER_BYTES + size;
        let start = self.stream_planned;
        self.stream_planned += total;
        self.serving.insert(
            id,
            ServerResponse {
                start,
                total,
                queued: 0,
            },
        );
        let at = now + first_delay;
        if let Some((stall, frac)) = stall {
            let first_body = ((size as f64) * frac).ceil() as u64;
            let first = RESPONSE_HEADER_BYTES + first_body.min(size);
            let rest = total - first;
            self.queue_part(sim, id, first, at);
            if rest > 0 {
                self.queue_part(sim, id, rest, at + stall);
            }
        } else {
            self.queue_part(sim, id, total, at);
        }
        Vec::new()
    }

    /// An application timer fired. Returns `true` if it was an HTTP
    /// deferred-send timer (now handled); `false` means the id belongs
    /// to someone else (the session driver's own timers).
    pub fn on_app_timer(&mut self, sim: &mut MptcpSim, timer_id: u64) -> bool {
        if timer_id < HTTP_TIMER_BASE {
            return false;
        }
        let Some((id, bytes)) = self.deferred.remove(&timer_id) else {
            // A part cancelled after its timer was scheduled: benign.
            return true;
        };
        if let Some(sr) = self.serving.get_mut(&id) {
            sr.queued += bytes;
            sim.send_app(bytes);
        }
        true
    }

    /// The client's connection delivered `newly` more in-order bytes:
    /// advance framing and emit protocol events.
    pub fn on_delivered(&mut self, newly: u64) -> Vec<HttpEvent> {
        let mut events = Vec::new();
        let mut left = newly;
        loop {
            // Pop any front response that a cancellation truncated to
            // exactly what has already been consumed: it is fully
            // drained and must surface as Aborted even if no further
            // bytes belong to it.
            while let Some(resp) = self.inflight.front() {
                if resp.truncated.is_some() && resp.consumed() >= resp.wire_total() {
                    let resp = *resp;
                    self.inflight.pop_front();
                    self.serving.remove(&resp.id);
                    let start = if resp.header_remaining == 0 {
                        resp.body_dss_start
                    } else {
                        self.cursor
                    };
                    events.push(HttpEvent::Aborted {
                        id: resp.id,
                        received: resp.body_received,
                        body_dss: DssRange {
                            start,
                            end: self.cursor,
                        },
                    });
                } else {
                    break;
                }
            }
            if left == 0 {
                break;
            }
            let Some(resp) = self.inflight.front_mut() else {
                debug_assert!(false, "bytes delivered with no response expected");
                self.cursor += left;
                break;
            };
            let budget = resp.wire_total() - resp.consumed();
            if resp.header_remaining > 0 {
                let eat = left.min(resp.header_remaining).min(budget);
                resp.header_remaining -= eat;
                left -= eat;
                self.cursor += eat;
                if resp.header_remaining == 0 {
                    resp.body_dss_start = self.cursor;
                    let id = resp.id;
                    if resp.error {
                        self.inflight.pop_front();
                        self.serving.remove(&id);
                        events.push(HttpEvent::Error { id });
                        continue;
                    }
                    let body_len = resp.body_len;
                    events.push(HttpEvent::HeaderReceived {
                        id,
                        content_length: body_len,
                    });
                    // An empty body is complete the moment its header is:
                    // without this, a zero-byte resource whose delivery
                    // ends exactly at the header boundary never completes.
                    if body_len == 0 {
                        events.push(HttpEvent::Complete {
                            id,
                            body_dss: DssRange {
                                start: self.cursor,
                                end: self.cursor,
                            },
                        });
                        self.inflight.pop_front();
                        self.serving.remove(&id);
                    }
                }
                continue;
            }
            let eat = left.min(resp.body_len - resp.body_received).min(budget);
            resp.body_received += eat;
            left -= eat;
            self.cursor += eat;
            events.push(HttpEvent::BodyProgress {
                id: resp.id,
                received: resp.body_received,
                total: resp.body_len,
            });
            if resp.body_received == resp.body_len {
                let id = resp.id;
                events.push(HttpEvent::Complete {
                    id,
                    body_dss: DssRange {
                        start: resp.body_dss_start,
                        end: self.cursor,
                    },
                });
                self.inflight.pop_front();
                self.serving.remove(&id);
            }
            // A drained truncated response is handled at the top of the
            // next iteration.
        }
        events
    }

    /// Number of exchanges the client still expects bytes for.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Total connection-stream bytes consumed by framing so far.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Number of response parts whose sending is deferred by a fault.
    pub fn deferred_parts(&self) -> usize {
        self.deferred.len()
    }

    /// Queue `bytes` of response `id` on the connection at `at` (or
    /// now, if `at` is in the past), preserving FIFO stream order
    /// behind any earlier deferred part.
    fn queue_part(&mut self, sim: &mut MptcpSim, id: RequestId, bytes: u64, at: SimTime) {
        let now = sim.now();
        let at = at.max(self.next_free);
        self.next_free = at;
        if at <= now {
            if let Some(sr) = self.serving.get_mut(&id) {
                sr.queued += bytes;
            }
            sim.send_app(bytes);
        } else {
            let timer = HTTP_TIMER_BASE + self.next_timer;
            self.next_timer += 1;
            self.deferred.insert(timer, (id, bytes));
            sim.schedule_app_timer(at, timer);
        }
    }

    /// Apply a cancellation for request `id` at the server.
    fn handle_cancel(&mut self, sim: &mut MptcpSim, id: RequestId) -> Vec<HttpEvent> {
        let mut events = Vec::new();
        if self.requested.remove(&id).is_some() {
            // The cancel overtook the request: nothing is on the wire
            // yet, so the exchange unwinds immediately.
            self.cancelled.insert(id);
            self.routes.remove(&id);
            if let Some(pos) = self.inflight.iter().position(|r| r.id == id) {
                let resp = self.inflight.remove(pos).expect("position just found");
                events.push(HttpEvent::Aborted {
                    id,
                    received: resp.body_received,
                    body_dss: DssRange {
                        start: self.cursor,
                        end: self.cursor,
                    },
                });
            }
            return events;
        }
        let Some(sr) = self.serving.get_mut(&id) else {
            // The response completed before the cancel arrived; the
            // driver already saw Complete and this cancel is stale.
            return events;
        };
        // Only the most recently served response can be cancelled:
        // every earlier response is fully consumed by the client (FIFO
        // framing), so the transport's unassigned tail belongs entirely
        // to this response and flushing it cannot touch other
        // exchanges' bytes.
        debug_assert_eq!(
            sr.start + sr.total,
            self.stream_planned,
            "cancellation must target the last served response"
        );
        self.deferred.retain(|_, (rid, _)| *rid != id);
        let _ = sim.flush_unsent();
        let committed = sim.conn_total();
        debug_assert!(committed >= sr.start);
        let survive = committed.saturating_sub(sr.start);
        sr.queued = survive;
        sr.total = survive;
        self.stream_planned = committed;
        self.next_free = sim.now();
        if let Some(resp) = self.inflight.iter_mut().find(|r| r.id == id) {
            resp.truncated = Some(survive);
            if resp.consumed() >= survive {
                // Everything that will ever arrive already drained.
                let resp = *resp;
                self.inflight.retain(|r| r.id != id);
                self.serving.remove(&id);
                let start = if resp.header_remaining == 0 {
                    resp.body_dss_start
                } else {
                    self.cursor
                };
                events.push(HttpEvent::Aborted {
                    id,
                    received: resp.body_received,
                    body_dss: DssRange {
                        start,
                        end: self.cursor,
                    },
                });
            }
        }
        events
    }

    /// Emit activation/clearing trace edges for one fault script, as
    /// observed at serve instants. Edge bookkeeping runs whether or not
    /// a sink is attached so internal state never depends on tracing.
    /// An associated fn over split borrows: the caller holds the script
    /// and its edge flags from disjoint fields.
    fn trace_edges(
        tracer: &Tracer,
        faults: &ServerFaultScript,
        fault_edges: &mut [FaultEdge],
        now: SimTime,
    ) {
        for (i, e) in faults.events().iter().enumerate() {
            let edge = &mut fault_edges[i];
            if e.active_at(now) && !edge.activated {
                edge.activated = true;
                tracer.emit_with(now, || TraceEvent::ServerFaultActivated {
                    kind: e.kind.name(),
                    until_s: e.end().as_secs_f64(),
                });
            } else if now >= e.end() && edge.activated && !edge.cleared {
                edge.cleared = true;
                tracer.emit_with(now, || TraceEvent::ServerFaultCleared {
                    kind: e.kind.name(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_link::LinkConfig;
    use mpdash_mptcp::{MptcpConfig, StepOutcome};
    use mpdash_sim::SimDuration;

    fn sim() -> MptcpSim {
        let wifi = LinkConfig::constant(3.8, SimDuration::from_millis(25));
        let cell = LinkConfig::constant(3.0, SimDuration::from_millis(30));
        MptcpSim::new(MptcpConfig::two_path(wifi, cell))
    }

    /// Drive one GET to completion; returns the events seen.
    fn fetch(sim: &mut MptcpSim, http: &mut HttpLayer, size: u64) -> Vec<HttpEvent> {
        let id = http.get(sim, size);
        let mut events = Vec::new();
        loop {
            let Some((_, outcome)) = sim.step() else {
                panic!("drained before completing request {id}")
            };
            match outcome {
                StepOutcome::ServerMsg { id } => {
                    events.extend(http.on_server_msg(sim, id));
                }
                StepOutcome::AppTimer { id } => {
                    assert!(http.on_app_timer(sim, id), "unexpected non-HTTP timer");
                }
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    let evs = http.on_delivered(newly_delivered);
                    let done = evs.iter().any(|e| {
                        matches!(e,
                            HttpEvent::Complete { id: i, .. }
                            | HttpEvent::Error { id: i }
                            | HttpEvent::Aborted { id: i, .. } if *i == id)
                    });
                    events.extend(evs);
                    if done {
                        return events;
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn single_get_round_trip() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let events = fetch(&mut s, &mut h, 100_000);
        assert!(matches!(
            events.first(),
            Some(HttpEvent::HeaderReceived {
                content_length: 100_000,
                ..
            })
        ));
        let Some(HttpEvent::Complete { body_dss, .. }) = events.last() else {
            panic!("no completion")
        };
        assert_eq!(body_dss.start, RESPONSE_HEADER_BYTES);
        assert_eq!(body_dss.len(), 100_000);
        assert_eq!(h.inflight(), 0);
    }

    #[test]
    fn body_progress_is_monotone_and_complete() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let events = fetch(&mut s, &mut h, 50_000);
        let mut last = 0;
        for e in &events {
            if let HttpEvent::BodyProgress {
                received, total, ..
            } = e
            {
                assert!(*received >= last);
                assert_eq!(*total, 50_000);
                last = *received;
            }
        }
        assert_eq!(last, 50_000);
    }

    #[test]
    fn sequential_gets_share_the_connection() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let e1 = fetch(&mut s, &mut h, 30_000);
        let e2 = fetch(&mut s, &mut h, 70_000);
        let Some(HttpEvent::Complete { body_dss: r1, .. }) = e1.last() else {
            panic!()
        };
        let Some(HttpEvent::Complete { body_dss: r2, .. }) = e2.last() else {
            panic!()
        };
        // Second body sits after the first response in the stream.
        assert_eq!(r2.start, r1.end + RESPONSE_HEADER_BYTES);
        assert_eq!(r2.len(), 70_000);
    }

    #[test]
    fn pipelined_requests_complete_in_order() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let a = h.get(&mut s, 40_000);
        let b = h.get(&mut s, 10_000);
        let mut completions = Vec::new();
        while completions.len() < 2 {
            let Some((_, outcome)) = s.step() else {
                panic!("drained early")
            };
            match outcome {
                StepOutcome::ServerMsg { id } => {
                    h.on_server_msg(&mut s, id);
                }
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    for e in h.on_delivered(newly_delivered) {
                        if let HttpEvent::Complete { id, .. } = e {
                            completions.push(id);
                        }
                    }
                }
                _ => {}
            }
        }
        assert_eq!(completions, vec![a, b]);
    }

    #[test]
    fn zero_byte_resource_completes_on_header() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let events = fetch(&mut s, &mut h, 0);
        let Some(HttpEvent::Complete { body_dss, .. }) = events.last() else {
            panic!("zero-byte GET must still complete")
        };
        assert!(body_dss.is_empty(), "empty body range");
        assert_eq!(h.inflight(), 0, "nothing may linger in flight");
    }

    #[test]
    fn many_tiny_pipelined_requests_frame_correctly() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let ids: Vec<_> = (0..20).map(|i| h.get(&mut s, 100 + i)).collect();
        let mut done = Vec::new();
        while done.len() < ids.len() {
            let Some((_, o)) = s.step() else {
                panic!("drained")
            };
            match o {
                StepOutcome::ServerMsg { id } => {
                    h.on_server_msg(&mut s, id);
                }
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    for e in h.on_delivered(newly_delivered) {
                        if let HttpEvent::Complete { id, body_dss } = e {
                            let idx = (id - ids[0]) as usize;
                            assert_eq!(body_dss.len(), 100 + idx as u64);
                            done.push(id);
                        }
                    }
                }
                _ => {}
            }
        }
        assert_eq!(done, ids, "completions in request order");
    }

    #[test]
    fn transfer_time_reflects_link_rate() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        fetch(&mut s, &mut h, 5_000_000);
        // 5 MB over ~6.8 Mbps aggregate ≈ 6 s (the paper's §2.3 numbers).
        let secs = s.now().as_secs_f64();
        assert!(secs > 5.0 && secs < 8.0, "took {secs:.2}s");
    }

    #[test]
    fn error_burst_returns_5xx_and_connection_survives() {
        let mut s = sim();
        let mut h = HttpLayer::new().with_faults(
            ServerFaultScript::new().error_burst(SimTime::ZERO, SimDuration::from_secs(1)),
        );
        let events = fetch(&mut s, &mut h, 100_000);
        assert!(
            matches!(events.last(), Some(HttpEvent::Error { .. })),
            "expected a 5xx, got {events:?}"
        );
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, HttpEvent::HeaderReceived { .. })),
            "an error response carries no content header"
        );
        assert_eq!(h.inflight(), 0);
        // Past the burst window the same connection serves normally.
        while s.now() < SimTime::from_secs(1) {
            if s.step().is_none() {
                break;
            }
        }
        let events = fetch(&mut s, &mut h, 100_000);
        assert!(matches!(events.last(), Some(HttpEvent::Complete { .. })));
    }

    #[test]
    fn slow_first_byte_defers_the_whole_response() {
        let mut fast = sim();
        let mut hf = HttpLayer::new();
        fetch(&mut fast, &mut hf, 50_000);
        let baseline = fast.now();

        let mut s = sim();
        let delay = SimDuration::from_millis(800);
        let mut h = HttpLayer::new().with_faults(ServerFaultScript::new().slow_first_byte(
            SimTime::ZERO,
            SimDuration::from_secs(5),
            delay,
        ));
        fetch(&mut s, &mut h, 50_000);
        let slowed = s.now();
        let extra = slowed.saturating_since(baseline);
        assert!(
            extra >= delay.mul_f64(0.9),
            "first-byte delay not applied: extra {extra}"
        );
    }

    #[test]
    fn stalled_body_pauses_midway_then_completes() {
        let mut s = sim();
        let stall = SimDuration::from_secs(2);
        let mut h = HttpLayer::new().with_faults(ServerFaultScript::new().stalled_body(
            SimTime::ZERO,
            SimDuration::from_secs(5),
            stall,
            0.5,
        ));
        let events = fetch(&mut s, &mut h, 200_000);
        assert!(matches!(events.last(), Some(HttpEvent::Complete { .. })));
        // The transfer must take at least the stall itself.
        assert!(s.now() >= SimTime::ZERO + stall, "stall not applied");
    }

    #[test]
    fn cancel_mid_body_truncates_and_resume_fetches_the_tail() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let size: u64 = 400_000;
        let id = h.get(&mut s, size);
        let mut received;
        let mut aborted: Option<(u64, DssRange)> = None;
        // Drive until roughly a quarter of the body arrived, then cancel.
        'outer: loop {
            let Some((_, o)) = s.step() else {
                panic!("drained")
            };
            match o {
                StepOutcome::ServerMsg { id } => {
                    h.on_server_msg(&mut s, id);
                }
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    for e in h.on_delivered(newly_delivered) {
                        if let HttpEvent::BodyProgress { received: r, .. } = e {
                            received = r;
                            if r > size / 4 {
                                break 'outer;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        h.cancel(&mut s, id);
        // Drain until the abort surfaces.
        while aborted.is_none() {
            let Some((_, o)) = s.step() else {
                panic!("drained without abort")
            };
            match o {
                StepOutcome::ServerMsg { id } => {
                    for e in h.on_server_msg(&mut s, id) {
                        if let HttpEvent::Aborted {
                            received, body_dss, ..
                        } = e
                        {
                            aborted = Some((received, body_dss));
                        }
                    }
                }
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    for e in h.on_delivered(newly_delivered) {
                        match e {
                            HttpEvent::Aborted {
                                received, body_dss, ..
                            } => aborted = Some((received, body_dss)),
                            HttpEvent::Complete { .. } => {
                                panic!("cancelled request must not complete")
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
        let (got, dss) = aborted.unwrap();
        assert!(got >= received, "abort may only add in-flight bytes");
        assert!(got < size, "cancel flushed nothing");
        assert_eq!(dss.len(), got, "partial body range matches received");
        assert_eq!(h.inflight(), 0);
        // Byte-range resume for the missing tail completes and the tail
        // body sits directly after the aborted bytes plus its header.
        let events = fetch(&mut s, &mut h, size - got);
        let Some(HttpEvent::Complete { body_dss, .. }) = events.last() else {
            panic!("resume did not complete")
        };
        assert_eq!(body_dss.len(), size - got);
        assert_eq!(body_dss.start, dss.end + RESPONSE_HEADER_BYTES);
    }

    #[test]
    fn cancel_that_overtakes_its_request_unwinds_immediately() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let id = h.get(&mut s, 100_000);
        // Cancel immediately: the (smaller) cancel message can reach the
        // server before the request's serialization completes.
        h.cancel(&mut s, id);
        let mut aborted = false;
        let mut served = 0;
        for _ in 0..10_000 {
            let Some((_, o)) = s.step() else { break };
            match o {
                StepOutcome::ServerMsg { id } => {
                    served += 1;
                    for e in h.on_server_msg(&mut s, id) {
                        if matches!(e, HttpEvent::Aborted { received: 0, .. }) {
                            aborted = true;
                        }
                    }
                }
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    for e in h.on_delivered(newly_delivered) {
                        assert!(
                            !matches!(e, HttpEvent::Complete { .. }),
                            "cancelled request completed"
                        );
                    }
                }
                _ => {}
            }
        }
        assert_eq!(served, 2, "request and cancel must both arrive");
        assert!(aborted, "overtaking cancel must abort the exchange");
        assert_eq!(h.inflight(), 0);
        // The connection still works.
        let events = fetch(&mut s, &mut h, 10_000);
        assert!(matches!(events.last(), Some(HttpEvent::Complete { .. })));
    }

    #[test]
    fn cancel_during_stalled_body_aborts_without_waiting_out_the_stall() {
        let mut s = sim();
        let stall = SimDuration::from_secs(30);
        let mut h = HttpLayer::new().with_faults(ServerFaultScript::new().stalled_body(
            SimTime::ZERO,
            SimDuration::from_secs(5),
            stall,
            0.25,
        ));
        let size: u64 = 200_000;
        let id = h.get(&mut s, size);
        let mut last_progress = 0u64;
        let mut aborted_at = None;
        let mut cancelled = false;
        loop {
            let Some((t, o)) = s.step() else {
                panic!("drained")
            };
            match o {
                StepOutcome::ServerMsg { id } => {
                    for e in h.on_server_msg(&mut s, id) {
                        if let HttpEvent::Aborted { received, .. } = e {
                            aborted_at = Some((t, received));
                        }
                    }
                }
                StepOutcome::AppTimer { id } => {
                    h.on_app_timer(&mut s, id);
                }
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    for e in h.on_delivered(newly_delivered) {
                        if let HttpEvent::BodyProgress { received, .. } = e {
                            last_progress = received;
                        }
                        if let HttpEvent::Aborted { received, .. } = e {
                            aborted_at = Some((t, received));
                        }
                    }
                }
                _ => {}
            }
            // First quarter arrived and the stall is in force: cancel.
            if !cancelled && last_progress >= size / 4 {
                h.cancel(&mut s, id);
                cancelled = true;
            }
            if aborted_at.is_some() {
                break;
            }
        }
        let (t, received) = aborted_at.unwrap();
        assert!(
            t < SimTime::ZERO + stall,
            "abort must not wait out the stall (aborted at {t})"
        );
        assert_eq!(received, last_progress);
        // The stalled tail's deferred part was dropped with the cancel.
        let events = fetch(&mut s, &mut h, size - received);
        assert!(matches!(events.last(), Some(HttpEvent::Complete { .. })));
    }

    /// Drive an already-issued request to its terminal event.
    fn drive(sim: &mut MptcpSim, http: &mut HttpLayer, id: RequestId) -> Vec<HttpEvent> {
        let mut events = Vec::new();
        loop {
            let Some((_, outcome)) = sim.step() else {
                panic!("drained before finishing request {id}")
            };
            let evs = match outcome {
                StepOutcome::ServerMsg { id } => http.on_server_msg(sim, id),
                StepOutcome::AppTimer { id } => {
                    http.on_app_timer(sim, id);
                    Vec::new()
                }
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    http.on_delivered(newly_delivered)
                }
                _ => Vec::new(),
            };
            let done = evs.iter().any(|e| {
                matches!(e,
                    HttpEvent::Complete { id: i, .. }
                    | HttpEvent::Error { id: i }
                    | HttpEvent::Aborted { id: i, .. } if *i == id)
            });
            events.extend(evs);
            if done {
                return events;
            }
        }
    }

    #[test]
    fn requests_route_to_their_own_origin_script() {
        let origins = [
            OriginSpec::new("healthy"),
            OriginSpec::new("erroring").with_faults(
                ServerFaultScript::new().error_burst(SimTime::ZERO, SimDuration::from_secs(600)),
            ),
        ];
        let mut s = sim();
        let mut h = HttpLayer::new().with_origins(&origins);
        let a = h.get_from(&mut s, 20_000, 0);
        let events = drive(&mut s, &mut h, a);
        assert!(matches!(events.last(), Some(HttpEvent::Complete { .. })));
        let b = h.get_from(&mut s, 20_000, 1);
        let events = drive(&mut s, &mut h, b);
        assert!(
            matches!(events.last(), Some(HttpEvent::Error { .. })),
            "origin 1's burst must 5xx its requests: {events:?}"
        );
    }

    #[test]
    fn rtt_penalty_defers_an_origin_response() {
        let mut fast = sim();
        let mut hf = HttpLayer::new().with_origins(&[OriginSpec::new("near")]);
        let id = hf.get_from(&mut fast, 50_000, 0);
        drive(&mut fast, &mut hf, id);
        let baseline = fast.now();

        let penalty = SimDuration::from_millis(300);
        let mut s = sim();
        let mut h =
            HttpLayer::new().with_origins(&[OriginSpec::new("far").with_rtt_penalty(penalty)]);
        let id = h.get_from(&mut s, 50_000, 0);
        drive(&mut s, &mut h, id);
        let extra = s.now().saturating_since(baseline);
        assert!(
            extra >= penalty.mul_f64(0.9),
            "rtt penalty not applied: extra {extra}"
        );
    }

    #[test]
    fn edge_fetch_bypasses_origin_faults() {
        let origins = [OriginSpec::new("dark").with_faults(
            ServerFaultScript::new().blackhole(SimTime::ZERO, SimDuration::from_secs(600)),
        )];
        let mut s = sim();
        let mut h = HttpLayer::new().with_origins(&origins);
        let id = h.get_edge(&mut s, 50_000, SimDuration::from_millis(5));
        let events = drive(&mut s, &mut h, id);
        assert!(matches!(events.last(), Some(HttpEvent::Complete { .. })));
        assert!(
            s.now() < SimTime::from_secs(10),
            "edge hit must not wait out the origin blackhole (now {})",
            s.now()
        );
    }

    #[test]
    fn blackholed_request_cancels_cleanly_and_failover_streams_immediately() {
        let origins = [
            OriginSpec::new("dark").with_faults(
                ServerFaultScript::new().blackhole(SimTime::ZERO, SimDuration::from_secs(120)),
            ),
            OriginSpec::new("healthy"),
        ];
        let mut s = sim();
        let mut h = HttpLayer::new().with_origins(&origins);
        let size: u64 = 100_000;
        let dark = h.get_from(&mut s, size, 0);
        // Step until the request reaches the dark origin (stepping past
        // that point would jump the clock to the 120 s deferral timer —
        // the only other scheduled event), then fail over: cancel the
        // wedged exchange and re-request from origin 1. The cancel drops
        // the deferred (blackholed) response parts and resets stream
        // order, so the failover is not queued behind the outage window.
        loop {
            let (_, o) = s.step().expect("request must reach the origin");
            match o {
                StepOutcome::ServerMsg { id } if id == dark => {
                    h.on_server_msg(&mut s, id);
                    break;
                }
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    h.on_delivered(newly_delivered);
                }
                _ => {}
            }
        }
        assert!(
            h.deferred_parts() > 0,
            "the blackhole deferred the response"
        );
        h.cancel(&mut s, dark);
        let aborted = drive(&mut s, &mut h, dark);
        let Some(HttpEvent::Aborted { received, .. }) = aborted.last() else {
            panic!("wedged request must abort, got {aborted:?}")
        };
        assert_eq!(*received, 0, "a blackholed response delivered nothing");
        let retry = h.get_from(&mut s, size, 1);
        let events = drive(&mut s, &mut h, retry);
        assert!(matches!(events.last(), Some(HttpEvent::Complete { .. })));
        assert!(
            s.now() < SimTime::from_secs(10),
            "failover fetch must not inherit the blackhole deferral (now {})",
            s.now()
        );
    }

    #[test]
    fn server_fault_edges_are_traced_once() {
        use mpdash_obs::RingSink;
        use std::sync::Arc;
        let ring = Arc::new(RingSink::new(64));
        let mut s = sim();
        let mut h = HttpLayer::new().with_faults(
            ServerFaultScript::new().error_burst(SimTime::ZERO, SimDuration::from_millis(500)),
        );
        h.set_tracer(Tracer::new(ring.clone()));
        fetch(&mut s, &mut h, 10_000); // inside the burst: 5xx
        while s.now() < SimTime::from_secs(1) {
            if s.step().is_none() {
                break;
            }
        }
        fetch(&mut s, &mut h, 10_000); // past the burst: edge clears
        let kinds: Vec<&'static str> = ring
            .events()
            .iter()
            .map(|(_, e)| e.kind())
            .filter(|k| k.starts_with("server_fault"))
            .collect();
        assert_eq!(
            kinds,
            vec!["server_fault_activated", "server_fault_cleared"]
        );
    }
}
