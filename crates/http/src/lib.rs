//! Minimal HTTP/1.1 over the simulated MPTCP connection.
//!
//! DASH is plain HTTP GETs: the player requests one chunk URL at a time
//! and the server answers with a `Content-Length`-framed body (§5.1 of the
//! paper notes the chunk size "can almost always" be read from that
//! header). This crate models exactly that much of HTTP, in byte counts:
//!
//! * a GET request is [`REQUEST_BYTES`] of upstream traffic;
//! * a response is [`RESPONSE_HEADER_BYTES`] of header followed by a
//!   `Content-Length` body, all on one persistent connection;
//! * pipelined requests are answered in order (the DASH players in this
//!   workspace issue one request at a time, but the framing supports
//!   pipelining and the tests exercise it).
//!
//! The layer sits *beside* the transport rather than owning it, so the
//! session can keep manipulating the MPTCP path mask on the same
//! [`MptcpSim`] the HTTP layer drives.

use mpdash_mptcp::MptcpSim;
use std::collections::{HashMap, VecDeque};

/// Upstream bytes of one GET request (request line + typical headers).
pub const REQUEST_BYTES: u64 = 180;
/// Downstream bytes of one response header block.
pub const RESPONSE_HEADER_BYTES: u64 = 220;

/// Identifier of one GET exchange.
pub type RequestId = u64;

/// Client-visible protocol events produced as response bytes arrive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpEvent {
    /// The response header finished arriving; `content_length` is the
    /// body size (the chunk size the MP-DASH adapter reads, §5.1).
    HeaderReceived {
        /// Which exchange.
        id: RequestId,
        /// Body size in bytes.
        content_length: u64,
    },
    /// `received` of `total` body bytes have arrived (monotone; emitted on
    /// every delivery that advances the body).
    BodyProgress {
        /// Which exchange.
        id: RequestId,
        /// Body bytes received so far.
        received: u64,
        /// Body size.
        total: u64,
    },
    /// The body completed. `body_dss` is the connection-level byte range
    /// `[start, end)` the body occupied — the key the analysis tool uses
    /// to attribute per-path bytes to chunks.
    Complete {
        /// Which exchange.
        id: RequestId,
        /// Connection-stream range of the body.
        body_dss: (u64, u64),
    },
}

#[derive(Clone, Copy, Debug)]
struct Response {
    id: RequestId,
    header_remaining: u64,
    body_len: u64,
    body_received: u64,
    /// DSS offset where the body starts (known once the header is
    /// consumed).
    body_dss_start: u64,
}

/// One persistent HTTP/1.1 connection: client framing + server behaviour.
///
/// The "server" half is the response generator: when the simulator reports
/// a [`ServerMsg`](mpdash_mptcp::StepOutcome::ServerMsg), call
/// [`HttpLayer::on_server_msg`] and the registered resource's bytes are
/// queued on the connection.
pub struct HttpLayer {
    next_id: RequestId,
    /// Sizes of resources requested but not yet answered by the server.
    requested: HashMap<RequestId, u64>,
    /// Server-side FIFO of request arrival order (responses are sent in
    /// this order on the shared connection).
    server_order: VecDeque<RequestId>,
    /// Client-side framing state: responses currently expected, in order.
    inflight: VecDeque<Response>,
    /// Total connection-stream bytes the client has consumed (framing
    /// cursor; equals delivered bytes fed through `on_delivered`).
    cursor: u64,
}

impl Default for HttpLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl HttpLayer {
    /// A fresh connection with no requests in flight.
    pub fn new() -> Self {
        HttpLayer {
            next_id: 1,
            requested: HashMap::new(),
            server_order: VecDeque::new(),
            inflight: VecDeque::new(),
            cursor: 0,
        }
    }

    /// Issue a GET for a resource of `size` bytes. Sends the request
    /// upstream and registers the expected response framing.
    pub fn get(&mut self, sim: &mut MptcpSim, size: u64) -> RequestId {
        let id = self.next_id;
        self.next_id += 1;
        self.requested.insert(id, size);
        self.inflight.push_back(Response {
            id,
            header_remaining: RESPONSE_HEADER_BYTES,
            body_len: size,
            body_received: 0,
            body_dss_start: 0,
        });
        sim.send_request(id, REQUEST_BYTES);
        id
    }

    /// The server received request `id`: queue its response bytes on the
    /// connection (in arrival order — HTTP/1.1 pipelining).
    pub fn on_server_msg(&mut self, sim: &mut MptcpSim, id: RequestId) {
        let Some(size) = self.requested.remove(&id) else {
            debug_assert!(false, "server saw unknown request {id}");
            return;
        };
        self.server_order.push_back(id);
        sim.send_app(RESPONSE_HEADER_BYTES + size);
    }

    /// The client's connection delivered `newly` more in-order bytes:
    /// advance framing and emit protocol events.
    pub fn on_delivered(&mut self, newly: u64) -> Vec<HttpEvent> {
        let mut events = Vec::new();
        let mut left = newly;
        while left > 0 {
            let Some(resp) = self.inflight.front_mut() else {
                debug_assert!(false, "bytes delivered with no response expected");
                self.cursor += left;
                break;
            };
            if resp.header_remaining > 0 {
                let eat = left.min(resp.header_remaining);
                resp.header_remaining -= eat;
                left -= eat;
                self.cursor += eat;
                if resp.header_remaining == 0 {
                    resp.body_dss_start = self.cursor;
                    let id = resp.id;
                    let body_len = resp.body_len;
                    events.push(HttpEvent::HeaderReceived {
                        id,
                        content_length: body_len,
                    });
                    // An empty body is complete the moment its header is:
                    // without this, a zero-byte resource whose delivery
                    // ends exactly at the header boundary never completes.
                    if body_len == 0 {
                        events.push(HttpEvent::Complete {
                            id,
                            body_dss: (self.cursor, self.cursor),
                        });
                        self.inflight.pop_front();
                    }
                }
                continue;
            }
            let eat = left.min(resp.body_len - resp.body_received);
            resp.body_received += eat;
            left -= eat;
            self.cursor += eat;
            events.push(HttpEvent::BodyProgress {
                id: resp.id,
                received: resp.body_received,
                total: resp.body_len,
            });
            if resp.body_received == resp.body_len {
                events.push(HttpEvent::Complete {
                    id: resp.id,
                    body_dss: (resp.body_dss_start, self.cursor),
                });
                self.inflight.pop_front();
            }
        }
        events
    }

    /// Number of exchanges the client still expects bytes for.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Total connection-stream bytes consumed by framing so far.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_link::LinkConfig;
    use mpdash_mptcp::{MptcpConfig, StepOutcome};
    use mpdash_sim::SimDuration;

    fn sim() -> MptcpSim {
        let wifi = LinkConfig::constant(3.8, SimDuration::from_millis(25));
        let cell = LinkConfig::constant(3.0, SimDuration::from_millis(30));
        MptcpSim::new(MptcpConfig::two_path(wifi, cell))
    }

    /// Drive one GET to completion; returns the events seen.
    fn fetch(sim: &mut MptcpSim, http: &mut HttpLayer, size: u64) -> Vec<HttpEvent> {
        let id = http.get(sim, size);
        let mut events = Vec::new();
        loop {
            let Some((_, outcome)) = sim.step() else {
                panic!("drained before completing request {id}")
            };
            match outcome {
                StepOutcome::ServerMsg { id } => http.on_server_msg(sim, id),
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    let evs = http.on_delivered(newly_delivered);
                    let done = evs
                        .iter()
                        .any(|e| matches!(e, HttpEvent::Complete { id: i, .. } if *i == id));
                    events.extend(evs);
                    if done {
                        return events;
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn single_get_round_trip() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let events = fetch(&mut s, &mut h, 100_000);
        assert!(matches!(
            events.first(),
            Some(HttpEvent::HeaderReceived {
                content_length: 100_000,
                ..
            })
        ));
        let Some(HttpEvent::Complete { body_dss, .. }) = events.last() else {
            panic!("no completion")
        };
        assert_eq!(body_dss.0, RESPONSE_HEADER_BYTES);
        assert_eq!(body_dss.1 - body_dss.0, 100_000);
        assert_eq!(h.inflight(), 0);
    }

    #[test]
    fn body_progress_is_monotone_and_complete() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let events = fetch(&mut s, &mut h, 50_000);
        let mut last = 0;
        for e in &events {
            if let HttpEvent::BodyProgress {
                received, total, ..
            } = e
            {
                assert!(*received >= last);
                assert_eq!(*total, 50_000);
                last = *received;
            }
        }
        assert_eq!(last, 50_000);
    }

    #[test]
    fn sequential_gets_share_the_connection() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let e1 = fetch(&mut s, &mut h, 30_000);
        let e2 = fetch(&mut s, &mut h, 70_000);
        let Some(HttpEvent::Complete { body_dss: r1, .. }) = e1.last() else {
            panic!()
        };
        let Some(HttpEvent::Complete { body_dss: r2, .. }) = e2.last() else {
            panic!()
        };
        // Second body sits after the first response in the stream.
        assert_eq!(r2.0, r1.1 + RESPONSE_HEADER_BYTES);
        assert_eq!(r2.1 - r2.0, 70_000);
    }

    #[test]
    fn pipelined_requests_complete_in_order() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let a = h.get(&mut s, 40_000);
        let b = h.get(&mut s, 10_000);
        let mut completions = Vec::new();
        while completions.len() < 2 {
            let Some((_, outcome)) = s.step() else {
                panic!("drained early")
            };
            match outcome {
                StepOutcome::ServerMsg { id } => h.on_server_msg(&mut s, id),
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    for e in h.on_delivered(newly_delivered) {
                        if let HttpEvent::Complete { id, .. } = e {
                            completions.push(id);
                        }
                    }
                }
                _ => {}
            }
        }
        assert_eq!(completions, vec![a, b]);
    }

    #[test]
    fn zero_byte_resource_completes_on_header() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let events = fetch(&mut s, &mut h, 0);
        let Some(HttpEvent::Complete { body_dss, .. }) = events.last() else {
            panic!("zero-byte GET must still complete")
        };
        assert_eq!(body_dss.0, body_dss.1, "empty body range");
    }

    #[test]
    fn many_tiny_pipelined_requests_frame_correctly() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        let ids: Vec<_> = (0..20).map(|i| h.get(&mut s, 100 + i)).collect();
        let mut done = Vec::new();
        while done.len() < ids.len() {
            let Some((_, o)) = s.step() else {
                panic!("drained")
            };
            match o {
                StepOutcome::ServerMsg { id } => h.on_server_msg(&mut s, id),
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    for e in h.on_delivered(newly_delivered) {
                        if let HttpEvent::Complete { id, body_dss } = e {
                            let idx = (id - ids[0]) as usize;
                            assert_eq!(body_dss.1 - body_dss.0, 100 + idx as u64);
                            done.push(id);
                        }
                    }
                }
                _ => {}
            }
        }
        assert_eq!(done, ids, "completions in request order");
    }

    #[test]
    fn transfer_time_reflects_link_rate() {
        let mut s = sim();
        let mut h = HttpLayer::new();
        fetch(&mut s, &mut h, 5_000_000);
        // 5 MB over ~6.8 Mbps aggregate ≈ 6 s (the paper's §2.3 numbers).
        let secs = s.now().as_secs_f64();
        assert!(secs > 5.0 && secs < 8.0, "took {secs:.2}s");
    }
}
