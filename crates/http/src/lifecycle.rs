//! The deadline-aware request lifecycle: a per-chunk state machine that
//! decides, in virtual time, when a request should stop waiting.
//!
//! MP-DASH's contract (§5 of the paper) is that a chunk either arrives
//! by its deadline or the scheduler escalates — but the HTTP layer on
//! its own would fire a request and wait forever, so a stalled or
//! failing server wedges the whole session in a way no transport-level
//! mechanism can see. Real multipath players recover at the *request*
//! layer: MSPlayer re-issues byte-range requests for the unfinished
//! tail of a chunk, and preference-aware SVC streaming abandons
//! enhancement data mid-download rather than miss a deadline. This
//! module is that recovery logic, factored as a pure state machine so
//! the session driver stays a thin translator:
//!
//! ```text
//!             poll: stall/timeout/infeasible
//!   Inflight ───────────────────────────────▶ Cancelling
//!      ▲  │ 5xx                                   │ Aborted drained
//!      │  ▼                                       ▼
//!   AwaitingRetry ◀── on_error            (byte-range resume)
//!      │ backoff timer fires                      │
//!      └──────────────▶ Inflight ◀────────────────┘
//!                          │ all bytes received
//!                          ▼
//!                        Done
//! ```
//!
//! The machine never talks to the transport itself: it returns
//! [`LifecycleAction`]s and the driver performs the cancel / re-request
//! / timer scheduling. All randomness (retry jitter) comes from a
//! per-chunk [`Prng`] stream derived from the policy seed, so a session
//! replays bit-identically regardless of worker count or tracing.

use mpdash_sim::{derive_seed, Prng, SimDuration, SimTime};

/// Seed-stream tag for per-chunk retry jitter, in the same spirit as
/// the link layer's `GE_STREAM`/`JITTER_STREAM` constants.
const RETRY_STREAM: u64 = 0x4C1F_0000;

/// How many consecutive infeasible polls (driver ticks) must accumulate
/// before the feasibility signal triggers an abandonment. Debounces the
/// scheduler's throughput estimate, which dips transiently on loss.
const INFEASIBLE_DEBOUNCE: u32 = 4;

/// Bounded, seeded retry behaviour for server errors (5xx).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RetryPolicy {
    /// Retries with exponential backoff before falling back to naive
    /// immediate re-requests (the session must never wedge on a chunk).
    pub max_retries: u32,
    /// First backoff; doubles each attempt.
    pub base: SimDuration,
    /// Uniform jitter in `[0, jitter)` added to each backoff.
    pub jitter: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base: SimDuration::from_millis(200),
            jitter: SimDuration::from_millis(100),
        }
    }
}

/// Knobs for the whole lifecycle. Two presets matter:
/// [`wait_forever`](LifecyclePolicy::wait_forever) is the pre-PR-4
/// behaviour (the experiment baseline) and
/// [`deadline_aware`](LifecyclePolicy::deadline_aware) is the full
/// machinery.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LifecyclePolicy {
    /// Abandon when no bytes arrive for this long (stall detection).
    /// `None` disables.
    pub stall_window: Option<SimDuration>,
    /// Abandon when elapsed time exceeds `factor ×` the chunk's
    /// deadline window. `None` disables. A window of zero (request
    /// granted at or after its deadline) times out on the first poll.
    pub timeout_factor: Option<f64>,
    /// Whether abandonment + byte-range resume is enabled at all; when
    /// false the poll triggers never fire and the request rides out
    /// whatever the server does.
    pub abandon_resume: bool,
    /// On resume, re-invoke the ABR with the partial-download state and
    /// fetch the tail at the (possibly lower) level it picks.
    pub resume_downshift: bool,
    /// Abandonments allowed per chunk before the lifecycle gives up and
    /// waits (guards against abandon/resume ping-pong).
    pub max_abandons: u32,
    /// Retry behaviour for 5xx responses.
    pub retry: RetryPolicy,
    /// Base seed for the per-chunk jitter streams.
    pub seed: u64,
}

impl LifecyclePolicy {
    /// The pre-lifecycle baseline: no stall detection, no timeouts, no
    /// abandonment. Server errors are re-requested immediately with no
    /// backoff and no cap — crude, but a session can never wedge on a
    /// bounded error burst, which keeps the baseline comparable.
    pub fn wait_forever() -> Self {
        LifecyclePolicy {
            stall_window: None,
            timeout_factor: None,
            abandon_resume: false,
            resume_downshift: false,
            max_abandons: 0,
            retry: RetryPolicy {
                max_retries: 0,
                base: SimDuration::ZERO,
                jitter: SimDuration::ZERO,
            },
            seed: 0,
        }
    }

    /// Seeded exponential-backoff retries only; no abandonment. The
    /// middle rung of the `exp_lifecycle` policy ladder.
    pub fn retry_only() -> Self {
        LifecyclePolicy {
            retry: RetryPolicy::default(),
            seed: 0x11FE,
            ..LifecyclePolicy::wait_forever()
        }
    }

    /// The full deadline-aware lifecycle: stall detection, deadline
    /// timeouts, abandonment with byte-range resume, bounded seeded
    /// retries.
    pub fn deadline_aware() -> Self {
        LifecyclePolicy {
            stall_window: Some(SimDuration::from_millis(1500)),
            timeout_factor: Some(1.5),
            abandon_resume: true,
            resume_downshift: false,
            max_abandons: 4,
            retry: RetryPolicy::default(),
            seed: 0x11FE,
        }
    }

    /// Enable ABR re-selection (possible downshift) on resume.
    pub fn with_downshift(mut self) -> Self {
        self.resume_downshift = true;
        self
    }

    /// Override the jitter seed (batch runners derive per-job seeds).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether this policy is inert (the wait-forever baseline shape:
    /// nothing to poll for). Used by the driver to skip per-tick work.
    pub fn is_passive(&self) -> bool {
        !self.abandon_resume && self.stall_window.is_none() && self.timeout_factor.is_none()
    }
}

impl Default for LifecyclePolicy {
    fn default() -> Self {
        LifecyclePolicy::wait_forever()
    }
}

/// Where a tracked request currently is. See the module diagram.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LifecycleState {
    /// A request is on the wire and expected to make progress.
    Inflight,
    /// No progress for at least the stall window (observational rung
    /// before abandonment fires; visible in tests).
    Stalled,
    /// A cancel is in flight; waiting for the truncated response to
    /// drain so the resume can be issued.
    Cancelling,
    /// A 5xx arrived; the backoff timer has been scheduled.
    AwaitingRetry,
    /// All bytes for the chunk were delivered.
    Done,
}

/// What the driver must do next, as decided by the state machine.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LifecycleAction {
    /// Keep waiting.
    None,
    /// Cancel the in-flight request; `cause` is one of `"stall"`,
    /// `"deadline"`, `"infeasible"` and `received` is the byte count
    /// banked so far (the resume offset).
    Abandon {
        /// Why the request was given up on.
        cause: &'static str,
        /// Useful body bytes received before the decision.
        received: u64,
    },
    /// Re-issue the request at virtual time `at`.
    Retry {
        /// When to re-request (now + backoff).
        at: SimTime,
        /// 1-based attempt counter (for traces).
        attempt: u32,
        /// The backoff that was drawn (for traces).
        backoff: SimDuration,
    },
}

/// Byte accounting handed back when an abandoned request finishes
/// draining, splitting the transport's delivered bytes into the useful
/// prefix and the wasted tail.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AbortAccounting {
    /// Offset the byte-range resume should start from (bytes banked at
    /// the abandonment decision).
    pub resume_from: u64,
    /// Bytes of the aborted response delivered *after* the decision —
    /// duplicates of what the resume will re-fetch, counted as waste.
    pub wasted: u64,
}

/// Per-chunk lifecycle tracker. The driver creates one when it issues
/// the first request for a chunk and feeds it progress, errors, abort
/// completions and periodic polls; the tracker answers with
/// [`LifecycleAction`]s.
#[derive(Clone, Debug)]
pub struct RequestTracker {
    policy: LifecyclePolicy,
    state: LifecycleState,
    /// Target body size for the *current* request plan (shrinks if a
    /// resume downshifts the tail).
    size: u64,
    /// Useful body bytes banked across all requests for this chunk.
    received: u64,
    last_progress: SimTime,
    /// Absolute instant the deadline-factor timeout fires, if armed.
    timeout_at: Option<SimTime>,
    abandons: u32,
    retries: u32,
    infeasible_streak: u32,
    rng: Prng,
}

impl RequestTracker {
    /// Start tracking chunk `chunk` whose first request was issued at
    /// `now` for `size` body bytes, with `window` left until its
    /// deadline (`None` for bypassed/undeadlined chunks).
    pub fn new(
        policy: LifecyclePolicy,
        chunk: usize,
        now: SimTime,
        size: u64,
        window: Option<SimDuration>,
    ) -> Self {
        let timeout_at = match (policy.timeout_factor, window) {
            (Some(f), Some(w)) => Some(now + w.mul_f64(f)),
            _ => None,
        };
        RequestTracker {
            policy,
            state: LifecycleState::Inflight,
            size,
            received: 0,
            last_progress: now,
            timeout_at,
            abandons: 0,
            retries: 0,
            infeasible_streak: 0,
            rng: Prng::new(derive_seed(policy.seed, RETRY_STREAM + chunk as u64)),
        }
    }

    /// Current state (tests and the driver's assertions).
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// Useful body bytes banked so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Current target body size (after any downshifted resume).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Abandonments so far (reported into the session log).
    pub fn abandons(&self) -> u32 {
        self.abandons
    }

    /// Retries so far.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// The transport delivered body bytes: `total` is the cumulative
    /// count for the current request plan (base + current request's
    /// progress). Ignored while a cancel is draining — those bytes are
    /// the doomed tail, not progress.
    pub fn on_progress(&mut self, now: SimTime, total: u64) {
        if self.state == LifecycleState::Cancelling {
            return;
        }
        if total > self.received {
            self.received = total;
            self.last_progress = now;
            self.infeasible_streak = 0;
            if self.state == LifecycleState::Stalled {
                self.state = LifecycleState::Inflight;
            }
        }
    }

    /// Periodic check (driver tick). `infeasible` is the scheduler's
    /// verdict that the remaining bytes cannot make the deadline at the
    /// current aggregate rate; it is debounced over
    /// [`INFEASIBLE_DEBOUNCE`] consecutive polls.
    pub fn poll(&mut self, now: SimTime, infeasible: bool) -> LifecycleAction {
        if !matches!(
            self.state,
            LifecycleState::Inflight | LifecycleState::Stalled
        ) {
            return LifecycleAction::None;
        }
        if self.received >= self.size {
            return LifecycleAction::None;
        }

        let stalled = self
            .policy
            .stall_window
            .is_some_and(|w| now.saturating_since(self.last_progress) >= w);
        let timed_out = self.timeout_at.is_some_and(|t| now >= t);
        if infeasible {
            self.infeasible_streak += 1;
        } else {
            self.infeasible_streak = 0;
        }
        let infeasible_now = self.policy.abandon_resume
            && self.infeasible_streak >= INFEASIBLE_DEBOUNCE
            && self.abandons == 0;

        let cause = if timed_out {
            Some("deadline")
        } else if stalled {
            Some("stall")
        } else if infeasible_now {
            Some("infeasible")
        } else {
            None
        };

        match cause {
            Some(cause)
                if self.policy.abandon_resume && self.abandons < self.policy.max_abandons =>
            {
                self.abandons += 1;
                self.infeasible_streak = 0;
                // The deadline timeout is a one-shot: once it has
                // driven an abandonment, further escalation comes from
                // stall detection, else every post-deadline poll would
                // re-abandon the resumed request.
                self.timeout_at = None;
                self.state = LifecycleState::Cancelling;
                LifecycleAction::Abandon {
                    cause,
                    received: self.received,
                }
            }
            Some(_) if stalled => {
                self.state = LifecycleState::Stalled;
                LifecycleAction::None
            }
            _ => LifecycleAction::None,
        }
    }

    /// A 5xx arrived for the current request. Returns when to re-issue:
    /// seeded exponential backoff while attempts remain, immediate
    /// (zero backoff) once the budget is exhausted or for the
    /// wait-forever baseline.
    pub fn on_error(&mut self, now: SimTime) -> LifecycleAction {
        self.retries += 1;
        self.state = LifecycleState::AwaitingRetry;
        let policy = self.policy.retry;
        let backoff = if self.retries <= policy.max_retries && !policy.base.is_zero() {
            let exp = policy.base * (1u64 << (self.retries - 1).min(16));
            let jitter = policy.jitter.mul_f64(self.rng.next_f64());
            exp + jitter
        } else {
            SimDuration::ZERO
        };
        LifecycleAction::Retry {
            at: now + backoff,
            attempt: self.retries,
            backoff,
        }
    }

    /// The backoff timer fired and the driver re-issued the request.
    pub fn on_retry_fire(&mut self, now: SimTime) {
        debug_assert_eq!(self.state, LifecycleState::AwaitingRetry);
        self.state = LifecycleState::Inflight;
        self.last_progress = now;
    }

    /// The aborted response finished draining with `final_received`
    /// body bytes delivered in total for that request plan. Splits the
    /// count into the banked prefix and the wasted tail.
    pub fn on_aborted(&mut self, final_received: u64) -> AbortAccounting {
        debug_assert_eq!(self.state, LifecycleState::Cancelling);
        AbortAccounting {
            resume_from: self.received,
            wasted: final_received.saturating_sub(self.received),
        }
    }

    /// The byte-range resume was issued at `now` for a (possibly
    /// downshifted) plan totalling `new_size` body bytes.
    pub fn on_resumed(&mut self, now: SimTime, new_size: u64) {
        debug_assert!(new_size >= self.received);
        self.size = new_size;
        self.state = LifecycleState::Inflight;
        self.last_progress = now;
    }

    /// Every byte of the chunk arrived.
    pub fn on_complete(&mut self) {
        self.state = LifecycleState::Done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn wait_forever_never_abandons() {
        let mut tr = RequestTracker::new(
            LifecyclePolicy::wait_forever(),
            0,
            SimTime::ZERO,
            1_000_000,
            Some(SimDuration::from_secs(2)),
        );
        for i in 1..2000 {
            assert_eq!(
                tr.poll(t(i as f64 * 0.05), true),
                LifecycleAction::None,
                "baseline must ride out any stall"
            );
        }
        assert_eq!(tr.state(), LifecycleState::Inflight);
    }

    #[test]
    fn stall_without_progress_abandons_once_window_elapses() {
        let mut tr = RequestTracker::new(
            LifecyclePolicy::deadline_aware(),
            3,
            SimTime::ZERO,
            1_000_000,
            Some(SimDuration::from_secs(30)),
        );
        tr.on_progress(t(0.5), 400_000);
        assert_eq!(tr.poll(t(1.0), false), LifecycleAction::None);
        // 1.5s with no bytes: stall fires.
        match tr.poll(t(2.1), false) {
            LifecycleAction::Abandon { cause, received } => {
                assert_eq!(cause, "stall");
                assert_eq!(received, 400_000);
            }
            other => panic!("expected abandon, got {other:?}"),
        }
        assert_eq!(tr.state(), LifecycleState::Cancelling);
        // Progress during cancel is the doomed tail, not progress.
        tr.on_progress(t(2.2), 450_000);
        assert_eq!(tr.received(), 400_000);
        let acct = tr.on_aborted(450_000);
        assert_eq!(
            acct,
            AbortAccounting {
                resume_from: 400_000,
                wasted: 50_000
            }
        );
        tr.on_resumed(t(2.3), 1_000_000);
        assert_eq!(tr.state(), LifecycleState::Inflight);
    }

    #[test]
    fn deadline_timeout_is_one_shot() {
        let mut tr = RequestTracker::new(
            LifecyclePolicy::deadline_aware(),
            0,
            SimTime::ZERO,
            1_000_000,
            Some(SimDuration::from_secs(2)),
        );
        // Keep progress fresh so only the deadline factor can fire.
        tr.on_progress(t(2.9), 10_000);
        match tr.poll(t(3.0), false) {
            LifecycleAction::Abandon { cause, .. } => assert_eq!(cause, "deadline"),
            other => panic!("expected deadline abandon, got {other:?}"),
        }
        tr.on_aborted(10_000);
        tr.on_resumed(t(3.1), 1_000_000);
        // Past the deadline but making progress: no re-abandon.
        tr.on_progress(t(3.2), 20_000);
        assert_eq!(tr.poll(t(3.25), false), LifecycleAction::None);
    }

    #[test]
    fn zero_window_times_out_on_first_poll() {
        // Satellite: a request granted at/after its deadline must fail
        // fast instead of lingering in-flight.
        let mut tr = RequestTracker::new(
            LifecyclePolicy::deadline_aware(),
            0,
            t(10.0),
            500_000,
            Some(SimDuration::ZERO),
        );
        match tr.poll(t(10.0), false) {
            LifecycleAction::Abandon { cause, received } => {
                assert_eq!(cause, "deadline");
                assert_eq!(received, 0);
            }
            other => panic!("expected immediate abandon, got {other:?}"),
        }
    }

    #[test]
    fn infeasibility_is_debounced_and_fires_once() {
        let mut tr = RequestTracker::new(
            LifecyclePolicy::deadline_aware(),
            1,
            SimTime::ZERO,
            1_000_000,
            Some(SimDuration::from_secs(60)),
        );
        // Progress keeps flowing, but the scheduler says "can't make it".
        for i in 1..=3 {
            tr.on_progress(t(i as f64 * 0.05), i * 1000);
            assert_eq!(tr.poll(t(i as f64 * 0.05), true), LifecycleAction::None);
        }
        // Progress resets the streak.
        tr.on_progress(t(0.2), 4000);
        assert_eq!(tr.poll(t(0.2), true), LifecycleAction::None);
        // Four consecutive infeasible polls with no progress in between
        // (the poll right after the last progress was the first).
        assert_eq!(tr.poll(t(0.25), true), LifecycleAction::None);
        assert_eq!(tr.poll(t(0.3), true), LifecycleAction::None);
        match tr.poll(t(0.35), true) {
            LifecycleAction::Abandon { cause, .. } => assert_eq!(cause, "infeasible"),
            other => panic!("expected infeasible abandon, got {other:?}"),
        }
    }

    #[test]
    fn retry_backoff_is_exponential_seeded_and_bounded() {
        let mut tr = RequestTracker::new(
            LifecyclePolicy::retry_only(),
            7,
            SimTime::ZERO,
            100_000,
            None,
        );
        let mut prev = SimDuration::ZERO;
        for attempt in 1..=4u32 {
            let action = tr.on_error(t(attempt as f64));
            match action {
                LifecycleAction::Retry {
                    attempt: a,
                    backoff,
                    ..
                } => {
                    assert_eq!(a, attempt);
                    let floor = SimDuration::from_millis(200) * (1u64 << (attempt - 1));
                    assert!(backoff >= floor, "backoff below exponential floor");
                    assert!(
                        backoff < floor + SimDuration::from_millis(100),
                        "jitter out of range"
                    );
                    assert!(backoff > prev);
                    prev = backoff;
                }
                other => panic!("expected retry, got {other:?}"),
            }
            tr.on_retry_fire(t(attempt as f64 + 1.0));
        }
        // Budget exhausted: immediate naive retry, zero backoff.
        match tr.on_error(t(10.0)) {
            LifecycleAction::Retry {
                attempt, backoff, ..
            } => {
                assert_eq!(attempt, 5);
                assert_eq!(backoff, SimDuration::ZERO);
            }
            other => panic!("expected retry, got {other:?}"),
        }
        // Same seed, same chunk => identical draw sequence.
        let mut tr2 = RequestTracker::new(
            LifecyclePolicy::retry_only(),
            7,
            SimTime::ZERO,
            100_000,
            None,
        );
        assert_eq!(tr2.on_error(t(1.0)), {
            let mut tr3 = RequestTracker::new(
                LifecyclePolicy::retry_only(),
                7,
                SimTime::ZERO,
                100_000,
                None,
            );
            tr3.on_error(t(1.0))
        });
    }

    #[test]
    fn abandons_are_capped() {
        let mut policy = LifecyclePolicy::deadline_aware();
        policy.max_abandons = 1;
        let mut tr = RequestTracker::new(policy, 0, SimTime::ZERO, 1_000_000, None);
        match tr.poll(t(2.0), false) {
            LifecycleAction::Abandon { .. } => {}
            other => panic!("expected abandon, got {other:?}"),
        }
        tr.on_aborted(0);
        tr.on_resumed(t(2.1), 1_000_000);
        // Stalls again, but the budget is spent.
        assert_eq!(tr.poll(t(10.0), false), LifecycleAction::None);
        assert_eq!(tr.state(), LifecycleState::Stalled);
    }
}
