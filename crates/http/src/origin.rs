//! Multi-origin serving: a pool of origins with per-origin health,
//! circuit breaking, deterministic failover routing, and the hedged
//! fetch trigger.
//!
//! The paper assumes one healthy origin; in production the origin tier
//! is itself a failure domain (MSPlayer makes multi-source fetch a
//! first-class citizen for exactly this workload). This module models
//! that tier:
//!
//! * [`OriginSpec`] — one origin: an id, its own
//!   [`ServerFaultScript`], and an RTT penalty added to every response
//!   it serves (a far-away origin is slower to first byte).
//! * [`OriginPool`] — per-origin circuit breakers plus the routing
//!   policy. Every origin runs the classic state machine: **Closed**
//!   (healthy) counts consecutive failures; at the threshold it trips
//!   **Open** for a seeded exponentially backed-off window; when the
//!   window lapses the next route attempt promotes it to **Half-Open**
//!   and admits exactly one probe, whose outcome either closes the
//!   breaker or re-opens it with a longer window.
//! * **Hedging** — [`OriginPoolConfig::hedge_due`] is the deterministic
//!   trigger: when a deadline-granted request has made no progress for
//!   a configurable quantile of its deadline budget, the session cancels
//!   it and races the missing byte range on a second origin
//!   ([`OriginPool::hedge_target`]); first completion wins and the
//!   loser's tail is cancelled through the ordinary
//!   [`cancel`](crate::HttpLayer::cancel)/`flush_unsent` path.
//!
//! Everything here is a pure, seeded state machine over virtual time:
//! no wall clock, no hidden randomness — the same failure sequence
//! reproduces the same breaker timeline bit-for-bit, which is what lets
//! fleet artifacts stay identical at any `MPDASH_WORKERS`.

use crate::fault::ServerFaultScript;
use mpdash_sim::{derive_seed, Prng, SimDuration, SimTime};

/// RNG stream offset for per-origin breaker jitter, far from the
/// lifecycle's `RETRY_STREAM`.
const BREAKER_STREAM: u64 = 0x0B1E_0000;

/// Exponent cap on the breaker backoff doubling (2^6 = 64x base).
const BACKOFF_EXP_CAP: u32 = 6;

/// One origin server in the pool.
#[derive(Clone, Debug, PartialEq)]
pub struct OriginSpec {
    /// Stable identifier (scenario JSON key, explain label).
    pub id: String,
    /// This origin's own fault timeline.
    pub faults: ServerFaultScript,
    /// Extra time-to-first-byte on every response this origin serves —
    /// the distance cost of a farther replica.
    pub rtt_penalty: SimDuration,
}

impl OriginSpec {
    /// A healthy, zero-penalty origin.
    pub fn new(id: impl Into<String>) -> Self {
        OriginSpec {
            id: id.into(),
            faults: ServerFaultScript::new(),
            rtt_penalty: SimDuration::ZERO,
        }
    }

    /// Attach a fault script to this origin.
    pub fn with_faults(mut self, faults: ServerFaultScript) -> Self {
        self.faults = faults;
        self
    }

    /// Set the per-response RTT penalty.
    pub fn with_rtt_penalty(mut self, penalty: SimDuration) -> Self {
        self.rtt_penalty = penalty;
        self
    }
}

/// Circuit-breaker state of one origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: no requests until the backoff window lapses.
    Open,
    /// Backoff lapsed: exactly one probe request is admitted.
    HalfOpen,
}

impl BreakerState {
    /// Stable snake_case name for traces and rendered timelines.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Pool-wide policy knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct OriginPoolConfig {
    /// The origins, in priority order (ties in health and penalty break
    /// toward the lower index).
    pub origins: Vec<OriginSpec>,
    /// Consecutive failures that trip a Closed breaker Open.
    pub failure_threshold: u32,
    /// First Open window; doubles on every re-trip (capped at 64x).
    pub backoff_base: SimDuration,
    /// Uniform seeded jitter added to every Open window so a fleet's
    /// breakers do not all re-probe in the same tick.
    pub backoff_jitter: SimDuration,
    /// Hedge when a deadline-granted request has made no progress for
    /// this fraction of its deadline budget, in `(0, 1]`. `None`
    /// disables hedging.
    pub hedge_quantile: Option<f64>,
    /// Seed for the per-origin jitter streams.
    pub seed: u64,
}

impl OriginPoolConfig {
    /// A pool over `origins` with the default breaker policy: trip
    /// after 2 consecutive failures, 2 s base backoff with 500 ms
    /// jitter, hedging disabled.
    pub fn new(origins: Vec<OriginSpec>) -> Self {
        OriginPoolConfig {
            origins,
            failure_threshold: 2,
            backoff_base: SimDuration::from_secs(2),
            backoff_jitter: SimDuration::from_millis(500),
            hedge_quantile: None,
            seed: 0x0816,
        }
    }

    /// Enable hedging at `quantile` of the deadline budget.
    ///
    /// # Panics
    /// If `quantile` is outside `(0, 1]` — 0 would hedge every request
    /// instantly and anything above 1 can never fire before the
    /// deadline itself.
    pub fn with_hedge_quantile(mut self, quantile: f64) -> Self {
        assert!(
            quantile > 0.0 && quantile <= 1.0,
            "hedge quantile must be in (0, 1], got {quantile}"
        );
        self.hedge_quantile = Some(quantile);
        self
    }

    /// Set the consecutive-failure trip threshold.
    pub fn with_failure_threshold(mut self, threshold: u32) -> Self {
        self.failure_threshold = threshold.max(1);
        self
    }

    /// Set the breaker backoff base and jitter.
    pub fn with_backoff(mut self, base: SimDuration, jitter: SimDuration) -> Self {
        self.backoff_base = base;
        self.backoff_jitter = jitter;
        self
    }

    /// Set the jitter seed (fleets derive a per-client seed here).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The deterministic hedge trigger: fire when `idle` (time since
    /// the request last made progress) has consumed `hedge_quantile` of
    /// the deadline budget `window`.
    pub fn hedge_due(&self, window: SimDuration, idle: SimDuration) -> bool {
        match self.hedge_quantile {
            Some(q) => idle >= window.mul_f64(q),
            None => false,
        }
    }
}

/// A breaker transition worth observing (trace + metrics material).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthTransition {
    /// Which origin.
    pub origin: usize,
    /// The state entered.
    pub state: BreakerState,
    /// Consecutive-failure streak at the transition.
    pub failures: u32,
}

#[derive(Clone, Debug)]
struct OriginHealth {
    state: BreakerState,
    /// Consecutive failures since the last success.
    streak: u32,
    /// When an Open breaker may admit its half-open probe.
    open_until: SimTime,
    /// Times tripped — drives the exponential backoff.
    opens: u32,
    /// A half-open probe is in flight; no second request until it
    /// resolves.
    probing: bool,
    rng: Prng,
}

impl OriginHealth {
    fn new(seed: u64, index: usize) -> Self {
        OriginHealth {
            state: BreakerState::Closed,
            streak: 0,
            open_until: SimTime::ZERO,
            opens: 0,
            probing: false,
            rng: Prng::new(derive_seed(seed, BREAKER_STREAM + index as u64)),
        }
    }
}

/// The health-tracked origin pool: breaker per origin plus the
/// deterministic routing policy.
#[derive(Clone, Debug)]
pub struct OriginPool {
    cfg: OriginPoolConfig,
    health: Vec<OriginHealth>,
}

impl OriginPool {
    /// Build the pool; every breaker starts Closed.
    ///
    /// # Panics
    /// If the config has no origins — routing from an empty pool is
    /// meaningless.
    pub fn new(cfg: OriginPoolConfig) -> Self {
        assert!(!cfg.origins.is_empty(), "an origin pool needs >= 1 origin");
        let health = (0..cfg.origins.len())
            .map(|i| OriginHealth::new(cfg.seed, i))
            .collect();
        OriginPool { cfg, health }
    }

    /// The pool's configuration (origin specs included).
    pub fn config(&self) -> &OriginPoolConfig {
        &self.cfg
    }

    /// Number of origins.
    pub fn len(&self) -> usize {
        self.cfg.origins.len()
    }

    /// True when the pool has no origins (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cfg.origins.is_empty()
    }

    /// Current breaker state of `origin`.
    pub fn state(&self, origin: usize) -> BreakerState {
        self.health[origin].state
    }

    /// A request served by `origin` succeeded: reset the streak and
    /// close the breaker (a successful half-open probe heals it).
    pub fn on_success(&mut self, origin: usize) -> Option<HealthTransition> {
        let h = &mut self.health[origin];
        h.streak = 0;
        h.probing = false;
        if h.state != BreakerState::Closed {
            h.state = BreakerState::Closed;
            h.opens = 0;
            Some(HealthTransition {
                origin,
                state: BreakerState::Closed,
                failures: 0,
            })
        } else {
            None
        }
    }

    /// A request served by `origin` failed (5xx, stall abandonment, or
    /// a lost hedge race): bump the streak and trip the breaker at the
    /// threshold. A failed half-open probe re-opens immediately with a
    /// doubled window.
    pub fn on_failure(&mut self, origin: usize, now: SimTime) -> Option<HealthTransition> {
        let h = &mut self.health[origin];
        h.streak += 1;
        let trip = h.state == BreakerState::HalfOpen || h.streak >= self.cfg.failure_threshold;
        if !trip {
            return None;
        }
        h.probing = false;
        h.state = BreakerState::Open;
        h.opens += 1;
        let exp = self
            .cfg
            .backoff_base
            .mul_f64((1u64 << (h.opens - 1).min(BACKOFF_EXP_CAP)) as f64);
        let jitter = self.cfg.backoff_jitter.mul_f64(h.rng.next_f64());
        h.open_until = now + exp + jitter;
        Some(HealthTransition {
            origin,
            state: BreakerState::Open,
            failures: h.streak,
        })
    }

    /// Route the next request at `now`: the best available origin, with
    /// any lapsed Open breakers promoted to Half-Open on the way (the
    /// promotions are returned so the caller can trace them).
    ///
    /// Preference order: Closed beats Half-Open; within a tier, the
    /// lowest `(rtt_penalty, index)` wins. A Half-Open origin is only a
    /// candidate while no probe is outstanding; routing to it marks the
    /// probe as launched. If every breaker is Open and unexpired, the
    /// pool degrades to the least-bad choice — the origin whose window
    /// lapses soonest — because not fetching at all is worse than
    /// probing a sick origin.
    pub fn route(&mut self, now: SimTime) -> (usize, Vec<HealthTransition>) {
        let transitions = self.promote_lapsed(now);
        let pick = self
            .candidate(now, None)
            .unwrap_or_else(|| self.least_bad(None));
        self.mark_probe(pick);
        (pick, transitions)
    }

    /// Pick a hedge origin distinct from `avoid`, or `None` when no
    /// other origin is currently available — hedging onto an Open
    /// breaker would just double the damage.
    pub fn hedge_target(
        &mut self,
        now: SimTime,
        avoid: usize,
    ) -> (Option<usize>, Vec<HealthTransition>) {
        let transitions = self.promote_lapsed(now);
        let pick = self.candidate(now, Some(avoid));
        if let Some(origin) = pick {
            self.mark_probe(origin);
        }
        (pick, transitions)
    }

    /// Promote every lapsed Open breaker to Half-Open.
    fn promote_lapsed(&mut self, now: SimTime) -> Vec<HealthTransition> {
        let mut out = Vec::new();
        for (i, h) in self.health.iter_mut().enumerate() {
            if h.state == BreakerState::Open && now >= h.open_until {
                h.state = BreakerState::HalfOpen;
                h.probing = false;
                out.push(HealthTransition {
                    origin: i,
                    state: BreakerState::HalfOpen,
                    failures: h.streak,
                });
            }
        }
        out
    }

    /// Best currently-admissible origin, or `None` when every breaker
    /// is Open (or busy probing, or excluded).
    fn candidate(&self, _now: SimTime, avoid: Option<usize>) -> Option<usize> {
        (0..self.len())
            .filter(|&i| Some(i) != avoid)
            .filter(|&i| match self.health[i].state {
                BreakerState::Closed => true,
                BreakerState::HalfOpen => !self.health[i].probing,
                BreakerState::Open => false,
            })
            .min_by_key(|&i| {
                let tier = match self.health[i].state {
                    BreakerState::Closed => 0u8,
                    _ => 1,
                };
                (tier, self.cfg.origins[i].rtt_penalty, i)
            })
    }

    /// No admissible candidate: every breaker is Open or busy probing.
    /// Prefer the Open origin whose window lapses soonest — a Half-Open
    /// origin already carries its single probe and must not absorb
    /// extra traffic while an Open alternative exists. Only when every
    /// remaining origin is mid-probe does the pool pile on, cheapest
    /// first.
    fn least_bad(&self, avoid: Option<usize>) -> usize {
        (0..self.len())
            .filter(|&i| Some(i) != avoid)
            .filter(|&i| self.health[i].state == BreakerState::Open)
            .min_by_key(|&i| (self.health[i].open_until, i))
            .unwrap_or_else(|| {
                (0..self.len())
                    .filter(|&i| Some(i) != avoid)
                    .min_by_key(|&i| (self.cfg.origins[i].rtt_penalty, i))
                    .unwrap_or(0)
            })
    }

    /// Routing to a Half-Open origin launches its single probe.
    fn mark_probe(&mut self, origin: usize) {
        let h = &mut self.health[origin];
        if h.state == BreakerState::HalfOpen {
            h.probing = true;
        }
    }

    /// Breaker-state sanity probe for the runtime watchdog: a handful
    /// of integer comparisons over the state machine's own invariants.
    /// `Err` carries a static description of the first inconsistency.
    pub fn sanity(&self) -> Result<(), &'static str> {
        for h in &self.health {
            if h.probing && h.state != BreakerState::HalfOpen {
                return Err("probe outstanding outside the half-open state");
            }
            if h.state == BreakerState::Open && h.opens == 0 {
                return Err("open breaker that never tripped");
            }
            if h.state == BreakerState::Closed && h.streak >= self.cfg.failure_threshold.max(1) {
                return Err("closed breaker at or past its failure threshold");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_origin_cfg() -> OriginPoolConfig {
        OriginPoolConfig::new(vec![
            OriginSpec::new("near"),
            OriginSpec::new("mid").with_rtt_penalty(SimDuration::from_millis(20)),
            OriginSpec::new("far").with_rtt_penalty(SimDuration::from_millis(40)),
        ])
    }

    #[test]
    fn routes_prefer_the_lowest_penalty_closed_origin() {
        let mut pool = OriginPool::new(three_origin_cfg());
        let (pick, _) = pool.route(SimTime::ZERO);
        assert_eq!(pick, 0, "healthy pool routes to the nearest origin");
    }

    #[test]
    fn breaker_trips_after_threshold_and_steers_routing_away() {
        let mut pool = OriginPool::new(three_origin_cfg());
        let t = SimTime::from_secs(10);
        assert!(
            pool.on_failure(0, t).is_none(),
            "one failure keeps it closed"
        );
        let tr = pool.on_failure(0, t).expect("second failure trips");
        assert_eq!(tr.state, BreakerState::Open);
        assert_eq!(tr.failures, 2);
        assert_eq!(pool.state(0), BreakerState::Open);
        let (pick, _) = pool.route(t);
        assert_eq!(pick, 1, "routing falls over to the next-nearest origin");
    }

    #[test]
    fn half_open_admits_one_probe_then_closes_on_success() {
        let mut pool = OriginPool::new(three_origin_cfg());
        let t = SimTime::from_secs(10);
        pool.on_failure(0, t);
        pool.on_failure(0, t);
        // Ride past the first backoff window (2 s base + <= 500 ms jitter).
        let later = t + SimDuration::from_secs(3);
        let (pick, transitions) = pool.route(later);
        assert_eq!(pool.state(0), BreakerState::HalfOpen, "window lapsed");
        assert!(transitions
            .iter()
            .any(|tr| tr.origin == 0 && tr.state == BreakerState::HalfOpen));
        // Closed origin 1 still outranks the half-open probe target.
        assert_eq!(pick, 1);
        // Trip 1 and 2 too: the only candidate left is the probe.
        for o in [1, 2] {
            pool.on_failure(o, later);
            pool.on_failure(o, later);
        }
        let (pick, _) = pool.route(later);
        assert_eq!(pick, 0, "half-open origin admits its probe");
        // While the probe is outstanding no second request may land on it:
        // the pool degrades to the least-bad open breaker.
        let (second, _) = pool.route(later);
        assert_ne!(second, 0, "single probe only");
        assert!(pool.on_success(0).is_some(), "probe success closes");
        assert_eq!(pool.state(0), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_with_a_longer_window() {
        let mut pool = OriginPool::new(three_origin_cfg());
        let t = SimTime::from_secs(10);
        pool.on_failure(0, t);
        pool.on_failure(0, t);
        let first_window = pool.health[0].open_until.saturating_since(t);
        let later = t + SimDuration::from_secs(3);
        pool.route(later); // promotes to half-open
        let tr = pool.on_failure(0, later).expect("failed probe re-trips");
        assert_eq!(tr.state, BreakerState::Open);
        let second_window = pool.health[0].open_until.saturating_since(later);
        assert!(
            second_window > first_window,
            "backoff must grow: {second_window} vs {first_window}"
        );
    }

    #[test]
    fn backoff_jitter_is_seeded_and_bounded() {
        let windows: Vec<SimDuration> = [1u64, 2]
            .iter()
            .map(|&seed| {
                let mut pool = OriginPool::new(three_origin_cfg().with_seed(seed));
                pool.on_failure(0, SimTime::ZERO);
                pool.on_failure(0, SimTime::ZERO);
                pool.health[0].open_until.saturating_since(SimTime::ZERO)
            })
            .collect();
        let base = SimDuration::from_secs(2);
        for w in &windows {
            assert!(*w >= base && *w < base + SimDuration::from_millis(500));
        }
        assert_ne!(
            windows[0], windows[1],
            "different seeds draw different jitter"
        );
        // Same seed reproduces the same window bit-for-bit.
        let mut again = OriginPool::new(three_origin_cfg().with_seed(1));
        again.on_failure(0, SimTime::ZERO);
        again.on_failure(0, SimTime::ZERO);
        assert_eq!(
            again.health[0].open_until.saturating_since(SimTime::ZERO),
            windows[0]
        );
    }

    #[test]
    fn hedge_target_excludes_the_stalled_origin() {
        let mut pool = OriginPool::new(three_origin_cfg());
        let (target, _) = pool.hedge_target(SimTime::ZERO, 0);
        assert_eq!(target, Some(1), "nearest other origin");
        // With both alternatives tripped there is nothing to hedge onto.
        for o in [1, 2] {
            pool.on_failure(o, SimTime::ZERO);
            pool.on_failure(o, SimTime::ZERO);
        }
        let (target, _) = pool.hedge_target(SimTime::ZERO, 0);
        assert_eq!(target, None, "hedging onto an open breaker is refused");
    }

    #[test]
    fn hedge_target_rides_the_half_open_probe_deterministically() {
        // The hedge trigger racing a breaker's Half-Open probe window:
        // hedging may *be* the probe (one per origin), but a second
        // hedge while the probe is outstanding must be refused — the
        // single-probe rule holds no matter which code path routes.
        let mut pool = OriginPool::new(three_origin_cfg());
        let t0 = SimTime::from_secs(10);
        // Trip both alternatives; only the primary (0) stays closed.
        for o in [1, 2] {
            pool.on_failure(o, t0);
            pool.on_failure(o, t0);
        }
        let (none, _) = pool.hedge_target(t0, 0);
        assert_eq!(none, None, "open breakers are not hedge material");
        // Past the backoff window, the hedge call itself promotes the
        // lapsed breaker to Half-Open and launches the probe.
        let later = t0 + SimDuration::from_secs(3);
        let (probe, transitions) = pool.hedge_target(later, 0);
        assert_eq!(probe, Some(1), "the hedge is the half-open probe");
        assert!(transitions
            .iter()
            .any(|tr| tr.origin == 1 && tr.state == BreakerState::HalfOpen));
        assert_eq!(pool.state(1), BreakerState::HalfOpen);
        // While that probe is outstanding, origin 1 is off the table;
        // origin 2 (also lapsed to Half-Open) absorbs the next hedge,
        // and once both probes are in flight nothing is left.
        let (second, _) = pool.hedge_target(later, 0);
        assert_eq!(second, Some(2), "next hedge takes the other probe slot");
        let (third, _) = pool.hedge_target(later, 0);
        assert_eq!(third, None, "one probe per half-open origin, no piling on");
        pool.sanity().expect("mid-probe state is self-consistent");
        // Probe outcomes resolve the race deterministically: a win
        // closes the breaker, a loss re-opens it with a longer window.
        assert!(pool.on_success(1).is_some());
        assert_eq!(pool.state(1), BreakerState::Closed);
        let tr = pool.on_failure(2, later).expect("failed probe re-trips");
        assert_eq!(tr.state, BreakerState::Open);
        pool.sanity().expect("resolved state is self-consistent");
        // The same sequence replayed is bit-identical.
        let replay = || {
            let mut p = OriginPool::new(three_origin_cfg());
            for o in [1, 2] {
                p.on_failure(o, t0);
                p.on_failure(o, t0);
            }
            let mut picks = Vec::new();
            for _ in 0..3 {
                picks.push(p.hedge_target(later, 0).0);
            }
            picks
        };
        assert_eq!(replay(), replay());
    }

    #[test]
    fn sanity_accepts_every_reachable_state() {
        let mut pool = OriginPool::new(three_origin_cfg());
        pool.sanity().expect("fresh pool");
        pool.on_failure(0, SimTime::ZERO);
        pool.sanity().expect("closed with a sub-threshold streak");
        pool.on_failure(0, SimTime::ZERO);
        pool.sanity().expect("open");
        for o in [1, 2] {
            pool.on_failure(o, SimTime::ZERO);
            pool.on_failure(o, SimTime::ZERO);
        }
        // Every window lapses by t=5 (2 s base + <= 500 ms jitter), so
        // routing promotes all three to Half-Open and launches the
        // cheapest one's probe.
        let (pick, _) = pool.route(SimTime::from_secs(5));
        assert_eq!(pick, 0);
        pool.sanity().expect("half-open with a probe in flight");
        // Hand-corrupt a probe flag: the watchdog probe must notice.
        pool.health[0].state = BreakerState::Closed;
        assert_eq!(
            pool.sanity(),
            Err("probe outstanding outside the half-open state")
        );
    }

    #[test]
    fn hedge_due_fires_at_the_quantile() {
        let cfg = three_origin_cfg().with_hedge_quantile(0.25);
        let window = SimDuration::from_secs(8);
        assert!(!cfg.hedge_due(window, SimDuration::from_millis(1_999)));
        assert!(cfg.hedge_due(window, SimDuration::from_secs(2)));
        let off = three_origin_cfg();
        assert!(
            !off.hedge_due(window, SimDuration::from_secs(8)),
            "disabled"
        );
    }

    #[test]
    #[should_panic(expected = "hedge quantile")]
    fn zero_hedge_quantile_rejected() {
        let _ = three_origin_cfg().with_hedge_quantile(0.0);
    }

    #[test]
    #[should_panic(expected = ">= 1 origin")]
    fn empty_pool_rejected() {
        let _ = OriginPool::new(OriginPoolConfig::new(Vec::new()));
    }
}
