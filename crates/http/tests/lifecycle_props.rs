//! Property tests on the request lifecycle: random cancellation/resume
//! points under random server-fault scripts never corrupt the
//! connection-level reassembly.
//!
//! The invariants, per chunk:
//!
//! * every chunk eventually completes — the cancel/resume/retry loop
//!   can neither wedge the connection nor lose the tail;
//! * the body is delivered **exactly once**: each byte-range resume
//!   starts exactly where the aborted request stopped, and the final
//!   `Complete` carries precisely the missing tail;
//! * response body ranges never overlap and ascend in the
//!   connection-level sequence space (DSS bytes are never reused);
//! * virtual time is monotone across the whole schedule.

use mpdash_http::{HttpEvent, HttpLayer, ServerFaultScript};
use mpdash_link::LinkConfig;
use mpdash_mptcp::{MptcpConfig, MptcpSim, StepOutcome};
use mpdash_sim::{Prng, SimDuration, SimTime};
use proptest::prelude::*;

fn sim() -> MptcpSim {
    let wifi = LinkConfig::constant(3.8, SimDuration::from_millis(25));
    let cell = LinkConfig::constant(3.0, SimDuration::from_millis(30));
    MptcpSim::new(MptcpConfig::two_path(wifi, cell))
}

/// Derive a random server-fault script (0–3 events mixing all three
/// families) from one seed — the vendored proptest only generates
/// scalars and vectors, so structured inputs come from the repo's own
/// deterministic [`Prng`].
fn build_script(seed: u64) -> ServerFaultScript {
    let mut rng = Prng::new(seed);
    let n = rng.next_below(4);
    let mut script = ServerFaultScript::new();
    for _ in 0..n {
        let at = SimTime::from_secs(rng.next_below(25));
        let dur = SimDuration::from_secs(1 + rng.next_below(7));
        script = match rng.next_below(3) {
            0 => script.error_burst(at, dur),
            1 => script.stalled_body(
                at,
                dur,
                SimDuration::from_secs(1 + rng.next_below(10)),
                rng.next_below(100) as f64 / 100.0,
            ),
            _ => script.slow_first_byte(
                at,
                dur,
                SimDuration::from_millis(100 * (1 + rng.next_below(20))),
            ),
        };
    }
    script
}

/// Fetch `chunks` sequentially over one connection, cancelling each
/// chunk's request whenever its delivered bytes cross the next
/// threshold and resuming from the abort point. Returns the number of
/// cancel/resume cycles actually exercised.
fn run_chunks(script: ServerFaultScript, chunks: &[(u64, Vec<u64>)]) -> Result<u64, TestCaseError> {
    let mut s = sim();
    let mut http = HttpLayer::new().with_faults(script);
    let mut cycles = 0u64;
    let mut last_dss_end = 0u64;
    let mut prev_t = SimTime::ZERO;

    for &(size, ref cancel_points) in chunks {
        let mut pending = cancel_points.clone();
        pending.sort_unstable();
        pending.dedup();
        pending.reverse(); // pop() yields the smallest threshold first
        let mut base = 0u64; // bytes banked across requests of this chunk
        let mut req = http.get(&mut s, size);
        let mut cancelling = false;
        let mut done = false;
        let mut guard = 0u64;

        while !done {
            let Some((t, outcome)) = s.step() else {
                return Err(TestCaseError::fail(format!(
                    "queue drained at {base}/{size} of a chunk"
                )));
            };
            prop_assert!(t >= prev_t, "virtual time went backwards: {t} < {prev_t}");
            prev_t = t;
            guard += 1;
            prop_assert!(guard < 5_000_000, "runaway chunk schedule");

            let events = match outcome {
                StepOutcome::ServerMsg { id } => http.on_server_msg(&mut s, id),
                StepOutcome::AppTimer { id } => {
                    http.on_app_timer(&mut s, id);
                    Vec::new()
                }
                StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                    http.on_delivered(newly_delivered)
                }
                StepOutcome::Transport { .. } => Vec::new(),
            };
            for ev in events {
                match ev {
                    HttpEvent::BodyProgress {
                        id,
                        received,
                        total,
                    } if id == req => {
                        if cancelling {
                            continue;
                        }
                        let chunk_received = base + received;
                        // Cross the next cancellation threshold while the
                        // request is still incomplete: abandon mid-body.
                        if let Some(&th) = pending.last() {
                            if chunk_received >= th && received < total {
                                pending.pop();
                                http.cancel(&mut s, req);
                                cancelling = true;
                            }
                        }
                    }
                    HttpEvent::Complete { id, body_dss } if id == req => {
                        // Exactly-once delivery: the final request holds
                        // precisely the missing tail.
                        prop_assert_eq!(body_dss.len(), size - base);
                        prop_assert!(
                            body_dss.start >= last_dss_end,
                            "body DSS overlaps an earlier response"
                        );
                        last_dss_end = body_dss.end.max(last_dss_end);
                        done = true;
                    }
                    HttpEvent::Error { id } if id == req => {
                        // 5xx during a burst: naive immediate re-request
                        // of the same missing range.
                        req = http.get_range(&mut s, size, base);
                        cancelling = false;
                    }
                    HttpEvent::Aborted {
                        id,
                        received,
                        body_dss,
                    } if id == req => {
                        prop_assert!(
                            body_dss.start >= last_dss_end || body_dss.is_empty(),
                            "aborted DSS overlaps an earlier response"
                        );
                        prop_assert_eq!(body_dss.len(), received);
                        last_dss_end = body_dss.end.max(last_dss_end);
                        // Byte-range resume from exactly the abort point
                        // (a too-late cancel degenerates to a zero-byte
                        // tail request, which must also complete).
                        base += received;
                        prop_assert!(base <= size);
                        req = http.get_range(&mut s, size, base);
                        cancelling = false;
                        cycles += 1;
                    }
                    _ => {}
                }
            }
        }
        prop_assert_eq!(http.inflight(), 0, "requests linger after a chunk");
    }
    Ok(cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mid-body cancellation points under random server-fault
    /// scripts: reassembly stays exact, nothing wedges, time is monotone.
    #[test]
    fn random_cancel_resume_never_corrupts_reassembly(
        script_seed in 0u64..1_000_000,
        chunk_seed in 0u64..1_000_000,
        n_chunks in 1usize..5,
    ) {
        let mut rng = Prng::new(chunk_seed);
        let chunks: Vec<(u64, Vec<u64>)> = (0..n_chunks)
            .map(|_| {
                let size = 10_000 + rng.next_below(390_000);
                let points = (0..rng.next_below(3))
                    .map(|_| rng.next_below(100) * size / 100)
                    .collect();
                (size, points)
            })
            .collect();
        run_chunks(build_script(script_seed), &chunks)?;
    }

    /// With no faults and an early cancel point on every large chunk,
    /// the run exercises at least one full abandon+resume cycle — the
    /// property above cannot pass vacuously. Chunks must be much larger
    /// than the bandwidth-delay product: a cancel that arrives after the
    /// whole response is already assigned to subflows has nothing left
    /// to flush and legitimately degenerates to a normal Complete.
    #[test]
    fn interior_cancel_points_actually_cycle(
        sizes in prop::collection::vec(200_000u64..400_000, 1..4),
        pct in 5u64..30,
    ) {
        let chunks: Vec<(u64, Vec<u64>)> = sizes
            .iter()
            .map(|&s| (s, vec![s * pct / 100]))
            .collect();
        let cycles = run_chunks(ServerFaultScript::new(), &chunks)?;
        prop_assert!(cycles >= 1, "no cancel cycle over {} chunks", chunks.len());
    }
}
