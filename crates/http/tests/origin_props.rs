//! Property tests on the multi-origin serving layer: the shared segment
//! cache and the hedged-fetch cancellation protocol.
//!
//! The invariants:
//!
//! * a cache hit is **byte-identical** to the origin fetch it replaces:
//!   under random per-origin fault scripts and LRU eviction pressure, a
//!   lookup either misses or returns exactly the byte count the origin
//!   delivered, and serving that hit through the edge path delivers
//!   exactly those bytes;
//! * the hedge race (cancel the primary, race the missing tail on a
//!   second origin over the same FIFO connection) always resolves to
//!   **exactly one winner**, covers the chunk exactly once — the
//!   winner's tail starts where the committed prefix ends — and the
//!   loser's cancellation never corrupts connection-level DSS
//!   reassembly or wedges the connection for later chunks.

use mpdash_http::{HttpEvent, HttpLayer, OriginSpec, ServerFaultScript, SharedSegmentCache};
use mpdash_link::LinkConfig;
use mpdash_mptcp::{MptcpConfig, MptcpSim, StepOutcome};
use mpdash_sim::{Prng, SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;

fn sim() -> MptcpSim {
    let wifi = LinkConfig::constant(3.8, SimDuration::from_millis(25));
    let cell = LinkConfig::constant(3.0, SimDuration::from_millis(30));
    MptcpSim::new(MptcpConfig::two_path(wifi, cell))
}

/// Derive a random server-fault script (0–3 events mixing all four
/// families, the blackhole included) from one seed — structured inputs
/// come from the repo's own deterministic [`Prng`].
fn build_script(seed: u64) -> ServerFaultScript {
    let mut rng = Prng::new(seed);
    let n = rng.next_below(4);
    let mut script = ServerFaultScript::new();
    for _ in 0..n {
        let at = SimTime::from_secs(rng.next_below(25));
        let dur = SimDuration::from_secs(1 + rng.next_below(6));
        script = match rng.next_below(4) {
            0 => script.error_burst(at, dur),
            1 => script.stalled_body(
                at,
                dur,
                SimDuration::from_secs(1 + rng.next_below(8)),
                rng.next_below(100) as f64 / 100.0,
            ),
            2 => script.slow_first_byte(
                at,
                dur,
                SimDuration::from_millis(100 * (1 + rng.next_below(20))),
            ),
            _ => script.blackhole(at, dur),
        };
    }
    script
}

/// One connection to a two-origin pool, pumped event by event with the
/// monotone-time and runaway guards every property shares.
struct Pump {
    s: MptcpSim,
    http: HttpLayer,
    prev_t: SimTime,
    guard: u64,
}

impl Pump {
    fn new(origins: &[OriginSpec]) -> Self {
        Pump {
            s: sim(),
            http: HttpLayer::new().with_origins(origins),
            prev_t: SimTime::ZERO,
            guard: 0,
        }
    }

    fn step(&mut self) -> Result<Vec<HttpEvent>, TestCaseError> {
        let Some((t, outcome)) = self.s.step() else {
            return Err(TestCaseError::fail("event queue drained mid-exchange"));
        };
        prop_assert!(
            t >= self.prev_t,
            "virtual time went backwards: {} < {}",
            t,
            self.prev_t
        );
        self.prev_t = t;
        self.guard += 1;
        prop_assert!(self.guard < 5_000_000, "runaway schedule");
        Ok(match outcome {
            StepOutcome::ServerMsg { id } => self.http.on_server_msg(&mut self.s, id),
            StepOutcome::AppTimer { id } => {
                self.http.on_app_timer(&mut self.s, id);
                Vec::new()
            }
            StepOutcome::Transport { newly_delivered } if newly_delivered > 0 => {
                self.http.on_delivered(newly_delivered)
            }
            StepOutcome::Transport { .. } => Vec::new(),
        })
    }

    /// Complete a whole resource from `origin`, naively re-requesting
    /// the missing range on a 5xx. Returns the delivered byte total.
    fn fetch_origin(&mut self, size: u64, origin: usize) -> Result<u64, TestCaseError> {
        let base = 0u64; // a 5xx delivers no body, so nothing ever banks
        let mut req = self.http.get_from(&mut self.s, size, origin);
        loop {
            for ev in self.step()? {
                match ev {
                    HttpEvent::Complete { id, body_dss } if id == req => {
                        prop_assert_eq!(body_dss.len(), size - base);
                        return Ok(base + body_dss.len());
                    }
                    HttpEvent::Error { id } if id == req => {
                        req = self.http.get_range_from(&mut self.s, size, base, origin);
                    }
                    HttpEvent::Aborted { id, .. } if id == req => {
                        return Err(TestCaseError::fail("uncancelled request aborted"));
                    }
                    _ => {}
                }
            }
        }
    }

    /// Serve a cache hit through the edge path; faults never apply.
    fn fetch_edge(&mut self, size: u64) -> Result<u64, TestCaseError> {
        let req = self
            .http
            .get_edge(&mut self.s, size, SimDuration::from_millis(5));
        loop {
            for ev in self.step()? {
                match ev {
                    HttpEvent::Complete { id, body_dss } if id == req => {
                        return Ok(body_dss.len());
                    }
                    HttpEvent::Error { id } | HttpEvent::Aborted { id, .. } if id == req => {
                        return Err(TestCaseError::fail("edge fetch must be clean"));
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Outcome tallies of [`run_hedged_chunks`], for vacuity proofs.
#[derive(Default)]
struct HedgeTally {
    primary_wins: u64,
    hedge_wins: u64,
    wasted: u64,
}

/// Fetch `chunks` sequentially, hedging each one when its delivered
/// bytes cross `threshold(size)` before completion: cancel the primary
/// and race the missing tail on origin 1, first terminal wins, the
/// loser is cancelled (primary-wins case) and its bytes counted as
/// waste. Asserts exactly-one-winner, exact chunk coverage, and
/// ascending DSS ranges throughout.
fn run_hedged_chunks(
    pump: &mut Pump,
    chunks: &[(u64, u64)], // (size, hedge threshold in bytes)
) -> Result<HedgeTally, TestCaseError> {
    let mut tally = HedgeTally::default();
    let mut last_dss_end = 0u64;
    for &(size, threshold) in chunks {
        let base = 0u64; // a pre-race 5xx re-requests the whole body
        let mut primary = pump.http.get_from(&mut pump.s, size, 0);
        let mut hedge: Option<(u64, u64)> = None; // (req id, range start)
        let mut loser: Option<u64> = None; // cancelled hedge awaiting terminal
        let mut done = false;
        while !done || loser.is_some() {
            for ev in pump.step()? {
                match ev {
                    HttpEvent::BodyProgress {
                        id,
                        received,
                        total,
                    } if id == primary && hedge.is_none() && !done => {
                        let committed = base + received;
                        if committed >= threshold && received < total {
                            // The hedge protocol: cancel first, then the
                            // range request — FIFO guarantees the server
                            // sees them in that order.
                            pump.http.cancel(&mut pump.s, primary);
                            let h = pump.http.get_range_from(&mut pump.s, size, committed, 1);
                            hedge = Some((h, committed));
                        }
                    }
                    HttpEvent::Complete { id, body_dss } if id == primary && !done => {
                        // Primary won (a too-late cancel has nothing left
                        // to flush); the hedge is now the loser.
                        prop_assert_eq!(body_dss.len(), size - base);
                        prop_assert!(body_dss.start >= last_dss_end);
                        last_dss_end = body_dss.end.max(last_dss_end);
                        if let Some((h, _)) = hedge.take() {
                            pump.http.cancel(&mut pump.s, h);
                            loser = Some(h);
                            tally.primary_wins += 1;
                        }
                        done = true;
                    }
                    HttpEvent::Error { id } if id == primary && !done => {
                        match hedge {
                            // Mid-race a 5xx on the cancelled primary just
                            // hands the race to the hedge.
                            Some(_) => {}
                            None => {
                                primary = pump.http.get_range_from(&mut pump.s, size, base, 0);
                            }
                        }
                    }
                    HttpEvent::Aborted {
                        id,
                        received,
                        body_dss,
                    } if id == primary && !done => {
                        // The cancel landed: the hedge inherits the chunk.
                        let (_, from) = hedge.expect("abort without a cancel");
                        prop_assert!(body_dss.len() == received);
                        prop_assert!(body_dss.start >= last_dss_end || body_dss.is_empty());
                        last_dss_end = body_dss.end.max(last_dss_end);
                        let committed = base + received;
                        prop_assert!(
                            committed >= from,
                            "committed bytes shrank across the cancel"
                        );
                        // Bytes past the hedge's range start arrive twice:
                        // that is the waste the session layer charges.
                        tally.wasted += committed - from;
                    }
                    ev => {
                        let (hedge_req, from) = match hedge {
                            Some(pair) => pair,
                            None => match (&ev, loser) {
                                // The cancelled loser drains with whatever
                                // terminal it was owed; any outcome is
                                // legal, none may wedge the connection.
                                (HttpEvent::Aborted { id, received, .. }, Some(l)) if *id == l => {
                                    tally.wasted += received;
                                    loser = None;
                                    continue;
                                }
                                (HttpEvent::Complete { id, body_dss }, Some(l)) if *id == l => {
                                    prop_assert!(body_dss.start >= last_dss_end);
                                    last_dss_end = body_dss.end.max(last_dss_end);
                                    tally.wasted += body_dss.len();
                                    loser = None;
                                    continue;
                                }
                                (HttpEvent::Error { id }, Some(l)) if *id == l => {
                                    loser = None;
                                    continue;
                                }
                                _ => continue,
                            },
                        };
                        match ev {
                            HttpEvent::Complete { id, body_dss } if id == hedge_req => {
                                // Hedge won: its body is exactly the tail
                                // the primary never delivered.
                                prop_assert_eq!(body_dss.len(), size - from);
                                prop_assert!(body_dss.start >= last_dss_end);
                                last_dss_end = body_dss.end.max(last_dss_end);
                                hedge = None;
                                tally.hedge_wins += 1;
                                done = true;
                            }
                            HttpEvent::Error { id } if id == hedge_req => {
                                // 5xx on the hedge origin: naive re-request
                                // of the same tail keeps the race alive.
                                let h = pump.http.get_range_from(&mut pump.s, size, from, 1);
                                hedge = Some((h, from));
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        prop_assert_eq!(pump.http.inflight(), 0, "requests linger after a chunk");
    }
    Ok(tally)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random fault scripts + a cache far smaller than the working set:
    /// every origin fetch delivers exactly the requested bytes, every
    /// hit returns exactly what the origin served, and serving the hit
    /// through the edge path delivers exactly those bytes.
    #[test]
    fn cache_hits_are_byte_identical_to_origin_fetches(
        script_seed in 0u64..1_000_000,
        access_seed in 0u64..1_000_000,
        n_ops in 4usize..10,
    ) {
        let origins = [
            OriginSpec::new("faulty").with_faults(build_script(script_seed)),
            OriginSpec::new("unused"),
        ];
        let mut pump = Pump::new(&origins);
        // Holds ~2 of the larger segments: eviction pressure is the rule,
        // not the exception.
        let cache = SharedSegmentCache::new(260_000);
        let mut served: HashMap<(usize, usize), u64> = HashMap::new();
        let mut rng = Prng::new(access_seed);
        for _ in 0..n_ops {
            let chunk = rng.next_below(4) as usize;
            let level = rng.next_below(2) as usize;
            // Size is a pure function of the key, as a segment URL's is.
            let size = 40_000 + (chunk as u64 * 2 + level as u64) * 23_000;
            match cache.lookup((chunk, level)) {
                Some(cached) => {
                    let origin_bytes = served[&(chunk, level)];
                    prop_assert_eq!(cached, origin_bytes, "hit diverged from origin");
                    let delivered = pump.fetch_edge(cached)?;
                    prop_assert_eq!(delivered, origin_bytes, "edge bytes diverged");
                }
                None => {
                    let delivered = pump.fetch_origin(size, 0)?;
                    prop_assert_eq!(delivered, size, "origin fetch lost bytes");
                    served.insert((chunk, level), delivered);
                    cache.insert((chunk, level), delivered);
                }
            }
        }
        let stats = cache.stats();
        prop_assert!(stats.resident_bytes <= cache.capacity_bytes());
    }

    /// Random fault scripts on both origins, random hedge points:
    /// every race has exactly one winner, coverage is exact, DSS ranges
    /// ascend, and the loser's cancellation never wedges later chunks.
    #[test]
    fn hedge_races_never_corrupt_reassembly(
        primary_seed in 0u64..1_000_000,
        hedge_seed in 0u64..1_000_000,
        chunk_seed in 0u64..1_000_000,
        n_chunks in 1usize..5,
    ) {
        let origins = [
            OriginSpec::new("primary").with_faults(build_script(primary_seed)),
            OriginSpec::new("backup")
                .with_rtt_penalty(SimDuration::from_millis(20))
                .with_faults(build_script(hedge_seed)),
        ];
        let mut rng = Prng::new(chunk_seed);
        let chunks: Vec<(u64, u64)> = (0..n_chunks)
            .map(|_| {
                let size = 30_000 + rng.next_below(370_000);
                // Sometimes past the end: those chunks never hedge.
                let threshold = rng.next_below(120) * size / 100;
                (size, threshold)
            })
            .collect();
        let mut pump = Pump::new(&origins);
        run_hedged_chunks(&mut pump, &chunks)?;
    }

}

/// Vacuity proof for the race properties above: sweeping the hedge
/// point across a fault-free chunk reaches **both** outcomes — an early
/// hedge aborts the primary mid-flight and the hedge serves the tail; a
/// hedge launched inside the final in-flight window degenerates the
/// cancel, the primary completes, and the loser is cancelled. Without
/// this, `hedge_races_never_corrupt_reassembly` could pass while one
/// whole branch of the protocol never ran.
#[test]
fn both_race_outcomes_are_reachable() {
    let origins = [OriginSpec::new("primary"), OriginSpec::new("backup")];
    let size = 320_000u64;
    let mut primary_wins = 0u64;
    let mut hedge_wins = 0u64;
    for pct in (5..=95).step_by(5).chain([96, 97, 98, 99]) {
        let mut pump = Pump::new(&origins);
        let tally = run_hedged_chunks(&mut pump, &[(size, size * pct / 100)])
            .unwrap_or_else(|e| panic!("hedge at {pct}%: {e}"));
        assert!(
            tally.primary_wins + tally.hedge_wins <= 1,
            "one chunk raced more than once at {pct}%"
        );
        primary_wins += tally.primary_wins;
        hedge_wins += tally.hedge_wins;
    }
    assert!(hedge_wins >= 1, "no hedge point ever beat the primary");
    assert!(
        primary_wins >= 1,
        "no hedge point ever degenerated to a primary win"
    );
}
