//! Active queue management controllers for the shared bottleneck.
//!
//! Three standard AQMs, all reimplemented on integer virtual time so a
//! run is a pure function of its config (no floats on the control path,
//! no wall clock, no global RNG):
//!
//! * **PIE** (RFC 8033, timestamp variant) — a proportional-integral
//!   controller updates a drop probability every `interval` of virtual
//!   time from the queue-delay error, and admission drops (or
//!   ECN-marks) arriving packets with that probability via a seeded
//!   [`Prng`] Bernoulli draw.
//! * **CoDel** (RFC 8289) — tracks per-packet sojourn time at dequeue;
//!   once sojourn has stayed above `target` for a full `interval` it
//!   enters a dropping state and drops on the `interval / sqrt(count)`
//!   schedule. The square root runs on a 16.16 fixed-point integer
//!   `isqrt`, so the schedule is bit-deterministic.
//! * **FQ-PIE** — composed in [`shared`](crate::shared): the existing
//!   DRR flow queues, with one independent [`Pie`] instance (and one
//!   derived RNG stream) per flow.
//!
//! Probabilities live in units of 2⁻³² (`PROB_ONE`); the PIE gains
//! `alpha`/`beta` are 16.16 fixed point (units of 2⁻¹⁶ per second).
//! Simplifications versus the RFCs, chosen for determinism and noted
//! here so nobody hunts for missing code: PIE's burst allowance and
//! auto-tuned gain scaling are omitted, and queue delay is the measured
//! sojourn of the latest departed packet (the "timestamp" estimator)
//! rather than the departure-rate estimator.

use mpdash_sim::{Prng, SimDuration, SimTime};

/// Probability scale: `PROB_ONE` ≡ 1.0. A drop probability is a `u64`
/// in `[0, PROB_ONE]`.
pub const PROB_ONE: u64 = 1 << 32;

/// Fixed-point scale for the PIE gains (2¹⁶ ≡ 1.0).
pub const GAIN_ONE: u32 = 1 << 16;

/// Fixed seed for AQM Bernoulli draws. The controllers need a
/// reproducible coin, not entropy; scenarios may override per
/// bottleneck via [`AqmConfig::with_seed`].
pub const DEFAULT_AQM_SEED: u64 = 0x00A1_C305_EED0_u64;

/// Static knobs shared by every controller. Integer-only so the
/// discipline enum stays `Copy + Eq`; scenario floats (alpha/beta,
/// fractional milliseconds) are converted once at parse time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AqmConfig {
    /// Queue-delay target in nanoseconds.
    pub target_ns: u64,
    /// PIE update period / CoDel sliding window, nanoseconds.
    pub interval_ns: u64,
    /// PIE proportional gain, 16.16 fixed point (per second).
    pub alpha_fp: u32,
    /// PIE derivative gain, 16.16 fixed point (per second).
    pub beta_fp: u32,
    /// Mark instead of dropping (the ECN-style early signal the MPTCP
    /// sender answers with a multiplicative cwnd backoff).
    pub ecn: bool,
    /// Seed for the Bernoulli coin (PIE only; CoDel is coin-free).
    pub seed: u64,
}

impl AqmConfig {
    /// RFC 8033 defaults: 15 ms target, 15 ms update period,
    /// alpha = 0.125/s, beta = 1.25/s.
    pub fn pie() -> Self {
        AqmConfig {
            target_ns: 15_000_000,
            interval_ns: 15_000_000,
            alpha_fp: GAIN_ONE / 8,
            beta_fp: GAIN_ONE + GAIN_ONE / 4,
            ecn: false,
            seed: DEFAULT_AQM_SEED,
        }
    }

    /// RFC 8289 defaults: 5 ms target, 100 ms interval. The PIE gains
    /// are carried but unused.
    pub fn codel() -> Self {
        AqmConfig {
            target_ns: 5_000_000,
            interval_ns: 100_000_000,
            ..AqmConfig::pie()
        }
    }

    /// Override the queue-delay target (fractional milliseconds).
    pub fn with_target_ms(mut self, ms: f64) -> Self {
        self.target_ns = (ms * 1e6) as u64;
        self
    }

    /// Override the update/sliding interval (fractional milliseconds).
    pub fn with_interval_ms(mut self, ms: f64) -> Self {
        self.interval_ns = (ms * 1e6) as u64;
        self
    }

    /// Override the PIE proportional gain (per second).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha_fp = (alpha * f64::from(GAIN_ONE)).round() as u32;
        self
    }

    /// Override the PIE derivative gain (per second).
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta_fp = (beta * f64::from(GAIN_ONE)).round() as u32;
        self
    }

    /// Mark instead of dropping.
    pub fn with_ecn(mut self, ecn: bool) -> Self {
        self.ecn = ecn;
        self
    }

    /// Reseed the Bernoulli coin.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What the controller decided for one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AqmVerdict {
    /// Let it through untouched.
    Deliver,
    /// Let it through carrying a congestion mark (ECN mode).
    Mark,
    /// Drop it.
    Drop,
}

/// Integer square root of a `u128` (floor).
fn isqrt(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    // Newton's method from a power-of-two overestimate; converges in a
    // handful of iterations and is exact at the floor.
    let mut x = 1u128 << (n.ilog2() / 2 + 1);
    loop {
        let next = (x + n / x) / 2;
        if next >= x {
            return x;
        }
        x = next;
    }
}

/// `interval / sqrt(count)` on 16.16 fixed point.
fn control_law(interval_ns: u64, count: u64) -> u64 {
    // isqrt(count << 32) == floor(sqrt(count) * 2^16).
    let sqrt_fp = isqrt((count.max(1) as u128) << 32);
    (((interval_ns as u128) << 16) / sqrt_fp) as u64
}

/// One PIE controller instance (whole queue, or one flow of FQ-PIE).
#[derive(Clone, Debug)]
pub struct Pie {
    cfg: AqmConfig,
    /// Drop probability in `[0, PROB_ONE]`.
    prob: u64,
    /// Latest queue-delay sample (sojourn of the last departure), ns.
    qdelay_ns: u64,
    /// Sample at the previous update.
    qdelay_old_ns: u64,
    /// Next scheduled probability update.
    next_update: SimTime,
    rng: Prng,
}

impl Pie {
    /// Fresh controller with probability zero.
    pub fn new(cfg: AqmConfig) -> Self {
        Pie {
            cfg,
            prob: 0,
            qdelay_ns: 0,
            qdelay_old_ns: 0,
            next_update: SimTime::from_nanos(cfg.interval_ns),
            rng: Prng::new(cfg.seed),
        }
    }

    /// Current drop probability in parts per million (telemetry).
    pub fn prob_ppm(&self) -> u64 {
        self.prob * 1_000_000 / PROB_ONE
    }

    /// Feed the sojourn time of a departing packet — the timestamp
    /// queue-delay estimator.
    pub fn on_departure(&mut self, now: SimTime, sojourn: SimDuration) {
        self.catch_up(now);
        self.qdelay_ns = sojourn.as_nanos();
    }

    /// Run every update whose period has elapsed by `now`. Lazy but
    /// exact: probability only matters at admission decisions, and the
    /// update sequence is a pure function of (samples, virtual time).
    fn catch_up(&mut self, now: SimTime) {
        while now >= self.next_update {
            self.update();
            self.next_update += SimDuration::from_nanos(self.cfg.interval_ns);
            if self.prob == 0 && self.qdelay_ns == 0 && self.qdelay_old_ns == 0 {
                // Fully decayed and idle: fast-forward past the gap
                // instead of looping once per empty interval.
                if now >= self.next_update {
                    let gap = now.as_nanos() - self.next_update.as_nanos();
                    let skip = gap / self.cfg.interval_ns + 1;
                    self.next_update += SimDuration::from_nanos(skip * self.cfg.interval_ns);
                }
            }
        }
    }

    /// One RFC 8033 §4.2 probability update.
    fn update(&mut self) {
        let qdelay = self.qdelay_ns as i128;
        let err = i128::from(self.cfg.alpha_fp) * (qdelay - self.cfg.target_ns as i128)
            + i128::from(self.cfg.beta_fp) * (qdelay - self.qdelay_old_ns as i128);
        // err is in (2^-16 · ns/s); probability units are 2^-32, so
        // dp = err · 2^16 / 1e9.
        let dp = err * i128::from(GAIN_ONE) / 1_000_000_000;
        let p = i128::from(self.prob) + dp;
        self.prob = p.clamp(0, PROB_ONE as i128) as u64;
        if self.qdelay_ns == 0 && self.qdelay_old_ns == 0 {
            // Idle queue: exponentially decay toward zero (RFC 8033
            // uses the same 2% step).
            self.prob = self.prob * 98 / 100;
        }
        self.qdelay_old_ns = self.qdelay_ns;
    }

    /// Admission decision for one arriving packet. `queued_packets` is
    /// the backlog the packet joins (in-service included): below two
    /// packets PIE never drops, so a lone flow's trickle survives.
    pub fn admit(&mut self, now: SimTime, queued_packets: u64) -> AqmVerdict {
        self.catch_up(now);
        if self.prob == 0 || queued_packets < 2 {
            return AqmVerdict::Deliver;
        }
        if self.rng.next_below(PROB_ONE) < self.prob {
            if self.cfg.ecn {
                AqmVerdict::Mark
            } else {
                AqmVerdict::Drop
            }
        } else {
            AqmVerdict::Deliver
        }
    }
}

/// One CoDel controller instance. Consulted at dequeue — each candidate
/// packet the discipline selects is either served or dropped, and a
/// drop makes the server immediately consider the next candidate.
#[derive(Clone, Debug)]
pub struct Codel {
    cfg: AqmConfig,
    /// When sojourn first exceeded target (None while below).
    first_above: Option<SimTime>,
    /// Next scheduled drop while in the dropping state.
    drop_next: SimTime,
    /// Drops in the current dropping episode.
    count: u64,
    dropping: bool,
}

/// Below this backlog CoDel always stands down — one MTU of queue is
/// not standing queue (RFC 8289 §4.2).
const CODEL_MTU: u64 = 1500;

impl Codel {
    /// Fresh controller.
    pub fn new(cfg: AqmConfig) -> Self {
        Codel {
            cfg,
            first_above: None,
            drop_next: SimTime::ZERO,
            count: 0,
            dropping: false,
        }
    }

    /// Has sojourn stayed above target for a full interval?
    fn ok_to_drop(&mut self, now: SimTime, sojourn_ns: u64, backlog_bytes: u64) -> bool {
        if sojourn_ns < self.cfg.target_ns || backlog_bytes <= CODEL_MTU {
            self.first_above = None;
            return false;
        }
        match self.first_above {
            None => {
                self.first_above = Some(now + SimDuration::from_nanos(self.cfg.interval_ns));
                false
            }
            Some(at) => now >= at,
        }
    }

    /// Decide the fate of one dequeued candidate with the given sojourn
    /// and the bottleneck backlog (candidate included).
    pub fn on_dequeue(&mut self, now: SimTime, sojourn_ns: u64, backlog_bytes: u64) -> AqmVerdict {
        let ok = self.ok_to_drop(now, sojourn_ns, backlog_bytes);
        if self.dropping {
            if !ok {
                self.dropping = false;
                return AqmVerdict::Deliver;
            }
            if now >= self.drop_next {
                self.count += 1;
                self.drop_next +=
                    SimDuration::from_nanos(control_law(self.cfg.interval_ns, self.count));
                return self.signal();
            }
            AqmVerdict::Deliver
        } else if ok {
            // Enter dropping. If we left the state recently, resume the
            // drop cadence where it was instead of restarting from 1
            // (RFC 8289 §5.4's hysteresis).
            let recent = now.saturating_since(self.drop_next).as_nanos() < self.cfg.interval_ns;
            self.count = if recent && self.count > 2 {
                self.count - 2
            } else {
                1
            };
            self.dropping = true;
            self.drop_next =
                now + SimDuration::from_nanos(control_law(self.cfg.interval_ns, self.count));
            self.signal()
        } else {
            AqmVerdict::Deliver
        }
    }

    fn signal(&self) -> AqmVerdict {
        if self.cfg.ecn {
            AqmVerdict::Mark
        } else {
            AqmVerdict::Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn isqrt_is_exact_floor() {
        for n in [0u128, 1, 2, 3, 4, 15, 16, 17, 1 << 32, (1 << 32) + 1] {
            let r = isqrt(n);
            assert!(r * r <= n, "{n}");
            assert!((r + 1) * (r + 1) > n, "{n}");
        }
    }

    #[test]
    fn control_law_halves_at_4x_count() {
        let i = 100_000_000;
        assert_eq!(control_law(i, 1), i);
        assert_eq!(control_law(i, 4), i / 2);
        // sqrt(2) spacing between 1 and 2.
        let at2 = control_law(i, 2);
        assert!(at2 > i / 2 && at2 < i, "{at2}");
    }

    #[test]
    fn pie_probability_tracks_the_delay_error() {
        let cfg = AqmConfig::pie(); // target 15 ms, alpha 0.125, beta 1.25
        let mut pie = Pie::new(cfg);
        // Constant 40 ms sojourn: every update adds
        // alpha·25ms + beta·(delta). First update also sees the full
        // 40 ms derivative step.
        pie.on_departure(ms(1), SimDuration::from_millis(40));
        pie.catch_up(ms(16));
        let p1 = pie.prob;
        assert!(p1 > 0, "steady excess delay must raise the probability");
        pie.on_departure(ms(20), SimDuration::from_millis(40));
        pie.catch_up(ms(31));
        assert!(pie.prob > p1, "integral term keeps climbing: {}", pie.prob);
        // Exactly reproducible: same inputs, same probability.
        let mut again = Pie::new(cfg);
        again.on_departure(ms(1), SimDuration::from_millis(40));
        again.catch_up(ms(16));
        again.on_departure(ms(20), SimDuration::from_millis(40));
        again.catch_up(ms(31));
        assert_eq!(again.prob, pie.prob);
    }

    #[test]
    fn pie_update_magnitude_matches_fixed_point_math() {
        // alpha = 0.125/s over a 10 ms error with beta zeroed:
        // dp = 0.125 · 0.010 = 0.00125 of PROB_ONE.
        let cfg = AqmConfig::pie().with_target_ms(15.0).with_beta(0.0);
        let mut pie = Pie::new(cfg);
        pie.on_departure(ms(1), SimDuration::from_millis(25));
        pie.catch_up(ms(16));
        let expect = (0.125f64 * 0.010 * PROB_ONE as f64) as u64;
        let diff = pie.prob.abs_diff(expect);
        assert!(
            diff < PROB_ONE / 100_000,
            "prob {} vs expected {expect}",
            pie.prob
        );
    }

    #[test]
    fn pie_decays_when_idle_and_never_drops_a_tiny_queue() {
        let mut pie = Pie::new(AqmConfig::pie());
        pie.on_departure(ms(1), SimDuration::from_millis(200));
        pie.catch_up(ms(16));
        let peak = pie.prob;
        assert!(peak > 0);
        // Tiny queue: no drops regardless of probability.
        assert_eq!(pie.admit(ms(17), 1), AqmVerdict::Deliver);
        // Queue drains: samples go to zero, probability decays.
        pie.on_departure(ms(20), SimDuration::ZERO);
        pie.catch_up(ms(200));
        assert!(pie.prob < peak / 2, "{} !< {}", pie.prob, peak / 2);
        // And a long idle gap fully decays it without wedging.
        pie.catch_up(SimTime::from_secs(3600));
        assert_eq!(pie.prob, 0);
    }

    #[test]
    fn pie_at_saturation_drops_everything_and_ecn_marks_instead() {
        let mut pie = Pie::new(AqmConfig::pie());
        // Push probability to the ceiling with absurd delay samples.
        for k in 0..200u64 {
            pie.on_departure(ms(15 * k + 1), SimDuration::from_secs(5));
        }
        pie.catch_up(SimTime::from_secs(4));
        assert_eq!(pie.prob, PROB_ONE);
        assert_eq!(pie.admit(SimTime::from_secs(4), 10), AqmVerdict::Drop);
        let mut marking = Pie::new(AqmConfig::pie().with_ecn(true));
        for k in 0..200u64 {
            marking.on_departure(ms(15 * k + 1), SimDuration::from_secs(5));
        }
        marking.catch_up(SimTime::from_secs(4));
        assert_eq!(marking.admit(SimTime::from_secs(4), 10), AqmVerdict::Mark);
    }

    #[test]
    fn codel_waits_a_full_interval_before_dropping() {
        let mut c = Codel::new(AqmConfig::codel()); // target 5 ms, interval 100 ms
        let soj = 20_000_000; // 20 ms, above target
        let backlog = 100_000;
        // First sighting arms the interval window; no drop yet.
        assert_eq!(c.on_dequeue(ms(0), soj, backlog), AqmVerdict::Deliver);
        assert_eq!(c.on_dequeue(ms(50), soj, backlog), AqmVerdict::Deliver);
        // A dip below target disarms it.
        assert_eq!(
            c.on_dequeue(ms(60), 1_000_000, backlog),
            AqmVerdict::Deliver
        );
        assert_eq!(c.on_dequeue(ms(110), soj, backlog), AqmVerdict::Deliver);
        // Re-armed at 110; full interval later it drops.
        assert_eq!(c.on_dequeue(ms(215), soj, backlog), AqmVerdict::Drop);
        assert!(c.dropping);
    }

    #[test]
    fn codel_drop_schedule_accelerates_with_sqrt_count() {
        let mut c = Codel::new(AqmConfig::codel());
        let soj = 50_000_000;
        let backlog = 1_000_000;
        c.on_dequeue(ms(0), soj, backlog);
        let mut drops = Vec::new();
        for k in 1..=4000u64 {
            if c.on_dequeue(ms(k), soj, backlog) == AqmVerdict::Drop {
                drops.push(k);
            }
        }
        assert!(drops.len() >= 4, "{drops:?}");
        let gaps: Vec<u64> = drops.windows(2).map(|w| w[1] - w[0]).collect();
        // The 1 ms sampling grid can round one gap up past its
        // predecessor; allow that quantum of jitter but require the
        // trend and the endpoints to shrink.
        assert!(
            gaps.windows(2).all(|w| w[1] <= w[0] + 1),
            "drop gaps must shrink: {gaps:?}"
        );
        assert!(gaps.last().unwrap() < gaps.first().unwrap(), "{gaps:?}");
    }

    #[test]
    fn codel_stands_down_when_the_queue_empties() {
        let mut c = Codel::new(AqmConfig::codel());
        let soj = 50_000_000;
        c.on_dequeue(ms(0), soj, 1_000_000);
        // Force into dropping.
        let mut k = 1;
        while !c.dropping {
            c.on_dequeue(ms(k), soj, 1_000_000);
            k += 1;
        }
        // Backlog collapses below one MTU: deliver and leave dropping.
        assert_eq!(c.on_dequeue(ms(k + 1), soj, CODEL_MTU), AqmVerdict::Deliver);
        assert!(!c.dropping);
    }

    #[test]
    fn codel_ecn_marks_instead_of_dropping() {
        let mut c = Codel::new(AqmConfig::codel().with_ecn(true));
        let soj = 50_000_000;
        c.on_dequeue(ms(0), soj, 1_000_000);
        let mut verdicts = Vec::new();
        for k in 1..=300u64 {
            verdicts.push(c.on_dequeue(ms(k), soj, 1_000_000));
        }
        assert!(verdicts.contains(&AqmVerdict::Mark));
        assert!(!verdicts.contains(&AqmVerdict::Drop));
    }
}
