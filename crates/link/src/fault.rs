//! Deterministic fault injection: a seeded timeline of adverse events
//! applied on top of any [`Link`](crate::Link).
//!
//! The base link model covers the *steady-state* impairments of the
//! paper's testbed (time-varying rate, queueing, i.i.d. loss). Real
//! wireless paths fail differently: loss arrives in bursts, latency
//! spikes in storms, WiFi throughput collapses near the cell edge, and
//! associations drop outright and take seconds to come back (the §2.2
//! measurement study's "sometimes/never sustains playback" locations).
//! A [`FaultScript`] layers exactly those four fault families over a
//! link, deterministically:
//!
//! * **Burst loss** — a two-state Gilbert–Elliott chain ([`GilbertElliott`])
//!   gates packet drops while the event is active, producing the
//!   correlated losses that i.i.d. loss cannot.
//! * **RTT spike** — a fixed latency inflation plus seeded jitter added
//!   to each delivery during the event (bufferbloat / interference
//!   storms). Jittered deliveries may reorder; the transport's
//!   reassembly must cope.
//! * **Rate collapse** — the profile's serialization rate is scaled by a
//!   factor in `(0, 1]`, composing with whatever [`BandwidthProfile`]
//!   the link already has (use a disassociation for a full outage).
//! * **Disassociation** — the link delivers nothing from the event start
//!   until `duration + reassociation` has elapsed: the association is
//!   gone for `duration`, then the re-handshake burns `reassociation`
//!   more. Every offered packet in the window is dropped with
//!   [`DropReason::Disassociated`](crate::DropReason::Disassociated).
//!
//! Determinism: events are kept sorted by start time (stable in
//! insertion order), and every stochastic element — each burst-loss
//! chain, the jitter draw — runs on its own RNG stream derived from the
//! link seed via [`derive_seed`], so the same seed and the same offered
//! packet sequence reproduce the same fault pattern bit-for-bit,
//! independent of the link's i.i.d. loss stream.
//!
//! ```
//! use mpdash_link::{FaultScript, GilbertElliott, Link, LinkConfig};
//! use mpdash_sim::{SimDuration, SimTime};
//!
//! let script = FaultScript::new()
//!     .burst_loss(
//!         SimTime::from_secs(20),
//!         SimDuration::from_secs(30),
//!         GilbertElliott::new(0.05, 0.30, 0.50),
//!     )
//!     .disassociation(
//!         SimTime::from_secs(60),
//!         SimDuration::from_secs(10),
//!         SimDuration::from_secs(2),
//!     );
//! let mut wifi = Link::new(
//!     LinkConfig::constant(8.0, SimDuration::from_millis(15)).with_faults(script),
//! );
//! assert!(matches!(
//!     wifi.send(SimTime::from_secs(65), 1500),
//!     mpdash_link::SendOutcome::Dropped(mpdash_link::DropReason::Disassociated)
//! ));
//! ```

use mpdash_sim::{derive_seed, Prng, SimDuration, SimTime};

/// Parameters of a two-state Gilbert–Elliott burst-loss model.
///
/// The chain advances once per offered packet. In the *good* state
/// packets drop with probability `loss_good` (usually 0); in the *bad*
/// state with `loss_bad`. Transitions good→bad happen with `p_enter`
/// per packet and bad→good with `p_exit`, giving geometric burst
/// lengths with mean `1 / p_exit` packets and a stationary bad-state
/// probability of `p_enter / (p_enter + p_exit)`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GilbertElliott {
    /// P(good → bad) per offered packet, in `(0, 1]`.
    pub p_enter: f64,
    /// P(bad → good) per offered packet, in `(0, 1]`.
    pub p_exit: f64,
    /// Per-packet loss probability while in the bad state, in `[0, 1]`.
    pub loss_bad: f64,
    /// Per-packet loss probability while in the good state, in `[0, 1]`.
    pub loss_good: f64,
}

impl GilbertElliott {
    /// The classic Gilbert model: lossless good state, `loss_bad`-lossy
    /// bad state.
    ///
    /// # Panics
    /// If a transition probability is outside `(0, 1]` or `loss_bad` is
    /// outside `[0, 1]`.
    pub fn new(p_enter: f64, p_exit: f64, loss_bad: f64) -> Self {
        assert!(p_enter > 0.0 && p_enter <= 1.0, "p_enter must be in (0,1]");
        assert!(p_exit > 0.0 && p_exit <= 1.0, "p_exit must be in (0,1]");
        assert!((0.0..=1.0).contains(&loss_bad), "loss_bad must be in [0,1]");
        GilbertElliott {
            p_enter,
            p_exit,
            loss_bad,
            loss_good: 0.0,
        }
    }

    /// Mean burst (bad-state sojourn) length in packets: `1 / p_exit`.
    pub fn mean_burst_len(&self) -> f64 {
        1.0 / self.p_exit
    }

    /// Long-run packet loss rate implied by the parameters.
    pub fn stationary_loss(&self) -> f64 {
        let pi_bad = self.p_enter / (self.p_enter + self.p_exit);
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }
}

/// A running Gilbert–Elliott chain: parameters plus Markov state and a
/// dedicated RNG stream. Advances exactly once per [`Self::lose_packet`]
/// call, so identical call sequences reproduce identical loss patterns.
#[derive(Clone, Debug)]
pub struct GeChain {
    params: GilbertElliott,
    bad: bool,
    rng: Prng,
}

impl GeChain {
    /// A chain starting in the good state, drawing from `seed`.
    pub fn new(params: GilbertElliott, seed: u64) -> Self {
        GeChain {
            params,
            bad: false,
            rng: Prng::new(seed),
        }
    }

    /// Advance the chain one packet and decide whether it is lost.
    pub fn lose_packet(&mut self) -> bool {
        // Transition first, then sample loss in the new state, so a
        // burst can claim the packet that triggered it.
        let flip = if self.bad {
            self.params.p_exit
        } else {
            self.params.p_enter
        };
        if self.rng.next_f64() < flip {
            self.bad = !self.bad;
        }
        let p = if self.bad {
            self.params.loss_bad
        } else {
            self.params.loss_good
        };
        p > 0.0 && self.rng.next_f64() < p
    }

    /// Whether the chain is currently in the bad (bursty) state.
    pub fn in_bad_state(&self) -> bool {
        self.bad
    }
}

/// One family of injected fault behaviour. See the module docs for the
/// semantics of each variant.
#[derive(Clone, PartialEq, Debug)]
pub enum FaultKind {
    /// Correlated packet loss driven by a [`GilbertElliott`] chain.
    BurstLoss(GilbertElliott),
    /// Latency inflation: every delivery during the event arrives
    /// `extra + U(0,1)·jitter` later.
    RttSpike {
        /// Deterministic extra one-way latency.
        extra: SimDuration,
        /// Upper bound of the uniform per-packet jitter on top.
        jitter: SimDuration,
    },
    /// Serialization rate scaled by `factor` in `(0, 1]`.
    RateCollapse {
        /// Multiplier applied to the profile rate.
        factor: f64,
    },
    /// Association lost: nothing is delivered for
    /// `duration + reassociation`.
    Disassociation {
        /// Extra outage spent re-handshaking after `duration` elapses.
        reassociation: SimDuration,
    },
}

impl FaultKind {
    /// Stable snake_case name, used by trace events and the `explain`
    /// timeline.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::BurstLoss(_) => "burst_loss",
            FaultKind::RttSpike { .. } => "rtt_spike",
            FaultKind::RateCollapse { .. } => "rate_collapse",
            FaultKind::Disassociation { .. } => "disassociation",
        }
    }
}

/// One scheduled fault: a kind active on `[at, at + duration)` (a
/// [`FaultKind::Disassociation`] extends the window by its
/// reassociation delay).
#[derive(Clone, PartialEq, Debug)]
pub struct FaultEvent {
    /// When the fault begins.
    pub at: SimTime,
    /// How long the fault condition itself lasts.
    pub duration: SimDuration,
    /// What the fault does.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// The instant the fault stops affecting the link (for a
    /// disassociation this includes the reassociation delay).
    pub fn end(&self) -> SimTime {
        let extra = match self.kind {
            FaultKind::Disassociation { reassociation } => reassociation,
            _ => SimDuration::ZERO,
        };
        self.at + self.duration + extra
    }

    /// Whether the fault affects the link at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.at && t < self.end()
    }
}

/// A deterministic timeline of fault events for one link.
///
/// Events are kept ordered by start time (stable under insertion order
/// for ties), may overlap, and compose: an active rate collapse scales
/// the profile while an active burst-loss chain eats packets. Attach to
/// a link with [`LinkConfig::with_faults`](crate::LinkConfig::with_faults);
/// all randomness is then derived from the link's seed.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FaultScript {
    events: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty script (no faults).
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Add an arbitrary event, keeping the timeline ordered.
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        // Stable: simultaneous events stay in insertion order, so the
        // timeline — and every RNG stream keyed by event index — is a
        // pure function of the construction sequence.
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Add a Gilbert–Elliott burst-loss window.
    pub fn burst_loss(self, at: SimTime, duration: SimDuration, ge: GilbertElliott) -> Self {
        self.with_event(FaultEvent {
            at,
            duration,
            kind: FaultKind::BurstLoss(ge),
        })
    }

    /// Add an RTT-spike window adding `extra` plus up to `jitter` of
    /// uniform per-packet jitter to each delivery.
    pub fn rtt_spike(
        self,
        at: SimTime,
        duration: SimDuration,
        extra: SimDuration,
        jitter: SimDuration,
    ) -> Self {
        self.with_event(FaultEvent {
            at,
            duration,
            kind: FaultKind::RttSpike { extra, jitter },
        })
    }

    /// Add a rate-collapse window scaling the profile rate by `factor`.
    ///
    /// # Panics
    /// If `factor` is outside `(0, 1]` — use
    /// [`FaultScript::disassociation`] for a full outage, so the zero-rate
    /// handling stays in one place.
    pub fn rate_collapse(self, at: SimTime, duration: SimDuration, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "rate-collapse factor must be in (0,1]"
        );
        self.with_event(FaultEvent {
            at,
            duration,
            kind: FaultKind::RateCollapse { factor },
        })
    }

    /// Add a disassociation: total outage `duration + reassociation`.
    pub fn disassociation(
        self,
        at: SimTime,
        duration: SimDuration,
        reassociation: SimDuration,
    ) -> Self {
        self.with_event(FaultEvent {
            at,
            duration,
            kind: FaultKind::Disassociation { reassociation },
        })
    }

    /// A seed-derived random timeline over `[0, horizon)`: fault onsets
    /// arrive every ~20 s on average, each drawn uniformly from the four
    /// families with durations of 2–8 s (reassociations 0.5–2.5 s).
    /// Same seed ⇒ same timeline.
    pub fn random(seed: u64, horizon: SimDuration) -> Self {
        let mut rng = Prng::new(derive_seed(seed, 0xFA07));
        let mut script = FaultScript::new();
        let mut cursor = SimDuration::from_secs_f64(5.0 + 10.0 * rng.next_f64());
        while cursor < horizon {
            let at = SimTime::ZERO + cursor;
            let duration = SimDuration::from_secs_f64(2.0 + 6.0 * rng.next_f64());
            script = match rng.next_u64() % 4 {
                0 => script.burst_loss(at, duration, GilbertElliott::new(0.05, 0.30, 0.5)),
                1 => script.rtt_spike(
                    at,
                    duration,
                    SimDuration::from_millis(150 + rng.next_u64() % 250),
                    SimDuration::from_millis(50 + rng.next_u64() % 100),
                ),
                2 => script.rate_collapse(at, duration, 0.1 + 0.3 * rng.next_f64()),
                _ => script.disassociation(
                    at,
                    duration,
                    SimDuration::from_secs_f64(0.5 + 2.0 * rng.next_f64()),
                ),
            };
            cursor = cursor + duration + SimDuration::from_secs_f64(10.0 + 20.0 * rng.next_f64());
        }
        script
    }

    /// The ordered event timeline.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the script has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether a disassociation outage (including its reassociation
    /// tail) covers `t`.
    pub fn disassociated_at(&self, t: SimTime) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Disassociation { .. }) && e.active_at(t))
    }

    /// Product of all rate-collapse factors active at `t` (1.0 when
    /// none are).
    pub fn rate_factor_at(&self, t: SimTime) -> f64 {
        self.events
            .iter()
            .filter(|e| e.active_at(t))
            .filter_map(|e| match e.kind {
                FaultKind::RateCollapse { factor } => Some(factor),
                _ => None,
            })
            .product()
    }
}

/// Per-link runtime state for an attached [`FaultScript`]: one
/// [`GeChain`] per burst-loss event and one jitter stream, all derived
/// from the link seed.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    script: FaultScript,
    /// Parallel to `script.events()`: `Some` for burst-loss events.
    chains: Vec<Option<GeChain>>,
    jitter_rng: Prng,
}

/// Stream tags keeping the fault RNGs independent of the link's i.i.d.
/// loss RNG (which is seeded with the raw link seed).
const GE_STREAM: u64 = 0x6E57_0000;
const JITTER_STREAM: u64 = 0x4A17;

impl FaultState {
    pub(crate) fn new(script: FaultScript, link_seed: u64) -> Self {
        let chains = script
            .events()
            .iter()
            .enumerate()
            .map(|(idx, e)| match e.kind {
                FaultKind::BurstLoss(ge) => Some(GeChain::new(
                    ge,
                    derive_seed(link_seed, GE_STREAM + idx as u64),
                )),
                _ => None,
            })
            .collect();
        FaultState {
            script,
            chains,
            jitter_rng: Prng::new(derive_seed(link_seed, JITTER_STREAM)),
        }
    }

    /// Whether a disassociation outage covers `t`.
    pub(crate) fn disassociated_at(&self, t: SimTime) -> bool {
        self.script.disassociated_at(t)
    }

    /// Advance every burst-loss chain active at `t` by one packet and
    /// report whether any of them lost it. All active chains advance
    /// even after one claims the packet, so each chain sees every
    /// offered packet exactly once regardless of overlap.
    pub(crate) fn burst_lose_packet(&mut self, t: SimTime) -> bool {
        let mut lost = false;
        for (event, chain) in self.script.events.iter().zip(self.chains.iter_mut()) {
            if let Some(chain) = chain {
                if event.active_at(t) {
                    lost |= chain.lose_packet();
                }
            }
        }
        lost
    }

    /// Combined rate-collapse factor at `t`.
    pub(crate) fn rate_factor_at(&self, t: SimTime) -> f64 {
        self.script.rate_factor_at(t)
    }

    /// Total extra latency (fixed + jitter draw) for a delivery whose
    /// serialization starts at `t`. Draws from the jitter stream only
    /// for packets inside a spike window, so packets outside the window
    /// do not perturb the stream.
    pub(crate) fn rtt_extra_at(&mut self, t: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for e in &self.script.events {
            if let FaultKind::RttSpike { extra, jitter } = e.kind {
                if e.active_at(t) {
                    total += extra;
                    if !jitter.is_zero() {
                        total += jitter.mul_f64(self.jitter_rng.next_f64());
                    }
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ge_statistics_match_parameters() {
        // Modest transition rates: mean burst 1/0.2 = 5 packets,
        // stationary bad probability 0.02/(0.02+0.2) ≈ 9.1%, loss ≈
        // 9.1% · 0.8 ≈ 7.3%.
        let ge = GilbertElliott::new(0.02, 0.2, 0.8);
        let mut chain = GeChain::new(ge, 42);
        let n = 200_000u64;
        let mut losses = 0u64;
        let mut bursts = 0u64; // completed bad-state sojourns
        let mut burst_packets = 0u64;
        let mut was_bad = false;
        for _ in 0..n {
            if chain.lose_packet() {
                losses += 1;
            }
            let bad = chain.in_bad_state();
            if bad {
                burst_packets += 1;
            }
            if was_bad && !bad {
                bursts += 1;
            }
            was_bad = bad;
        }
        let loss_rate = losses as f64 / n as f64;
        let expect = ge.stationary_loss();
        assert!(
            (loss_rate - expect).abs() / expect < 0.10,
            "loss rate {loss_rate:.4} vs stationary {expect:.4}"
        );
        let mean_burst = burst_packets as f64 / bursts as f64;
        assert!(
            (mean_burst - ge.mean_burst_len()).abs() / ge.mean_burst_len() < 0.10,
            "mean burst {mean_burst:.2} vs {:.2}",
            ge.mean_burst_len()
        );
    }

    #[test]
    fn ge_same_seed_same_pattern() {
        let ge = GilbertElliott::new(0.05, 0.3, 0.5);
        let pattern = |seed| {
            let mut chain = GeChain::new(ge, seed);
            (0..1000).map(|_| chain.lose_packet()).collect::<Vec<_>>()
        };
        assert_eq!(pattern(7), pattern(7), "same seed, same losses");
        assert_ne!(pattern(7), pattern(8), "different seed diverges");
    }

    #[test]
    fn ge_losses_are_bursty_not_iid() {
        // At equal long-run loss rates, GE losses must clump: the
        // probability that the packet after a loss is also lost should
        // far exceed the marginal loss rate.
        let ge = GilbertElliott::new(0.01, 0.25, 1.0);
        let mut chain = GeChain::new(ge, 9);
        let seq: Vec<bool> = (0..100_000).map(|_| chain.lose_packet()).collect();
        let losses = seq.iter().filter(|&&l| l).count() as f64;
        let marginal = losses / seq.len() as f64;
        let after_loss = seq.windows(2).filter(|w| w[0] && w[1]).count() as f64 / losses;
        assert!(
            after_loss > 5.0 * marginal,
            "P(loss|loss) {after_loss:.3} should dwarf marginal {marginal:.3}"
        );
    }

    #[test]
    fn script_orders_events_and_reports_windows() {
        let s = FaultScript::new()
            .disassociation(
                SimTime::from_secs(30),
                SimDuration::from_secs(5),
                SimDuration::from_secs(2),
            )
            .rate_collapse(SimTime::from_secs(10), SimDuration::from_secs(5), 0.25);
        assert_eq!(s.events()[0].at, SimTime::from_secs(10));
        assert_eq!(s.events()[1].at, SimTime::from_secs(30));
        assert!(s.disassociated_at(SimTime::from_secs(36)), "reassoc tail");
        assert!(!s.disassociated_at(SimTime::from_secs(37)));
        assert!((s.rate_factor_at(SimTime::from_secs(12)) - 0.25).abs() < 1e-12);
        assert!((s.rate_factor_at(SimTime::from_secs(20)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_collapses_compose_multiplicatively() {
        let s = FaultScript::new()
            .rate_collapse(SimTime::ZERO, SimDuration::from_secs(10), 0.5)
            .rate_collapse(SimTime::from_secs(5), SimDuration::from_secs(10), 0.5);
        assert!((s.rate_factor_at(SimTime::from_secs(7)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn random_script_is_seed_deterministic() {
        let h = SimDuration::from_secs(300);
        assert_eq!(FaultScript::random(1, h), FaultScript::random(1, h));
        assert_ne!(FaultScript::random(1, h), FaultScript::random(2, h));
        assert!(!FaultScript::random(1, h).is_empty());
    }

    #[test]
    #[should_panic(expected = "rate-collapse factor")]
    fn zero_collapse_factor_rejected() {
        let _ = FaultScript::new().rate_collapse(SimTime::ZERO, SimDuration::from_secs(1), 0.0);
    }
}
