//! Simulated network paths for the MP-DASH testbed.
//!
//! The paper's testbed is a real 802.11n access point plus a commercial LTE
//! dongle, shaped with Dummynet (§7.1). This crate is the simulation
//! substitute: a [`Link`] models one unidirectional path with a
//! time-varying service rate (driven by a [`BandwidthProfile`]), a fixed
//! propagation delay, a finite drop-tail queue, optional random loss, and an
//! optional [`TokenBucket`] throttle (the Dummynet stand-in used by the
//! cellular-throttling comparison, Table 4 of the paper).
//!
//! Links are passive: they do not own the event loop. The transport calls
//! [`Link::send`] with the current simulation time and gets back either the
//! future delivery instant (to be scheduled on the caller's
//! [`mpdash_sim::EventQueue`]) or a drop verdict.
//!
//! ```
//! use mpdash_link::{Link, LinkConfig, SendOutcome};
//! use mpdash_sim::{SimDuration, SimTime};
//!
//! // A 12 Mbps link with 25 ms one-way delay.
//! let mut link = Link::new(LinkConfig::constant(12.0, SimDuration::from_millis(25)));
//! match link.send(SimTime::ZERO, 1500) {
//!     SendOutcome::Delivered { at } => {
//!         // 1 ms serialization + 25 ms propagation.
//!         assert_eq!(at, SimTime::from_millis(26));
//!     }
//!     SendOutcome::Dropped(reason) => panic!("clean link dropped: {reason:?}"),
//! }
//! ```

pub mod aqm;
pub mod fault;
pub mod link;
pub mod path;
pub mod profile;
pub mod shaper;
pub mod shared;

pub use aqm::{AqmConfig, AqmVerdict, Codel, Pie};
pub use fault::{FaultEvent, FaultKind, FaultScript, GeChain, GilbertElliott};
pub use link::{DropReason, Link, LinkConfig, SendOutcome};
pub use path::PathId;
pub use profile::BandwidthProfile;
pub use shaper::TokenBucket;
pub use shared::{
    Departure, FlowId, FlowStats, QueueDiscipline, SharedBottleneck, SharedBottleneckConfig,
    SharedDrop, SharedOutcome, SharedStats, Ticket,
};
