//! [`Link`]: one unidirectional simulated path.
//!
//! The model is the classic "single server + drop-tail queue + propagation
//! delay" pipe that Dummynet implements and the paper's testbed uses:
//!
//! * **Serialization** — packets are transmitted one at a time at the rate
//!   the [`BandwidthProfile`] reports at the packet's transmission start
//!   (rate changes mid-packet are ignored; at MSS granularity a packet
//!   occupies the server for ~3 ms at 4 Mbps, well below the 50 ms slots of
//!   the paper's own discretization).
//! * **Queueing** — packets waiting for the server occupy a finite
//!   drop-tail queue measured in bytes; arrivals that would overflow it are
//!   dropped (this is what couples TCP's congestion control to the profile
//!   rate).
//! * **Propagation** — delivery happens one fixed one-way delay after
//!   serialization completes.
//! * **Loss** — optional i.i.d. random loss, applied before queueing, from
//!   a per-link seeded RNG (deterministic per seed).
//! * **Throttle** — an optional [`TokenBucket`] in front of the server,
//!   the stand-in for the paper's cellular-throttling baseline (§7.3.1).

use crate::fault::{FaultScript, FaultState};
use crate::profile::BandwidthProfile;
use crate::shaper::TokenBucket;
use crate::shared::{FlowId, SharedBottleneck, SharedOutcome};
use mpdash_obs::{TraceEvent, Tracer};
use mpdash_sim::{Prng, Rate, SimDuration, SimTime};
use std::collections::VecDeque;

/// Why a packet was not delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// The drop-tail queue was full on arrival.
    QueueOverflow,
    /// The i.i.d. loss process discarded the packet.
    RandomLoss,
    /// The profile reports zero bandwidth with no future change (a link
    /// permanently blacked out); the packet can never be serialized.
    DeadLink,
    /// An injected Gilbert–Elliott burst-loss chain discarded the packet
    /// (see [`crate::fault`]).
    BurstLoss,
    /// An injected disassociation window covers this instant: the
    /// association is down (or still re-handshaking), so nothing crosses
    /// the link.
    Disassociated,
    /// An AQM controller dropped the packet early — PIE at admission or
    /// CoDel at dequeue — while the queue still had capacity.
    AqmEarly,
    /// An AQM controller in ECN mode marked the packet instead of
    /// dropping it. Never returned as a drop outcome (the packet is
    /// delivered); exists so attribution code can name the signal.
    AqmMark,
}

/// Result of [`Link::send`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendOutcome {
    /// The packet will arrive at the far end at the given instant; the
    /// caller schedules the delivery event.
    Delivered { at: SimTime },
    /// The packet was dropped.
    Dropped(DropReason),
}

/// Static configuration of a [`Link`].
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Time-varying available bandwidth.
    pub profile: BandwidthProfile,
    /// One-way propagation delay (half the path RTT in a symmetric setup).
    pub delay: SimDuration,
    /// Drop-tail queue capacity in bytes. The default (64 KiB) is roughly
    /// a Dummynet default of ~42 MSS packets.
    pub queue_capacity: u64,
    /// Independent per-packet loss probability in `[0, 1)`.
    pub loss: f64,
    /// Optional token-bucket throttle ahead of the server.
    pub throttle: Option<TokenBucket>,
    /// Seed for the loss RNG (per-link, so loss patterns are reproducible
    /// and independent across links). Fault-script randomness (burst
    /// chains, jitter) runs on streams derived from this same seed.
    pub seed: u64,
    /// Optional deterministic fault timeline layered over the link.
    pub faults: Option<FaultScript>,
}

impl LinkConfig {
    /// A clean constant-rate link: no loss, no throttle.
    pub fn constant(rate_mbps: f64, one_way_delay: SimDuration) -> Self {
        LinkConfig {
            profile: BandwidthProfile::constant_mbps(rate_mbps),
            delay: one_way_delay,
            queue_capacity: 64 * 1024,
            loss: 0.0,
            throttle: None,
            seed: 0,
            faults: None,
        }
    }

    /// Same link with a different bandwidth profile.
    pub fn with_profile(mut self, profile: BandwidthProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Same link with random loss probability `p`.
    pub fn with_loss(mut self, p: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability must be in [0,1)");
        self.loss = p;
        self.seed = seed;
        self
    }

    /// Same link throttled by a token bucket (the Table 4 baseline).
    pub fn with_throttle(mut self, bucket: TokenBucket) -> Self {
        self.throttle = Some(bucket);
        self
    }

    /// Same link with a different queue capacity in bytes.
    pub fn with_queue_capacity(mut self, bytes: u64) -> Self {
        self.queue_capacity = bytes;
        self
    }

    /// Same link with a deterministic fault timeline attached. Fault
    /// randomness derives from the link `seed` (set it via
    /// [`LinkConfig::with_loss`] or directly) on streams independent of
    /// the i.i.d. loss RNG.
    pub fn with_faults(mut self, script: FaultScript) -> Self {
        self.faults = Some(script);
        self
    }
}

/// One unidirectional simulated path. See the module docs for the model.
pub struct Link {
    cfg: LinkConfig,
    rng: Prng,
    /// Runtime state for the attached fault script, if any.
    faults: Option<FaultState>,
    /// Instant at which the server finishes the last accepted packet.
    busy_until: SimTime,
    /// Accepted packets still occupying the queue/server:
    /// `(serialization end, size)`. Lazily purged as time advances.
    in_system: VecDeque<(SimTime, u64)>,
    /// High-water mark of the lazy purge clock: occupancy has been
    /// sampled at this instant. Enforces the one-`now`-per-tick rule
    /// (see [`Link::backlog`]).
    purged_to: SimTime,
    /// When attached, serialization happens at a [`SharedBottleneck`]
    /// instead of this link's private server (see [`Link::offer_shared`]).
    shared: Option<(SharedBottleneck, FlowId)>,
    // Lifetime counters for the analysis tool.
    delivered_bytes: u64,
    delivered_packets: u64,
    dropped_packets: u64,
    fault_dropped_packets: u64,
    /// Observe-only trace emission; never feeds back into the model.
    tracer: Tracer,
    /// Dense path index used to label trace events.
    trace_path: usize,
    /// Which scripted fault windows were active at the last `send`, so
    /// activation/clearance edges are emitted exactly once.
    fault_active: Vec<bool>,
}

impl Link {
    /// Build a link from its configuration.
    pub fn new(cfg: LinkConfig) -> Self {
        let rng = Prng::new(cfg.seed);
        let faults = cfg
            .faults
            .clone()
            .map(|script| FaultState::new(script, cfg.seed));
        Link {
            cfg,
            rng,
            faults,
            busy_until: SimTime::ZERO,
            in_system: VecDeque::new(),
            purged_to: SimTime::ZERO,
            shared: None,
            delivered_bytes: 0,
            delivered_packets: 0,
            dropped_packets: 0,
            fault_dropped_packets: 0,
            tracer: Tracer::disabled(),
            trace_path: 0,
            fault_active: Vec::new(),
        }
    }

    /// Attach a tracer labelling this link's events with dense path
    /// index `path`. Tracing is observe-only: enabling it does not
    /// change a single delivery or drop decision.
    pub fn set_tracer(&mut self, tracer: Tracer, path: usize) {
        self.tracer = tracer;
        self.trace_path = path;
        self.fault_active = self
            .cfg
            .faults
            .as_ref()
            .map(|s| vec![false; s.events().len()])
            .unwrap_or_default();
    }

    /// Emit activation/clearance edges for scripted fault windows whose
    /// active state changed since the last offered packet. Runs only
    /// when a tracer is attached.
    fn trace_fault_edges(&mut self, now: SimTime) {
        if !self.tracer.enabled() {
            return;
        }
        let Some(script) = &self.cfg.faults else {
            return;
        };
        for (i, e) in script.events().iter().enumerate() {
            let active = e.active_at(now);
            if active == self.fault_active[i] {
                continue;
            }
            self.fault_active[i] = active;
            let (path, kind) = (self.trace_path, e.kind.name());
            if active {
                self.tracer.emit_with(now, || TraceEvent::FaultActivated {
                    path,
                    kind,
                    until_s: e.end().as_secs_f64(),
                });
            } else {
                self.tracer
                    .emit_with(now, || TraceEvent::FaultCleared { path, kind });
            }
        }
    }

    /// The bandwidth profile (read access for oracles/analysis).
    pub fn profile(&self) -> &BandwidthProfile {
        &self.cfg.profile
    }

    /// The available bandwidth right now.
    pub fn rate_at(&self, t: SimTime) -> Rate {
        self.cfg.profile.rate_at(t)
    }

    /// Configured one-way delay.
    pub fn delay(&self) -> SimDuration {
        self.cfg.delay
    }

    /// Bytes currently queued or in service at `now` (after lazy purge).
    ///
    /// **Single-`now` rule**: within one tick, occupancy must be sampled
    /// at exactly one instant — the arrival instant — and every decision
    /// derived from it (drop-tail admission, accounting) must reuse that
    /// sample. Re-sampling at a *later* instant inside the same tick
    /// (say, a throttle-deferred service start) would see a drained
    /// queue and let admission and accounting disagree by one tick —
    /// harmless on a private link, but visible drift once a queue is
    /// shared. The purge clock is monotone and remembered in
    /// `purged_to`; a query older than it returns the already-purged
    /// occupancy rather than resurrecting departed packets.
    pub fn backlog(&mut self, now: SimTime) -> u64 {
        if now > self.purged_to {
            self.purged_to = now;
        }
        let horizon = self.purged_to;
        while let Some(&(end, _)) = self.in_system.front() {
            if end <= horizon {
                self.in_system.pop_front();
            } else {
                break;
            }
        }
        self.in_system.iter().map(|&(_, b)| b).sum()
    }

    /// Attach this link to a [`SharedBottleneck`] as subscription
    /// `flow`. From then on the transport must route packets through
    /// [`Link::offer_shared`]; the private server and queue are unused.
    pub fn attach_shared(&mut self, bottleneck: SharedBottleneck, flow: FlowId) {
        self.shared = Some((bottleneck, flow));
    }

    /// Whether this link serializes at a shared bottleneck.
    pub fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    /// The flow id of the shared subscription, if attached.
    pub fn shared_flow(&self) -> Option<FlowId> {
        self.shared.as_ref().map(|&(_, flow)| flow)
    }

    /// Occupancy of the attached shared bottleneck in bytes, `None` on a
    /// private link. Read-only: the queue-aware scheduler's cross-layer
    /// signal, safe to sample without perturbing link state.
    pub fn shared_queue_depth(&self) -> Option<u64> {
        self.shared.as_ref().map(|(bn, _)| bn.occupancy_bytes())
    }

    /// Offer a packet to the attached shared bottleneck at `now`.
    ///
    /// The link-local air-interface hazards (disassociation windows,
    /// burst loss, i.i.d. loss) still apply first, exactly as in
    /// [`Link::send`] steps 0–2; what moves to the shared resource is
    /// serialization and queueing (steps 3–5), whose outcome is deferred
    /// — the returned ticket's departure arrives later through the
    /// co-simulation loop, and propagation delay is added by the caller
    /// when scheduling that delivery. Rate-collapse and RTT-spike fault
    /// kinds act on the private server/propagation stages and thus do
    /// not apply on a shared path.
    ///
    /// # Panics
    /// If no bottleneck is attached.
    pub fn offer_shared(&mut self, now: SimTime, size: u64) -> SharedOutcome {
        debug_assert!(size > 0, "packets must be non-empty");
        self.trace_fault_edges(now);
        if let Some(faults) = &self.faults {
            if faults.disassociated_at(now) {
                self.dropped_packets += 1;
                self.fault_dropped_packets += 1;
                return SharedOutcome::Dropped(DropReason::Disassociated);
            }
        }
        if let Some(faults) = &mut self.faults {
            if faults.burst_lose_packet(now) {
                self.dropped_packets += 1;
                self.fault_dropped_packets += 1;
                return SharedOutcome::Dropped(DropReason::BurstLoss);
            }
        }
        if self.cfg.loss > 0.0 && self.rng.next_f64() < self.cfg.loss {
            self.dropped_packets += 1;
            return SharedOutcome::Dropped(DropReason::RandomLoss);
        }
        let (bottleneck, flow) = self.shared.as_ref().expect("no shared bottleneck attached");
        let outcome = bottleneck.offer(now, *flow, size);
        match outcome {
            SharedOutcome::Queued { .. } => {
                self.delivered_bytes += size;
                self.delivered_packets += 1;
            }
            SharedOutcome::Dropped(_) => {
                self.dropped_packets += 1;
            }
        }
        outcome
    }

    /// Total bytes accepted for delivery so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Total packets accepted for delivery so far.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Total packets dropped so far (loss + overflow + dead link +
    /// injected faults).
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Packets dropped by injected faults (burst loss + disassociation)
    /// — a subset of [`Link::dropped_packets`].
    pub fn fault_dropped_packets(&self) -> u64 {
        self.fault_dropped_packets
    }

    /// Whether an injected disassociation outage covers `t`.
    pub fn disassociated_at(&self, t: SimTime) -> bool {
        self.faults.as_ref().is_some_and(|f| f.disassociated_at(t))
    }

    /// Offer a packet of `size` bytes to the link at time `now`.
    ///
    /// On success, the returned instant is when the last byte arrives at
    /// the far end; the caller is responsible for scheduling that event.
    pub fn send(&mut self, now: SimTime, size: u64) -> SendOutcome {
        debug_assert!(size > 0, "packets must be non-empty");
        self.trace_fault_edges(now);

        // 0. An active disassociation outage swallows everything — the
        //    association (or its re-handshake) isn't up, so the packet
        //    never reaches the air.
        if let Some(faults) = &self.faults {
            if faults.disassociated_at(now) {
                self.dropped_packets += 1;
                self.fault_dropped_packets += 1;
                return SendOutcome::Dropped(DropReason::Disassociated);
            }
        }

        // 1. Burst loss: every active Gilbert–Elliott chain advances one
        //    step per offered packet; any of them may eat it.
        if let Some(faults) = &mut self.faults {
            if faults.burst_lose_packet(now) {
                self.dropped_packets += 1;
                self.fault_dropped_packets += 1;
                return SendOutcome::Dropped(DropReason::BurstLoss);
            }
        }

        // 2. Random loss happens "on the wire" but is decided up front —
        //    the byte still occupied upstream buffers in reality, but for a
        //    drop-tail model deciding early is equivalent and simpler.
        if self.cfg.loss > 0.0 && self.rng.next_f64() < self.cfg.loss {
            self.dropped_packets += 1;
            return SendOutcome::Dropped(DropReason::RandomLoss);
        }

        // 3. Drop-tail admission check against the current backlog. This
        //    is the tick's single occupancy sample (see `backlog` docs):
        //    the throttle or a blackout below may defer service past
        //    `now`, but admission must NOT be re-judged at that later
        //    start or it would disagree with this sample within one tick.
        let backlog = self.backlog(now);
        if backlog + size > self.cfg.queue_capacity {
            self.dropped_packets += 1;
            return SendOutcome::Dropped(DropReason::QueueOverflow);
        }

        // 4. Optional throttle delays the earliest service start.
        let earliest = match &mut self.cfg.throttle {
            Some(bucket) => bucket.admit(now, size),
            None => now,
        };

        // 5. Serialize after the server frees up. If the profile is at
        //    zero, wait for its next change (a temporary blackout); if it
        //    never changes, the packet is undeliverable. An active rate
        //    collapse scales the profile rate (sampled, like the rate
        //    itself, at serialization start).
        let mut start = earliest.max(self.busy_until);
        let mut rate = self.cfg.profile.rate_at(start);
        while rate.is_zero() {
            let next = self.cfg.profile.next_change_after(start);
            if next == SimTime::MAX {
                self.dropped_packets += 1;
                return SendOutcome::Dropped(DropReason::DeadLink);
            }
            start = next;
            rate = self.cfg.profile.rate_at(start);
        }
        if let Some(faults) = &self.faults {
            let factor = faults.rate_factor_at(start);
            if factor < 1.0 {
                // Clamp to 1 bps: the factor is in (0,1] by construction,
                // so a collapse may crawl but never turns into the
                // dead-link (infinite serialization) case.
                rate = rate.mul_f64(factor).max(Rate::from_bps(1));
            }
        }
        let ser = rate.time_to_send(size);
        let tx_end = start + ser;
        self.busy_until = tx_end;
        self.in_system.push_back((tx_end, size));

        // 6. An active RTT spike inflates propagation for this delivery.
        let extra = match &mut self.faults {
            Some(faults) => faults.rtt_extra_at(start),
            None => SimDuration::ZERO,
        };

        self.delivered_bytes += size;
        self.delivered_packets += 1;
        SendOutcome::Delivered {
            at: tx_end + self.cfg.delay + extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1460;

    fn clean_link(mbps: f64) -> Link {
        Link::new(LinkConfig::constant(mbps, SimDuration::from_millis(25)))
    }

    #[test]
    fn single_packet_timing() {
        let mut l = clean_link(12.0);
        // 1500 B at 12 Mbps = 1 ms serialization + 25 ms delay.
        match l.send(SimTime::ZERO, 1500) {
            SendOutcome::Delivered { at } => {
                assert_eq!(at, SimTime::from_millis(26));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue_behind_server() {
        let mut l = clean_link(12.0);
        let SendOutcome::Delivered { at: a1 } = l.send(SimTime::ZERO, 1500) else {
            panic!()
        };
        let SendOutcome::Delivered { at: a2 } = l.send(SimTime::ZERO, 1500) else {
            panic!()
        };
        // Second packet waits 1 ms for the server.
        assert_eq!(a2.saturating_since(a1), SimDuration::from_millis(1));
    }

    #[test]
    fn sustained_throughput_matches_profile() {
        let mut l = clean_link(3.8);
        let mut t = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        let n = 1000u64;
        for _ in 0..n {
            // Closed loop: send next as the previous finishes serializing
            // (backlog stays ~1 packet, no overflow).
            match l.send(t, MSS) {
                SendOutcome::Delivered { at } => {
                    last = at;
                    t = at - l.delay();
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let goodput = (n * MSS) as f64 * 8.0 / (last - SimTime::ZERO).as_secs_f64();
        assert!(
            (goodput - 3.8e6).abs() / 3.8e6 < 0.01,
            "goodput {goodput} bps"
        );
    }

    #[test]
    fn queue_overflow_drops() {
        let mut l = Link::new(
            LinkConfig::constant(1.0, SimDuration::from_millis(1)).with_queue_capacity(3 * MSS),
        );
        let mut delivered = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match l.send(SimTime::ZERO, MSS) {
                SendOutcome::Delivered { .. } => delivered += 1,
                SendOutcome::Dropped(DropReason::QueueOverflow) => dropped += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(delivered, 3);
        assert_eq!(dropped, 7);
        assert_eq!(l.delivered_packets(), 3);
        assert_eq!(l.dropped_packets(), 7);
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut l = Link::new(
            LinkConfig::constant(1.0, SimDuration::from_millis(1)).with_queue_capacity(10 * MSS),
        );
        for _ in 0..5 {
            l.send(SimTime::ZERO, MSS);
        }
        assert_eq!(l.backlog(SimTime::ZERO), 5 * MSS);
        // 1460*8 bits at 1 Mbps = 11.68 ms per packet; after 30 ms two have
        // left the system.
        assert_eq!(l.backlog(SimTime::from_millis(30)), 3 * MSS);
        assert_eq!(l.backlog(SimTime::from_secs(1)), 0);
    }

    #[test]
    fn backlog_purge_clock_is_monotone() {
        let mut l = Link::new(
            LinkConfig::constant(1.0, SimDuration::from_millis(1)).with_queue_capacity(10 * MSS),
        );
        for _ in 0..5 {
            l.send(SimTime::ZERO, MSS);
        }
        // Purge at t=30 ms (two packets have left), then query an older
        // instant: the sample must not resurrect departed packets, and
        // the same tick keeps seeing one consistent occupancy.
        assert_eq!(l.backlog(SimTime::from_millis(30)), 3 * MSS);
        assert_eq!(l.backlog(SimTime::from_millis(10)), 3 * MSS);
        assert_eq!(l.backlog(SimTime::from_millis(30)), 3 * MSS);
    }

    #[test]
    fn throttled_admission_uses_the_arrival_instant_sample() {
        // A deep throttle defers service far beyond `now`. Admission
        // must still be judged against the occupancy at the arrival
        // instant — not re-sampled at the deferred start (where the
        // queue would look empty and admission would diverge from the
        // recorded occupancy by one tick).
        let bucket = TokenBucket::new(Rate::from_kbps(100), 1500);
        let mut l = Link::new(
            LinkConfig::constant(10.0, SimDuration::ZERO)
                .with_throttle(bucket)
                .with_queue_capacity(3 * MSS),
        );
        let mut admitted = 0;
        for _ in 0..6 {
            if matches!(l.send(SimTime::ZERO, MSS), SendOutcome::Delivered { .. }) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 3, "admission judged at the single t=0 sample");
    }

    #[test]
    fn random_loss_is_seeded_and_in_range() {
        let run = |seed| {
            let mut l = Link::new(
                LinkConfig::constant(100.0, SimDuration::from_millis(1))
                    .with_loss(0.3, seed)
                    .with_queue_capacity(u64::MAX),
            );
            let mut drops = 0;
            for i in 0..1000u64 {
                if matches!(
                    l.send(SimTime::from_millis(i), MSS),
                    SendOutcome::Dropped(DropReason::RandomLoss)
                ) {
                    drops += 1;
                }
            }
            drops
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same losses");
        assert!((200..400).contains(&a), "drop count {a} near 30%");
        assert_ne!(a, c, "different seed, (almost surely) different losses");
    }

    #[test]
    fn blackout_parks_until_profile_recovers() {
        // 0 Mbps for 1 s, then 8 Mbps.
        let profile = BandwidthProfile::from_samples(
            SimDuration::from_secs(1),
            &[Rate::ZERO, Rate::from_mbps(8)],
            false,
        );
        let mut l = Link::new(LinkConfig::constant(1.0, SimDuration::ZERO).with_profile(profile));
        match l.send(SimTime::ZERO, 1000) {
            SendOutcome::Delivered { at } => {
                // Starts at t=1 s, 1000 B at 8 Mbps = 1 ms.
                assert_eq!(at, SimTime::from_millis(1001));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dead_link_rejects() {
        let mut l = Link::new(
            LinkConfig::constant(1.0, SimDuration::ZERO)
                .with_profile(BandwidthProfile::Constant(Rate::ZERO)),
        );
        assert_eq!(
            l.send(SimTime::ZERO, 100),
            SendOutcome::Dropped(DropReason::DeadLink)
        );
    }

    #[test]
    fn disassociation_window_swallows_then_recovers() {
        let script = crate::fault::FaultScript::new().disassociation(
            SimTime::from_secs(10),
            SimDuration::from_secs(5),
            SimDuration::from_secs(2),
        );
        let mut l =
            Link::new(LinkConfig::constant(12.0, SimDuration::from_millis(25)).with_faults(script));
        assert!(matches!(
            l.send(SimTime::from_secs(9), MSS),
            SendOutcome::Delivered { .. }
        ));
        // Down for the disassociation AND the reassociation handshake.
        for s in [10, 12, 14, 16] {
            assert_eq!(
                l.send(SimTime::from_secs(s), MSS),
                SendOutcome::Dropped(DropReason::Disassociated),
                "at {s} s"
            );
        }
        assert!(matches!(
            l.send(SimTime::from_secs(17), MSS),
            SendOutcome::Delivered { .. }
        ));
        assert_eq!(l.fault_dropped_packets(), 4);
        assert!(l.disassociated_at(SimTime::from_secs(15)));
        assert!(!l.disassociated_at(SimTime::from_secs(17)));
    }

    #[test]
    fn rate_collapse_stretches_serialization() {
        let script = crate::fault::FaultScript::new().rate_collapse(
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
            0.25,
        );
        let mut l = Link::new(LinkConfig::constant(12.0, SimDuration::ZERO).with_faults(script));
        // Healthy: 1500 B at 12 Mbps = 1 ms.
        let SendOutcome::Delivered { at } = l.send(SimTime::ZERO, 1500) else {
            panic!()
        };
        assert_eq!(at, SimTime::from_millis(1));
        // Collapsed to 3 Mbps: 4 ms.
        let SendOutcome::Delivered { at } = l.send(SimTime::from_secs(10), 1500) else {
            panic!()
        };
        assert_eq!(at, SimTime::from_secs(10) + SimDuration::from_millis(4));
    }

    #[test]
    fn rtt_spike_inflates_delivery_deterministically() {
        let script = || {
            crate::fault::FaultScript::new().rtt_spike(
                SimTime::from_secs(10),
                SimDuration::from_secs(10),
                SimDuration::from_millis(300),
                SimDuration::from_millis(100),
            )
        };
        let deliveries = |seed: u64| {
            let mut l = Link::new(
                LinkConfig::constant(12.0, SimDuration::from_millis(25))
                    .with_loss(0.0, seed)
                    .with_faults(script()),
            );
            (0..20u64)
                .map(|i| {
                    match l.send(
                        SimTime::from_secs(10) + SimDuration::from_millis(i * 100),
                        1500,
                    ) {
                        SendOutcome::Delivered { at } => at,
                        other => panic!("unexpected {other:?}"),
                    }
                })
                .collect::<Vec<_>>()
        };
        let a = deliveries(3);
        // Baseline without the spike: serialization 1 ms + delay 25 ms.
        for (i, at) in a.iter().enumerate() {
            let offered = SimTime::from_secs(10) + SimDuration::from_millis(i as u64 * 100);
            let base = offered + SimDuration::from_millis(26);
            let extra = at.saturating_since(base);
            assert!(
                extra >= SimDuration::from_millis(300) && extra <= SimDuration::from_millis(400),
                "packet {i}: extra {extra:?}"
            );
        }
        assert_eq!(a, deliveries(3), "same seed, same jitter");
        assert_ne!(a, deliveries(4), "different seed, different jitter");
    }

    #[test]
    fn burst_loss_window_drops_only_inside_window() {
        let script = crate::fault::FaultScript::new().burst_loss(
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
            crate::fault::GilbertElliott::new(0.2, 0.2, 1.0),
        );
        let mut l = Link::new(
            LinkConfig::constant(100.0, SimDuration::ZERO)
                .with_queue_capacity(u64::MAX)
                .with_faults(script),
        );
        for i in 0..100u64 {
            assert!(
                matches!(
                    l.send(SimTime::from_millis(i), MSS),
                    SendOutcome::Delivered { .. }
                ),
                "before the window nothing drops"
            );
        }
        let mut dropped = 0;
        for i in 0..500u64 {
            if matches!(
                l.send(
                    SimTime::from_secs(10) + SimDuration::from_millis(i * 10),
                    MSS
                ),
                SendOutcome::Dropped(DropReason::BurstLoss)
            ) {
                dropped += 1;
            }
        }
        // Stationary bad probability 0.5 with loss 1.0 → about half drop.
        assert!((150..350).contains(&dropped), "in-window drops {dropped}");
        assert_eq!(l.fault_dropped_packets(), dropped);
    }

    #[test]
    fn throttled_link_paces_at_bucket_rate() {
        let bucket = TokenBucket::new(Rate::from_kbps(700), 1500);
        let mut l = Link::new(
            LinkConfig::constant(10.0, SimDuration::ZERO)
                .with_throttle(bucket)
                .with_queue_capacity(u64::MAX),
        );
        let mut last = SimTime::ZERO;
        let n = 100u64;
        for _ in 0..n {
            match l.send(SimTime::ZERO, 1500) {
                SendOutcome::Delivered { at } => last = at,
                other => panic!("unexpected {other:?}"),
            }
        }
        let rate = ((n - 1) * 1500) as f64 * 8.0 / last.as_secs_f64();
        assert!(
            (rate - 700_000.0).abs() / 700_000.0 < 0.02,
            "paced at {rate} bps"
        );
    }
}
