//! [`PathId`]: identifies one network interface / path.
//!
//! The paper instantiates MP-DASH for two paths (WiFi preferred over LTE)
//! but formulates the scheduler for N paths with arbitrary costs (§4). The
//! identifier is therefore a small integer, with named constants for the
//! two-path case every experiment uses.

use std::fmt;

/// Identifier of a network path (interface). Paths are dense small
/// integers assigned by the transport; the conventional two-path layout is
/// [`PathId::WIFI`] = 0 and [`PathId::CELLULAR`] = 1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PathId(pub u8);

impl PathId {
    /// The preferred (low-cost) path in the paper's main scenario.
    pub const WIFI: PathId = PathId(0);
    /// The metered (high-cost) path in the paper's main scenario.
    pub const CELLULAR: PathId = PathId(1);

    /// Index into dense per-path arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PathId::WIFI => write!(f, "wifi"),
            PathId::CELLULAR => write!(f, "cell"),
            PathId(n) => write!(f, "path{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_paths() {
        assert_eq!(PathId::WIFI.index(), 0);
        assert_eq!(PathId::CELLULAR.index(), 1);
        assert_eq!(format!("{}", PathId::WIFI), "wifi");
        assert_eq!(format!("{}", PathId::CELLULAR), "cell");
        assert_eq!(format!("{}", PathId(3)), "path3");
    }

    #[test]
    fn ordering_matches_index() {
        assert!(PathId::WIFI < PathId::CELLULAR);
    }
}
