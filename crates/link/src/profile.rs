//! [`BandwidthProfile`]: the available bandwidth of a path as a function of
//! simulated time.
//!
//! Profiles are *data*, not generators: the synthetic Gaussian-walk and
//! field-location profiles in `mpdash-trace` pre-sample their randomness
//! into a step function here, so the link layer itself stays deterministic
//! and cheap to query. This mirrors how the paper feeds recorded bandwidth
//! traces into its trace-driven simulation (§7.2.2).

use mpdash_sim::{Rate, SimDuration, SimTime};

/// A path's available bandwidth over time.
#[derive(Clone, Debug)]
pub enum BandwidthProfile {
    /// Bandwidth fixed for all time (the controlled experiments of §7.3.2,
    /// where Dummynet pins WiFi/LTE to e.g. 3.8/3.0 Mbps).
    Constant(Rate),
    /// A right-continuous step function: `steps[i] = (start_i, rate_i)`
    /// means the rate is `rate_i` from `start_i` (inclusive) until the next
    /// step. `steps` must be non-empty with strictly increasing, zero-based
    /// start times. If `period` is set, the pattern repeats with that
    /// period (used to loop short recorded traces over a long session).
    Steps {
        /// Step boundaries: `(start, rate)` pairs, first start must be 0.
        steps: Vec<(SimTime, Rate)>,
        /// Optional looping period; must be ≥ the last step's start.
        period: Option<SimDuration>,
    },
}

impl BandwidthProfile {
    /// A constant-rate profile from fractional Mbps.
    pub fn constant_mbps(mbps: f64) -> Self {
        BandwidthProfile::Constant(Rate::from_mbps_f64(mbps))
    }

    /// Build a step profile from evenly spaced samples of width `slot`
    /// (the natural shape of both the paper's synthetic profiles and its
    /// 50 ms-slot trace-driven simulation).
    ///
    /// # Panics
    /// If `samples` is empty or `slot` is zero.
    pub fn from_samples(slot: SimDuration, samples: &[Rate], looped: bool) -> Self {
        assert!(!samples.is_empty(), "profile needs at least one sample");
        assert!(!slot.is_zero(), "slot width must be positive");
        let steps = samples
            .iter()
            .enumerate()
            .map(|(i, &r)| (SimTime::ZERO + slot * i as u64, r))
            .collect();
        BandwidthProfile::Steps {
            steps,
            period: looped.then(|| slot * samples.len() as u64),
        }
    }

    /// The available bandwidth at instant `t`.
    pub fn rate_at(&self, t: SimTime) -> Rate {
        match self {
            BandwidthProfile::Constant(r) => *r,
            BandwidthProfile::Steps { steps, period } => {
                debug_assert!(!steps.is_empty());
                let t = match period {
                    Some(p) if !p.is_zero() => SimTime::from_nanos(t.as_nanos() % p.as_nanos()),
                    _ => t,
                };
                // Last step whose start <= t. partition_point gives the
                // count of steps with start <= t.
                let idx = steps.partition_point(|&(start, _)| start <= t);
                if idx == 0 {
                    steps[0].1
                } else {
                    steps[idx - 1].1
                }
            }
        }
    }

    /// Mean rate over `[0, horizon)`, exact over the step structure.
    pub fn mean_rate(&self, horizon: SimDuration) -> Rate {
        if horizon.is_zero() {
            return self.rate_at(SimTime::ZERO);
        }
        match self {
            BandwidthProfile::Constant(r) => *r,
            BandwidthProfile::Steps { .. } => {
                // Integrate bits over the horizon by walking step edges.
                let mut bits: u128 = 0;
                let mut t = SimTime::ZERO;
                let end = SimTime::ZERO + horizon;
                while t < end {
                    let r = self.rate_at(t);
                    let next = self.next_change_after(t).min(end);
                    let span = next.saturating_since(t);
                    bits += r.as_bps() as u128 * span.as_nanos() as u128;
                    t = next;
                }
                let bps = bits / horizon.as_nanos() as u128;
                Rate::from_bps(bps.min(u64::MAX as u128) as u64)
            }
        }
    }

    /// The next instant strictly after `t` at which the rate may change
    /// ([`SimTime::MAX`] for constant profiles). Used by the mean-rate
    /// integration and by the offline optimal solver's slot alignment.
    pub fn next_change_after(&self, t: SimTime) -> SimTime {
        match self {
            BandwidthProfile::Constant(_) => SimTime::MAX,
            BandwidthProfile::Steps { steps, period } => match period {
                Some(p) if !p.is_zero() => {
                    let pn = p.as_nanos();
                    let cycle = t.as_nanos() / pn;
                    let local = SimTime::from_nanos(t.as_nanos() % pn);
                    let idx = steps.partition_point(|&(start, _)| start <= local);
                    let next_local = if idx < steps.len() {
                        steps[idx].0.as_nanos()
                    } else {
                        pn // wraps to next cycle's first step
                    };
                    SimTime::from_nanos(cycle * pn + next_local)
                }
                _ => {
                    let idx = steps.partition_point(|&(start, _)| start <= t);
                    if idx < steps.len() {
                        steps[idx].0
                    } else {
                        SimTime::MAX
                    }
                }
            },
        }
    }

    /// Sample the profile into `n` evenly spaced slots of width `slot`
    /// starting at `from` (the discretization used by the offline optimal
    /// solver and by Table 2's simulation).
    pub fn sample_slots(&self, from: SimTime, slot: SimDuration, n: usize) -> Vec<Rate> {
        (0..n)
            .map(|i| self.rate_at(from + slot * i as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(m: f64) -> Rate {
        Rate::from_mbps_f64(m)
    }

    #[test]
    fn constant_profile() {
        let p = BandwidthProfile::constant_mbps(3.8);
        assert_eq!(p.rate_at(SimTime::ZERO), mbps(3.8));
        assert_eq!(p.rate_at(SimTime::from_secs(1000)), mbps(3.8));
        assert_eq!(p.mean_rate(SimDuration::from_secs(10)), mbps(3.8));
        assert_eq!(p.next_change_after(SimTime::ZERO), SimTime::MAX);
    }

    #[test]
    fn step_lookup() {
        let p = BandwidthProfile::Steps {
            steps: vec![
                (SimTime::ZERO, mbps(1.0)),
                (SimTime::from_secs(10), mbps(2.0)),
                (SimTime::from_secs(20), mbps(4.0)),
            ],
            period: None,
        };
        assert_eq!(p.rate_at(SimTime::ZERO), mbps(1.0));
        assert_eq!(p.rate_at(SimTime::from_secs(9)), mbps(1.0));
        assert_eq!(p.rate_at(SimTime::from_secs(10)), mbps(2.0));
        assert_eq!(p.rate_at(SimTime::from_secs(19)), mbps(2.0));
        assert_eq!(p.rate_at(SimTime::from_secs(25)), mbps(4.0));
        assert_eq!(p.rate_at(SimTime::from_secs(10_000)), mbps(4.0));
    }

    #[test]
    fn looping_profile_wraps() {
        let p = BandwidthProfile::from_samples(
            SimDuration::from_secs(1),
            &[mbps(1.0), mbps(2.0)],
            true,
        );
        assert_eq!(p.rate_at(SimTime::from_millis(500)), mbps(1.0));
        assert_eq!(p.rate_at(SimTime::from_millis(1500)), mbps(2.0));
        // Wraps: t = 2.5 s is 0.5 s into the second cycle.
        assert_eq!(p.rate_at(SimTime::from_millis(2500)), mbps(1.0));
        assert_eq!(p.rate_at(SimTime::from_millis(3500)), mbps(2.0));
    }

    #[test]
    fn mean_rate_integrates_steps() {
        // 1 Mbps for 1 s then 3 Mbps for 1 s -> mean 2 Mbps over 2 s.
        let p = BandwidthProfile::from_samples(
            SimDuration::from_secs(1),
            &[mbps(1.0), mbps(3.0)],
            false,
        );
        assert_eq!(p.mean_rate(SimDuration::from_secs(2)), mbps(2.0));
        // Over just the first second, mean is 1 Mbps.
        assert_eq!(p.mean_rate(SimDuration::from_secs(1)), mbps(1.0));
    }

    #[test]
    fn mean_rate_of_looped_profile() {
        let p = BandwidthProfile::from_samples(
            SimDuration::from_secs(1),
            &[mbps(2.0), mbps(4.0)],
            true,
        );
        // Over 4 s (two full cycles) the mean is 3 Mbps.
        assert_eq!(p.mean_rate(SimDuration::from_secs(4)), mbps(3.0));
    }

    #[test]
    fn next_change_walks_edges() {
        let p = BandwidthProfile::from_samples(
            SimDuration::from_secs(1),
            &[mbps(1.0), mbps(2.0)],
            false,
        );
        assert_eq!(p.next_change_after(SimTime::ZERO), SimTime::from_secs(1));
        assert_eq!(
            p.next_change_after(SimTime::from_millis(1500)),
            SimTime::MAX
        );

        let looped = BandwidthProfile::from_samples(
            SimDuration::from_secs(1),
            &[mbps(1.0), mbps(2.0)],
            true,
        );
        assert_eq!(
            looped.next_change_after(SimTime::from_millis(1500)),
            SimTime::from_secs(2)
        );
    }

    #[test]
    fn sample_slots_matches_rate_at() {
        let p = BandwidthProfile::from_samples(
            SimDuration::from_millis(50),
            &[mbps(1.0), mbps(2.0), mbps(3.0)],
            false,
        );
        let slots = p.sample_slots(SimTime::ZERO, SimDuration::from_millis(50), 4);
        assert_eq!(slots, vec![mbps(1.0), mbps(2.0), mbps(3.0), mbps(3.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = BandwidthProfile::from_samples(SimDuration::from_secs(1), &[], false);
    }
}
