//! [`TokenBucket`]: a byte-granularity token-bucket rate limiter.
//!
//! This is the simulation stand-in for the Dummynet pipe the paper uses to
//! throttle the cellular path in the §7.3.1 comparison ("simply throttling
//! the cellular path" at 200/700/1000 kbps). The bucket answers one
//! question: *given the current time, when may a packet of `size` bytes
//! depart?* — and consumes the tokens when the caller commits to that
//! departure.

#[cfg(test)]
use mpdash_sim::SimDuration;
use mpdash_sim::{Rate, SimTime};

/// Token bucket with fill rate `rate` and capacity `burst` bytes.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: Rate,
    burst_bytes: u64,
    /// Token level at `last_update`, in bytes.
    tokens: f64,
    last_update: SimTime,
}

impl TokenBucket {
    /// A bucket that starts full.
    ///
    /// # Panics
    /// If `rate` is zero (a zero-rate shaper would block forever; model a
    /// dead path with the bandwidth profile instead) or `burst_bytes` is
    /// zero (no packet could ever pass).
    pub fn new(rate: Rate, burst_bytes: u64) -> Self {
        assert!(!rate.is_zero(), "token bucket rate must be positive");
        assert!(burst_bytes > 0, "token bucket burst must be positive");
        TokenBucket {
            rate,
            burst_bytes,
            tokens: burst_bytes as f64,
            last_update: SimTime::ZERO,
        }
    }

    /// The configured fill rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    fn refill_to(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_update);
        let add = self.rate.bytes_in(dt) as f64;
        self.tokens = (self.tokens + add).min(self.burst_bytes as f64);
        self.last_update = self.last_update.max(now);
    }

    /// The earliest instant at or after `now` when `size` bytes of tokens
    /// are available, without consuming anything.
    pub fn earliest_departure(&mut self, now: SimTime, size: u64) -> SimTime {
        self.refill_to(now);
        // After refill, the token level is valid at `last_update`, which is
        // `max(now, previous last_update)` — it can sit in the future when
        // a prior `consume` committed a future departure. The deficit must
        // therefore fill from `last_update`, not from `now`, or a caller
        // that keeps offering packets "now" would see the bucket refill
        // from scratch each time and pace far above the configured rate.
        let base = self.last_update.max(now);
        let have = self.tokens;
        if have >= size as f64 {
            base
        } else {
            // Packets larger than the burst drain the bucket to empty and
            // wait for a full `size` worth of fill; this keeps the shaper
            // total rather than dead-locking on jumbo writes.
            let deficit = (size as f64 - have).ceil() as u64;
            base + self.rate.time_to_send(deficit)
        }
    }

    /// Commit a departure of `size` bytes at `at` (which must be at or
    /// after the instant returned by [`TokenBucket::earliest_departure`]).
    pub fn consume(&mut self, at: SimTime, size: u64) {
        self.refill_to(at);
        self.tokens -= size as f64;
        // A correct caller never drives the level below one packet's worth
        // of negative rounding; clamp defensively so a misuse cannot stall
        // the bucket forever.
        if self.tokens < -(size as f64) {
            self.tokens = 0.0;
        }
    }

    /// Convenience: earliest departure + consume in one call.
    pub fn admit(&mut self, now: SimTime, size: u64) -> SimTime {
        let at = self.earliest_departure(now, size);
        self.consume(at, size);
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket_700kbps() -> TokenBucket {
        // 700 kbps, one-packet burst — the paper's throttling setup.
        TokenBucket::new(Rate::from_kbps(700), 1500)
    }

    #[test]
    fn full_bucket_passes_immediately() {
        let mut b = bucket_700kbps();
        let now = SimTime::from_secs(1);
        assert_eq!(b.earliest_departure(now, 1500), now);
    }

    #[test]
    fn drained_bucket_delays_by_fill_time() {
        let mut b = bucket_700kbps();
        let t0 = SimTime::ZERO;
        let d0 = b.admit(t0, 1500);
        assert_eq!(d0, t0);
        // Immediately after, a second packet must wait for 1500 B at
        // 700 kbps ≈ 17.14 ms.
        let d1 = b.admit(t0, 1500);
        let wait = d1.saturating_since(t0);
        let expect = Rate::from_kbps(700).time_to_send(1500);
        assert_eq!(wait, expect);
    }

    #[test]
    fn sustained_rate_matches_configuration() {
        let mut b = bucket_700kbps();
        let mut t = SimTime::ZERO;
        let n = 200u64;
        for _ in 0..n {
            t = b.admit(t, 1500);
        }
        // First packet free (full bucket); remaining n-1 paced at 700 kbps.
        let total_bytes = (n - 1) * 1500;
        let measured_bps = total_bytes as f64 * 8.0 / t.as_secs_f64();
        assert!(
            (measured_bps - 700_000.0).abs() / 700_000.0 < 0.01,
            "measured {measured_bps} bps"
        );
    }

    #[test]
    fn idle_time_refills_up_to_burst() {
        let mut b = TokenBucket::new(Rate::from_mbps(1), 3000);
        // Drain.
        b.admit(SimTime::ZERO, 3000);
        // After a long idle period the bucket is full again (but not more):
        let later = SimTime::from_secs(100);
        assert_eq!(b.earliest_departure(later, 3000), later);
        b.consume(later, 3000);
        // And immediately after, 1500 B needs 1500 B of fill at 1 Mbps = 12 ms.
        let d = b.earliest_departure(later, 1500);
        assert_eq!(d.saturating_since(later), SimDuration::from_millis(12));
    }

    #[test]
    fn oversized_packet_does_not_deadlock() {
        let mut b = TokenBucket::new(Rate::from_mbps(1), 1500);
        let d = b.admit(SimTime::ZERO, 15_000); // 10x burst
        assert!(d > SimTime::ZERO);
        assert!(d < SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(Rate::ZERO, 1500);
    }
}
