//! [`SharedBottleneck`]: one queue + server shared by many subflows.
//!
//! A private [`Link`](crate::Link) computes each packet's delivery time
//! eagerly at `send` because nothing that arrives later can change the
//! service order. A *shared* bottleneck cannot: under a flow-queueing
//! discipline the packet served next depends on what other flows offer
//! between now and then. So the shared model is deferred:
//!
//! * [`SharedBottleneck::offer`] only *enqueues* (or drop-tails) the
//!   packet and hands back a ticket;
//! * the co-simulation loop watches [`SharedBottleneck::next_departure`]
//!   and calls [`SharedBottleneck::pop_departure`] when the in-service
//!   packet's serialization completes, which is when the *next* packet is
//!   chosen per the configured [`QueueDiscipline`];
//! * the owner of the departed ticket then schedules its own delivery
//!   event (departure + its path's propagation delay).
//!
//! Correctness of the lazy selection relies on one loop invariant the
//! fleet driver maintains: **offers arrive in globally non-decreasing
//! time**, and departures are popped before any offer with a later
//! timestamp is made. Under that ordering, choosing the next packet at
//! each service-start instant is exactly the behaviour of a continuously
//! running server.
//!
//! Two disciplines are provided: classic FIFO/DropTail, and a per-flow
//! deficit-round-robin (DRR) queue in the FQ-PIE spirit — each
//! subscribing subflow gets its own queue and the server round-robins
//! between them with a byte quantum, which keeps one aggressive flow from
//! starving the others.
//!
//! The handle is `Clone` + `Send` (an `Arc<Mutex<_>>`) so links owned by
//! different sessions — and fleet replicas running on batch-runner worker
//! threads — can subscribe to the same resource. All scheduling decisions
//! are integer/byte arithmetic on virtual time: bit-deterministic.

use crate::aqm::{AqmConfig, AqmVerdict, Codel, Pie};
use crate::link::DropReason;
use mpdash_obs::{EpochSeries, MetricsRegistry, MetricsSnapshot, TelemetrySpec};
use mpdash_sim::{derive_seed, Rate, SimTime};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Dense index of one subscribing subflow (assigned by
/// [`SharedBottleneck::subscribe`] in subscription order).
pub type FlowId = usize;

/// Monotone per-bottleneck packet id; departures repeat the ticket so the
/// offering transport can match them to its deferred packets.
pub type Ticket = u64;

/// How the shared server picks the next packet to serialize, and which
/// AQM controller (if any) polices the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// One queue, service in arrival order, drop-tail on overflow.
    Fifo,
    /// Per-flow queues served deficit-round-robin with the given byte
    /// quantum (FQ-PIE spirit; ~one MTU is the classic choice).
    FlowQueue {
        /// Bytes of credit a flow earns per round-robin visit.
        quantum: u64,
    },
    /// FIFO order policed by one whole-queue PIE controller: arriving
    /// packets are admission-dropped (or ECN-marked) with the PI
    /// controller's probability.
    Pie(AqmConfig),
    /// DRR flow queues, each policed by its own PIE instance with an
    /// independently derived RNG stream — Linux's `fq_pie` shape.
    FqPie {
        /// DRR byte quantum.
        quantum: u64,
        /// Shared knobs for every per-flow PIE instance.
        aqm: AqmConfig,
    },
    /// FIFO order policed by CoDel: sojourn-time tracked at dequeue,
    /// drops on the `interval/sqrt(count)` schedule at service time.
    Codel(AqmConfig),
}

impl QueueDiscipline {
    /// Short stable label for tables and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            QueueDiscipline::Fifo => "fifo",
            QueueDiscipline::FlowQueue { .. } => "fq",
            QueueDiscipline::Pie(_) => "pie",
            QueueDiscipline::FqPie { .. } => "fq_pie",
            QueueDiscipline::Codel(_) => "codel",
        }
    }

    /// True when an AQM controller is attached. Non-AQM disciplines
    /// take none of the AQM code paths — FIFO and DRR fleets stay
    /// byte-identical to pre-AQM builds.
    pub fn is_aqm(&self) -> bool {
        matches!(
            self,
            QueueDiscipline::Pie(_) | QueueDiscipline::FqPie { .. } | QueueDiscipline::Codel(_)
        )
    }
}

/// Static configuration of a [`SharedBottleneck`].
#[derive(Clone, Copy, Debug)]
pub struct SharedBottleneckConfig {
    /// Constant service rate of the shared server (e.g. the AP's air
    /// time). Must be non-zero.
    pub rate: Rate,
    /// Total queue capacity in bytes, across all flows, including the
    /// packet in service (drop-tail admission).
    pub capacity: u64,
    /// Service discipline.
    pub discipline: QueueDiscipline,
}

impl SharedBottleneckConfig {
    /// A FIFO bottleneck at `mbps` with a 128 KiB queue.
    pub fn fifo_mbps(mbps: f64) -> Self {
        SharedBottleneckConfig {
            rate: Rate::from_mbps_f64(mbps),
            capacity: 128 * 1024,
            discipline: QueueDiscipline::Fifo,
        }
    }

    /// Same bottleneck with a different discipline.
    pub fn with_discipline(mut self, d: QueueDiscipline) -> Self {
        self.discipline = d;
        self
    }

    /// Same bottleneck with a different queue capacity in bytes.
    pub fn with_capacity(mut self, bytes: u64) -> Self {
        self.capacity = bytes;
        self
    }
}

/// Result of [`SharedBottleneck::offer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharedOutcome {
    /// Accepted; the caller will learn the departure time later via
    /// [`SharedBottleneck::pop_departure`] under this ticket.
    Queued {
        /// Ticket echoed by the matching departure.
        ticket: Ticket,
    },
    /// Drop-tailed on capacity ([`DropReason::QueueOverflow`]) or
    /// admission-dropped by PIE ([`DropReason::AqmEarly`]).
    Dropped(DropReason),
}

/// One packet leaving the shared server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Departure {
    /// When its last byte finished serializing.
    pub at: SimTime,
    /// The flow that offered it.
    pub flow: FlowId,
    /// The ticket [`SharedBottleneck::offer`] returned for it.
    pub ticket: Ticket,
    /// Size in bytes.
    pub size: u64,
    /// Carries an ECN-style congestion mark (AQM in `ecn` mode only).
    pub marked: bool,
}

/// One packet an AQM controller dropped at dequeue time (CoDel). The
/// fleet loop drains these with [`SharedBottleneck::take_aqm_drops`]
/// and routes each to its owning transport so the per-flow deferred
/// FIFO stays in ticket order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedDrop {
    /// Service-start instant at which the controller condemned it.
    pub at: SimTime,
    /// The flow that offered it.
    pub flow: FlowId,
    /// The ticket [`SharedBottleneck::offer`] returned for it.
    pub ticket: Ticket,
    /// Size in bytes.
    pub size: u64,
}

/// Byte/packet conservation counters for one flow.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Bytes offered by the flow.
    pub offered_bytes: u64,
    /// Bytes that departed the server.
    pub delivered_bytes: u64,
    /// Bytes drop-tailed on arrival.
    pub dropped_bytes: u64,
    /// Packets that departed.
    pub delivered_packets: u64,
    /// Packets drop-tailed.
    pub dropped_packets: u64,
}

/// Whole-bottleneck conservation snapshot. The invariant the property
/// tests pin down: `offered == delivered + dropped + queued` (bytes and
/// packets alike), where `queued` includes the packet in service.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharedStats {
    /// Bytes offered across all flows.
    pub offered_bytes: u64,
    /// Bytes departed.
    pub delivered_bytes: u64,
    /// Bytes drop-tailed.
    pub dropped_bytes: u64,
    /// Bytes still in the system (queued + in service).
    pub queued_bytes: u64,
    /// Packets offered.
    pub offered_packets: u64,
    /// Packets departed.
    pub delivered_packets: u64,
    /// Packets drop-tailed.
    pub dropped_packets: u64,
    /// Packets still in the system.
    pub queued_packets: u64,
    /// Of the dropped bytes, how many were capacity drop-tails.
    pub dropped_overflow_bytes: u64,
    /// Capacity drop-tails, packets.
    pub dropped_overflow_packets: u64,
    /// Of the dropped bytes, how many were AQM early drops (PIE
    /// admission + CoDel dequeue).
    pub dropped_aqm_bytes: u64,
    /// AQM early drops, packets.
    pub dropped_aqm_packets: u64,
    /// Packets delivered carrying an ECN-style mark.
    pub marked_packets: u64,
    /// Per-flow breakdown, indexed by [`FlowId`].
    pub per_flow: Vec<FlowStats>,
}

impl SharedStats {
    /// Byte conservation: everything offered is accounted for.
    pub fn conserved(&self) -> bool {
        self.offered_bytes == self.delivered_bytes + self.dropped_bytes + self.queued_bytes
            && self.offered_packets
                == self.delivered_packets + self.dropped_packets + self.queued_packets
    }
}

#[derive(Clone, Copy, Debug)]
struct QueuedPkt {
    ticket: Ticket,
    size: u64,
    offered: SimTime,
    /// ECN mark applied at admission (PIE in `ecn` mode).
    marked: bool,
}

struct FlowState {
    queue: VecDeque<QueuedPkt>,
    /// DRR byte credit.
    deficit: u64,
    /// In the DRR active list.
    active: bool,
    /// Earns a fresh quantum the next time it reaches the head of the
    /// active list (set on activation and on every rotation).
    fresh: bool,
    stats: FlowStats,
}

impl FlowState {
    fn new() -> Self {
        FlowState {
            queue: VecDeque::new(),
            deficit: 0,
            active: false,
            fresh: true,
            stats: FlowStats::default(),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct InService {
    flow: FlowId,
    ticket: Ticket,
    size: u64,
    offered: SimTime,
    depart_at: SimTime,
    marked: bool,
}

/// Live controller state matching the configured discipline.
enum AqmState {
    /// One whole-queue PIE.
    Pie(Pie),
    /// One PIE per subscribed flow (grown by `subscribe`).
    FqPie(Vec<Pie>),
    /// One whole-queue CoDel.
    Codel(Codel),
}

struct Inner {
    cfg: SharedBottleneckConfig,
    flows: Vec<FlowState>,
    /// Arrival-order queue (FIFO discipline only).
    fifo: VecDeque<(FlowId, QueuedPkt)>,
    /// DRR round-robin order over flows with queued packets.
    active: VecDeque<FlowId>,
    in_service: Option<InService>,
    /// Bytes waiting (excludes the in-service packet).
    waiting_bytes: u64,
    waiting_packets: u64,
    next_ticket: Ticket,
    offered_bytes: u64,
    offered_packets: u64,
    delivered_bytes: u64,
    delivered_packets: u64,
    dropped_bytes: u64,
    dropped_packets: u64,
    /// DropReason breakdown (overflow vs AQM early) and mark count.
    dropped_overflow_bytes: u64,
    dropped_overflow_packets: u64,
    dropped_aqm_bytes: u64,
    dropped_aqm_packets: u64,
    marked_packets: u64,
    /// The configured AQM controller, if any. `None` leaves every hot
    /// path exactly as it was before AQM existed.
    aqm: Option<AqmState>,
    /// Dequeue-time AQM drops (CoDel) awaiting routing by the fleet
    /// loop. Stays empty — and never allocates — without an AQM.
    pending_drops: Vec<SharedDrop>,
    metrics: MetricsRegistry,
    /// Epoch rollups over virtual time (telemetry; observe-only).
    series: Option<EpochSeries>,
}

impl Inner {
    /// Bytes in the system right now: waiting + in service. Purely
    /// event-driven (no lazy time-based purge), so unlike
    /// [`Link::backlog`](crate::Link::backlog) there is no "now" to get
    /// wrong: occupancy only changes at offer/pop events.
    fn occupancy(&self) -> u64 {
        self.waiting_bytes + self.in_service.map_or(0, |s| s.size)
    }

    fn start_service(&mut self, pkt: QueuedPkt, flow: FlowId, start: SimTime) {
        let ser = self.cfg.rate.time_to_send(pkt.size);
        self.in_service = Some(InService {
            flow,
            ticket: pkt.ticket,
            size: pkt.size,
            offered: pkt.offered,
            depart_at: start + ser,
            marked: pkt.marked,
        });
    }

    /// DRR: pick the next packet at a service-start instant. Classic
    /// deficit round robin — a flow earns `quantum` bytes of credit when
    /// it reaches the head of the active list, serves packets while the
    /// credit lasts, and rotates to the back when the head packet no
    /// longer fits.
    fn drr_next(&mut self, quantum: u64) -> Option<(FlowId, QueuedPkt)> {
        loop {
            let f = *self.active.front()?;
            if self.flows[f].queue.is_empty() {
                self.active.pop_front();
                let fl = &mut self.flows[f];
                fl.active = false;
                fl.deficit = 0;
                fl.fresh = true;
                continue;
            }
            if self.flows[f].fresh {
                self.flows[f].fresh = false;
                self.flows[f].deficit = self.flows[f].deficit.saturating_add(quantum);
            }
            let head = *self.flows[f].queue.front().expect("checked non-empty");
            if self.flows[f].deficit >= head.size {
                let fl = &mut self.flows[f];
                fl.deficit -= head.size;
                fl.queue.pop_front();
                if fl.queue.is_empty() {
                    fl.active = false;
                    fl.deficit = 0;
                    fl.fresh = true;
                    self.active.pop_front();
                }
                return Some((f, head));
            }
            // Out of credit: next flow's turn; fresh quantum on return.
            self.flows[f].fresh = true;
            self.active.pop_front();
            self.active.push_back(f);
        }
    }

    fn dequeue_next(&mut self) -> Option<(FlowId, QueuedPkt)> {
        match self.cfg.discipline {
            QueueDiscipline::Fifo | QueueDiscipline::Pie(_) | QueueDiscipline::Codel(_) => {
                self.fifo.pop_front()
            }
            QueueDiscipline::FlowQueue { quantum } | QueueDiscipline::FqPie { quantum, .. } => {
                self.drr_next(quantum)
            }
        }
    }

    /// Count one AQM early drop (PIE admission or CoDel dequeue) into
    /// the conservation ledger and telemetry.
    fn count_aqm_drop(&mut self, now: SimTime, flow: FlowId, size: u64) {
        self.dropped_bytes += size;
        self.dropped_packets += 1;
        self.dropped_aqm_bytes += size;
        self.dropped_aqm_packets += 1;
        let fl = &mut self.flows[flow].stats;
        fl.dropped_bytes += size;
        fl.dropped_packets += 1;
        self.metrics.inc("aqm_dropped_packets");
        if let Some(series) = &mut self.series {
            series.add(now, "shared_dropped_bytes", size);
            series.inc(now, "aqm_dropped_packets");
        }
    }

    /// Count one ECN mark.
    fn count_mark(&mut self, now: SimTime) {
        self.marked_packets += 1;
        self.metrics.inc("aqm_marked_packets");
        if let Some(series) = &mut self.series {
            series.inc(now, "aqm_marked_packets");
        }
    }

    /// Record the controller's drop probability after it absorbed a
    /// departure sample (telemetry only).
    fn observe_prob(&mut self, now: SimTime, ppm: u64) {
        if let Some(series) = &mut self.series {
            series.observe(now, "aqm_drop_prob_ppm", ppm);
        }
    }
}

/// Panic early on AQM knobs that would wedge or divide by zero.
fn check_aqm(a: &AqmConfig) {
    assert!(a.target_ns > 0, "AQM target delay must be > 0");
    assert!(a.interval_ns > 0, "AQM interval must be > 0");
}

/// Clone-able handle to one shared bottleneck. See module docs.
#[derive(Clone)]
pub struct SharedBottleneck {
    inner: Arc<Mutex<Inner>>,
}

impl SharedBottleneck {
    /// Build the bottleneck.
    ///
    /// # Panics
    /// If the rate is zero (a permanently dead shared link would wedge
    /// every subscriber), a flow-queue quantum is zero, or an AQM
    /// config has a zero target or interval.
    pub fn new(cfg: SharedBottleneckConfig) -> Self {
        assert!(!cfg.rate.is_zero(), "shared bottleneck rate must be > 0");
        match cfg.discipline {
            QueueDiscipline::FlowQueue { quantum } | QueueDiscipline::FqPie { quantum, .. } => {
                assert!(quantum > 0, "flow-queue quantum must be > 0");
            }
            _ => {}
        }
        let aqm = match cfg.discipline {
            QueueDiscipline::Fifo | QueueDiscipline::FlowQueue { .. } => None,
            QueueDiscipline::Pie(a) => {
                check_aqm(&a);
                Some(AqmState::Pie(Pie::new(a)))
            }
            QueueDiscipline::FqPie { aqm, .. } => {
                check_aqm(&aqm);
                Some(AqmState::FqPie(Vec::new()))
            }
            QueueDiscipline::Codel(a) => {
                check_aqm(&a);
                Some(AqmState::Codel(Codel::new(a)))
            }
        };
        SharedBottleneck {
            inner: Arc::new(Mutex::new(Inner {
                cfg,
                flows: Vec::new(),
                fifo: VecDeque::new(),
                active: VecDeque::new(),
                in_service: None,
                waiting_bytes: 0,
                waiting_packets: 0,
                next_ticket: 0,
                offered_bytes: 0,
                offered_packets: 0,
                delivered_bytes: 0,
                delivered_packets: 0,
                dropped_bytes: 0,
                dropped_packets: 0,
                dropped_overflow_bytes: 0,
                dropped_overflow_packets: 0,
                dropped_aqm_bytes: 0,
                dropped_aqm_packets: 0,
                marked_packets: 0,
                aqm,
                pending_drops: Vec::new(),
                metrics: MetricsRegistry::new(),
                series: None,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("shared bottleneck poisoned")
    }

    /// Register one subscribing subflow and return its dense id.
    pub fn subscribe(&self) -> FlowId {
        let mut g = self.lock();
        g.flows.push(FlowState::new());
        let id = g.flows.len() - 1;
        // FQ-PIE: one controller per flow, on an independently derived
        // RNG stream so flows' Bernoulli coins never correlate.
        let disc = g.cfg.discipline;
        if let QueueDiscipline::FqPie { aqm, .. } = disc {
            if let Some(AqmState::FqPie(pies)) = &mut g.aqm {
                pies.push(Pie::new(aqm.with_seed(derive_seed(aqm.seed, id as u64))));
            }
        }
        id
    }

    /// Number of subscribed flows.
    pub fn n_flows(&self) -> usize {
        self.lock().flows.len()
    }

    /// The configured discipline.
    pub fn discipline(&self) -> QueueDiscipline {
        self.lock().cfg.discipline
    }

    /// Bytes currently in the system (waiting plus in service) — the
    /// cross-layer occupancy signal queue-aware schedulers read on the
    /// pick hot path. One lock, no allocation, strictly read-only.
    pub fn occupancy_bytes(&self) -> u64 {
        self.lock().occupancy()
    }

    /// Offer a packet from `flow` at `now`. Offers must arrive in
    /// non-decreasing `now` order (the co-simulation loop's invariant).
    pub fn offer(&self, now: SimTime, flow: FlowId, size: u64) -> SharedOutcome {
        debug_assert!(size > 0, "packets must be non-empty");
        let mut g = self.lock();
        assert!(flow < g.flows.len(), "offer from unsubscribed flow {flow}");
        g.offered_bytes += size;
        g.offered_packets += 1;
        g.flows[flow].stats.offered_bytes += size;

        if g.occupancy() + size > g.cfg.capacity {
            g.dropped_bytes += size;
            g.dropped_packets += 1;
            g.dropped_overflow_bytes += size;
            g.dropped_overflow_packets += 1;
            let fl = &mut g.flows[flow].stats;
            fl.dropped_bytes += size;
            fl.dropped_packets += 1;
            if let Some(series) = &mut g.series {
                series.add(now, "shared_dropped_bytes", size);
            }
            return SharedOutcome::Dropped(DropReason::QueueOverflow);
        }

        // PIE admission decision (whole-queue or per-flow). CoDel acts
        // at dequeue, never here; without an AQM this is a no-op.
        let mut marked = false;
        if g.aqm.is_some() {
            let in_service_flow = g.in_service.map(|s| s.flow);
            let backlog_packets = g.waiting_packets + u64::from(in_service_flow.is_some());
            let flow_backlog =
                g.flows[flow].queue.len() as u64 + u64::from(in_service_flow == Some(flow));
            let verdict = match &mut g.aqm {
                Some(AqmState::Pie(pie)) => pie.admit(now, backlog_packets),
                Some(AqmState::FqPie(pies)) => pies[flow].admit(now, flow_backlog),
                Some(AqmState::Codel(_)) | None => AqmVerdict::Deliver,
            };
            match verdict {
                AqmVerdict::Deliver => {}
                AqmVerdict::Mark => {
                    marked = true;
                    g.count_mark(now);
                }
                AqmVerdict::Drop => {
                    g.count_aqm_drop(now, flow, size);
                    return SharedOutcome::Dropped(DropReason::AqmEarly);
                }
            }
        }

        let ticket = g.next_ticket;
        g.next_ticket += 1;
        let pkt = QueuedPkt {
            ticket,
            size,
            offered: now,
            marked,
        };
        if g.in_service.is_none() {
            // Idle server (offers are time-ordered, so every earlier
            // departure has been popped): serve immediately.
            debug_assert_eq!(g.waiting_packets, 0, "idle server with waiting packets");
            g.start_service(pkt, flow, now);
        } else {
            g.waiting_bytes += size;
            g.waiting_packets += 1;
            match g.cfg.discipline {
                QueueDiscipline::Fifo | QueueDiscipline::Pie(_) | QueueDiscipline::Codel(_) => {
                    g.fifo.push_back((flow, pkt))
                }
                QueueDiscipline::FlowQueue { .. } | QueueDiscipline::FqPie { .. } => {
                    g.flows[flow].queue.push_back(pkt);
                    if !g.flows[flow].active {
                        g.flows[flow].active = true;
                        g.flows[flow].fresh = true;
                        g.flows[flow].deficit = 0;
                        g.active.push_back(flow);
                    }
                }
            }
        }
        let depth = g.occupancy();
        g.metrics.observe("queue_depth_bytes", depth);
        if let Some(series) = &mut g.series {
            series.observe(now, "queue_depth_bytes", depth);
            series.add(now, "shared_offered_bytes", size);
        }
        SharedOutcome::Queued { ticket }
    }

    /// When the in-service packet finishes serializing, if any.
    pub fn next_departure(&self) -> Option<SimTime> {
        self.lock().in_service.map(|s| s.depart_at)
    }

    /// Pop the completed in-service packet and start serving the next
    /// one (chosen by the discipline *at this instant*). The caller must
    /// only pop once virtual time has reached [`Self::next_departure`].
    ///
    /// With CoDel configured, candidates the controller condemns at
    /// this service-start instant are recorded as dequeue-time drops —
    /// drain them via [`Self::take_aqm_drops`] *after* routing the
    /// returned departure, which preserves per-flow ticket order (the
    /// departing packet was always selected earlier than anything
    /// dropped here).
    pub fn pop_departure(&self) -> Option<Departure> {
        let mut g = self.lock();
        let done = g.in_service.take()?;
        g.delivered_bytes += done.size;
        g.delivered_packets += 1;
        let waited = done.depart_at.saturating_since(done.offered);
        {
            let fl = &mut g.flows[done.flow].stats;
            fl.delivered_bytes += done.size;
            fl.delivered_packets += 1;
        }
        g.metrics
            .observe("queue_wait_ms", waited.as_millis_f64() as u64);
        if let Some(series) = &mut g.series {
            series.observe(
                done.depart_at,
                "queue_wait_ms",
                waited.as_millis_f64() as u64,
            );
            series.add(done.depart_at, "shared_delivered_bytes", done.size);
        }
        // Feed the departure's sojourn to PIE (its queue-delay
        // estimator) and expose the updated probability to telemetry.
        if g.aqm.is_some() {
            let ppm = match &mut g.aqm {
                Some(AqmState::Pie(pie)) => {
                    pie.on_departure(done.depart_at, waited);
                    Some(pie.prob_ppm())
                }
                Some(AqmState::FqPie(pies)) => {
                    let pie = &mut pies[done.flow];
                    pie.on_departure(done.depart_at, waited);
                    Some(pie.prob_ppm())
                }
                Some(AqmState::Codel(_)) | None => None,
            };
            if let Some(ppm) = ppm {
                g.observe_prob(done.depart_at, ppm);
            }
        }
        // The server runs on: next packet starts exactly at this
        // departure instant. CoDel vets each candidate's sojourn at
        // this service-start and may condemn several in a row.
        let now = done.depart_at;
        while let Some((flow, pkt)) = g.dequeue_next() {
            g.waiting_bytes -= pkt.size;
            g.waiting_packets -= 1;
            let is_codel = matches!(g.aqm, Some(AqmState::Codel(_)));
            if is_codel {
                let sojourn_ns = now.saturating_since(pkt.offered).as_nanos();
                let backlog = g.waiting_bytes + pkt.size;
                let verdict = match &mut g.aqm {
                    Some(AqmState::Codel(c)) => c.on_dequeue(now, sojourn_ns, backlog),
                    _ => unreachable!("checked codel above"),
                };
                match verdict {
                    AqmVerdict::Drop => {
                        g.count_aqm_drop(now, flow, pkt.size);
                        g.pending_drops.push(SharedDrop {
                            at: now,
                            flow,
                            ticket: pkt.ticket,
                            size: pkt.size,
                        });
                        continue;
                    }
                    AqmVerdict::Mark => {
                        let mut pkt = pkt;
                        pkt.marked = true;
                        g.count_mark(now);
                        g.start_service(pkt, flow, now);
                        break;
                    }
                    AqmVerdict::Deliver => {
                        g.start_service(pkt, flow, now);
                        break;
                    }
                }
            } else {
                g.start_service(pkt, flow, now);
                break;
            }
        }
        Some(Departure {
            at: done.depart_at,
            flow: done.flow,
            ticket: done.ticket,
            size: done.size,
            marked: done.marked,
        })
    }

    /// Drain the dequeue-time AQM drops recorded by the last
    /// [`Self::pop_departure`] (CoDel only; always empty otherwise).
    /// `mem::take` on an empty `Vec` never allocates, so probing this
    /// on every loop iteration is free for non-AQM fleets.
    pub fn take_aqm_drops(&self) -> Vec<SharedDrop> {
        std::mem::take(&mut self.lock().pending_drops)
    }

    /// Cheap whole-bottleneck conservation counters for the runtime
    /// watchdog: unlike [`SharedBottleneck::stats`] this never builds
    /// the per-flow vector — one lock, eight copies, no allocation —
    /// so the fleet loop can probe it every iteration.
    pub fn conservation_counters(&self) -> mpdash_obs::ConservationCounters {
        let g = self.lock();
        mpdash_obs::ConservationCounters {
            offered_bytes: g.offered_bytes,
            delivered_bytes: g.delivered_bytes,
            dropped_bytes: g.dropped_bytes,
            queued_bytes: g.occupancy(),
            offered_packets: g.offered_packets,
            delivered_packets: g.delivered_packets,
            dropped_packets: g.dropped_packets,
            queued_packets: g.waiting_packets + u64::from(g.in_service.is_some()),
        }
    }

    /// Conservation counters (see [`SharedStats`]).
    pub fn stats(&self) -> SharedStats {
        let g = self.lock();
        SharedStats {
            offered_bytes: g.offered_bytes,
            delivered_bytes: g.delivered_bytes,
            dropped_bytes: g.dropped_bytes,
            queued_bytes: g.occupancy(),
            offered_packets: g.offered_packets,
            delivered_packets: g.delivered_packets,
            dropped_packets: g.dropped_packets,
            queued_packets: g.waiting_packets + u64::from(g.in_service.is_some()),
            dropped_overflow_bytes: g.dropped_overflow_bytes,
            dropped_overflow_packets: g.dropped_overflow_packets,
            dropped_aqm_bytes: g.dropped_aqm_bytes,
            dropped_aqm_packets: g.dropped_aqm_packets,
            marked_packets: g.marked_packets,
            per_flow: g.flows.iter().map(|f| f.stats).collect(),
        }
    }

    /// Snapshot of the bottleneck's metrics: the `queue_depth_bytes` and
    /// `queue_wait_ms` histograms.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.lock().metrics.snapshot()
    }

    /// Start rolling queue signals (`queue_depth_bytes`, `queue_wait_ms`
    /// histograms; offered/delivered/dropped byte counters) into fixed
    /// virtual-time epochs. Observe-only: enabling telemetry changes no
    /// scheduling decision and no artifact byte.
    pub fn enable_telemetry(&self, spec: TelemetrySpec) {
        self.lock().series = Some(EpochSeries::new(spec));
    }

    /// Clone of the epoch rollups, if telemetry is enabled.
    pub fn epoch_series(&self) -> Option<EpochSeries> {
        self.lock().series.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_sim::SimDuration;

    const MSS: u64 = 1500;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn fifo_8mbps() -> SharedBottleneck {
        SharedBottleneck::new(SharedBottleneckConfig::fifo_mbps(8.0))
    }

    #[test]
    fn idle_server_serves_immediately() {
        let b = fifo_8mbps();
        let f = b.subscribe();
        let SharedOutcome::Queued { ticket } = b.offer(t(0), f, MSS) else {
            panic!("clean offer dropped")
        };
        // 1500 B at 8 Mbps = 1.5 ms.
        assert_eq!(
            b.next_departure(),
            Some(t(0) + SimDuration::from_micros(1500))
        );
        let d = b.pop_departure().unwrap();
        assert_eq!(d.ticket, ticket);
        assert_eq!(d.flow, f);
        assert_eq!(d.size, MSS);
        assert_eq!(b.next_departure(), None);
    }

    #[test]
    fn fifo_serves_in_arrival_order_across_flows() {
        let b = fifo_8mbps();
        let f0 = b.subscribe();
        let f1 = b.subscribe();
        b.offer(t(0), f0, MSS);
        b.offer(t(0), f1, MSS);
        b.offer(t(0), f0, MSS);
        let order: Vec<FlowId> = (0..3).map(|_| b.pop_departure().unwrap().flow).collect();
        assert_eq!(order, vec![f0, f1, f0]);
    }

    #[test]
    fn server_is_work_conserving_back_to_back() {
        let b = fifo_8mbps();
        let f = b.subscribe();
        b.offer(t(0), f, MSS);
        b.offer(t(0), f, MSS);
        let d1 = b.pop_departure().unwrap();
        let d2 = b.pop_departure().unwrap();
        assert_eq!(
            d2.at.saturating_since(d1.at),
            SimDuration::from_micros(1500),
            "second packet serializes right behind the first"
        );
    }

    #[test]
    fn drop_tail_on_capacity() {
        let b =
            SharedBottleneck::new(SharedBottleneckConfig::fifo_mbps(1.0).with_capacity(3 * MSS));
        let f = b.subscribe();
        let mut queued = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match b.offer(t(0), f, MSS) {
                SharedOutcome::Queued { .. } => queued += 1,
                SharedOutcome::Dropped(DropReason::QueueOverflow) => dropped += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(queued, 3);
        assert_eq!(dropped, 7);
        let s = b.stats();
        assert!(s.conserved(), "{s:?}");
        assert_eq!(s.queued_packets, 3);
    }

    #[test]
    fn drr_interleaves_a_backlogged_pair() {
        let b = SharedBottleneck::new(
            SharedBottleneckConfig::fifo_mbps(8.0)
                .with_capacity(u64::MAX)
                .with_discipline(QueueDiscipline::FlowQueue { quantum: MSS }),
        );
        let f0 = b.subscribe();
        let f1 = b.subscribe();
        // Flow 0 dumps a burst first, then flow 1 arrives: FIFO would
        // serve all of flow 0 before flow 1; DRR alternates.
        for _ in 0..4 {
            b.offer(t(0), f0, MSS);
        }
        for _ in 0..4 {
            b.offer(t(0), f1, MSS);
        }
        let order: Vec<FlowId> = (0..8).map(|_| b.pop_departure().unwrap().flow).collect();
        // First departure is the packet already in service (flow 0);
        // after that the round-robin alternates.
        assert_eq!(order[0], f0);
        let alternations = order.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            alternations >= 5,
            "DRR must interleave the flows: {order:?}"
        );
    }

    #[test]
    fn drr_quantum_bundles_small_packets() {
        let b = SharedBottleneck::new(
            SharedBottleneckConfig::fifo_mbps(8.0)
                .with_capacity(u64::MAX)
                .with_discipline(QueueDiscipline::FlowQueue { quantum: 3000 }),
        );
        let f0 = b.subscribe();
        let f1 = b.subscribe();
        b.offer(t(0), f0, MSS); // goes straight into service
        for _ in 0..4 {
            b.offer(t(0), f0, 1000);
            b.offer(t(0), f1, 1000);
        }
        let order: Vec<FlowId> = (0..9).map(|_| b.pop_departure().unwrap().flow).collect();
        // A 3000 B quantum serves small packets in bundles rather than
        // strict alternation, but both flows still progress.
        assert!(order.iter().filter(|&&f| f == f1).count() == 4);
        assert!(order.iter().filter(|&&f| f == f0).count() == 5);
    }

    #[test]
    fn conservation_holds_through_a_mixed_run() {
        let b = SharedBottleneck::new(
            SharedBottleneckConfig::fifo_mbps(4.0)
                .with_capacity(8 * MSS)
                .with_discipline(QueueDiscipline::FlowQueue { quantum: MSS }),
        );
        let flows: Vec<FlowId> = (0..3).map(|_| b.subscribe()).collect();
        let mut now = SimTime::ZERO;
        for i in 0..200u64 {
            now += SimDuration::from_micros(300 * (i % 7 + 1));
            // Pop every departure due by `now` first (the loop invariant).
            while b.next_departure().is_some_and(|d| d <= now) {
                b.pop_departure().unwrap();
            }
            b.offer(now, flows[(i % 3) as usize], 400 + (i % 5) * 350);
        }
        let s = b.stats();
        assert!(s.conserved(), "{s:?}");
        assert!(s.delivered_packets > 0);
        let per_flow_offered: u64 = s.per_flow.iter().map(|f| f.offered_bytes).sum();
        assert_eq!(per_flow_offered, s.offered_bytes);
    }

    #[test]
    fn cheap_conservation_probe_matches_the_full_stats() {
        let b =
            SharedBottleneck::new(SharedBottleneckConfig::fifo_mbps(4.0).with_capacity(4 * MSS));
        let f = b.subscribe();
        for i in 0..8u64 {
            b.offer(t(i), f, MSS);
            while b.next_departure().is_some_and(|d| d <= t(i)) {
                b.pop_departure().unwrap();
            }
        }
        let probe = b.conservation_counters();
        let full = b.stats();
        assert!(probe.conserved());
        assert_eq!(probe.offered_bytes, full.offered_bytes);
        assert_eq!(probe.delivered_bytes, full.delivered_bytes);
        assert_eq!(probe.dropped_bytes, full.dropped_bytes);
        assert_eq!(probe.queued_bytes, full.queued_bytes);
        assert_eq!(probe.queued_packets, full.queued_packets);
    }

    /// Saturate a bottleneck: offer a steady overload and pop every
    /// departure as it matures, for `secs` of virtual time.
    fn saturate(b: &SharedBottleneck, flows: &[FlowId], secs: u64) {
        let mut now = SimTime::ZERO;
        let mut i = 0u64;
        while now < SimTime::from_secs(secs) {
            now += SimDuration::from_micros(500);
            while b.next_departure().is_some_and(|d| d <= now) {
                b.pop_departure().unwrap();
                b.take_aqm_drops();
            }
            // 2 × MSS every 500 µs = 48 Mbps offered, far over service.
            b.offer(now, flows[(i % flows.len() as u64) as usize], MSS);
            b.offer(now, flows[(i % flows.len() as u64) as usize], MSS);
            i += 1;
        }
    }

    #[test]
    fn pie_admission_drops_under_sustained_overload() {
        let b = SharedBottleneck::new(
            SharedBottleneckConfig::fifo_mbps(8.0)
                .with_capacity(512 * 1024)
                .with_discipline(QueueDiscipline::Pie(crate::aqm::AqmConfig::pie())),
        );
        let f = b.subscribe();
        saturate(&b, &[f], 3);
        let s = b.stats();
        assert!(s.conserved(), "{s:?}");
        assert!(
            s.dropped_aqm_packets > 0,
            "sustained overload must trip PIE: {s:?}"
        );
        // PIE carries the overload: early drops dominate the few
        // drop-tails of the pre-convergence transient, and the
        // breakdown partitions the total exactly.
        assert!(s.dropped_aqm_packets > s.dropped_overflow_packets, "{s:?}");
        assert_eq!(
            s.dropped_packets,
            s.dropped_aqm_packets + s.dropped_overflow_packets
        );
    }

    #[test]
    fn pie_keeps_queue_delay_near_target_where_fifo_bloats() {
        let mk = |d: QueueDiscipline| {
            let b = SharedBottleneck::new(
                SharedBottleneckConfig::fifo_mbps(8.0)
                    .with_capacity(512 * 1024)
                    .with_discipline(d),
            );
            let f = b.subscribe();
            saturate(&b, &[f], 3);
            let snap = b.metrics_snapshot();
            let h = snap
                .histograms
                .iter()
                .find(|(k, _)| k == "queue_wait_ms")
                .map(|(_, h)| h.clone())
                .unwrap();
            h.sum as f64 / h.count.max(1) as f64
        };
        let fifo_wait = mk(QueueDiscipline::Fifo);
        let pie_wait = mk(QueueDiscipline::Pie(crate::aqm::AqmConfig::pie()));
        assert!(
            fifo_wait > 300.0,
            "512 KiB at 8 Mbps must bufferbloat: {fifo_wait}"
        );
        // An open-loop 6x overload is PIE's worst case (nothing backs
        // off, so the controller oscillates around its equilibrium
        // drop rate); even there it must clearly beat drop-tail. The
        // closed-loop ordering versus FIFO is asserted end-to-end by
        // `exp_aqm`, where senders respond to the early drops.
        assert!(
            pie_wait < fifo_wait * 0.75,
            "PIE must hold delay below drop-tail: pie {pie_wait} vs fifo {fifo_wait}"
        );
    }

    #[test]
    fn codel_drops_at_dequeue_and_reports_them_for_routing() {
        let b = SharedBottleneck::new(
            SharedBottleneckConfig::fifo_mbps(8.0)
                .with_capacity(512 * 1024)
                .with_discipline(QueueDiscipline::Codel(crate::aqm::AqmConfig::codel())),
        );
        let f = b.subscribe();
        let mut now = SimTime::ZERO;
        let mut aqm_drops = 0u64;
        let mut last_departed_ticket = None::<Ticket>;
        for i in 0..20_000u64 {
            now += SimDuration::from_micros(500);
            while b.next_departure().is_some_and(|d| d <= now) {
                let dep = b.pop_departure().unwrap();
                // Per-flow ticket order: departures never regress, and
                // every dequeue drop carries a ticket later than the
                // departure that preceded it.
                if let Some(prev) = last_departed_ticket {
                    assert!(dep.ticket > prev);
                }
                for drop in b.take_aqm_drops() {
                    assert!(drop.ticket > dep.ticket, "drops follow the departure");
                    aqm_drops += 1;
                }
                last_departed_ticket = Some(dep.ticket);
            }
            b.offer(now, f, MSS);
            if i % 2 == 0 {
                b.offer(now, f, MSS);
            }
        }
        let s = b.stats();
        assert!(s.conserved(), "{s:?}");
        assert!(aqm_drops > 0, "standing queue must trip CoDel");
        assert_eq!(s.dropped_aqm_packets, aqm_drops);
        assert_eq!(
            s.dropped_packets,
            s.dropped_aqm_packets + s.dropped_overflow_packets
        );
    }

    #[test]
    fn ecn_mode_marks_departures_instead_of_dropping() {
        let b = SharedBottleneck::new(
            SharedBottleneckConfig::fifo_mbps(8.0)
                .with_capacity(512 * 1024)
                .with_discipline(QueueDiscipline::Pie(
                    crate::aqm::AqmConfig::pie().with_ecn(true),
                )),
        );
        let f = b.subscribe();
        let mut now = SimTime::ZERO;
        let mut marked = 0u64;
        for _ in 0..6000u64 {
            now += SimDuration::from_micros(500);
            while b.next_departure().is_some_and(|d| d <= now) {
                if b.pop_departure().unwrap().marked {
                    marked += 1;
                }
            }
            b.offer(now, f, MSS);
            b.offer(now, f, MSS);
        }
        let s = b.stats();
        assert!(s.conserved(), "{s:?}");
        assert!(marked > 0, "ECN mode must mark under overload");
        assert_eq!(s.dropped_aqm_packets, 0, "marking replaces dropping: {s:?}");
        assert!(s.marked_packets >= marked, "{s:?}");
    }

    #[test]
    fn fq_pie_polices_the_hog_and_spares_the_trickle() {
        let b = SharedBottleneck::new(
            SharedBottleneckConfig::fifo_mbps(8.0)
                .with_capacity(512 * 1024)
                .with_discipline(QueueDiscipline::FqPie {
                    quantum: MSS,
                    aqm: crate::aqm::AqmConfig::pie(),
                }),
        );
        let hog = b.subscribe();
        let mouse = b.subscribe();
        let mut now = SimTime::ZERO;
        for i in 0..8000u64 {
            now += SimDuration::from_micros(500);
            while b.next_departure().is_some_and(|d| d <= now) {
                b.pop_departure().unwrap();
            }
            b.offer(now, hog, MSS);
            b.offer(now, hog, MSS);
            if i % 20 == 0 {
                b.offer(now, mouse, 200);
            }
        }
        let s = b.stats();
        assert!(s.conserved(), "{s:?}");
        assert!(s.per_flow[hog].dropped_packets > 0, "{s:?}");
        assert_eq!(
            s.per_flow[mouse].dropped_packets, 0,
            "a sub-quantum trickle never stands in its own queue: {s:?}"
        );
    }

    #[test]
    fn aqm_labels_and_flags_are_stable() {
        use crate::aqm::AqmConfig;
        assert_eq!(QueueDiscipline::Pie(AqmConfig::pie()).label(), "pie");
        assert_eq!(
            QueueDiscipline::FqPie {
                quantum: 1540,
                aqm: AqmConfig::pie()
            }
            .label(),
            "fq_pie"
        );
        assert_eq!(QueueDiscipline::Codel(AqmConfig::codel()).label(), "codel");
        assert!(!QueueDiscipline::Fifo.is_aqm());
        assert!(!QueueDiscipline::FlowQueue { quantum: 1540 }.is_aqm());
        assert!(QueueDiscipline::Codel(AqmConfig::codel()).is_aqm());
    }

    #[test]
    fn queue_depth_histogram_is_recorded() {
        let b = fifo_8mbps();
        let f = b.subscribe();
        for _ in 0..5 {
            b.offer(t(0), f, MSS);
        }
        let snap = b.metrics_snapshot();
        assert!(!snap.is_empty());
        let json = snap.to_json().to_string();
        assert!(json.contains("queue_depth_bytes"), "{json}");
    }
}
