//! Per-subflow congestion control: Reno and CUBIC.
//!
//! The paper runs *decoupled* congestion control — each subflow manages its
//! own window independently, the standard configuration for mobile
//! multipath where WiFi and cellular do not share a bottleneck (§2.1).
//! Reno is the default used by every experiment; CUBIC (the Linux default)
//! is provided for the ablation benches.
//!
//! Windows are tracked in fractional bytes so congestion-avoidance growth
//! (`MSS²/cwnd` per ACK) accumulates exactly.

use crate::packet::MSS;
use mpdash_sim::{SimDuration, SimTime};

/// Initial congestion window: 10 segments (RFC 6928).
pub const INIT_CWND: f64 = (10 * MSS) as f64;
/// Lower bound on the window after any loss response.
pub const MIN_CWND: f64 = (2 * MSS) as f64;

/// Which congestion-control algorithm a subflow runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CcKind {
    /// TCP NewReno-style AIMD: the paper's evaluation configuration.
    Reno,
    /// CUBIC window growth (RFC 8312), the Linux default; provided for
    /// ablation experiments.
    Cubic,
}

/// Congestion-control state for one subflow.
#[derive(Clone, Debug)]
pub struct CongestionControl {
    kind: CcKind,
    /// Congestion window in bytes.
    cwnd: f64,
    /// Slow-start threshold in bytes.
    ssthresh: f64,
    // --- CUBIC state (unused for Reno) ---
    /// Window size just before the last reduction, in bytes.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Time (seconds) for the cubic to return to `w_max`.
    k: f64,
}

/// CUBIC scaling constant (RFC 8312), in MSS/s³.
const CUBIC_C: f64 = 0.4;
/// CUBIC multiplicative decrease factor.
const CUBIC_BETA: f64 = 0.7;
/// Reno multiplicative decrease factor.
const RENO_BETA: f64 = 0.5;

impl CongestionControl {
    /// Fresh state: initial window, unbounded slow-start threshold.
    pub fn new(kind: CcKind) -> Self {
        CongestionControl {
            kind,
            cwnd: INIT_CWND,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
        }
    }

    /// Current congestion window in whole bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current slow-start threshold (diagnostics).
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Window growth on a cumulative ACK of `acked` new bytes.
    ///
    /// `in_recovery` freezes growth (we model NewReno recovery without
    /// window inflation: the window was already set to `ssthresh` at the
    /// loss and stays there until recovery exits). `srtt` feeds CUBIC's
    /// target computation; Reno ignores it.
    pub fn on_ack(&mut self, now: SimTime, acked: u64, in_recovery: bool, srtt: SimDuration) {
        if in_recovery {
            return;
        }
        if self.cwnd < self.ssthresh {
            // Slow start: one byte per byte acked (doubles per RTT),
            // clamped so a huge stretch-ACK cannot overshoot ssthresh by
            // more than the acked amount.
            self.cwnd = (self.cwnd + acked as f64).min(self.ssthresh.max(self.cwnd));
            self.epoch_start = None;
            return;
        }
        match self.kind {
            CcKind::Reno => {
                // Congestion avoidance: MSS per window per RTT,
                // byte-counted: MSS * acked / cwnd.
                self.cwnd += MSS as f64 * acked as f64 / self.cwnd;
            }
            CcKind::Cubic => {
                let mss = MSS as f64;
                let t0 = *self.epoch_start.get_or_insert_with(|| {
                    // New epoch: compute K from the distance to w_max.
                    let wmax_mss = (self.w_max.max(self.cwnd)) / mss;
                    let cwnd_mss = self.cwnd / mss;
                    self.k = ((wmax_mss - cwnd_mss).max(0.0) / CUBIC_C).cbrt();
                    now
                });
                let t = now.saturating_since(t0).as_secs_f64() + srtt.as_secs_f64();
                let wmax_mss = self.w_max.max(self.cwnd) / mss;
                let target_mss = CUBIC_C * (t - self.k).powi(3) + wmax_mss;
                let target = (target_mss * mss).max(self.cwnd);
                // Approach the cubic target at most one MSS per cwnd of
                // acked data, like the kernel's per-ACK increment.
                let incr = ((target - self.cwnd) / self.cwnd) * acked as f64;
                self.cwnd += incr.clamp(0.0, mss * acked as f64 / self.cwnd);
            }
        }
    }

    /// Multiplicative decrease on fast retransmit (triple duplicate ACK).
    /// Returns the new window.
    pub fn on_fast_retransmit(&mut self, in_flight: u64) -> u64 {
        let beta = match self.kind {
            CcKind::Reno => RENO_BETA,
            CcKind::Cubic => CUBIC_BETA,
        };
        self.w_max = self.cwnd;
        self.ssthresh = (in_flight as f64 * beta).max(MIN_CWND);
        self.cwnd = self.ssthresh;
        self.epoch_start = None;
        self.cwnd as u64
    }

    /// Collapse on retransmission timeout.
    pub fn on_rto(&mut self, in_flight: u64) {
        let beta = match self.kind {
            CcKind::Reno => RENO_BETA,
            CcKind::Cubic => CUBIC_BETA,
        };
        self.w_max = self.cwnd;
        self.ssthresh = (in_flight as f64 * beta).max(MIN_CWND);
        self.cwnd = MSS as f64;
        self.epoch_start = None;
    }

    /// Leave slow start without a loss (HyStart-style delay signal): the
    /// subflow observed RTT inflation, meaning the bottleneck queue is
    /// filling. Sets `ssthresh` to the current window so growth continues
    /// linearly. Without this, slow start overshoots the drop-tail queue
    /// by up to a full window and NewReno spends one RTT per lost segment
    /// recovering — a pathology modern kernels avoid the same way.
    pub fn exit_slow_start(&mut self) {
        if self.in_slow_start() {
            self.ssthresh = self.cwnd;
            self.epoch_start = None;
        }
    }

    /// Window validation after an application-idle period (RFC 2861
    /// spirit): restart from the initial window rather than blasting a
    /// stale window into the queue. DASH traffic is exactly the ON/OFF
    /// pattern this matters for (Figure 1's idle gaps).
    pub fn on_idle_restart(&mut self) {
        self.cwnd = self.cwnd.min(INIT_CWND);
        self.epoch_start = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rtt() -> SimDuration {
        SimDuration::from_millis(50)
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut cc = CongestionControl::new(CcKind::Reno);
        let w0 = cc.cwnd();
        // Ack a full window: cwnd doubles.
        cc.on_ack(SimTime::ZERO, w0, false, rtt());
        assert_eq!(cc.cwnd(), 2 * w0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn recovery_freezes_growth() {
        let mut cc = CongestionControl::new(CcKind::Reno);
        let w0 = cc.cwnd();
        cc.on_ack(SimTime::ZERO, w0, true, rtt());
        assert_eq!(cc.cwnd(), w0);
    }

    #[test]
    fn fast_retransmit_halves_reno() {
        let mut cc = CongestionControl::new(CcKind::Reno);
        // Grow a bit first.
        cc.on_ack(SimTime::ZERO, 100_000, false, rtt());
        let in_flight = cc.cwnd();
        let new = cc.on_fast_retransmit(in_flight);
        assert_eq!(new, (in_flight as f64 * 0.5) as u64);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn cubic_reduces_by_thirty_percent() {
        let mut cc = CongestionControl::new(CcKind::Cubic);
        cc.on_ack(SimTime::ZERO, 200_000, false, rtt());
        let in_flight = cc.cwnd();
        let new = cc.on_fast_retransmit(in_flight);
        assert_eq!(new, (in_flight as f64 * 0.7) as u64);
    }

    #[test]
    fn rto_collapses_to_one_mss() {
        let mut cc = CongestionControl::new(CcKind::Reno);
        cc.on_ack(SimTime::ZERO, 100_000, false, rtt());
        cc.on_rto(cc.cwnd());
        assert_eq!(cc.cwnd(), MSS);
        assert!(cc.in_slow_start(), "RTO re-enters slow start");
        assert!(cc.ssthresh() >= MIN_CWND);
    }

    #[test]
    fn floor_is_two_mss() {
        let mut cc = CongestionControl::new(CcKind::Reno);
        cc.on_fast_retransmit(100); // tiny in-flight
        assert_eq!(cc.cwnd(), 2 * MSS);
    }

    #[test]
    fn congestion_avoidance_is_linear_per_rtt() {
        let mut cc = CongestionControl::new(CcKind::Reno);
        // Force CA by taking a loss.
        cc.on_fast_retransmit(cc.cwnd());
        let w = cc.cwnd();
        // Ack one full window worth: growth ≈ 1 MSS.
        let mut acked = 0;
        let mut t = SimTime::ZERO;
        while acked < w {
            cc.on_ack(t, MSS, false, rtt());
            acked += MSS;
            t += SimDuration::from_millis(1);
        }
        let grown = cc.cwnd() - w;
        // Growth per window-acked is ~1 MSS; slightly under because the
        // divisor (cwnd) grows as the window inflates during the pass.
        assert!(
            (MSS * 9 / 10..=MSS + 200).contains(&grown),
            "CA grew {grown} bytes per window"
        );
    }

    #[test]
    fn cubic_grows_toward_wmax_then_beyond() {
        let mut cc = CongestionControl::new(CcKind::Cubic);
        // Build a moderate window (4 doublings from 10 MSS ≈ 160 MSS),
        // then take a loss.
        for _ in 0..4 {
            cc.on_ack(SimTime::ZERO, cc.cwnd(), false, rtt());
        }
        let before_loss = cc.cwnd();
        cc.on_fast_retransmit(before_loss);
        let floor = cc.cwnd();
        assert_eq!(floor, (before_loss as f64 * 0.7) as u64);
        // Ack one MSS every 10 ms for 60 simulated seconds; the cubic
        // recovers toward (and past) w_max.
        let mut t = SimTime::ZERO;
        for _ in 0..6000 {
            t += SimDuration::from_millis(10);
            cc.on_ack(t, MSS, false, rtt());
        }
        assert!(
            cc.cwnd() > floor + 4 * MSS,
            "CUBIC should grow after reduction: {} vs floor {}",
            cc.cwnd(),
            floor
        );
    }

    #[test]
    fn idle_restart_caps_at_initial_window() {
        let mut cc = CongestionControl::new(CcKind::Reno);
        for _ in 0..10 {
            cc.on_ack(SimTime::ZERO, cc.cwnd(), false, rtt());
        }
        assert!(cc.cwnd() as f64 > INIT_CWND);
        cc.on_idle_restart();
        assert_eq!(cc.cwnd() as f64, INIT_CWND);
        // A small window is not *raised* by idle restart.
        cc.on_rto(cc.cwnd());
        cc.on_idle_restart();
        assert_eq!(cc.cwnd(), MSS);
    }
}
