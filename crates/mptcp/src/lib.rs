//! A userspace MPTCP model — the transport substrate under MP-DASH.
//!
//! The paper implements MP-DASH as ~300 lines patched into the Linux-kernel
//! MPTCP v0.90 stack. No such kernel (or usable Rust binding) exists here,
//! so this crate rebuilds the pieces of MPTCP that MP-DASH's mechanism
//! actually touches, as a deterministic discrete-event simulation:
//!
//! * **Subflows** ([`sender::SubflowTx`]) — per-path TCP senders with slow
//!   start, congestion avoidance (Reno or CUBIC, *decoupled* across
//!   subflows exactly as the paper configures, §2.1), Jacobson RTT
//!   estimation, fast retransmit and RTO recovery.
//! * **Packet schedulers** ([`scheduler`]) — a pluggable [`Scheduler`]
//!   trait behind a `Copy` [`SchedulerSpec`]: the two stock MPTCP
//!   schedulers the paper evaluates (lowest-SRTT "default" and
//!   round-robin) plus a QAware-style queue-occupancy-weighted variant.
//!   MP-DASH overlays all of them by *skipping* masked-out subflows in the
//!   scheduling function rather than tearing subflows down (§6: no
//!   handshake overhead, radio stays attached).
//! * **Connection-level reassembly** ([`reassembly::IntervalSet`]) — data
//!   sequence (DSS) reordering across subflows, delivering an in-order byte
//!   stream to the application.
//! * **Signaling** — the receiver-side decision function communicates its
//!   desired path mask to the sender on ACKs, modelling the reserved DSS
//!   option bit the paper uses to keep the server stateless (§3.2).
//!
//! The whole connection, including its links, lives in [`sim::MptcpSim`], a
//! self-contained event loop the application layers (HTTP, DASH player)
//! drive step by step.
//!
//! ```
//! use mpdash_link::{LinkConfig, PathId};
//! use mpdash_mptcp::{MptcpConfig, MptcpSim, PathMask};
//! use mpdash_sim::SimDuration;
//!
//! // WiFi 3.8 Mbps + LTE 3.0 Mbps, WiFi-only by user preference.
//! let wifi = LinkConfig::constant(3.8, SimDuration::from_millis(25));
//! let cell = LinkConfig::constant(3.0, SimDuration::from_millis(30));
//! let mut sim = MptcpSim::new(MptcpConfig::two_path(wifi, cell));
//! sim.set_initial_mask(PathMask::only(PathId::WIFI));
//!
//! sim.send_app(100_000);
//! while sim.delivered() < 100_000 {
//!     sim.step().expect("transfer completes");
//! }
//! assert_eq!(sim.path_bytes(PathId::CELLULAR), 0);
//! ```

pub mod cc;
pub mod packet;
pub mod reassembly;
pub mod receiver;
pub mod scheduler;
pub mod sender;
pub mod sim;

pub use cc::CcKind;
pub use packet::{PathMask, PktRecord, MSS};
pub use scheduler::{Scheduler, SchedulerImpl, SchedulerSpec};
pub use sim::{MptcpConfig, MptcpSim, PathConfig, StepOutcome};
