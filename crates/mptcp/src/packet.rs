//! Wire-level vocabulary shared by sender, receiver and simulator:
//! [`PathMask`] (the MP-DASH enable/disable overlay state signaled in the
//! DSS option), and [`PktRecord`] (the per-packet receive trace consumed by
//! the analysis tool and the energy model).

use mpdash_link::PathId;
use mpdash_sim::SimTime;

/// TCP maximum segment size used throughout the simulation, in bytes.
/// 1460 = 1500-byte Ethernet MTU minus 40 bytes of IP+TCP headers.
pub const MSS: u64 = 1460;

/// Which subflows the MP-DASH scheduler currently allows new data on.
///
/// This is the state the paper's reserved DSS-option bit carries from the
/// client-side decision function to the server-side enforcement function
/// (§3.2). A cleared bit means "skip this subflow in the packet scheduler";
/// it does not tear the subflow down, so in-flight data and retransmissions
/// still complete on it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct PathMask(u32);

impl PathMask {
    /// All paths enabled (vanilla MPTCP behaviour).
    pub const ALL: PathMask = PathMask(u32::MAX);

    /// No paths enabled. Senders treat this as "pause new data"; it is a
    /// legal transient while signaling churns but never a steady state in
    /// any MP-DASH policy.
    pub const NONE: PathMask = PathMask(0);

    /// A mask with exactly one path enabled.
    pub fn only(path: PathId) -> PathMask {
        PathMask(1 << path.0)
    }

    /// Whether `path` is enabled.
    pub fn contains(self, path: PathId) -> bool {
        self.0 & (1 << path.0) != 0
    }

    /// A copy with `path` enabled.
    pub fn with(self, path: PathId) -> PathMask {
        PathMask(self.0 | (1 << path.0))
    }

    /// A copy with `path` disabled.
    pub fn without(self, path: PathId) -> PathMask {
        PathMask(self.0 & !(1 << path.0))
    }

    /// Set or clear `path` in place; returns `true` if the mask changed.
    pub fn set(&mut self, path: PathId, enabled: bool) -> bool {
        let new = if enabled {
            self.with(path)
        } else {
            self.without(path)
        };
        let changed = new != *self;
        *self = new;
        changed
    }
}

impl Default for PathMask {
    fn default() -> Self {
        PathMask::ALL
    }
}

/// One received data packet, as logged by the receiver.
///
/// This is the simulation's packet capture: the §6 analysis tool correlates
/// the `dss` ranges against HTTP message boundaries to attribute bytes (and
/// radio energy) to paths and video chunks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PktRecord {
    /// Arrival time at the receiver.
    pub t: SimTime,
    /// Path the packet arrived on.
    pub path: PathId,
    /// Payload bytes.
    pub len: u64,
    /// Connection-level (data sequence) offset of the first payload byte.
    pub dss: u64,
    /// Whether this was a retransmission.
    pub retx: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_operations() {
        let m = PathMask::ALL;
        assert!(m.contains(PathId::WIFI));
        assert!(m.contains(PathId::CELLULAR));

        let wifi_only = PathMask::only(PathId::WIFI);
        assert!(wifi_only.contains(PathId::WIFI));
        assert!(!wifi_only.contains(PathId::CELLULAR));

        let both = wifi_only.with(PathId::CELLULAR);
        assert!(both.contains(PathId::CELLULAR));
        assert_eq!(both.without(PathId::CELLULAR), wifi_only);
    }

    #[test]
    fn set_reports_changes() {
        let mut m = PathMask::only(PathId::WIFI);
        assert!(m.set(PathId::CELLULAR, true));
        assert!(!m.set(PathId::CELLULAR, true), "idempotent set");
        assert!(m.set(PathId::CELLULAR, false));
        assert_eq!(m, PathMask::only(PathId::WIFI));
    }

    #[test]
    fn none_contains_nothing() {
        assert!(!PathMask::NONE.contains(PathId::WIFI));
        assert!(!PathMask::NONE.contains(PathId(7)));
    }

    #[test]
    fn default_is_all() {
        assert_eq!(PathMask::default(), PathMask::ALL);
    }
}
