//! [`IntervalSet`]: connection-level (data sequence) reassembly.
//!
//! MPTCP stripes one byte stream across subflows; packets arrive out of
//! DSS order whenever paths have different delays. The receiver inserts
//! each packet's `[dss, dss+len)` interval here and delivers the contiguous
//! prefix to the application.

use std::collections::BTreeMap;

/// A set of disjoint half-open `u64` intervals, merged on insert.
#[derive(Clone, Debug, Default)]
pub struct IntervalSet {
    /// start -> end, disjoint and non-adjacent (adjacent runs are merged).
    runs: BTreeMap<u64, u64>,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Insert `[start, end)`, merging with any overlapping or adjacent
    /// runs. Empty intervals are ignored.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut new_start = start;
        let mut new_end = end;

        // Absorb a run beginning at or before `start` that reaches it.
        if let Some((&s, &e)) = self.runs.range(..=start).next_back() {
            if e >= start {
                new_start = s;
                new_end = new_end.max(e);
                self.runs.remove(&s);
            }
        }
        // Absorb all runs starting inside (or adjacent to) the new run.
        while let Some((&s, &e)) = self.runs.range(new_start..=new_end).next() {
            new_end = new_end.max(e);
            self.runs.remove(&s);
        }
        self.runs.insert(new_start, new_end);
    }

    /// True if every byte of `[start, end)` is present.
    pub fn covers(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        match self.runs.range(..=start).next_back() {
            Some((_, &e)) => e >= end,
            None => false,
        }
    }

    /// The end of the contiguous run containing `from`, or `from` itself
    /// if `from` is not covered. This is how the receiver computes the
    /// deliverable prefix: `contiguous_from(rcv_nxt)`.
    pub fn contiguous_from(&self, from: u64) -> u64 {
        match self.runs.range(..=from).next_back() {
            Some((_, &e)) if e > from => e,
            _ => from,
        }
    }

    /// Number of disjoint runs currently held (diagnostics; bounded by the
    /// reordering degree of the paths).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total bytes covered.
    pub fn total_bytes(&self) -> u64 {
        self.runs.iter().map(|(&s, &e)| e - s).sum()
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_inserts_stay_one_run() {
        let mut s = IntervalSet::new();
        s.insert(0, 100);
        s.insert(100, 250);
        s.insert(250, 251);
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.contiguous_from(0), 251);
        assert_eq!(s.total_bytes(), 251);
    }

    #[test]
    fn gap_then_fill() {
        let mut s = IntervalSet::new();
        s.insert(0, 100);
        s.insert(200, 300);
        assert_eq!(s.run_count(), 2);
        assert_eq!(s.contiguous_from(0), 100);
        s.insert(100, 200);
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.contiguous_from(0), 300);
    }

    #[test]
    fn overlapping_and_nested_inserts() {
        let mut s = IntervalSet::new();
        s.insert(10, 50);
        s.insert(30, 70); // overlap right
        s.insert(0, 15); // overlap left
        s.insert(20, 40); // nested
        assert_eq!(s.run_count(), 1);
        assert!(s.covers(0, 70));
        assert!(!s.covers(0, 71));
        assert_eq!(s.contiguous_from(0), 70);
        assert_eq!(s.total_bytes(), 70);
    }

    #[test]
    fn duplicate_packets_are_idempotent() {
        let mut s = IntervalSet::new();
        s.insert(0, 1460);
        s.insert(0, 1460);
        s.insert(0, 1460);
        assert_eq!(s.total_bytes(), 1460);
        assert_eq!(s.run_count(), 1);
    }

    #[test]
    fn contiguous_from_middle_and_uncovered() {
        let mut s = IntervalSet::new();
        s.insert(100, 200);
        assert_eq!(s.contiguous_from(150), 200);
        assert_eq!(s.contiguous_from(0), 0);
        assert_eq!(s.contiguous_from(200), 200, "end is exclusive");
        assert_eq!(s.contiguous_from(500), 500);
    }

    #[test]
    fn empty_interval_ignored() {
        let mut s = IntervalSet::new();
        s.insert(5, 5);
        assert!(s.is_empty());
        assert!(s.covers(3, 3), "empty query trivially covered");
    }

    #[test]
    fn many_disjoint_runs_merge_with_one_spanning_insert() {
        let mut s = IntervalSet::new();
        for i in 0..10u64 {
            s.insert(i * 100, i * 100 + 50);
        }
        assert_eq!(s.run_count(), 10);
        s.insert(0, 1000);
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.total_bytes(), 1000);
    }
}
