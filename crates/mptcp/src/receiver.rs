//! The MPTCP receiver: per-subflow cumulative ACK generation plus
//! connection-level (DSS) reassembly, and the client-side half of the
//! MP-DASH signaling (the desired path mask carried on every ACK).

use crate::packet::{PathMask, PktRecord};
use crate::reassembly::IntervalSet;
use mpdash_link::PathId;
use mpdash_sim::SimTime;
use std::collections::BTreeMap;

/// What the receiver tells the simulator after ingesting a data packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RxResult {
    /// Cumulative subflow-level ACK to send back on the arrival path.
    pub ack: u64,
    /// Connection-level bytes that became deliverable to the application
    /// because of this packet (0 if it filled no gap at the stream head).
    pub newly_delivered: u64,
}

/// Per-subflow receive state.
#[derive(Clone, Debug, Default)]
struct SubRx {
    /// Next expected subflow sequence number (== cumulative ACK value).
    rcv_nxt: u64,
    /// Out-of-order segments beyond `rcv_nxt`: start -> end.
    ooo: BTreeMap<u64, u64>,
}

impl SubRx {
    /// Ingest a `[seq, seq+len)` segment, returning the new cumulative ACK.
    ///
    /// `syn` marks the opening segment of a re-established subflow: the
    /// previous incarnation's unacked tail was abandoned by the sender, so
    /// the receive state jumps forward to `seq` instead of waiting forever
    /// for a range that will never arrive. Late duplicates of the old
    /// incarnation (or of the SYN segment itself once it has been
    /// processed) satisfy `seq <= rcv_nxt` and fall through to the normal
    /// duplicate path — the resync only ever moves forward.
    fn on_segment(&mut self, seq: u64, len: u64, syn: bool) -> u64 {
        if syn && seq > self.rcv_nxt {
            self.rcv_nxt = seq;
            // Buffered fragments of the dead incarnation are void.
            self.ooo.clear();
        }
        let end = seq + len;
        if seq <= self.rcv_nxt {
            // In-order (or duplicate overlapping the head).
            self.rcv_nxt = self.rcv_nxt.max(end);
            // Absorb any buffered segments now contiguous.
            while let Some((&s, &e)) = self.ooo.first_key_value() {
                if s <= self.rcv_nxt {
                    self.rcv_nxt = self.rcv_nxt.max(e);
                    self.ooo.remove(&s);
                } else {
                    break;
                }
            }
        } else {
            // Gap: buffer. Entries may overlap on pathological
            // retransmission patterns; keep the longer run per start.
            let entry = self.ooo.entry(seq).or_insert(end);
            *entry = (*entry).max(end);
        }
        self.rcv_nxt
    }
}

/// The connection-level MPTCP receiver.
pub struct Receiver {
    subs: Vec<SubRx>,
    conn: IntervalSet,
    conn_delivered: u64,
    /// The path mask the client-side MP-DASH decision function currently
    /// wants; piggybacked on every outgoing ACK (the paper's reserved DSS
    /// option bit, §3.2).
    desired_mask: PathMask,
    /// Per-packet receive trace for the analysis tool / energy model.
    records: Vec<PktRecord>,
    /// Per-path received payload byte counters (including retransmitted
    /// duplicates — they cost link bytes and radio energy all the same).
    path_bytes: Vec<u64>,
}

impl Receiver {
    /// A receiver for `n_paths` subflows.
    pub fn new(n_paths: usize) -> Self {
        Receiver {
            subs: vec![SubRx::default(); n_paths],
            conn: IntervalSet::new(),
            conn_delivered: 0,
            desired_mask: PathMask::ALL,
            records: Vec::new(),
            path_bytes: vec![0; n_paths],
        }
    }

    /// Ingest one data packet. The arguments mirror the on-the-wire
    /// segment fields one-to-one, so a parameter struct would only
    /// restate them.
    #[allow(clippy::too_many_arguments)]
    pub fn on_data(
        &mut self,
        t: SimTime,
        path: PathId,
        seq: u64,
        len: u64,
        dss: u64,
        retx: bool,
        syn: bool,
    ) -> RxResult {
        let ack = self.subs[path.index()].on_segment(seq, len, syn);
        self.conn.insert(dss, dss + len);
        let head = self.conn.contiguous_from(self.conn_delivered);
        let newly = head - self.conn_delivered;
        self.conn_delivered = head;
        self.path_bytes[path.index()] += len;
        self.records.push(PktRecord {
            t,
            path,
            len,
            dss,
            retx,
        });
        RxResult {
            ack,
            newly_delivered: newly,
        }
    }

    /// Total connection bytes delivered in order to the application.
    pub fn delivered(&self) -> u64 {
        self.conn_delivered
    }

    /// Payload bytes received on `path` (lifetime, duplicates included).
    pub fn path_bytes(&self, path: PathId) -> u64 {
        self.path_bytes[path.index()]
    }

    /// The desired path mask the decision function last set.
    pub fn desired_mask(&self) -> PathMask {
        self.desired_mask
    }

    /// Update the desired mask; returns `true` if it changed.
    pub fn set_desired_mask(&mut self, mask: PathMask) -> bool {
        let changed = self.desired_mask != mask;
        self.desired_mask = mask;
        changed
    }

    /// Cumulative ACK value currently held for `path` (what a pure control
    /// ACK would carry).
    pub fn current_ack(&self, path: PathId) -> u64 {
        self.subs[path.index()].rcv_nxt
    }

    /// The packet receive trace.
    pub fn records(&self) -> &[PktRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::MSS;

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn in_order_delivery_single_path() {
        let mut r = Receiver::new(2);
        let r1 = r.on_data(t0(), PathId::WIFI, 0, MSS, 0, false, false);
        assert_eq!(r1.ack, MSS);
        assert_eq!(r1.newly_delivered, MSS);
        let r2 = r.on_data(t0(), PathId::WIFI, MSS, MSS, MSS, false, false);
        assert_eq!(r2.ack, 2 * MSS);
        assert_eq!(r.delivered(), 2 * MSS);
    }

    #[test]
    fn subflow_gap_holds_ack_but_dss_can_deliver() {
        let mut r = Receiver::new(2);
        // WiFi seg (dss 0) lost; cellular carries dss MSS.. first.
        let rc = r.on_data(t0(), PathId::CELLULAR, 0, MSS, MSS, false, false);
        assert_eq!(rc.ack, MSS, "cellular subflow itself is in order");
        assert_eq!(rc.newly_delivered, 0, "dss 0 still missing");
        // WiFi seg with dss 0 arrives.
        let rw = r.on_data(t0(), PathId::WIFI, 0, MSS, 0, false, false);
        assert_eq!(rw.newly_delivered, 2 * MSS, "gap filled, both deliver");
        assert_eq!(r.delivered(), 2 * MSS);
    }

    #[test]
    fn out_of_order_within_subflow_generates_dup_acks() {
        let mut r = Receiver::new(1);
        r.on_data(t0(), PathId(0), 0, MSS, 0, false, false);
        // Segment at seq MSS lost; 2*MSS..3*MSS arrives.
        let d = r.on_data(t0(), PathId(0), 2 * MSS, MSS, 2 * MSS, false, false);
        assert_eq!(d.ack, MSS, "cumulative ack stuck at the hole");
        let d2 = r.on_data(t0(), PathId(0), 3 * MSS, MSS, 3 * MSS, false, false);
        assert_eq!(d2.ack, MSS);
        // Retransmission fills the hole; ack jumps over buffered data.
        let d3 = r.on_data(t0(), PathId(0), MSS, MSS, MSS, true, false);
        assert_eq!(d3.ack, 4 * MSS);
        assert_eq!(r.delivered(), 4 * MSS);
    }

    #[test]
    fn syn_resyncs_past_an_abandoned_incarnation() {
        let mut r = Receiver::new(1);
        r.on_data(t0(), PathId(0), 0, MSS, 0, false, false);
        // [MSS, 3*MSS) died with the old incarnation; a buffered fragment
        // of it is stranded beyond the hole.
        let d = r.on_data(t0(), PathId(0), 2 * MSS, MSS, 2 * MSS, false, false);
        assert_eq!(d.ack, MSS, "stuck at the hole before the resync");
        // The re-established subflow opens at 3*MSS with the SYN marker:
        // the ack jumps forward, skipping the range that will never come.
        let d2 = r.on_data(t0(), PathId(0), 3 * MSS, MSS, 3 * MSS, false, true);
        assert_eq!(d2.ack, 4 * MSS, "resync + opening segment");
        // A late retransmitted duplicate of the SYN segment must not
        // regress anything.
        let d3 = r.on_data(t0(), PathId(0), 3 * MSS, MSS, 3 * MSS, true, true);
        assert_eq!(d3.ack, 4 * MSS);
        // Subsequent data flows in order on the new incarnation.
        let d4 = r.on_data(t0(), PathId(0), 4 * MSS, MSS, 4 * MSS, false, false);
        assert_eq!(d4.ack, 5 * MSS);
    }

    #[test]
    fn duplicate_segments_do_not_double_deliver() {
        let mut r = Receiver::new(1);
        r.on_data(t0(), PathId(0), 0, MSS, 0, false, false);
        let d = r.on_data(t0(), PathId(0), 0, MSS, 0, true, false);
        assert_eq!(d.ack, MSS);
        assert_eq!(d.newly_delivered, 0);
        assert_eq!(r.delivered(), MSS);
        // But the duplicate still cost link bytes.
        assert_eq!(r.path_bytes(PathId(0)), 2 * MSS);
    }

    #[test]
    fn records_capture_the_packet_trace() {
        let mut r = Receiver::new(2);
        r.on_data(
            SimTime::from_millis(5),
            PathId::WIFI,
            0,
            MSS,
            0,
            false,
            false,
        );
        r.on_data(
            SimTime::from_millis(7),
            PathId::CELLULAR,
            0,
            500,
            MSS,
            false,
            false,
        );
        let recs = r.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].path, PathId::WIFI);
        assert_eq!(recs[1].len, 500);
        assert_eq!(recs[1].dss, MSS);
    }

    #[test]
    fn desired_mask_round_trip() {
        let mut r = Receiver::new(2);
        assert_eq!(r.desired_mask(), PathMask::ALL);
        assert!(r.set_desired_mask(PathMask::only(PathId::WIFI)));
        assert!(!r.set_desired_mask(PathMask::only(PathId::WIFI)));
        assert_eq!(r.desired_mask(), PathMask::only(PathId::WIFI));
    }
}
