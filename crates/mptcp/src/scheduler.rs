//! MPTCP packet schedulers: lowest-SRTT ("default") and round-robin.
//!
//! These are the two stock schedulers the paper overlays MP-DASH on
//! (§2.1, Figure 4). The scheduler answers one question per packet: *which
//! subflow carries the next segment?* Candidates are subflows that (a) have
//! congestion-window space and (b) are enabled in the current MP-DASH path
//! mask — the mask filtering is exactly how the paper implements "disable
//! the cellular subflow": skip it in the scheduling function (§6).

use mpdash_link::PathId;
use mpdash_sim::SimDuration;

/// Which packet scheduler the connection uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedulerKind {
    /// The MPTCP default: among subflows with window space, pick the one
    /// with the smallest smoothed RTT estimate.
    MinRtt,
    /// Round-robin across subflows with window space.
    RoundRobin,
}

/// Per-subflow facts the scheduler decides on.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The subflow's path.
    pub path: PathId,
    /// Smoothed RTT, `None` before the first sample.
    pub srtt: Option<SimDuration>,
}

/// Pick the subflow for the next segment, or `None` if `candidates` is
/// empty. `rr_cursor` is the round-robin rotation state, owned by the
/// connection and advanced on every round-robin pick.
pub fn pick(
    kind: SchedulerKind,
    rr_cursor: &mut usize,
    candidates: &[Candidate],
) -> Option<PathId> {
    if candidates.is_empty() {
        return None;
    }
    match kind {
        SchedulerKind::MinRtt => {
            // Unmeasured subflows sort after measured ones (the kernel
            // keeps data on established low-RTT paths until others have
            // estimates); ties break on path index, which makes the
            // primary (lowest index, WiFi by convention) win at start-up.
            candidates
                .iter()
                .min_by_key(|c| (c.srtt.unwrap_or(SimDuration::MAX), c.path))
                .map(|c| c.path)
        }
        SchedulerKind::RoundRobin => {
            let idx = *rr_cursor % candidates.len();
            *rr_cursor = rr_cursor.wrapping_add(1);
            Some(candidates[idx].path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(path: u8, srtt_ms: Option<u64>) -> Candidate {
        Candidate {
            path: PathId(path),
            srtt: srtt_ms.map(SimDuration::from_millis),
        }
    }

    #[test]
    fn min_rtt_picks_fastest() {
        let mut rr = 0;
        let picked = pick(
            SchedulerKind::MinRtt,
            &mut rr,
            &[cand(0, Some(50)), cand(1, Some(30))],
        );
        assert_eq!(picked, Some(PathId(1)));
    }

    #[test]
    fn min_rtt_prefers_measured_over_unmeasured() {
        let mut rr = 0;
        let picked = pick(
            SchedulerKind::MinRtt,
            &mut rr,
            &[cand(0, None), cand(1, Some(500))],
        );
        assert_eq!(picked, Some(PathId(1)));
    }

    #[test]
    fn min_rtt_tie_breaks_on_primary() {
        let mut rr = 0;
        let picked = pick(
            SchedulerKind::MinRtt,
            &mut rr,
            &[cand(1, None), cand(0, None)],
        );
        assert_eq!(
            picked,
            Some(PathId(0)),
            "all-unmeasured falls to lowest index"
        );
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = 0;
        let cands = [cand(0, Some(10)), cand(1, Some(10))];
        let seq: Vec<_> = (0..4)
            .map(|_| pick(SchedulerKind::RoundRobin, &mut rr, &cands).unwrap())
            .collect();
        assert_eq!(seq, vec![PathId(0), PathId(1), PathId(0), PathId(1)]);
    }

    #[test]
    fn round_robin_adapts_to_shrinking_candidate_set() {
        let mut rr = 0;
        let both = [cand(0, Some(10)), cand(1, Some(10))];
        let one = [cand(1, Some(10))];
        pick(SchedulerKind::RoundRobin, &mut rr, &both);
        // WiFi's window filled: only cell remains; must still pick validly.
        assert_eq!(
            pick(SchedulerKind::RoundRobin, &mut rr, &one),
            Some(PathId(1))
        );
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut rr = 0;
        assert_eq!(pick(SchedulerKind::MinRtt, &mut rr, &[]), None);
        assert_eq!(pick(SchedulerKind::RoundRobin, &mut rr, &[]), None);
    }
}
