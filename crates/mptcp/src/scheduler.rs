//! MPTCP packet schedulers behind a pluggable [`Scheduler`] trait.
//!
//! The scheduler answers one question per packet: *which subflow carries
//! the next segment?* Candidates are subflows that (a) have
//! congestion-window space and (b) are enabled in the current MP-DASH path
//! mask — the mask filtering is exactly how the paper implements "disable
//! the cellular subflow": skip it in the scheduling function (§6).
//!
//! Configuration layers carry a [`SchedulerSpec`] — a `Copy`, comparable
//! enum that serializes into scenario JSON — and the connection builds its
//! runtime [`Scheduler`] state from it once, via [`SchedulerSpec::build`].
//! Three schedulers ship today:
//!
//! * [`MinRttScheduler`] — the MPTCP default the paper overlays (§2.1):
//!   among subflows with window space, the smallest smoothed RTT wins.
//! * [`RoundRobinScheduler`] — the paper's second stock scheduler.
//!   Rotation keys off the last-picked [`PathId`], not a position cursor,
//!   so a candidate set that shrinks and regrows (cwnd-full or masked
//!   subflows) cannot skew the rotation.
//! * [`QAwareScheduler`] — a cross-layer variant after "QAware: A
//!   Cross-Layer Approach to MPTCP Scheduling": the SRTT ranking is
//!   weighted by the occupancy of the path's shared bottleneck queue, so
//!   traffic detours around congestion *before* the RTT estimator has
//!   caught up. With no shared queue attached it degenerates to exact
//!   minRTT ordering.
//!
//! Adding a scheduler is a local change: implement [`Scheduler`] on a
//! state struct, add a [`SchedulerSpec`] variant, and wire the two
//! together in [`SchedulerSpec::build`]/[`SchedulerSpec::parse`]. Every
//! config layer above (session, scenario JSON, experiment grids) picks it
//! up through the spec.

use mpdash_link::PathId;
use mpdash_sim::SimDuration;

/// Which packet scheduler the connection uses — the `Copy`, serializable
/// spec carried through every configuration layer. Runtime state lives in
/// the [`Scheduler`] implementation [`SchedulerSpec::build`] returns.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedulerSpec {
    /// The MPTCP default: among subflows with window space, pick the one
    /// with the smallest smoothed RTT estimate.
    MinRtt,
    /// Round-robin across subflows with window space.
    RoundRobin,
    /// Queue-occupancy-weighted minRTT (QAware-style, cross-layer).
    QAware,
}

impl SchedulerSpec {
    /// Every scheduler, in a stable order (grids iterate this).
    pub const ALL: [SchedulerSpec; 3] = [
        SchedulerSpec::MinRtt,
        SchedulerSpec::RoundRobin,
        SchedulerSpec::QAware,
    ];

    /// Snake-case wire name, as written in scenario JSON.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerSpec::MinRtt => "min_rtt",
            SchedulerSpec::RoundRobin => "round_robin",
            SchedulerSpec::QAware => "qaware",
        }
    }

    /// Parse a wire name back to a spec (`None` for unknown names).
    pub fn parse(s: &str) -> Option<SchedulerSpec> {
        SchedulerSpec::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Build the runtime scheduler state this spec names.
    pub fn build(self) -> SchedulerImpl {
        match self {
            SchedulerSpec::MinRtt => SchedulerImpl::MinRtt(MinRttScheduler),
            SchedulerSpec::RoundRobin => SchedulerImpl::RoundRobin(RoundRobinScheduler::new()),
            SchedulerSpec::QAware => SchedulerImpl::QAware(QAwareScheduler::new()),
        }
    }
}

/// Per-subflow facts the scheduler decides on.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The subflow's path.
    pub path: PathId,
    /// Smoothed RTT, `None` before the first sample.
    pub srtt: Option<SimDuration>,
    /// Congestion window in bytes.
    pub cwnd: u64,
    /// Unacknowledged bytes outstanding on this subflow.
    pub in_flight: u64,
    /// Bytes currently occupying the path's shared bottleneck queue,
    /// when the path is attached to one (`None` on private links).
    pub queue_depth: Option<u64>,
}

/// One scheduling decision's inputs: the eligible subflows plus the
/// connection-level send backlog (bytes queued but not yet assigned).
#[derive(Clone, Copy, Debug)]
pub struct SchedInput<'a> {
    /// Subflows with window space under the current mask, in path order.
    pub candidates: &'a [Candidate],
    /// Pending send backlog in bytes (this decision assigns its head).
    pub backlog: u64,
}

/// A connection-level packet scheduler. One instance lives on the sender
/// for the lifetime of the connection and owns whatever rotation/EWMA
/// state its policy needs; [`Scheduler::pick`] is called once per segment.
pub trait Scheduler {
    /// Pick the subflow for the next segment, or `None` if no candidate.
    fn pick(&mut self, input: &SchedInput<'_>) -> Option<PathId>;

    /// The spec this scheduler was built from (display, serialization).
    fn spec(&self) -> SchedulerSpec;
}

/// Stateless lowest-SRTT scheduler (the MPTCP default).
#[derive(Clone, Copy, Debug, Default)]
pub struct MinRttScheduler;

/// Unmeasured subflows sort after measured ones (the kernel keeps data on
/// established low-RTT paths until others have estimates); ties break on
/// path index, which makes the primary (lowest index, WiFi by
/// convention) win at start-up.
#[inline]
fn min_rtt_pick(candidates: &[Candidate]) -> Option<PathId> {
    candidates
        .iter()
        .min_by_key(|c| (c.srtt.unwrap_or(SimDuration::MAX), c.path))
        .map(|c| c.path)
}

impl Scheduler for MinRttScheduler {
    #[inline]
    fn pick(&mut self, input: &SchedInput<'_>) -> Option<PathId> {
        min_rtt_pick(input.candidates)
    }

    fn spec(&self) -> SchedulerSpec {
        SchedulerSpec::MinRtt
    }
}

/// Round-robin keyed off the last-picked path.
///
/// The seed implementation rotated a position cursor (`cursor % len`)
/// over the candidate slice; because the slice reshuffles whenever a
/// window fills or the mask toggles, the cursor re-mapped to arbitrary
/// paths and rotation skewed (the same path could be picked twice in a
/// row with another candidate available). Keying off the last-picked
/// [`PathId`] makes rotation a property of paths, not slice positions.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobinScheduler {
    last: Option<PathId>,
}

impl RoundRobinScheduler {
    /// A fresh rotation (first pick goes to the lowest-indexed candidate).
    pub fn new() -> Self {
        RoundRobinScheduler::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    #[inline]
    fn pick(&mut self, input: &SchedInput<'_>) -> Option<PathId> {
        let c = input.candidates;
        if c.is_empty() {
            return None;
        }
        // Lowest path strictly after the last pick, wrapping around.
        let next = self
            .last
            .and_then(|last| c.iter().map(|x| x.path).filter(|&p| p > last).min())
            .unwrap_or_else(|| c.iter().map(|x| x.path).min().expect("non-empty"));
        self.last = Some(next);
        Some(next)
    }

    fn spec(&self) -> SchedulerSpec {
        SchedulerSpec::RoundRobin
    }
}

/// Reference queue depth for the QAware weighting: one 64 KiB
/// queue-capacity's worth of backlog doubles a path's effective RTT.
const QAWARE_REF_BYTES: u64 = 64 * 1024;

/// Queue-occupancy-weighted minRTT.
///
/// Each candidate is ranked by `srtt * (REF + ewma_depth) / REF`: a path
/// whose shared bottleneck holds [`QAWARE_REF_BYTES`] of backlog looks
/// twice as slow as its SRTT claims. The EWMA (gain ½ per decision)
/// smooths the instantaneous occupancy so a single in-service packet
/// does not flap the ranking. Paths with no shared queue contribute
/// depth 0, so without any attachment the ordering — including the
/// unmeasured-SRTT and path-index tie-breaks — is exactly
/// [`MinRttScheduler`]'s.
#[derive(Clone, Debug, Default)]
pub struct QAwareScheduler {
    /// Per-path smoothed queue depth, indexed by `PathId::index()`.
    ewma_depth: Vec<u64>,
}

impl QAwareScheduler {
    /// A fresh scheduler with all depth estimates at zero.
    pub fn new() -> Self {
        QAwareScheduler::default()
    }

    fn smoothed(&mut self, path: PathId, depth: u64) -> u64 {
        let i = path.index();
        if self.ewma_depth.len() <= i {
            self.ewma_depth.resize(i + 1, 0);
        }
        // EWMA with gain ½, rounding up so a persistent depth of 1 byte
        // cannot get stuck at zero.
        let next = (self.ewma_depth[i] + depth).div_ceil(2);
        self.ewma_depth[i] = next;
        next
    }
}

impl Scheduler for QAwareScheduler {
    #[inline]
    fn pick(&mut self, input: &SchedInput<'_>) -> Option<PathId> {
        input
            .candidates
            .iter()
            .map(|c| {
                let depth = self.smoothed(c.path, c.queue_depth.unwrap_or(0));
                let srtt = c.srtt.map(|s| s.as_nanos()).unwrap_or(u64::MAX);
                // u128 keeps `MAX * (REF + depth)` from overflowing, and
                // the unmeasured sentinel still sorts after every
                // measured path regardless of depth.
                let score = srtt as u128 * (QAWARE_REF_BYTES + depth) as u128;
                (score, c.path)
            })
            .min()
            .map(|(_, path)| path)
    }

    fn spec(&self) -> SchedulerSpec {
        SchedulerSpec::QAware
    }
}

/// Runtime scheduler state, enum-dispatched so the per-segment pick stays
/// inlineable on the hot path while every variant (and the enum itself)
/// implements [`Scheduler`].
#[derive(Clone, Debug)]
pub enum SchedulerImpl {
    /// See [`MinRttScheduler`].
    MinRtt(MinRttScheduler),
    /// See [`RoundRobinScheduler`].
    RoundRobin(RoundRobinScheduler),
    /// See [`QAwareScheduler`].
    QAware(QAwareScheduler),
}

impl Scheduler for SchedulerImpl {
    #[inline]
    fn pick(&mut self, input: &SchedInput<'_>) -> Option<PathId> {
        match self {
            SchedulerImpl::MinRtt(s) => s.pick(input),
            SchedulerImpl::RoundRobin(s) => s.pick(input),
            SchedulerImpl::QAware(s) => s.pick(input),
        }
    }

    fn spec(&self) -> SchedulerSpec {
        match self {
            SchedulerImpl::MinRtt(s) => s.spec(),
            SchedulerImpl::RoundRobin(s) => s.spec(),
            SchedulerImpl::QAware(s) => s.spec(),
        }
    }
}

/// The seed enum dispatcher, kept verbatim as the equivalence reference:
/// property tests pin the trait port against it and the micro bench
/// measures trait-dispatch overhead relative to it. `rr_cursor` is the
/// seed's position-cursor rotation state (including its skew bug — that
/// is the point of a reference). Panics on [`SchedulerSpec::QAware`],
/// which postdates the seed.
#[doc(hidden)]
#[inline]
pub fn seed_pick(
    kind: SchedulerSpec,
    rr_cursor: &mut usize,
    candidates: &[Candidate],
) -> Option<PathId> {
    if candidates.is_empty() {
        return None;
    }
    match kind {
        SchedulerSpec::MinRtt => min_rtt_pick(candidates),
        SchedulerSpec::RoundRobin => {
            let idx = *rr_cursor % candidates.len();
            *rr_cursor = rr_cursor.wrapping_add(1);
            Some(candidates[idx].path)
        }
        SchedulerSpec::QAware => panic!("the seed enum had no QAware scheduler"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(path: u8, srtt_ms: Option<u64>) -> Candidate {
        cand_q(path, srtt_ms, None)
    }

    fn cand_q(path: u8, srtt_ms: Option<u64>, queue_depth: Option<u64>) -> Candidate {
        Candidate {
            path: PathId(path),
            srtt: srtt_ms.map(SimDuration::from_millis),
            cwnd: 10 * crate::packet::MSS,
            in_flight: 0,
            queue_depth,
        }
    }

    fn pick_with(sched: &mut impl Scheduler, candidates: &[Candidate]) -> Option<PathId> {
        sched.pick(&SchedInput {
            candidates,
            backlog: crate::packet::MSS,
        })
    }

    #[test]
    fn min_rtt_picks_fastest() {
        let mut s = SchedulerSpec::MinRtt.build();
        let picked = pick_with(&mut s, &[cand(0, Some(50)), cand(1, Some(30))]);
        assert_eq!(picked, Some(PathId(1)));
    }

    #[test]
    fn min_rtt_prefers_measured_over_unmeasured() {
        let mut s = SchedulerSpec::MinRtt.build();
        let picked = pick_with(&mut s, &[cand(0, None), cand(1, Some(500))]);
        assert_eq!(picked, Some(PathId(1)));
    }

    #[test]
    fn min_rtt_tie_breaks_on_primary() {
        let mut s = SchedulerSpec::MinRtt.build();
        let picked = pick_with(&mut s, &[cand(1, None), cand(0, None)]);
        assert_eq!(
            picked,
            Some(PathId(0)),
            "all-unmeasured falls to lowest index"
        );
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = SchedulerSpec::RoundRobin.build();
        let cands = [cand(0, Some(10)), cand(1, Some(10))];
        let seq: Vec<_> = (0..4).map(|_| pick_with(&mut s, &cands).unwrap()).collect();
        assert_eq!(seq, vec![PathId(0), PathId(1), PathId(0), PathId(1)]);
    }

    #[test]
    fn round_robin_adapts_to_shrinking_candidate_set() {
        let mut s = SchedulerSpec::RoundRobin.build();
        let both = [cand(0, Some(10)), cand(1, Some(10))];
        let one = [cand(1, Some(10))];
        pick_with(&mut s, &both);
        // WiFi's window filled: only cell remains; must still pick validly.
        assert_eq!(pick_with(&mut s, &one), Some(PathId(1)));
    }

    #[test]
    fn round_robin_rotation_survives_candidate_churn() {
        // The seed's position cursor picked the same path twice in a row
        // here (cursor skew); keying off the last-picked path must not.
        let mut s = SchedulerSpec::RoundRobin.build();
        let both = [cand(0, Some(10)), cand(1, Some(10))];
        let wifi_only = [cand(0, Some(10))];
        assert_eq!(pick_with(&mut s, &both), Some(PathId(0)));
        // Cell's window fills; two picks go to WiFi alone.
        assert_eq!(pick_with(&mut s, &wifi_only), Some(PathId(0)));
        assert_eq!(pick_with(&mut s, &wifi_only), Some(PathId(0)));
        // Cell drains and returns: rotation resumes *after* WiFi. (The
        // seed cursor, now at 3, would have re-picked WiFi: 3 % 2 == 1
        // maps to slice position 1 only by luck of ordering — after the
        // churn above it lands back on path 0.)
        assert_eq!(pick_with(&mut s, &both), Some(PathId(1)));
    }

    #[test]
    fn qaware_matches_min_rtt_without_queues() {
        // No shared queues anywhere: the weighting is srtt * REF for
        // every candidate, so ordering — ties included — is minRTT's.
        let grids: &[&[Candidate]] = &[
            &[cand(0, Some(50)), cand(1, Some(30))],
            &[cand(0, None), cand(1, Some(500))],
            &[cand(1, None), cand(0, None)],
            &[cand(0, Some(10)), cand(1, Some(10))],
        ];
        for cands in grids {
            let mut q = SchedulerSpec::QAware.build();
            let mut m = SchedulerSpec::MinRtt.build();
            assert_eq!(pick_with(&mut q, cands), pick_with(&mut m, cands));
        }
    }

    #[test]
    fn qaware_detours_off_a_deep_shared_queue() {
        // WiFi has the lower SRTT but its shared AP queue holds 128 KiB;
        // cell's queue is empty. Effective WiFi cost 20 ms * 3 = 60 ms
        // beats cell's 35 ms — QAware must detour to cell where minRTT
        // would keep piling onto the congested AP.
        let cands = [
            cand_q(0, Some(20), Some(2 * QAWARE_REF_BYTES)),
            cand_q(1, Some(35), Some(0)),
        ];
        let mut q = SchedulerSpec::QAware.build();
        let mut m = SchedulerSpec::MinRtt.build();
        assert_eq!(pick_with(&mut m, &cands), Some(PathId(0)));
        // First pick: EWMA has only half-charged (64 KiB → 2x), tie goes
        // to... 20*2 = 40 ms still above 35 ms: detour immediately.
        assert_eq!(pick_with(&mut q, &cands), Some(PathId(1)));
        // And the detour persists while the queue stays deep.
        assert_eq!(pick_with(&mut q, &cands), Some(PathId(1)));
    }

    #[test]
    fn qaware_returns_when_the_queue_drains() {
        let deep = [
            cand_q(0, Some(20), Some(4 * QAWARE_REF_BYTES)),
            cand_q(1, Some(35), Some(0)),
        ];
        let drained = [cand_q(0, Some(20), Some(0)), cand_q(1, Some(35), Some(0))];
        let mut q = SchedulerSpec::QAware.build();
        assert_eq!(pick_with(&mut q, &deep), Some(PathId(1)));
        // A few decisions after the queue empties, the EWMA decays and
        // the low-SRTT path wins again.
        let back = (0..8)
            .map(|_| pick_with(&mut q, &drained).unwrap())
            .collect::<Vec<_>>();
        assert_eq!(
            *back.last().unwrap(),
            PathId(0),
            "EWMA must decay: {back:?}"
        );
    }

    #[test]
    fn empty_candidates_yield_none() {
        for spec in SchedulerSpec::ALL {
            let mut s = spec.build();
            assert_eq!(pick_with(&mut s, &[]), None);
        }
        let mut rr = 0;
        assert_eq!(seed_pick(SchedulerSpec::MinRtt, &mut rr, &[]), None);
        assert_eq!(seed_pick(SchedulerSpec::RoundRobin, &mut rr, &[]), None);
    }

    #[test]
    fn spec_labels_round_trip() {
        for spec in SchedulerSpec::ALL {
            assert_eq!(SchedulerSpec::parse(spec.label()), Some(spec));
            assert_eq!(spec.build().spec(), spec);
        }
        assert_eq!(SchedulerSpec::parse("blecs"), None);
    }
}
