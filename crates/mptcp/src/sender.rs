//! The MPTCP sender: connection-level data assignment plus per-subflow
//! TCP send machinery.
//!
//! The sender owns one [`SubflowTx`] per path. Each subflow is a compact
//! TCP sender: congestion window ([`crate::cc`]), Jacobson/Karn RTT
//! estimation, duplicate-ACK fast retransmit with NewReno partial-ACK
//! retransmission, and an RTO with exponential backoff. The connection
//! stripes application bytes across subflows through the configured
//! [`Scheduler`] (built once from the config's
//! [`crate::scheduler::SchedulerSpec`]), *skipping* any subflow the
//! current [`PathMask`] disables — that skip is the entire MP-DASH
//! enforcement mechanism (§6 of the paper).
//!
//! The sender is pure state: it never touches links or the event queue.
//! Methods return [`Transmit`] actions that the simulator realizes, which
//! keeps this module synchronously testable.

use crate::cc::{CcKind, CongestionControl};
use crate::packet::{PathMask, MSS};
use crate::scheduler::{Candidate, SchedInput, Scheduler, SchedulerImpl, SchedulerSpec};
use mpdash_link::PathId;
use mpdash_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Initial retransmission timeout before any RTT sample (RFC 6298).
const RTO_INITIAL: SimDuration = SimDuration::from_millis(1_000);
/// Lower bound on the RTO (Linux uses 200 ms).
const RTO_MIN: SimDuration = SimDuration::from_millis(200);
/// Upper bound on the RTO.
const RTO_MAX: SimDuration = SimDuration::from_secs(60);
/// RTO firings without progress before a subflow is declared failed and
/// its data reinjected on the surviving paths (Linux gives up on a TCP
/// connection after ~15 backoffs; MPTCP abandons a subflow much sooner
/// because the data has somewhere else to go).
const MAX_CONSECUTIVE_RTOS: u32 = 6;
/// How long a failed subflow rests before the sender probes it again
/// (MPTCP re-establishes subflows when paths come back; we model that as
/// a state reset after a cooldown).
const REVIVAL_COOLDOWN: SimDuration = SimDuration::from_secs(10);
/// Reconnect-probe cooldown after a *link-down* failure. The interface
/// dropped on an otherwise healthy path — reassociation is usually
/// seconds away, so probe quickly and at a fixed interval instead of
/// inheriting the RTO-exhaustion exponential backoff. A probe that dies
/// on a still-dark interface costs one segment, reinjected immediately.
const LINKDOWN_RETRY: SimDuration = SimDuration::from_secs(2);

/// A segment-transmission instruction for the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transmit {
    /// Path to send on.
    pub path: PathId,
    /// Subflow-level sequence number of the first byte.
    pub seq: u64,
    /// Payload length in bytes (≤ [`MSS`]).
    pub len: u64,
    /// Connection-level (DSS) offset of the first byte.
    pub dss: u64,
    /// Whether this is a retransmission.
    pub retx: bool,
    /// First segment of a (re-)established subflow. A revival is a fresh
    /// TCP connection, so its opening segment carries a SYN-like marker
    /// telling the receiver to resynchronize its subflow sequence state —
    /// the abandoned incarnation's unacked range is gone for good and
    /// must not hold the cumulative ACK back. Retransmissions of the
    /// opening segment re-carry the marker (a lost SYN is retried).
    pub syn: bool,
}

/// An unacknowledged segment.
#[derive(Clone, Copy, Debug)]
struct Seg {
    seq: u64,
    len: u64,
    dss: u64,
    sent_at: SimTime,
    retx: bool,
    /// Whether this segment's DSS range has been reinjected on another
    /// subflow (at most once per segment).
    reinjected: bool,
    /// Opening segment of a (re-)established subflow (see
    /// [`Transmit::syn`]).
    syn: bool,
}

/// Per-path TCP sender state.
#[derive(Clone, Debug)]
pub struct SubflowTx {
    path: PathId,
    cc: CongestionControl,
    /// Congestion-control flavor, kept so re-establishment can build a
    /// fresh controller of the same kind.
    cc_kind: CcKind,
    snd_una: u64,
    snd_nxt: u64,
    segs: VecDeque<Seg>,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    /// Lowest RTT ever sampled (propagation estimate for HyStart).
    min_rtt: Option<SimDuration>,
    dupacks: u32,
    /// `Some(end)` while in loss recovery; recovery exits when
    /// `snd_una >= end`.
    recovery_end: Option<u64>,
    /// `Some(end)` while reacting to an ECN congestion echo: the window
    /// was already halved once for this flight, and further echoes are
    /// ignored until `snd_una >= end` (one backoff per window, RFC 3168
    /// §6.1.2). Separate from `recovery_end` because an ECN backoff is
    /// *not* loss recovery — nothing is missing at the receiver, so
    /// NewReno partial-ACK retransmits must not fire.
    ecn_hold_end: Option<u64>,
    /// Absolute instant the retransmission timer fires, if armed.
    rto_deadline: Option<SimTime>,
    /// RTO firings since the last forward progress; at
    /// [`MAX_CONSECUTIVE_RTOS`] the subflow is declared failed.
    consecutive_rtos: u32,
    /// A persistently failing subflow is abandoned: its unacked data is
    /// reinjected elsewhere and the packet scheduler skips it (MPTCP
    /// tears such subflows down; we keep the state for accounting).
    failed: bool,
    /// Cooldown before the next revival probe; doubles on each repeated
    /// failure so a permanently dead path is probed ever more rarely.
    revival_backoff: SimDuration,
    /// Last instant this subflow sent or received anything (for idle
    /// window validation).
    last_activity: SimTime,
    /// Instant the (re-)established subflow may carry new data; the
    /// re-establishment handshake occupies `[revival, established_at)`.
    established_at: SimTime,
    /// Lifetime count of failure declarations.
    failures: u64,
    /// Lifetime count of revivals (re-establishments after failure).
    revivals: u64,
    /// The next segment handed to this subflow opens a fresh incarnation
    /// and must carry the SYN-like resync marker (see [`Transmit::syn`]).
    send_syn: bool,
    /// Lifetime bytes handed to this subflow (first transmissions only).
    pub assigned_bytes: u64,
    /// Lifetime retransmitted bytes.
    pub retx_bytes: u64,
}

impl SubflowTx {
    fn new(path: PathId, cc: CcKind) -> Self {
        SubflowTx {
            path,
            cc: CongestionControl::new(cc),
            cc_kind: cc,
            snd_una: 0,
            snd_nxt: 0,
            segs: VecDeque::new(),
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: RTO_INITIAL,
            min_rtt: None,
            dupacks: 0,
            recovery_end: None,
            ecn_hold_end: None,
            rto_deadline: None,
            consecutive_rtos: 0,
            failed: false,
            revival_backoff: REVIVAL_COOLDOWN,
            last_activity: SimTime::ZERO,
            established_at: SimTime::ZERO,
            failures: 0,
            revivals: 0,
            send_syn: false,
            assigned_bytes: 0,
            retx_bytes: 0,
        }
    }

    /// Bytes sent but not yet cumulatively acknowledged.
    pub fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// Smoothed RTT estimate, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Current RTO value.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Absolute retransmission-timer deadline, if armed.
    pub fn rto_deadline(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    /// Whether this subflow has been declared failed.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Lifetime count of failure declarations on this subflow.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Lifetime count of revivals (full re-establishments) on this
    /// subflow.
    pub fn revivals(&self) -> u64 {
        self.revivals
    }

    /// Current revival-probe cooldown (doubles on repeated failures).
    pub fn revival_backoff(&self) -> SimDuration {
        self.revival_backoff
    }

    /// Instant the subflow may next carry new data; later than the
    /// revival instant while the re-establishment handshake is in
    /// flight.
    pub fn established_at(&self) -> SimTime {
        self.established_at
    }

    /// Re-establish the subflow after a failure. MPTCP tears a failed
    /// subflow down, so a revival is a fresh three-way handshake: new
    /// congestion state, no RTT history, and the handshake itself costs
    /// roughly one RTT before new data may flow (`established_at`).
    fn reestablish(&mut self, now: SimTime) {
        self.revivals += 1;
        // SYN + SYN/ACK ≈ the last known RTT; with no history, fall back
        // to the tight probe timer below.
        let handshake = self.srtt.unwrap_or(RTO_MIN * 2);
        self.established_at = now + handshake;
        self.failed = false;
        self.consecutive_rtos = 0;
        self.cc = CongestionControl::new(self.cc_kind);
        self.srtt = None;
        self.rttvar = SimDuration::ZERO;
        self.min_rtt = None;
        self.dupacks = 0;
        self.recovery_end = None;
        self.ecn_hold_end = None;
        // A revival is a *probe*: keep the timer tight so a still-dead
        // path reinjects (and re-fails) quickly rather than stalling the
        // stream a full initial RTO.
        self.rto = RTO_MIN * 2;
        self.last_activity = now;
        // The fresh incarnation's first segment announces the resync:
        // the receiver must not wait for the dead incarnation's abandoned
        // sequence range.
        self.send_syn = true;
    }

    fn take_rtt_sample(&mut self, rtt: SimDuration) {
        // HyStart-style delay-based slow-start exit: once the RTT has
        // inflated a quarter above the propagation floor (at least 4 ms),
        // the bottleneck queue is filling — stop doubling before the
        // drop-tail queue turns the overshoot into a burst of losses.
        let min = match self.min_rtt {
            Some(m) => m.min(rtt),
            None => rtt,
        };
        self.min_rtt = Some(min);
        let threshold = min + (min / 4).max(SimDuration::from_millis(4));
        if rtt > threshold {
            self.cc.exit_slow_start();
        }
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = self.rttvar * 3 / 4 + err / 4;
                self.srtt = Some(srtt * 7 / 8 + rtt / 8);
            }
        }
        let srtt = self.srtt.unwrap();
        self.rto = (srtt + self.rttvar * 4).max(RTO_MIN).min(RTO_MAX);
    }

    /// Mark the first unacked segment for retransmission and return the
    /// corresponding action.
    fn retransmit_head(&mut self, now: SimTime) -> Option<Transmit> {
        let seg = self.segs.front_mut()?;
        seg.retx = true;
        seg.sent_at = now;
        self.retx_bytes += seg.len;
        Some(Transmit {
            path: self.path,
            seq: seg.seq,
            len: seg.len,
            dss: seg.dss,
            retx: true,
            syn: seg.syn,
        })
    }
}

/// The connection-level MPTCP sender.
pub struct Sender {
    subflows: Vec<SubflowTx>,
    scheduler: SchedulerImpl,
    /// Total application bytes requested for transmission.
    conn_total: u64,
    /// Next DSS offset to assign (bytes already mapped to subflows).
    conn_assigned: u64,
    /// Enforcement state of the MP-DASH overlay, as last signaled.
    mask: PathMask,
}

impl Sender {
    /// A sender with `n_paths` subflows, all enabled.
    pub fn new(n_paths: usize, scheduler: SchedulerSpec, cc: CcKind) -> Self {
        assert!(n_paths >= 1, "need at least one path");
        assert!(n_paths <= 32, "PathMask supports up to 32 paths");
        Sender {
            subflows: (0..n_paths)
                .map(|i| SubflowTx::new(PathId(i as u8), cc))
                .collect(),
            scheduler: scheduler.build(),
            conn_total: 0,
            conn_assigned: 0,
            mask: PathMask::ALL,
        }
    }

    /// Read access to a subflow's state (diagnostics, scheduling oracles).
    pub fn subflow(&self, path: PathId) -> &SubflowTx {
        &self.subflows[path.index()]
    }

    /// Number of subflows.
    pub fn n_paths(&self) -> usize {
        self.subflows.len()
    }

    /// Application bytes queued so far (lifetime).
    pub fn conn_total(&self) -> u64 {
        self.conn_total
    }

    /// Bytes already assigned to subflows (lifetime).
    pub fn conn_assigned(&self) -> u64 {
        self.conn_assigned
    }

    /// The currently enforced path mask.
    pub fn mask(&self) -> PathMask {
        self.mask
    }

    /// Failure declarations summed over all subflows (lifetime).
    pub fn total_failures(&self) -> u64 {
        self.subflows.iter().map(|sf| sf.failures()).sum()
    }

    /// Revivals summed over all subflows (lifetime).
    pub fn total_revivals(&self) -> u64 {
        self.subflows.iter().map(|sf| sf.revivals()).sum()
    }

    /// Queue `bytes` more application bytes for transmission.
    pub fn push_app_data(&mut self, bytes: u64) {
        self.conn_total += bytes;
    }

    /// Drop every queued byte not yet assigned to a subflow (request
    /// cancellation). Returns the number of bytes flushed.
    ///
    /// The connection-level sequence space stays intact: `conn_assigned`
    /// never moves backwards, segments already mapped to subflows keep
    /// retransmitting until acknowledged, and the next
    /// [`Sender::push_app_data`] continues at the same DSS offset the
    /// stream would have reached had the flushed bytes never been queued.
    /// The receiver cannot tell a flushed tail from a tail that was never
    /// sent — which is exactly the HTTP layer's contract: the cancelled
    /// response simply ends at the flush point.
    pub fn flush_unsent(&mut self) -> u64 {
        let flushed = self.conn_total - self.conn_assigned;
        self.conn_total = self.conn_assigned;
        flushed
    }

    /// Apply a newly signaled path mask. Returns `true` if it changed
    /// (callers re-pump on enables).
    pub fn apply_mask(&mut self, mask: PathMask) -> bool {
        let changed = self.mask != mask;
        self.mask = mask;
        changed
    }

    /// The configured scheduler's spec (diagnostics, trace attribution).
    pub fn scheduler_spec(&self) -> SchedulerSpec {
        self.scheduler.spec()
    }

    /// [`Sender::pump_with`] on a connection with no shared-bottleneck
    /// attachments (every path's queue depth unknown).
    pub fn pump(&mut self, now: SimTime) -> Vec<Transmit> {
        self.pump_with(now, &[])
    }

    /// Assign as much pending data as window space and the mask allow.
    /// Returns the transmissions to realize, in order.
    ///
    /// `shared_depth[path]` is the occupancy of the path's shared
    /// bottleneck queue, sampled by the simulator (the sender is pure
    /// state and never touches links itself); `None` — or a missing
    /// entry — means the path has no shared attachment. Queue-aware
    /// schedulers fold it into every pick; the others ignore it.
    pub fn pump_with(&mut self, now: SimTime, shared_depth: &[Option<u64>]) -> Vec<Transmit> {
        // Idle window validation first: a subflow that has been silent for
        // an RTO with nothing in flight must not blast a stale window.
        // Failed subflows are probed again after a cooldown — the path
        // may have come back (MPTCP would re-establish the subflow).
        for sf in &mut self.subflows {
            if sf.failed && now.saturating_since(sf.last_activity) > sf.revival_backoff {
                sf.reestablish(now);
            }
            if sf.in_flight() == 0
                && now.saturating_since(sf.last_activity) > sf.rto
                && sf.cwnd() as f64 > crate::cc::INIT_CWND
            {
                sf.cc.on_idle_restart();
            }
        }

        let mut out = Vec::new();
        loop {
            let remaining = self.conn_total - self.conn_assigned;
            if remaining == 0 {
                break;
            }
            let len = remaining.min(MSS);
            let candidates: Vec<Candidate> = self
                .subflows
                .iter()
                .filter(|sf| {
                    !sf.failed
                        && now >= sf.established_at
                        && self.mask.contains(sf.path)
                        && sf.in_flight() + len <= sf.cwnd()
                })
                .map(|sf| Candidate {
                    path: sf.path,
                    srtt: sf.srtt,
                    cwnd: sf.cwnd(),
                    in_flight: sf.in_flight(),
                    queue_depth: shared_depth.get(sf.path.index()).copied().flatten(),
                })
                .collect();
            let input = SchedInput {
                candidates: &candidates,
                backlog: remaining,
            };
            let Some(path) = self.scheduler.pick(&input) else {
                break;
            };
            let sf = &mut self.subflows[path.index()];
            let seg = Seg {
                seq: sf.snd_nxt,
                len,
                dss: self.conn_assigned,
                sent_at: now,
                retx: false,
                reinjected: false,
                syn: std::mem::take(&mut sf.send_syn),
            };
            sf.snd_nxt += len;
            sf.assigned_bytes += len;
            sf.segs.push_back(seg);
            sf.last_activity = now;
            if sf.rto_deadline.is_none() {
                sf.rto_deadline = Some(now + sf.rto);
            }
            self.conn_assigned += len;
            out.push(Transmit {
                path,
                seq: seg.seq,
                len,
                dss: seg.dss,
                retx: false,
                syn: seg.syn,
            });
        }
        out
    }

    /// Process a cumulative ACK for `path`. Returns retransmissions to
    /// realize (fast retransmit or NewReno partial-ACK retransmit).
    pub fn on_ack(&mut self, now: SimTime, path: PathId, ack: u64) -> Vec<Transmit> {
        let sf = &mut self.subflows[path.index()];
        // Only ACKs that relate to outstanding data count as activity.
        // Pure control ACKs (MP-DASH mask signaling on an idle subflow)
        // must not refresh the idle clock, or the RFC 2861 window
        // validation in `pump` would never fire and every chunk would
        // open with a full stale-window burst into the drop-tail queue.
        if ack > sf.snd_una || !sf.segs.is_empty() {
            sf.last_activity = now;
        }
        let mut out = Vec::new();

        if ack > sf.snd_una {
            let acked = ack - sf.snd_una;
            sf.snd_una = ack;
            sf.consecutive_rtos = 0;
            sf.revival_backoff = REVIVAL_COOLDOWN;
            // Pop fully covered segments; take the RTT sample from the
            // most recent non-retransmitted one (Karn's algorithm).
            let mut sample = None;
            while let Some(front) = sf.segs.front() {
                if front.seq + front.len <= ack {
                    if !front.retx {
                        sample = Some(now.saturating_since(front.sent_at));
                    }
                    sf.segs.pop_front();
                } else {
                    break;
                }
            }
            if let Some(rtt) = sample {
                sf.take_rtt_sample(rtt);
            }

            // Growth stays frozen for the whole recovery episode,
            // including the full ACK that exits it (the window was already
            // set to ssthresh at the loss). An ECN hold freezes growth the
            // same way without the retransmit machinery.
            let was_in_recovery = sf.recovery_end.is_some() || sf.ecn_hold_end.is_some();
            let still_in_recovery = match sf.recovery_end {
                Some(end) if ack >= end => {
                    sf.recovery_end = None;
                    false
                }
                Some(_) => true,
                None => false,
            };
            if matches!(sf.ecn_hold_end, Some(end) if ack >= end) {
                sf.ecn_hold_end = None;
            }
            sf.cc
                .on_ack(now, acked, was_in_recovery, sf.srtt.unwrap_or(RTO_INITIAL));
            // NewReno: a partial ACK during recovery means the next
            // segment was also lost; retransmit it immediately.
            if still_in_recovery {
                if let Some(t) = sf.retransmit_head(now) {
                    out.push(t);
                }
            }
            sf.dupacks = 0;
            sf.rto_deadline = if sf.segs.is_empty() {
                None
            } else {
                Some(now + sf.rto)
            };
        } else if ack == sf.snd_una && !sf.segs.is_empty() {
            sf.dupacks += 1;
            if sf.dupacks == 3 && sf.recovery_end.is_none() {
                let in_flight = sf.in_flight();
                sf.cc.on_fast_retransmit(in_flight);
                sf.recovery_end = Some(sf.snd_nxt);
                if let Some(t) = sf.retransmit_head(now) {
                    out.push(t);
                }
                sf.rto_deadline = Some(now + sf.rto);
            }
        }
        out
    }

    /// React to an ECN congestion echo on `path`: one multiplicative
    /// window decrease per flight, with no retransmission (the marked
    /// packet *was* delivered). AQM marks arrive on the ACK that covers
    /// the marked segment, so the echo lands right after `on_ack` in the
    /// event loop. While already in loss recovery or an earlier ECN hold,
    /// further echoes are ignored — the window has already been cut for
    /// this flight.
    pub fn on_ecn_echo(&mut self, _now: SimTime, path: PathId) {
        let sf = &mut self.subflows[path.index()];
        if sf.failed || sf.recovery_end.is_some() || sf.ecn_hold_end.is_some() {
            return;
        }
        let in_flight = sf.in_flight();
        sf.cc.on_fast_retransmit(in_flight);
        sf.ecn_hold_end = Some(sf.snd_nxt);
    }

    /// Handle the retransmission timer for `path` firing at `now`.
    /// Returns the transmissions to realize: the same-subflow
    /// retransmission, plus (on the first RTO of a segment, and for every
    /// outstanding segment when the subflow is declared failed) a
    /// **reinjection** of the segment's DSS range on another live subflow
    /// — MPTCP's mechanism for unblocking connection-level delivery when
    /// one path stops acknowledging.
    pub fn on_rto_fire(&mut self, now: SimTime, path: PathId) -> Vec<Transmit> {
        let idx = path.index();
        let Some(deadline) = self.subflows[idx].rto_deadline else {
            return Vec::new();
        };
        if now < deadline {
            return Vec::new(); // stale timer event; simulator re-arms
        }
        if self.subflows[idx].segs.is_empty() {
            self.subflows[idx].rto_deadline = None;
            return Vec::new();
        }
        let mut out = Vec::new();

        // A subflow is only abandoned if its data has somewhere else to
        // go; the last usable path keeps retrying forever, like a
        // single-path TCP (important for WiFi-only mode riding out a
        // blackout).
        let has_rescue_target = self
            .subflows
            .iter()
            .any(|o| o.path != path && !o.failed && self.mask.contains(o.path));
        let sf = &mut self.subflows[idx];
        sf.consecutive_rtos += 1;
        if sf.consecutive_rtos >= MAX_CONSECUTIVE_RTOS && has_rescue_target {
            // Persistent failure: abandon the subflow and reinject every
            // outstanding DSS range elsewhere. It may be revived after a
            // cooldown (see `pump`); repeated failures back the probing
            // off exponentially.
            return self.fail_subflow(now, path);
        }

        let in_flight = sf.in_flight();
        sf.cc.on_rto(in_flight);
        sf.rto = (sf.rto * 2).min(RTO_MAX);
        sf.recovery_end = Some(sf.snd_nxt);
        sf.dupacks = 0;
        if let Some(t) = sf.retransmit_head(now) {
            out.push(t);
        }
        sf.rto_deadline = Some(now + sf.rto);
        sf.last_activity = now;
        // First RTO of the head segment: duplicate its DSS range onto a
        // live sibling so connection-level delivery is not hostage to
        // this path (the receiver's interval set deduplicates).
        let head = self.subflows[idx].segs.front().copied();
        if let Some(head) = head {
            if !head.reinjected {
                if let Some(t) = self.reinject(now, path, head.dss, head.len) {
                    self.subflows[idx]
                        .segs
                        .front_mut()
                        .expect("head still present")
                        .reinjected = true;
                    out.push(t);
                }
            }
        }
        out
    }

    /// Abandon `path` now: mark it failed (revivable after its backed-off
    /// cooldown), clear its outstanding segments, and reinject every
    /// cleared DSS range on the surviving paths. Callers must have
    /// verified a rescue target exists.
    fn fail_subflow(&mut self, now: SimTime, path: PathId) -> Vec<Transmit> {
        let sf = &mut self.subflows[path.index()];
        sf.failed = true;
        sf.failures += 1;
        sf.rto_deadline = None;
        sf.last_activity = now;
        sf.revival_backoff = (sf.revival_backoff * 2).min(SimDuration::from_secs(120));
        let ranges: Vec<(u64, u64)> = sf.segs.iter().map(|s| (s.dss, s.len)).collect();
        sf.segs.clear();
        sf.snd_una = sf.snd_nxt;
        let mut out = Vec::new();
        for (dss, len) in ranges {
            if let Some(t) = self.reinject(now, path, dss, len) {
                out.push(t);
            }
        }
        out
    }

    /// Link-down signal for `path` (the interface reported the
    /// association gone — e.g. a WiFi disassociation swallowed a
    /// transmit). Real stacks learn this synchronously from the kernel
    /// rather than waiting out an RTO backoff chain, so model it the
    /// same way: immediately declare the subflow failed and reinject its
    /// outstanding data on the surviving paths. Single-path connections
    /// keep the plain RTO behavior — abandoning the only path would
    /// strand the data (and the revival probe is the reconnect).
    ///
    /// Unlike an RTO-exhaustion failure — where the path's health is
    /// unknown and probing backs off exponentially — a link-down names
    /// its cause: the interface dropped on an otherwise healthy path,
    /// and reassociation is typically quick. So the revival probe uses
    /// the short fixed [`LINKDOWN_RETRY`] cooldown; a probe swallowed by
    /// a still-dark interface just lands back here and costs one
    /// immediately-reinjected segment.
    pub fn on_link_down(&mut self, now: SimTime, path: PathId) -> Vec<Transmit> {
        let idx = path.index();
        if self.subflows[idx].failed {
            return Vec::new();
        }
        let has_rescue_target = self
            .subflows
            .iter()
            .any(|o| o.path != path && !o.failed && self.mask.contains(o.path));
        if !has_rescue_target {
            return Vec::new();
        }
        let out = self.fail_subflow(now, path);
        self.subflows[idx].revival_backoff = LINKDOWN_RETRY;
        out
    }

    /// Send `len` bytes of DSS range `dss` as *new* subflow data on the
    /// best live subflow other than `avoid`. Reinjections bypass the
    /// congestion-window space check (they are rescue traffic and rare)
    /// but still count toward the target subflow's in-flight bytes.
    fn reinject(&mut self, now: SimTime, avoid: PathId, dss: u64, len: u64) -> Option<Transmit> {
        // Deliberately not gated on `established_at`: the failure path
        // already verified a rescue target with this same filter, and
        // stranding the cleared DSS ranges would lose data. Rescue
        // traffic onto a mid-handshake subflow rides out the handshake
        // in the link's queue.
        let target = self
            .subflows
            .iter()
            .filter(|sf| sf.path != avoid && !sf.failed && self.mask.contains(sf.path))
            .min_by_key(|sf| (sf.srtt.unwrap_or(SimDuration::MAX), sf.path))?
            .path;
        let sf = &mut self.subflows[target.index()];
        let seg = Seg {
            seq: sf.snd_nxt,
            len,
            dss,
            sent_at: now,
            retx: false,
            reinjected: true, // never reinject a reinjection
            syn: std::mem::take(&mut sf.send_syn),
        };
        sf.snd_nxt += len;
        sf.segs.push_back(seg);
        sf.retx_bytes += len;
        sf.last_activity = now;
        if sf.rto_deadline.is_none() {
            sf.rto_deadline = Some(now + sf.rto);
        }
        Some(Transmit {
            path: target,
            seq: seg.seq,
            len,
            dss,
            retx: true,
            syn: seg.syn,
        })
    }

    /// Earliest pending retransmission-timer deadline of `path`, if armed.
    pub fn rto_deadline(&self, path: PathId) -> Option<SimTime> {
        self.subflows[path.index()].rto_deadline
    }

    /// True when every queued application byte has been acknowledged on
    /// its subflow.
    pub fn all_acked(&self) -> bool {
        self.conn_assigned == self.conn_total && self.subflows.iter().all(|sf| sf.segs.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_path_sender() -> Sender {
        Sender::new(2, SchedulerSpec::MinRtt, CcKind::Reno)
    }

    #[test]
    fn pump_respects_cwnd() {
        let mut s = two_path_sender();
        s.push_app_data(10_000_000);
        let tx = s.pump(SimTime::ZERO);
        // Two subflows, 10 MSS initial window each, MinRtt with no
        // estimates fills the primary then the secondary.
        assert_eq!(tx.len(), 20);
        let wifi_bytes: u64 = tx
            .iter()
            .filter(|t| t.path == PathId::WIFI)
            .map(|t| t.len)
            .sum();
        assert_eq!(wifi_bytes, 10 * MSS);
        // No more space, nothing further to pump.
        assert!(s.pump(SimTime::ZERO).is_empty());
    }

    #[test]
    fn dss_assignment_is_contiguous_and_unique() {
        let mut s = two_path_sender();
        s.push_app_data(100 * MSS);
        let tx = s.pump(SimTime::ZERO);
        let mut dss: Vec<u64> = tx.iter().map(|t| t.dss).collect();
        dss.sort_unstable();
        for (i, d) in dss.iter().enumerate() {
            assert_eq!(*d, i as u64 * MSS);
        }
    }

    #[test]
    fn mask_skips_disabled_subflow() {
        let mut s = two_path_sender();
        s.apply_mask(PathMask::only(PathId::WIFI));
        s.push_app_data(10_000_000);
        let tx = s.pump(SimTime::ZERO);
        assert!(tx.iter().all(|t| t.path == PathId::WIFI));
        assert_eq!(tx.len(), 10);
        // Enabling cellular lets the pump continue there.
        assert!(s.apply_mask(PathMask::ALL));
        let tx2 = s.pump(SimTime::ZERO);
        assert!(tx2.iter().all(|t| t.path == PathId::CELLULAR));
    }

    #[test]
    fn ack_advances_window_and_frees_space() {
        let mut s = two_path_sender();
        s.apply_mask(PathMask::only(PathId::WIFI));
        s.push_app_data(100 * MSS);
        let tx = s.pump(SimTime::ZERO);
        let sent: u64 = tx.iter().map(|t| t.len).sum();
        // Ack everything sent on wifi.
        let now = SimTime::from_millis(50);
        let retx = s.on_ack(now, PathId::WIFI, sent);
        assert!(retx.is_empty());
        assert_eq!(s.subflow(PathId::WIFI).in_flight(), 0);
        // Slow start doubled the window.
        assert!(s.subflow(PathId::WIFI).cwnd() >= 20 * MSS);
        let tx2 = s.pump(now);
        assert!(tx2.len() >= 20);
    }

    #[test]
    fn rtt_estimation_from_acks() {
        let mut s = two_path_sender();
        s.apply_mask(PathMask::only(PathId::WIFI));
        s.push_app_data(MSS);
        s.pump(SimTime::ZERO);
        s.on_ack(SimTime::from_millis(50), PathId::WIFI, MSS);
        let srtt = s.subflow(PathId::WIFI).srtt().unwrap();
        assert_eq!(srtt, SimDuration::from_millis(50));
        assert_eq!(s.subflow(PathId::WIFI).rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut s = two_path_sender();
        s.apply_mask(PathMask::only(PathId::WIFI));
        s.push_app_data(10 * MSS);
        let tx = s.pump(SimTime::ZERO);
        assert_eq!(tx.len(), 10);
        // First packet lost: receiver acks 0 repeatedly as later packets
        // arrive. First ack with ack=MSS? No: cumulative ack stays 0...
        // Receiver acks rcv_nxt; with seg 0 lost it stays at 0.
        let now = SimTime::from_millis(60);
        assert!(s.on_ack(now, PathId::WIFI, 0).is_empty());
        assert!(s.on_ack(now, PathId::WIFI, 0).is_empty());
        let retx = s.on_ack(now, PathId::WIFI, 0);
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].seq, 0);
        assert!(retx[0].retx);
        // Window halved from 10 MSS in flight.
        assert_eq!(s.subflow(PathId::WIFI).cwnd(), 5 * MSS);
        // Further dupacks do not re-trigger.
        assert!(s.on_ack(now, PathId::WIFI, 0).is_empty());
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut s = two_path_sender();
        s.apply_mask(PathMask::only(PathId::WIFI));
        s.push_app_data(10 * MSS);
        s.pump(SimTime::ZERO);
        let now = SimTime::from_millis(60);
        // Lose segments 0 and 3: dupacks for seg 0.
        s.on_ack(now, PathId::WIFI, 0);
        s.on_ack(now, PathId::WIFI, 0);
        let r1 = s.on_ack(now, PathId::WIFI, 0);
        assert_eq!(r1[0].seq, 0);
        // Retransmit of 0 arrives; receiver now has 0..3 contiguous (3 was
        // lost), acks 3*MSS — a partial ack: NewReno retransmits seg 3.
        let r2 = s.on_ack(SimTime::from_millis(120), PathId::WIFI, 3 * MSS);
        assert_eq!(r2.len(), 1);
        assert_eq!(r2[0].seq, 3 * MSS);
        // Full ack exits recovery.
        let r3 = s.on_ack(SimTime::from_millis(180), PathId::WIFI, 10 * MSS);
        assert!(r3.is_empty());
        assert!(s.all_acked());
    }

    #[test]
    fn rto_fires_and_backs_off() {
        let mut s = two_path_sender();
        s.apply_mask(PathMask::only(PathId::WIFI));
        s.push_app_data(4 * MSS);
        s.pump(SimTime::ZERO);
        let deadline = s.rto_deadline(PathId::WIFI).unwrap();
        assert_eq!(deadline, SimTime::ZERO + RTO_INITIAL);
        // Stale fire (before deadline) does nothing.
        assert!(s
            .on_rto_fire(SimTime::from_millis(500), PathId::WIFI)
            .is_empty());
        // Real fire retransmits the head; the sibling is masked out
        // (WiFi-only), so no reinjection happens — the mask is the user's
        // preference and rescue traffic must honour it too.
        let ts = s.on_rto_fire(deadline, PathId::WIFI);
        assert_eq!(ts.len(), 1);
        let t = ts[0];
        assert_eq!(t.seq, 0);
        assert!(t.retx);
        assert_eq!(s.subflow(PathId::WIFI).cwnd(), MSS);
        assert_eq!(s.subflow(PathId::WIFI).rto(), RTO_INITIAL * 2);
        // Timer re-armed with the backed-off value.
        assert_eq!(
            s.rto_deadline(PathId::WIFI).unwrap(),
            deadline + RTO_INITIAL * 2
        );
    }

    #[test]
    fn rto_reinjects_on_a_live_sibling() {
        let mut s = two_path_sender();
        // Both paths enabled; data lands on WiFi first (primary).
        s.push_app_data(MSS);
        let tx = s.pump(SimTime::ZERO);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].path, PathId::WIFI);
        let deadline = s.rto_deadline(PathId::WIFI).unwrap();
        let ts = s.on_rto_fire(deadline, PathId::WIFI);
        assert_eq!(ts.len(), 2, "retransmit + reinjection");
        assert_eq!(ts[0].path, PathId::WIFI);
        assert_eq!(ts[1].path, PathId::CELLULAR);
        assert_eq!(ts[1].dss, ts[0].dss, "same connection-level bytes");
        assert!(ts[1].retx);
        // Second RTO: the head was already reinjected, no duplicate.
        let deadline2 = s.rto_deadline(PathId::WIFI).unwrap();
        let ts2 = s.on_rto_fire(deadline2, PathId::WIFI);
        assert_eq!(ts2.len(), 1, "no re-reinjection of the same segment");
        // An ack on cellular (the reinjection arriving) completes the
        // stream even though WiFi never recovers.
        s.on_ack(
            deadline2 + SimDuration::from_millis(30),
            PathId::CELLULAR,
            MSS,
        );
        assert_eq!(s.subflow(PathId::CELLULAR).in_flight(), 0);
    }

    #[test]
    fn persistent_rto_failure_abandons_the_subflow() {
        let mut s = two_path_sender();
        s.push_app_data(4 * MSS);
        // Force everything onto WiFi by masking, then unmask so the
        // reinjections have somewhere to go.
        s.apply_mask(PathMask::only(PathId::WIFI));
        s.pump(SimTime::ZERO);
        s.apply_mask(PathMask::ALL);
        let mut now = SimTime::ZERO;
        let mut failed = false;
        for _ in 0..10 {
            let Some(d) = s.rto_deadline(PathId::WIFI) else {
                failed = true;
                break;
            };
            now = d;
            s.on_rto_fire(now, PathId::WIFI);
            if s.subflow(PathId::WIFI).failed() {
                failed = true;
                break;
            }
        }
        assert!(failed, "subflow must eventually be declared failed");
        assert_eq!(
            s.subflow(PathId::WIFI).in_flight(),
            0,
            "failed subflow holds no data"
        );
        // All four segments' DSS ranges now live on cellular.
        assert!(s.subflow(PathId::CELLULAR).in_flight() >= 4 * MSS);
        // The scheduler no longer assigns new data to the failed path.
        s.push_app_data(MSS);
        let tx = s.pump(now);
        assert!(tx.iter().all(|t| t.path == PathId::CELLULAR));
    }

    /// Drive the WiFi subflow to a declared failure via consecutive
    /// RTOs; returns the instant of the failure declaration. Pushes one
    /// MSS of fresh data pinned to WiFi so the timer is armed.
    fn fail_wifi(s: &mut Sender, start: SimTime) -> SimTime {
        s.apply_mask(PathMask::only(PathId::WIFI));
        s.push_app_data(MSS);
        assert!(!s.pump(start).is_empty(), "data must land on wifi");
        s.apply_mask(PathMask::ALL);
        for _ in 0..20 {
            let Some(d) = s.rto_deadline(PathId::WIFI) else {
                break;
            };
            s.on_rto_fire(d, PathId::WIFI);
            if s.subflow(PathId::WIFI).failed() {
                return d;
            }
        }
        panic!("wifi subflow never failed");
    }

    #[test]
    fn revival_backoff_doubles_across_failures_and_resets_on_progress() {
        let mut s = two_path_sender();
        let t1 = fail_wifi(&mut s, SimTime::ZERO);
        assert_eq!(s.subflow(PathId::WIFI).failures(), 1);
        assert_eq!(
            s.subflow(PathId::WIFI).revival_backoff(),
            REVIVAL_COOLDOWN * 2,
            "first failure doubles the cooldown"
        );
        // Still failed right at the cooldown boundary (strictly-greater).
        s.pump(t1 + REVIVAL_COOLDOWN * 2);
        assert!(s.subflow(PathId::WIFI).failed());
        // Past it: revived.
        let revive_at = t1 + REVIVAL_COOLDOWN * 2 + SimDuration::from_millis(1);
        s.pump(revive_at);
        assert!(!s.subflow(PathId::WIFI).failed());
        assert_eq!(s.subflow(PathId::WIFI).revivals(), 1);

        // Second failure doubles again (no ack progress in between).
        let ready1 = s.subflow(PathId::WIFI).established_at();
        let t2 = fail_wifi(&mut s, ready1);
        assert_eq!(s.subflow(PathId::WIFI).failures(), 2);
        assert_eq!(
            s.subflow(PathId::WIFI).revival_backoff(),
            REVIVAL_COOLDOWN * 4
        );

        // Revive and make real forward progress: the backoff resets.
        let revive2 = t2 + REVIVAL_COOLDOWN * 4 + SimDuration::from_millis(1);
        s.pump(revive2);
        assert_eq!(s.subflow(PathId::WIFI).revivals(), 2);
        let ready = s.subflow(PathId::WIFI).established_at();
        s.apply_mask(PathMask::only(PathId::WIFI));
        s.push_app_data(MSS);
        let tx = s.pump(ready);
        assert_eq!(tx.len(), 1);
        s.on_ack(
            ready + SimDuration::from_millis(20),
            PathId::WIFI,
            tx[0].seq + tx[0].len,
        );
        assert_eq!(
            s.subflow(PathId::WIFI).revival_backoff(),
            REVIVAL_COOLDOWN,
            "ack progress resets the revival backoff"
        );
    }

    #[test]
    fn revival_is_a_full_reestablishment() {
        let mut s = two_path_sender();
        // Grow state first: acked data gives WiFi an RTT estimate and an
        // opened window.
        s.apply_mask(PathMask::only(PathId::WIFI));
        s.push_app_data(10 * MSS);
        s.pump(SimTime::ZERO);
        s.on_ack(SimTime::from_millis(50), PathId::WIFI, 10 * MSS);
        assert!(s.subflow(PathId::WIFI).cwnd() >= 20 * MSS);
        assert_eq!(
            s.subflow(PathId::WIFI).srtt(),
            Some(SimDuration::from_millis(50))
        );

        let t_fail = fail_wifi(&mut s, SimTime::from_millis(60));
        let revive_at =
            t_fail + s.subflow(PathId::WIFI).revival_backoff() + SimDuration::from_millis(1);
        s.pump(revive_at);

        let sf = s.subflow(PathId::WIFI);
        assert!(!sf.failed());
        assert_eq!(sf.revivals(), 1);
        assert!(
            sf.srtt().is_none(),
            "re-established subflow forgets its RTT"
        );
        assert_eq!(sf.cwnd(), 10 * MSS, "fresh initial congestion window");
        // Handshake cost: one (pre-reset) smoothed RTT.
        assert_eq!(
            sf.established_at(),
            revive_at + SimDuration::from_millis(50)
        );

        // New data waits for the handshake to complete.
        let ready = sf.established_at();
        s.apply_mask(PathMask::only(PathId::WIFI));
        s.push_app_data(MSS);
        assert!(s.pump(revive_at).is_empty(), "no new data mid-handshake");
        let tx = s.pump(ready);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].path, PathId::WIFI);
    }

    #[test]
    fn karns_algorithm_skips_retransmitted_samples() {
        let mut s = two_path_sender();
        s.apply_mask(PathMask::only(PathId::WIFI));
        s.push_app_data(MSS);
        s.pump(SimTime::ZERO);
        let deadline = s.rto_deadline(PathId::WIFI).unwrap();
        assert!(!s.on_rto_fire(deadline, PathId::WIFI).is_empty());
        // Ack arrives long after: no RTT sample because the segment was
        // retransmitted (ambiguous).
        s.on_ack(deadline + SimDuration::from_millis(70), PathId::WIFI, MSS);
        assert!(s.subflow(PathId::WIFI).srtt().is_none());
    }

    #[test]
    fn round_robin_alternates_paths() {
        let mut s = Sender::new(2, SchedulerSpec::RoundRobin, CcKind::Reno);
        s.push_app_data(4 * MSS);
        let tx = s.pump(SimTime::ZERO);
        let paths: Vec<PathId> = tx.iter().map(|t| t.path).collect();
        assert_eq!(paths, vec![PathId(0), PathId(1), PathId(0), PathId(1)]);
    }

    #[test]
    fn tail_segment_smaller_than_mss() {
        let mut s = two_path_sender();
        s.push_app_data(MSS + 100);
        let tx = s.pump(SimTime::ZERO);
        assert_eq!(tx.len(), 2);
        assert_eq!(tx[0].len, MSS);
        assert_eq!(tx[1].len, 100);
    }

    #[test]
    fn flush_unsent_drops_only_the_unassigned_tail() {
        let mut s = two_path_sender();
        s.apply_mask(PathMask::only(PathId::WIFI));
        // 10 MSS fit the initial window; the rest stays queued.
        s.push_app_data(25 * MSS);
        let tx = s.pump(SimTime::ZERO);
        assert_eq!(tx.len(), 10);
        let flushed = s.flush_unsent();
        assert_eq!(flushed, 15 * MSS);
        assert_eq!(s.conn_total(), 10 * MSS);
        assert_eq!(s.conn_assigned(), 10 * MSS);
        // Nothing more to pump; in-flight data is unaffected.
        assert!(s.pump(SimTime::ZERO).is_empty());
        assert_eq!(s.subflow(PathId::WIFI).in_flight(), 10 * MSS);
        // Acking the committed bytes completes the connection.
        s.on_ack(SimTime::from_millis(50), PathId::WIFI, 10 * MSS);
        assert!(s.all_acked());
        // New data continues at the flush point, same DSS space.
        s.push_app_data(MSS);
        let tx2 = s.pump(SimTime::from_millis(50));
        assert_eq!(tx2[0].dss, 10 * MSS, "stream continues at the cut");
    }

    #[test]
    fn flush_unsent_with_nothing_queued_is_a_noop() {
        let mut s = two_path_sender();
        assert_eq!(s.flush_unsent(), 0);
        s.push_app_data(MSS);
        s.pump(SimTime::ZERO);
        assert_eq!(s.flush_unsent(), 0, "fully assigned stream has no tail");
    }

    #[test]
    fn all_acked_tracks_completion() {
        let mut s = two_path_sender();
        assert!(s.all_acked(), "empty connection is trivially complete");
        s.push_app_data(MSS);
        assert!(!s.all_acked());
        s.pump(SimTime::ZERO);
        assert!(!s.all_acked());
        s.on_ack(SimTime::from_millis(10), PathId::WIFI, MSS);
        assert!(s.all_acked());
    }
}
