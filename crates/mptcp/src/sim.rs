//! [`MptcpSim`]: one MPTCP connection, its links, and the event loop.
//!
//! This is the self-contained "testbed in a struct" the application layers
//! drive: a data **sender** (the video server), a data **receiver** (the
//! client), one simulated [`Link`] per path for the data direction, and a
//! fixed ACK delay per path for the reverse direction (ACKs are ~40-byte
//! packets on links whose reverse direction is never the bottleneck in any
//! of the paper's scenarios, so they get delay but no queueing — a
//! documented simplification).
//!
//! The application interacts through four verbs:
//!
//! * [`MptcpSim::send_app`] — the server queues response bytes.
//! * [`MptcpSim::send_request`] — the client sends a small upstream
//!   message (an HTTP request); it arrives at the server as
//!   [`StepOutcome::ServerMsg`] after the primary path's one-way delay and
//!   carries the current desired path mask (MP-DASH piggybacks its
//!   decision on outgoing traffic).
//! * [`MptcpSim::set_desired_mask`] — the client-side MP-DASH decision
//!   function flips subflows on or off; the change is signaled to the
//!   sender on the next ACK (and a pure control ACK is emitted if the
//!   connection is quiescent).
//! * [`MptcpSim::schedule_app_timer`] — applications (the DASH player, the
//!   MP-DASH scheduler's progress checks) get wakeups in the same virtual
//!   time domain.
//!
//! Call [`MptcpSim::step`] in a loop; each call processes one event and
//! reports what happened.

use crate::cc::CcKind;
use crate::packet::{PathMask, PktRecord, MSS};
use crate::receiver::Receiver;
use crate::scheduler::SchedulerSpec;
use crate::sender::{Sender, Transmit};
use mpdash_link::{
    DropReason, Link, LinkConfig, PathId, SendOutcome, SharedBottleneck, SharedOutcome, Ticket,
};
use mpdash_obs::{TraceEvent, Tracer};
use mpdash_sim::{EventQueue, Rate, SimDuration, SimTime};
use std::collections::VecDeque;

/// TCP/IP header bytes charged to the link per data packet.
pub const HEADER_BYTES: u64 = 40;

/// Configuration of one path.
#[derive(Clone, Debug)]
pub struct PathConfig {
    /// The data-direction link (server → client).
    pub link: LinkConfig,
    /// One-way delay for ACKs (client → server). Symmetric paths use the
    /// data link's delay.
    pub ack_delay: SimDuration,
}

impl PathConfig {
    /// A symmetric path: ACK delay equals the data link's delay.
    pub fn symmetric(link: LinkConfig) -> Self {
        let ack_delay = link.delay;
        PathConfig { link, ack_delay }
    }
}

/// Configuration of the whole connection.
#[derive(Clone, Debug)]
pub struct MptcpConfig {
    /// One entry per path; index is the [`PathId`].
    pub paths: Vec<PathConfig>,
    /// Which packet scheduler distributes segments (see [`crate::scheduler`]).
    pub scheduler: SchedulerSpec,
    /// Congestion control used by every subflow (decoupled).
    pub cc: CcKind,
}

impl MptcpConfig {
    /// The canonical two-path (WiFi + cellular) setup used by every
    /// experiment in the paper.
    pub fn two_path(wifi: LinkConfig, cellular: LinkConfig) -> Self {
        MptcpConfig {
            paths: vec![PathConfig::symmetric(wifi), PathConfig::symmetric(cellular)],
            scheduler: SchedulerSpec::MinRtt,
            cc: CcKind::Reno,
        }
    }

    /// Same configuration with a different packet scheduler.
    pub fn with_scheduler(mut self, s: SchedulerSpec) -> Self {
        self.scheduler = s;
        self
    }

    /// Same configuration with a different congestion controller.
    pub fn with_cc(mut self, cc: CcKind) -> Self {
        self.cc = cc;
        self
    }
}

/// What one [`MptcpSim::step`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// A transport event was processed; `newly_delivered` connection bytes
    /// became readable by the client application (possibly zero).
    Transport { newly_delivered: u64 },
    /// An application timer fired.
    AppTimer { id: u64 },
    /// A client→server message arrived at the server application.
    ServerMsg { id: u64 },
}

/// A packet handed to a [`SharedBottleneck`] and awaiting its departure.
/// The fleet loop pops the bottleneck's departures and calls
/// [`MptcpSim::on_shared_departure`] to turn each back into an
/// [`Event::Data`] on this connection's queue.
struct PendingPkt {
    ticket: Ticket,
    seq: u64,
    len: u64,
    dss: u64,
    retx: bool,
    syn: bool,
    /// When the packet was offered (for queue-wait tracing).
    offered: SimTime,
}

enum Event {
    Data {
        path: PathId,
        seq: u64,
        len: u64,
        dss: u64,
        retx: bool,
        syn: bool,
        /// AQM marked this packet (ECN CE) instead of dropping it; the
        /// receiver echoes the mark on the covering ACK.
        ecn: bool,
    },
    Ack {
        path: PathId,
        ack: u64,
        mask: PathMask,
        /// ECN congestion echo: the segment this ACK covers arrived
        /// marked.
        ecn: bool,
    },
    Rto {
        path: PathId,
    },
    App {
        id: u64,
    },
    ReverseMsg {
        id: u64,
        mask: PathMask,
    },
}

/// One MPTCP connection with its links and event queue. See module docs.
pub struct MptcpSim {
    queue: EventQueue<Event>,
    links: Vec<Link>,
    ack_delay: Vec<SimDuration>,
    snd: Sender,
    rcv: Receiver,
    /// Earliest pending RTO event per path (lazy-timer bookkeeping).
    rto_event_at: Vec<Option<SimTime>>,
    /// Per-path packets currently queued inside a shared bottleneck.
    /// Departures within one flow are FIFO under both disciplines, so a
    /// `VecDeque` plus a ticket assertion is exact.
    deferred: Vec<VecDeque<PendingPkt>>,
    /// Observe-only trace emission (DSS signals, subflow transitions,
    /// cwnd/SRTT samples); never feeds back into transport state.
    tracer: Tracer,
    /// Per-path failure/revival counts already reported to the tracer.
    trace_failures_seen: Vec<u64>,
    trace_revivals_seen: Vec<u64>,
}

impl MptcpSim {
    /// Build the connection from its configuration.
    pub fn new(cfg: MptcpConfig) -> Self {
        let n = cfg.paths.len();
        assert!(n >= 1, "need at least one path");
        let links = cfg
            .paths
            .iter()
            .map(|p| Link::new(p.link.clone()))
            .collect();
        let ack_delay = cfg.paths.iter().map(|p| p.ack_delay).collect();
        MptcpSim {
            queue: EventQueue::new(),
            links,
            ack_delay,
            snd: Sender::new(n, cfg.scheduler, cfg.cc),
            rcv: Receiver::new(n),
            rto_event_at: vec![None; n],
            deferred: (0..n).map(|_| VecDeque::new()).collect(),
            tracer: Tracer::disabled(),
            trace_failures_seen: vec![0; n],
            trace_revivals_seen: vec![0; n],
        }
    }

    /// Attach a tracer to the connection and all of its links. Tracing
    /// is strictly observe-only.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for (i, link) in self.links.iter_mut().enumerate() {
            link.set_tracer(tracer.clone(), i);
        }
        self.tracer = tracer;
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Time of this connection's next pending event, if any. The fleet
    /// loop uses this to interleave several connections on one clock.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Route `path`'s data direction through a [`SharedBottleneck`]: the
    /// link keeps its propagation delay and fault pipeline but its
    /// serialization/queueing moves into the shared resource. Returns
    /// the [`mpdash_link::FlowId`] this connection's path was assigned.
    ///
    /// Once attached, packets on this path do not self-schedule their
    /// delivery: the caller must watch the bottleneck's departures and
    /// feed them back via [`MptcpSim::on_shared_departure`].
    pub fn attach_shared(
        &mut self,
        path: PathId,
        bottleneck: &SharedBottleneck,
    ) -> mpdash_link::FlowId {
        let flow = bottleneck.subscribe();
        self.links[path.index()].attach_shared(bottleneck.clone(), flow);
        flow
    }

    /// Number of paths.
    pub fn n_paths(&self) -> usize {
        self.links.len()
    }

    /// Server-side: queue `bytes` of response data for transmission.
    pub fn send_app(&mut self, bytes: u64) {
        self.snd.push_app_data(bytes);
        let now = self.now();
        self.pump(now);
    }

    /// Client-side: send a small upstream message (HTTP request). It
    /// arrives at the server after the primary path's one-way delay plus a
    /// nominal serialization allowance, carrying the current desired mask.
    pub fn send_request(&mut self, id: u64, bytes: u64) {
        let now = self.now();
        // Requests ride the primary (lowest-index) path; they are a few
        // hundred bytes every few seconds, so they get delay but are not
        // run through the data link's queue model.
        let delay = self.ack_delay[0] + Rate::from_mbps(1).time_to_send(bytes.min(10 * MSS));
        self.queue.schedule(
            now + delay,
            Event::ReverseMsg {
                id,
                mask: self.rcv.desired_mask(),
            },
        );
    }

    /// Client-side: the MP-DASH decision function updates which paths may
    /// carry new data. If the mask changed, a pure control ACK is emitted
    /// so a quiescent sender still learns of it (the paper piggybacks the
    /// bit on the DSS option of whatever flows next).
    pub fn set_desired_mask(&mut self, mask: PathMask) {
        if self.rcv.set_desired_mask(mask) {
            let now = self.now();
            let n = self.n_paths();
            self.tracer.emit_with(now, || TraceEvent::DssSignal {
                mask: (0..n)
                    .filter(|&p| mask.contains(PathId(p as u8)))
                    .fold(0u32, |bits, p| bits | (1 << p)),
            });
            let primary = PathId(0);
            self.queue.schedule(
                now + self.ack_delay[0],
                Event::Ack {
                    path: primary,
                    ack: self.rcv.current_ack(primary),
                    mask,
                    ecn: false,
                },
            );
        }
    }

    /// The client-side desired mask currently in force.
    pub fn desired_mask(&self) -> PathMask {
        self.rcv.desired_mask()
    }

    /// Configure the path mask at connection setup, before any data
    /// flows: applies to the receiver's desired state *and* the sender's
    /// enforcement immediately, with no signaling round-trip. This models
    /// setting the primary interface / initial preference when the
    /// connection is established (§3.2 "we enforce the policy by setting
    /// the preferred interface as the primary interface of MPTCP") —
    /// mid-transfer changes must go through [`MptcpSim::set_desired_mask`].
    pub fn set_initial_mask(&mut self, mask: PathMask) {
        self.rcv.set_desired_mask(mask);
        self.snd.apply_mask(mask);
    }

    /// Schedule an application timer at absolute time `at`.
    pub fn schedule_app_timer(&mut self, at: SimTime, id: u64) {
        self.queue.schedule(at, Event::App { id });
    }

    /// Connection bytes delivered in order to the client so far.
    pub fn delivered(&self) -> u64 {
        self.rcv.delivered()
    }

    /// Payload bytes received on `path` (duplicates included).
    pub fn path_bytes(&self, path: PathId) -> u64 {
        self.rcv.path_bytes(path)
    }

    /// The packet receive trace (for analysis and energy accounting).
    pub fn records(&self) -> &[PktRecord] {
        self.rcv.records()
    }

    /// Smoothed RTT of `path`, if measured.
    pub fn srtt(&self, path: PathId) -> Option<SimDuration> {
        self.snd.subflow(path).srtt()
    }

    /// Congestion window of `path` (diagnostics).
    pub fn cwnd(&self, path: PathId) -> u64 {
        self.snd.subflow(path).cwnd()
    }

    /// Bytes currently in flight (sent, unacknowledged) on `path`. The
    /// MP-DASH control plane uses this as its "busy" signal: a path that
    /// is silent *with* data in flight is blacked out, while one silent
    /// with nothing outstanding simply has nothing left to carry (the
    /// tail of a transfer whose remainder rides the other path).
    pub fn path_in_flight(&self, path: PathId) -> u64 {
        self.snd.subflow(path).in_flight()
    }

    /// Read access to a path's link (bandwidth oracle, counters).
    pub fn link(&self, path: PathId) -> &Link {
        &self.links[path.index()]
    }

    /// Lifetime failure declarations on `path`'s subflow.
    pub fn subflow_failures(&self, path: PathId) -> u64 {
        self.snd.subflow(path).failures()
    }

    /// Lifetime revivals (full re-establishments) on `path`'s subflow.
    pub fn subflow_revivals(&self, path: PathId) -> u64 {
        self.snd.subflow(path).revivals()
    }

    /// True when every queued byte has been sent and acknowledged.
    pub fn quiescent(&self) -> bool {
        self.snd.all_acked()
    }

    /// Server-side request cancellation: drop every queued byte not yet
    /// assigned to a subflow and return how many were flushed. Bytes
    /// already mapped to subflows stay in flight (and keep
    /// retransmitting) so the connection-level sequence space is never
    /// corrupted; the stream simply ends `flushed` bytes earlier than
    /// the application had queued.
    pub fn flush_unsent(&mut self) -> u64 {
        self.snd.flush_unsent()
    }

    /// Total application bytes queued at the sender (lifetime).
    pub fn conn_total(&self) -> u64 {
        self.snd.conn_total()
    }

    /// Events popped from the connection's queue over its lifetime
    /// (deterministic event-loop profiling).
    pub fn events_popped(&self) -> u64 {
        self.queue.popped()
    }

    /// High-water mark of pending events (peak queue depth).
    pub fn peak_queue_depth(&self) -> usize {
        self.queue.peak_len()
    }

    /// Emit cwnd/SRTT samples (when an ACK advanced `acked_path`) and
    /// any subflow failure/revival transitions since the last event.
    /// Runs only with a tracer attached.
    fn trace_transport(&mut self, now: SimTime, acked_path: Option<PathId>) {
        if !self.tracer.enabled() {
            return;
        }
        if let Some(path) = acked_path {
            let cwnd = self.cwnd(path);
            let srtt_ms = self.srtt(path).map(|d| d.as_millis_f64());
            self.tracer.emit_with(now, || TraceEvent::PathSample {
                path: path.index(),
                cwnd,
                srtt_ms,
            });
        }
        for p in 0..self.n_paths() {
            let id = PathId(p as u8);
            let failures = self.subflow_failures(id);
            while self.trace_failures_seen[p] < failures {
                self.trace_failures_seen[p] += 1;
                self.tracer
                    .emit_with(now, || TraceEvent::SubflowFailed { path: p });
            }
            let revivals = self.subflow_revivals(id);
            while self.trace_revivals_seen[p] < revivals {
                self.trace_revivals_seen[p] += 1;
                self.tracer
                    .emit_with(now, || TraceEvent::SubflowRevived { path: p });
            }
        }
    }

    /// Process the next event. `None` when the queue is empty (no
    /// transport activity pending and no application timers set).
    pub fn step(&mut self) -> Option<(SimTime, StepOutcome)> {
        let (now, ev) = self.queue.pop()?;
        let acked_path = match &ev {
            Event::Ack { path, .. } => Some(*path),
            _ => None,
        };
        let outcome = match ev {
            Event::Data {
                path,
                seq,
                len,
                dss,
                retx,
                syn,
                ecn,
            } => {
                let res = self.rcv.on_data(now, path, seq, len, dss, retx, syn);
                // Immediate ACK, carrying the current desired mask and
                // echoing any ECN mark back to the sender.
                self.queue.schedule(
                    now + self.ack_delay[path.index()],
                    Event::Ack {
                        path,
                        ack: res.ack,
                        mask: self.rcv.desired_mask(),
                        ecn,
                    },
                );
                StepOutcome::Transport {
                    newly_delivered: res.newly_delivered,
                }
            }
            Event::Ack {
                path,
                ack,
                mask,
                ecn,
            } => {
                self.snd.apply_mask(mask);
                let retx = self.snd.on_ack(now, path, ack);
                for t in retx {
                    self.transmit(now, t);
                }
                if ecn {
                    // The echo lands after the cumulative ACK so a fresh
                    // hold spans exactly the still-outstanding flight.
                    self.snd.on_ecn_echo(now, path);
                }
                self.pump(now);
                self.ensure_rto(path);
                StepOutcome::Transport { newly_delivered: 0 }
            }
            Event::Rto { path } => {
                self.rto_event_at[path.index()] = None;
                if let Some(deadline) = self.snd.rto_deadline(path) {
                    if now >= deadline {
                        for t in self.snd.on_rto_fire(now, path) {
                            self.transmit(now, t);
                        }
                    }
                }
                // Re-arm both the fired subflow's timer and any sibling
                // that just received reinjected data.
                for p in 0..self.links.len() {
                    self.ensure_rto(PathId(p as u8));
                }
                StepOutcome::Transport { newly_delivered: 0 }
            }
            Event::App { id } => StepOutcome::AppTimer { id },
            Event::ReverseMsg { id, mask } => {
                if self.snd.apply_mask(mask) {
                    self.pump(now);
                }
                StepOutcome::ServerMsg { id }
            }
        };
        self.trace_transport(now, acked_path);
        Some((now, outcome))
    }

    /// Run until the queue drains or `deadline` passes; convenience for
    /// tests. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> usize {
        let mut n = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        n
    }

    fn pump(&mut self, now: SimTime) {
        // Cross-layer signal for queue-aware schedulers: sample each
        // path's shared-bottleneck occupancy once per pump and hand it to
        // the sender (which is pure state and never touches links). The
        // sample is read-only, so schedulers that ignore it stay
        // byte-identical with or without shared attachments.
        let depths: Vec<Option<u64>> = self.links.iter().map(|l| l.shared_queue_depth()).collect();
        let actions = self.snd.pump_with(now, &depths);
        for t in actions {
            if self.tracer.enabled() {
                // Every pump transmit is one scheduler decision (retx and
                // reinjections travel other code paths), so attribute it:
                // the chosen path plus the SRTT/queue-depth inputs that
                // won the pick.
                let sf = self.snd.subflow(t.path);
                let srtt_ms = sf.srtt().map(|s| s.as_secs_f64() * 1e3);
                let queue_bytes = depths.get(t.path.index()).copied().flatten();
                self.tracer.emit_with(now, || TraceEvent::SchedulerPick {
                    path: t.path.index(),
                    len: t.len,
                    srtt_ms,
                    queue_bytes,
                });
            }
            self.transmit(now, t);
        }
        for p in 0..self.links.len() {
            self.ensure_rto(PathId(p as u8));
        }
    }

    fn transmit(&mut self, now: SimTime, t: Transmit) {
        let link = &mut self.links[t.path.index()];
        if link.is_shared() {
            match link.offer_shared(now, t.len + HEADER_BYTES) {
                SharedOutcome::Queued { ticket } => {
                    self.deferred[t.path.index()].push_back(PendingPkt {
                        ticket,
                        seq: t.seq,
                        len: t.len,
                        dss: t.dss,
                        retx: t.retx,
                        syn: t.syn,
                        offered: now,
                    });
                }
                SharedOutcome::Dropped(reason) => {
                    // The packet vanishes; dup ACKs or the RTO recover it
                    // — except a disassociation, which fails over now.
                    self.on_drop(now, t.path, reason);
                }
            }
            return;
        }
        match link.send(now, t.len + HEADER_BYTES) {
            SendOutcome::Delivered { at } => {
                self.queue.schedule(
                    at,
                    Event::Data {
                        path: t.path,
                        seq: t.seq,
                        len: t.len,
                        dss: t.dss,
                        retx: t.retx,
                        syn: t.syn,
                        ecn: false,
                    },
                );
            }
            SendOutcome::Dropped(reason) => {
                // The packet vanishes; duplicate ACKs or the RTO recover
                // it — except a disassociation, which fails over now.
                self.on_drop(now, t.path, reason);
            }
        }
    }

    /// A transmit on `path` was dropped for `reason`. Queue drops and
    /// wire loss are recovered by dup ACKs / the RTO as usual, but a
    /// disassociation is an interface-down signal the sending host sees
    /// synchronously: fail the subflow over to its live siblings
    /// immediately instead of waiting out the RTO backoff chain.
    fn on_drop(&mut self, now: SimTime, path: PathId, reason: DropReason) {
        if reason != DropReason::Disassociated {
            return;
        }
        let rescues = self.snd.on_link_down(now, path);
        for r in rescues {
            self.transmit(now, r);
        }
        for p in 0..self.links.len() {
            self.ensure_rto(PathId(p as u8));
        }
    }

    /// A shared bottleneck finished serving one of this connection's
    /// packets: schedule its arrival after `path`'s propagation delay.
    /// `ticket` must match the oldest deferred packet on `path`
    /// (per-flow departures are FIFO under every discipline). `marked`
    /// carries an AQM ECN mark; the receiver will echo it on the ACK.
    pub fn on_shared_departure(
        &mut self,
        path: PathId,
        ticket: Ticket,
        depart_at: SimTime,
        marked: bool,
    ) {
        let pkt = self.deferred[path.index()]
            .pop_front()
            .expect("departure for a path with no deferred packets");
        assert_eq!(
            pkt.ticket, ticket,
            "shared bottleneck departures out of order within a flow"
        );
        let waited = depart_at.saturating_since(pkt.offered);
        if waited > SimDuration::ZERO {
            let size = pkt.len + HEADER_BYTES;
            self.tracer
                .emit_with(depart_at, || TraceEvent::SharedQueueWait {
                    path: path.index(),
                    waited_s: waited.as_secs_f64(),
                    size,
                });
        }
        let arrive = depart_at + self.links[path.index()].delay();
        self.queue.schedule(
            arrive,
            Event::Data {
                path,
                seq: pkt.seq,
                len: pkt.len,
                dss: pkt.dss,
                retx: pkt.retx,
                syn: pkt.syn,
                ecn: marked,
            },
        );
    }

    /// A shared bottleneck's AQM dropped one of this connection's queued
    /// packets at dequeue time (CoDel). The packet simply vanishes —
    /// duplicate ACKs or the RTO recover the hole, same as an overflow
    /// drop at offer time — but the deferred bookkeeping must advance
    /// past it so later departures still line up ticket-for-ticket.
    pub fn on_shared_drop(&mut self, path: PathId, ticket: Ticket, _at: SimTime) {
        let pkt = self.deferred[path.index()]
            .pop_front()
            .expect("AQM drop for a path with no deferred packets");
        assert_eq!(
            pkt.ticket, ticket,
            "shared bottleneck AQM drops out of order within a flow"
        );
    }

    /// Lazy RTO timer: make sure an event exists at (or before) the
    /// subflow's current deadline.
    fn ensure_rto(&mut self, path: PathId) {
        let Some(deadline) = self.snd.rto_deadline(path) else {
            return;
        };
        let slot = &mut self.rto_event_at[path.index()];
        if slot.is_none_or(|t| t > deadline) {
            self.queue.schedule(deadline, Event::Rto { path });
            *slot = Some(deadline);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_path_sim(wifi_mbps: f64, cell_mbps: f64) -> MptcpSim {
        let wifi = LinkConfig::constant(wifi_mbps, SimDuration::from_millis(25));
        let cell = LinkConfig::constant(cell_mbps, SimDuration::from_millis(30));
        MptcpSim::new(MptcpConfig::two_path(wifi, cell))
    }

    /// Drive until `bytes` are delivered or the queue drains; returns the
    /// completion time.
    fn download(sim: &mut MptcpSim, bytes: u64) -> SimTime {
        sim.send_app(bytes);
        let mut done = SimTime::ZERO;
        while sim.delivered() < bytes {
            let Some((t, _)) = sim.step() else {
                panic!(
                    "queue drained with only {} of {} bytes delivered",
                    sim.delivered(),
                    bytes
                );
            };
            done = t;
        }
        done
    }

    #[test]
    fn delivers_exactly_the_bytes_sent() {
        let mut sim = two_path_sim(3.8, 3.0);
        let total = 500_000;
        download(&mut sim, total);
        assert_eq!(sim.delivered(), total);
        // Conservation: bytes split across the two paths cover the stream
        // (duplicates can only add).
        let sum = sim.path_bytes(PathId::WIFI) + sim.path_bytes(PathId::CELLULAR);
        assert!(sum >= total);
    }

    #[test]
    fn aggregate_throughput_approaches_sum_of_paths() {
        let mut sim = two_path_sim(3.8, 3.0);
        let bytes = 5_000_000; // the paper's 5 MB motivating download
        let t = download(&mut sim, bytes);
        let mbps = bytes as f64 * 8.0 / t.as_secs_f64() / 1e6;
        // Paper: ~6 s for 5 MB over 3.8+3.0 Mbps MPTCP => ~6.6 Mbps goodput.
        assert!(mbps > 5.8, "aggregate goodput {mbps:.2} Mbps too low");
        assert!(
            mbps < 6.8,
            "aggregate goodput {mbps:.2} Mbps impossibly high"
        );
        // Both paths carried substantial data.
        assert!(sim.path_bytes(PathId::WIFI) > bytes / 3);
        assert!(sim.path_bytes(PathId::CELLULAR) > bytes / 4);
    }

    #[test]
    fn wifi_only_mask_uses_no_cellular() {
        let mut sim = two_path_sim(3.8, 3.0);
        sim.set_desired_mask(PathMask::only(PathId::WIFI));
        // Drain the control ack so the sender learns the mask first.
        sim.step();
        let bytes = 1_000_000;
        let t = download(&mut sim, bytes);
        assert_eq!(sim.path_bytes(PathId::CELLULAR), 0);
        let mbps = bytes as f64 * 8.0 / t.as_secs_f64() / 1e6;
        assert!(mbps > 3.0 && mbps < 3.8, "wifi-only goodput {mbps:.2}");
    }

    #[test]
    fn reenabling_cellular_mid_transfer_takes_effect() {
        let mut sim = two_path_sim(2.0, 2.0);
        sim.set_desired_mask(PathMask::only(PathId::WIFI));
        sim.step();
        sim.send_app(4_000_000);
        // Let ~1 s of wifi-only flow pass.
        while sim.now() < SimTime::from_secs(1) {
            sim.step().unwrap();
        }
        assert_eq!(sim.path_bytes(PathId::CELLULAR), 0);
        sim.set_desired_mask(PathMask::ALL);
        while sim.delivered() < 4_000_000 {
            sim.step().unwrap();
        }
        assert!(
            sim.path_bytes(PathId::CELLULAR) > 200_000,
            "cellular re-engaged after enable: {} bytes",
            sim.path_bytes(PathId::CELLULAR)
        );
    }

    #[test]
    fn survives_random_loss() {
        let wifi = LinkConfig::constant(4.0, SimDuration::from_millis(25)).with_loss(0.02, 11);
        let cell = LinkConfig::constant(3.0, SimDuration::from_millis(30)).with_loss(0.02, 13);
        let mut sim = MptcpSim::new(MptcpConfig::two_path(wifi, cell));
        let bytes = 2_000_000;
        download(&mut sim, bytes);
        assert_eq!(sim.delivered(), bytes);
    }

    #[test]
    fn queue_overflow_triggers_recovery_not_stall() {
        // Tiny queue forces drops as cwnd grows.
        let wifi =
            LinkConfig::constant(2.0, SimDuration::from_millis(25)).with_queue_capacity(8 * MSS);
        let cell =
            LinkConfig::constant(1.0, SimDuration::from_millis(30)).with_queue_capacity(8 * MSS);
        let mut sim = MptcpSim::new(MptcpConfig::two_path(wifi, cell));
        let bytes = 3_000_000;
        let t = download(&mut sim, bytes);
        let mbps = bytes as f64 * 8.0 / t.as_secs_f64() / 1e6;
        // Loss-limited but must still achieve a healthy share of 3 Mbps.
        assert!(mbps > 1.8, "loss-limited goodput {mbps:.2} Mbps");
    }

    #[test]
    fn srtt_converges_to_path_rtt() {
        let mut sim = two_path_sim(3.8, 3.0);
        download(&mut sim, 1_000_000);
        let wifi_srtt = sim.srtt(PathId::WIFI).unwrap().as_millis_f64();
        // Base RTT 50 ms plus queueing at a saturated 3.8 Mbps link with a
        // 64 KiB drop-tail buffer (~138 ms when full): the estimate must be
        // at least the propagation RTT and bounded by base + full queue.
        assert!(wifi_srtt >= 50.0, "wifi srtt {wifi_srtt:.1} ms");
        assert!(wifi_srtt < 250.0, "wifi srtt {wifi_srtt:.1} ms");
    }

    #[test]
    fn app_timers_interleave_with_transport() {
        let mut sim = two_path_sim(3.8, 3.0);
        sim.schedule_app_timer(SimTime::from_millis(10), 7);
        sim.send_app(100_000);
        let mut saw_timer = false;
        while let Some((t, o)) = sim.step() {
            if let StepOutcome::AppTimer { id } = o {
                assert_eq!(id, 7);
                assert_eq!(t, SimTime::from_millis(10));
                saw_timer = true;
            }
            if sim.quiescent() && saw_timer {
                break;
            }
        }
        assert!(saw_timer);
    }

    #[test]
    fn server_messages_arrive_with_mask() {
        let mut sim = two_path_sim(3.8, 3.0);
        sim.set_desired_mask(PathMask::only(PathId::WIFI));
        sim.send_request(42, 300);
        let mut saw = false;
        while let Some((_, o)) = sim.step() {
            if o == (StepOutcome::ServerMsg { id: 42 }) {
                saw = true;
                break;
            }
        }
        assert!(saw);
        // The request carried the mask: new data avoids cellular.
        sim.send_app(500_000);
        while sim.delivered() < 500_000 {
            sim.step().unwrap();
        }
        assert_eq!(sim.path_bytes(PathId::CELLULAR), 0);
    }

    #[test]
    fn deterministic_given_same_config() {
        let run = || {
            let mut sim = two_path_sim(3.3, 2.1);
            let t = download(&mut sim, 1_234_567);
            (
                t,
                sim.path_bytes(PathId::WIFI),
                sim.path_bytes(PathId::CELLULAR),
            )
        };
        assert_eq!(run(), run());
    }

    /// Two single-path connections share one bottleneck; a miniature
    /// fleet loop (global-min over the bottleneck's departures and both
    /// connections' queues) drives them to completion.
    #[test]
    fn two_connections_share_a_bottleneck() {
        use mpdash_link::SharedBottleneckConfig;

        let mk = || {
            // Propagation only: serialization happens in the shared queue.
            let link = LinkConfig::constant(1000.0, SimDuration::from_millis(25));
            MptcpSim::new(MptcpConfig {
                paths: vec![PathConfig::symmetric(link)],
                scheduler: SchedulerSpec::MinRtt,
                cc: CcKind::Reno,
            })
        };
        let bn = SharedBottleneck::new(SharedBottleneckConfig::fifo_mbps(8.0));
        let mut sims = [mk(), mk()];
        let mut route = Vec::new();
        for (i, sim) in sims.iter_mut().enumerate() {
            let flow = sim.attach_shared(PathId(0), &bn);
            assert_eq!(flow, i, "flows subscribe in order");
            route.push(i);
        }
        let total = 400_000;
        sims[0].send_app(total);
        sims[1].send_app(total);

        loop {
            let mut best: Option<(SimTime, usize)> = None; // kind: 0 = bottleneck, 1+i = sim i
            if let Some(t) = bn.next_departure() {
                best = Some((t, 0));
            }
            for (i, sim) in sims.iter().enumerate() {
                if let Some(t) = sim.peek_time() {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, 1 + i));
                    }
                }
            }
            match best {
                None => break,
                Some((_, 0)) => {
                    let d = bn.pop_departure().unwrap();
                    sims[route[d.flow]].on_shared_departure(PathId(0), d.ticket, d.at, d.marked);
                }
                Some((_, k)) => {
                    sims[k - 1].step();
                }
            }
        }
        for sim in &sims {
            assert_eq!(sim.delivered(), total);
        }
        let stats = bn.stats();
        assert!(stats.conserved(), "bottleneck conservation: {stats:?}");
        assert_eq!(stats.queued_bytes, 0, "drained bottleneck holds nothing");
        // The 8 Mbps bottleneck is the binding constraint: two competing
        // 400 kB transfers cannot finish faster than the shared service
        // rate allows (2 * 400 kB at 8 Mbps = 800 ms floor).
        let end = sims.iter().map(|s| s.now()).max().unwrap();
        assert!(end >= SimTime::from_millis(800), "finished at {end:?}");
    }

    /// Drive one single-path connection through a shared bottleneck to
    /// completion, feeding departures and AQM dequeue drops back in.
    /// Returns the cumulative count of marked departures observed.
    fn drain_shared(sim: &mut MptcpSim, bn: &SharedBottleneck, total: u64) -> u64 {
        let mut marks = 0;
        loop {
            let mut best: Option<(SimTime, usize)> = None;
            if let Some(t) = bn.next_departure() {
                best = Some((t, 0));
            }
            if let Some(t) = sim.peek_time() {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, 1));
                }
            }
            match best {
                None => break,
                Some((_, 0)) => {
                    let d = bn.pop_departure().unwrap();
                    marks += d.marked as u64;
                    sim.on_shared_departure(PathId(0), d.ticket, d.at, d.marked);
                    for drop in bn.take_aqm_drops() {
                        sim.on_shared_drop(PathId(0), drop.ticket, drop.at);
                    }
                }
                Some(_) => {
                    sim.step();
                }
            }
        }
        assert_eq!(sim.delivered(), total, "stream must complete");
        marks
    }

    fn one_path_shared_sim() -> MptcpSim {
        // Propagation only: serialization happens in the shared queue.
        let link = LinkConfig::constant(1000.0, SimDuration::from_millis(20));
        MptcpSim::new(MptcpConfig {
            paths: vec![PathConfig::symmetric(link)],
            scheduler: SchedulerSpec::MinRtt,
            cc: CcKind::Reno,
        })
    }

    /// PIE with ECN marks instead of dropping; the sender must react to
    /// the echo with a multiplicative backoff (no retransmissions needed
    /// — nothing was lost) and keep the bottleneck's standing queue well
    /// below the drop-tail bloat level.
    #[test]
    fn ecn_marks_back_the_sender_off_without_losses() {
        use mpdash_link::{AqmConfig, QueueDiscipline, SharedBottleneckConfig};

        let run = |aqm: bool| {
            let cfg = SharedBottleneckConfig::fifo_mbps(6.0).with_capacity(256 * 1024);
            let cfg = if aqm {
                cfg.with_discipline(QueueDiscipline::Pie(AqmConfig::pie().with_ecn(true)))
            } else {
                cfg
            };
            let bn = SharedBottleneck::new(cfg);
            let mut sim = one_path_shared_sim();
            sim.attach_shared(PathId(0), &bn);
            let total = 2_000_000;
            sim.send_app(total);
            let marks = drain_shared(&mut sim, &bn, total);
            let mean_wait_ms = {
                let snap = bn.metrics_snapshot();
                let h = snap
                    .histograms
                    .iter()
                    .find(|(k, _)| k == "queue_wait_ms")
                    .map(|(_, h)| h.clone())
                    .unwrap();
                h.sum as f64 / h.count.max(1) as f64
            };
            (marks, bn.stats(), mean_wait_ms)
        };

        let (marks, pie, pie_wait) = run(true);
        let (_, _, fifo_wait) = run(false);
        assert!(marks > 0, "sustained overload must trigger ECN marks");
        assert_eq!(pie.marked_packets, marks);
        // ECN mode marks instead of dropping.
        assert_eq!(pie.dropped_aqm_packets, 0);
        // The responsive sender holds the queue far below drop-tail
        // bloat: mean sojourn under PIE must beat FIFO's by a wide margin.
        assert!(
            pie_wait < fifo_wait / 2.0,
            "pie mean wait {pie_wait:.1} ms vs fifo {fifo_wait:.1} ms"
        );
    }

    /// CoDel drops at dequeue time; the transport recovers the holes via
    /// dup-ACK / RTO and still completes, with every drop accounted for.
    #[test]
    fn codel_dequeue_drops_recover_and_conserve() {
        use mpdash_link::{AqmConfig, QueueDiscipline, SharedBottleneckConfig};

        let cfg = SharedBottleneckConfig::fifo_mbps(6.0)
            .with_capacity(256 * 1024)
            .with_discipline(QueueDiscipline::Codel(AqmConfig::codel()));
        let bn = SharedBottleneck::new(cfg);
        let mut sim = one_path_shared_sim();
        sim.attach_shared(PathId(0), &bn);
        let total = 2_000_000;
        sim.send_app(total);
        drain_shared(&mut sim, &bn, total);
        let stats = bn.stats();
        assert!(stats.conserved(), "conservation with AQM drops: {stats:?}");
        assert!(
            stats.dropped_aqm_packets > 0,
            "sustained overload must trip CoDel's drop schedule"
        );
        assert_eq!(stats.queued_bytes, 0, "drained bottleneck holds nothing");
    }

    #[test]
    fn records_cover_the_stream() {
        let mut sim = two_path_sim(3.8, 3.0);
        download(&mut sim, 300_000);
        let recs = sim.records();
        assert!(!recs.is_empty());
        // Every delivered byte appears in some record (retransmissions may
        // replace lost originals, so coverage is asserted via an interval
        // union rather than summing first transmissions).
        let mut cover = crate::reassembly::IntervalSet::new();
        for r in recs {
            cover.insert(r.dss, r.dss + r.len);
        }
        assert_eq!(cover.contiguous_from(0), 300_000);
        // Timestamps are non-decreasing.
        assert!(recs.windows(2).all(|w| w[0].t <= w[1].t));
    }
}
