//! Property tests pinning the trait-dispatched schedulers to the seed
//! enum dispatcher (`seed_pick`, kept verbatim as the reference).
//!
//! * `MinRtt` is stateless: it must agree with the seed on *every*
//!   decision of *any* candidate-set sequence.
//! * `RoundRobin` rotation was re-keyed off the last-picked path (the
//!   seed's position cursor skews when the candidate set churns), so the
//!   equivalence claim is scoped to stable candidate sets — plus a
//!   fairness property the seed cursor violates and the fix guarantees:
//!   never pick the same path twice in a row while another candidate
//!   has window space.
//! * `QAware` with no queue signal anywhere must order exactly like
//!   `MinRtt`, tie-breaks included.
//!
//! Decision sequences are generated as flat vectors (the in-tree
//! proptest shim has no tuple strategies): per step, 4 membership bits
//! and 4 SRTT draws, with `srtt_us == 0` meaning "no sample yet".

use mpdash_link::PathId;
use mpdash_mptcp::scheduler::{seed_pick, Candidate, SchedInput, Scheduler, SchedulerSpec};
use mpdash_mptcp::MSS;
use mpdash_sim::SimDuration;
use proptest::prelude::*;

const PATHS: usize = 4;

/// A candidate set from one step's membership bits and SRTT draws.
fn cands(present: &[bool], srtt_us: &[u32]) -> Vec<Candidate> {
    present
        .iter()
        .zip(srtt_us)
        .enumerate()
        .filter(|(_, (&p, _))| p)
        .map(|(i, (_, &us))| Candidate {
            path: PathId(i as u8),
            srtt: (us > 0).then(|| SimDuration::from_micros(us as u64)),
            cwnd: 10 * MSS,
            in_flight: 0,
            queue_depth: None,
        })
        .collect()
}

/// Split flat draws into per-step candidate sets.
fn steps(present: &[bool], srtt_us: &[u32]) -> Vec<Vec<Candidate>> {
    present
        .chunks_exact(PATHS)
        .zip(srtt_us.chunks_exact(PATHS))
        .map(|(p, s)| cands(p, s))
        .collect()
}

fn input(c: &[Candidate]) -> SchedInput<'_> {
    SchedInput {
        candidates: c,
        backlog: MSS,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// MinRtt through the trait is decision-for-decision the seed enum,
    /// over arbitrary churning candidate sets.
    #[test]
    fn min_rtt_trait_matches_seed_on_any_sequence(
        present in prop::collection::vec(any::<bool>(), PATHS..40 * PATHS),
        srtt_us in prop::collection::vec(0u32..500_000, 40 * PATHS..40 * PATHS + 1),
    ) {
        let mut sched = SchedulerSpec::MinRtt.build();
        let mut cursor = 0usize;
        for c in steps(&present, &srtt_us) {
            prop_assert_eq!(
                sched.pick(&input(&c)),
                seed_pick(SchedulerSpec::MinRtt, &mut cursor, &c)
            );
        }
    }

    /// RoundRobin through the trait matches the seed enum on stable
    /// candidate sets (where the seed cursor is well-behaved).
    #[test]
    fn round_robin_trait_matches_seed_on_stable_sets(
        present in prop::collection::vec(any::<bool>(), PATHS..PATHS + 1),
        srtt_us in prop::collection::vec(0u32..500_000, PATHS..PATHS + 1),
        picks in 1usize..30,
    ) {
        let c = cands(&present, &srtt_us);
        let mut sched = SchedulerSpec::RoundRobin.build();
        let mut cursor = 0usize;
        for _ in 0..picks {
            prop_assert_eq!(
                sched.pick(&input(&c)),
                seed_pick(SchedulerSpec::RoundRobin, &mut cursor, &c)
            );
        }
    }

    /// The rotation-skew fix: over arbitrary churn, the keyed rotation
    /// never assigns two consecutive segments to one path while a
    /// different path also had window space both times.
    #[test]
    fn round_robin_never_repeats_while_alternatives_exist(
        present in prop::collection::vec(any::<bool>(), 2 * PATHS..60 * PATHS),
        srtt_us in prop::collection::vec(0u32..500_000, 60 * PATHS..60 * PATHS + 1),
    ) {
        let mut sched = SchedulerSpec::RoundRobin.build();
        let mut prev: Option<(PathId, Vec<PathId>)> = None;
        for c in steps(&present, &srtt_us) {
            let Some(pick) = sched.pick(&input(&c)) else { continue };
            let paths: Vec<PathId> = c.iter().map(|x| x.path).collect();
            prop_assert!(paths.contains(&pick), "picked a non-candidate");
            if let Some((last, last_paths)) = &prev {
                let alternative_both_times = paths
                    .iter()
                    .any(|p| p != last && last_paths.contains(p));
                if *last == pick {
                    prop_assert!(
                        !alternative_both_times,
                        "picked {:?} twice with an alternative available",
                        pick
                    );
                }
            }
            prev = Some((pick, paths));
        }
    }

    /// QAware with no shared queues anywhere degenerates to exactly the
    /// minRTT ordering, decision for decision.
    #[test]
    fn qaware_without_queues_is_min_rtt(
        present in prop::collection::vec(any::<bool>(), PATHS..40 * PATHS),
        srtt_us in prop::collection::vec(0u32..500_000, 40 * PATHS..40 * PATHS + 1),
    ) {
        let mut qaware = SchedulerSpec::QAware.build();
        let mut minrtt = SchedulerSpec::MinRtt.build();
        for c in steps(&present, &srtt_us) {
            prop_assert_eq!(qaware.pick(&input(&c)), minrtt.pick(&input(&c)));
        }
    }
}
