//! Property tests on the MPTCP model: stream integrity, mask
//! enforcement, and scheduler equivalence under adversarial conditions.

use mpdash_link::{BandwidthProfile, LinkConfig, PathId};
use mpdash_mptcp::{CcKind, MptcpConfig, MptcpSim, PathMask, SchedulerSpec};
use mpdash_sim::{Rate, SimDuration, SimTime};
use proptest::prelude::*;

fn download(sim: &mut MptcpSim, bytes: u64) {
    sim.send_app(bytes);
    let mut guard = 0u64;
    while sim.delivered() < bytes {
        assert!(
            sim.step().is_some(),
            "queue drained at {}/{}",
            sim.delivered(),
            bytes
        );
        guard += 1;
        assert!(guard < 50_000_000, "runaway simulation");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Both stock schedulers and both congestion controllers deliver the
    /// stream intact under loss.
    #[test]
    fn all_scheduler_cc_combinations_deliver(
        sched_rr in any::<bool>(),
        cubic in any::<bool>(),
        loss_pm in 0u32..25,
        bytes in 50_000u64..1_500_000,
        seed in 0u64..500,
    ) {
        let wifi = LinkConfig::constant(4.0, SimDuration::from_millis(20))
            .with_loss(loss_pm as f64 / 1000.0, seed);
        let cell = LinkConfig::constant(2.5, SimDuration::from_millis(35))
            .with_loss(loss_pm as f64 / 1000.0, seed ^ 77);
        let cfg = MptcpConfig::two_path(wifi, cell)
            .with_scheduler(if sched_rr { SchedulerSpec::RoundRobin } else { SchedulerSpec::MinRtt })
            .with_cc(if cubic { CcKind::Cubic } else { CcKind::Reno });
        let mut sim = MptcpSim::new(cfg);
        download(&mut sim, bytes);
        prop_assert_eq!(sim.delivered(), bytes);
    }

    /// Toggling the mask at arbitrary moments never wedges or corrupts
    /// the stream, and a final WiFi-only mask stops cellular growth.
    #[test]
    fn mask_toggling_mid_transfer_is_safe(
        toggle_points in prop::collection::vec(1u64..4_000, 1..6),
        bytes in 500_000u64..2_000_000,
    ) {
        let wifi = LinkConfig::constant(4.0, SimDuration::from_millis(20));
        let cell = LinkConfig::constant(3.0, SimDuration::from_millis(30));
        let mut sim = MptcpSim::new(MptcpConfig::two_path(wifi, cell));
        let mut toggles: Vec<SimTime> = toggle_points
            .iter()
            .map(|&ms| SimTime::from_millis(ms))
            .collect();
        toggles.sort();
        sim.send_app(bytes);
        let mut next = 0usize;
        let mut cell_on = true;
        while sim.delivered() < bytes {
            prop_assert!(sim.step().is_some());
            if next < toggles.len() && sim.now() >= toggles[next] {
                cell_on = !cell_on;
                let mask = if cell_on {
                    PathMask::ALL
                } else {
                    PathMask::only(PathId::WIFI)
                };
                sim.set_desired_mask(mask);
                next += 1;
            }
        }
        prop_assert_eq!(sim.delivered(), bytes);
    }

    /// A time-varying bandwidth profile (including zero-rate windows that
    /// recover) never deadlocks the transport.
    #[test]
    fn bandwidth_swings_with_blackouts_complete(
        pattern in prop::collection::vec(0u8..8, 4..12),
        bytes in 100_000u64..800_000,
    ) {
        // Map digits to Mbps; 0 means blackout for that second. Force at
        // least one live slot so delivery is possible.
        let mut rates: Vec<Rate> = pattern
            .iter()
            .map(|&d| Rate::from_mbps_f64(d as f64))
            .collect();
        if rates.iter().all(|r| r.is_zero()) {
            rates[0] = Rate::from_mbps(4);
        }
        let wifi_profile =
            BandwidthProfile::from_samples(SimDuration::from_secs(1), &rates, true);
        let wifi = LinkConfig::constant(1.0, SimDuration::from_millis(20))
            .with_profile(wifi_profile);
        let cell = LinkConfig::constant(2.0, SimDuration::from_millis(30));
        let mut sim = MptcpSim::new(MptcpConfig::two_path(wifi, cell));
        download(&mut sim, bytes);
        prop_assert_eq!(sim.delivered(), bytes);
    }

    /// SRTT estimates stay within physical bounds: at least the
    /// propagation RTT, at most propagation plus a full queue plus
    /// retransmission slack.
    #[test]
    fn srtt_is_physical(
        wifi_rtt_ms in 6u64..100,
        bytes in 200_000u64..1_000_000,
    ) {
        let one_way = SimDuration::from_millis(wifi_rtt_ms / 2 + 1);
        let wifi = LinkConfig::constant(4.0, one_way);
        let cell = LinkConfig::constant(3.0, SimDuration::from_millis(30));
        let mut sim = MptcpSim::new(MptcpConfig::two_path(wifi, cell));
        download(&mut sim, bytes);
        if let Some(srtt) = sim.srtt(PathId::WIFI) {
            let floor = one_way * 2;
            prop_assert!(srtt >= floor, "srtt {srtt} below propagation {floor}");
            // 64 KiB queue at 4 Mbps adds ≤ ~131 ms; allow 3x slack for
            // recovery-skewed samples.
            let ceil = floor + SimDuration::from_millis(400);
            prop_assert!(srtt <= ceil, "srtt {srtt} above bound {ceil}");
        }
    }
}
